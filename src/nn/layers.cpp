#include "nn/layers.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <span>
#include <stdexcept>

#include "util/math_kernels.h"

namespace dgs::nn {

namespace {
void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}
}  // namespace

// ---------------------------------------------------------------- Sequential

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& child : children_) x = child->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> out;
  for (auto& child : children_)
    for (Parameter* p : child->parameters()) out.push_back(p);
  return out;
}

void Sequential::init(util::Rng& rng) {
  for (auto& child : children_) child->init(rng);
}

// ------------------------------------------------------------------ Residual

Tensor Residual::forward(const Tensor& input, bool train) {
  Tensor body_out = body_->forward(input, train);
  Tensor shortcut = projection_ ? projection_->forward(input, train) : input;
  require(body_out.shape() == shortcut.shape(), "Residual: shape mismatch");
  util::axpy(1.0f, shortcut.flat(), body_out.flat());
  return body_out;
}

Tensor Residual::backward(const Tensor& grad_output) {
  Tensor grad_in = body_->backward(grad_output);
  if (projection_) {
    Tensor grad_proj = projection_->backward(grad_output);
    util::axpy(1.0f, grad_proj.flat(), grad_in.flat());
  } else {
    util::axpy(1.0f, grad_output.flat(), grad_in.flat());
  }
  return grad_in;
}

std::vector<Parameter*> Residual::parameters() {
  std::vector<Parameter*> out = body_->parameters();
  if (projection_)
    for (Parameter* p : projection_->parameters()) out.push_back(p);
  return out;
}

void Residual::init(util::Rng& rng) {
  body_->init(rng);
  if (projection_) projection_->init(rng);
}

// -------------------------------------------------------------------- Linear

Linear::Linear(std::size_t in_features, std::size_t out_features, bool bias)
    : in_(in_features),
      out_(out_features),
      weight_("linear.weight", Shape{out_features, in_features}),
      bias_("linear.bias", Shape{out_features}),
      has_bias_(bias) {}

Tensor Linear::forward(const Tensor& input, bool /*train*/) {
  require(input.shape().rank() == 2 && input.shape()[1] == in_,
          "Linear: bad input shape");
  cached_input_ = input;
  const std::size_t batch = input.shape()[0];
  Tensor out(Shape{batch, out_});
  // out[N, out] = input[N, in] * W^T (W stored [out, in]).
  util::gemm_bt(batch, in_, out_, input.data(), weight_.value.data(), out.data(),
                /*accumulate=*/false);
  if (has_bias_) {
    for (std::size_t n = 0; n < batch; ++n)
      util::axpy(1.0f, bias_.value.flat(), out.flat().subspan(n * out_, out_));
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  require(grad_output.shape().rank() == 2 && grad_output.shape()[1] == out_,
          "Linear: bad grad shape");
  const std::size_t batch = grad_output.shape()[0];
  require(cached_input_.shape().rank() == 2 && cached_input_.shape()[0] == batch,
          "Linear: backward without matching forward");

  // dW[out, in] += dY^T[out, N] * X[N, in]
  util::gemm_at(out_, batch, in_, grad_output.data(), cached_input_.data(),
                weight_.grad.data(), /*accumulate=*/true);
  if (has_bias_) {
    for (std::size_t n = 0; n < batch; ++n)
      util::axpy(1.0f, grad_output.flat().subspan(n * out_, out_),
                 bias_.grad.flat());
  }
  // dX[N, in] = dY[N, out] * W[out, in]
  Tensor grad_in(Shape{batch, in_});
  util::gemm(batch, out_, in_, grad_output.data(), weight_.value.data(),
             grad_in.data(), /*accumulate=*/false);
  return grad_in;
}

std::vector<Parameter*> Linear::local_parameters() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

void Linear::init(util::Rng& rng) {
  weight_.value.init_he(rng, in_);
  bias_.value.zero();
}

// ---------------------------------------------------------------------- ReLU

Tensor ReLU::forward(const Tensor& input, bool /*train*/) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& v : out.flat())
    if (v < 0.0f) v = 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  require(grad_output.shape() == cached_input_.shape(), "ReLU: bad grad shape");
  Tensor grad_in = grad_output;
  auto gi = grad_in.flat();
  auto xi = cached_input_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i)
    if (xi[i] <= 0.0f) gi[i] = 0.0f;
  return grad_in;
}

// ---------------------------------------------------------------------- Tanh

Tensor Tanh::forward(const Tensor& input, bool /*train*/) {
  Tensor out = input;
  for (auto& v : out.flat()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  require(grad_output.shape() == cached_output_.shape(), "Tanh: bad grad shape");
  Tensor grad_in = grad_output;
  auto gi = grad_in.flat();
  auto yo = cached_output_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] *= 1.0f - yo[i] * yo[i];
  return grad_in;
}

// -------------------------------------------------------------------- Conv2d

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad, bool bias)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_("conv.weight", Shape{out_channels, in_channels * kernel * kernel}),
      bias_("conv.bias", Shape{out_channels}),
      has_bias_(bias) {}

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  require(input.shape().rank() == 4 && input.shape()[1] == in_c_,
          "Conv2d: bad input shape");
  cached_input_ = input;
  const std::size_t batch = input.shape()[0];
  const std::size_t h = input.shape()[2];
  const std::size_t w = input.shape()[3];
  const std::size_t oh = tensor::conv_out_size(h, kernel_, stride_, pad_);
  const std::size_t ow = tensor::conv_out_size(w, kernel_, stride_, pad_);
  const std::size_t col_rows = in_c_ * kernel_ * kernel_;
  const std::size_t col_cols = oh * ow;

  cached_columns_ = workspace_.acquire_columns(batch * col_rows * col_cols);
  Tensor out(Shape{batch, out_c_, oh, ow});
  for (std::size_t n = 0; n < batch; ++n) {
    float* cols = cached_columns_.data() + n * col_rows * col_cols;
    tensor::im2col(input.data() + n * in_c_ * h * w, in_c_, h, w, kernel_,
                   kernel_, stride_, pad_, cols);
    // out[n] = W[out_c, col_rows] * cols[col_rows, col_cols]
    util::gemm(out_c_, col_rows, col_cols, weight_.value.data(), cols,
               out.data() + n * out_c_ * col_cols, /*accumulate=*/false);
    if (has_bias_) {
      for (std::size_t c = 0; c < out_c_; ++c) {
        float* plane = out.data() + (n * out_c_ + c) * col_cols;
        const float b = bias_.value[c];
        for (std::size_t i = 0; i < col_cols; ++i) plane[i] += b;
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.shape()[0];
  const std::size_t h = cached_input_.shape()[2];
  const std::size_t w = cached_input_.shape()[3];
  const std::size_t oh = tensor::conv_out_size(h, kernel_, stride_, pad_);
  const std::size_t ow = tensor::conv_out_size(w, kernel_, stride_, pad_);
  require(grad_output.shape() == Shape{batch, out_c_, oh, ow},
          "Conv2d: bad grad shape");
  const std::size_t col_rows = in_c_ * kernel_ * kernel_;
  const std::size_t col_cols = oh * ow;

  require(cached_columns_.size() == batch * col_rows * col_cols,
          "Conv2d: backward without matching forward");
  Tensor grad_in(cached_input_.shape());
  std::span<float> grad_cols =
      workspace_.acquire_grad_columns(col_rows * col_cols);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* gout = grad_output.data() + n * out_c_ * col_cols;
    const float* cols = cached_columns_.data() + n * col_rows * col_cols;
    // dW[out_c, col_rows] += dY[out_c, col_cols] * cols^T
    util::gemm_bt(out_c_, col_cols, col_rows, gout, cols, weight_.grad.data(),
                  /*accumulate=*/true);
    if (has_bias_) {
      for (std::size_t c = 0; c < out_c_; ++c) {
        const float* plane = gout + c * col_cols;
        bias_.grad[c] += static_cast<float>(util::sum({plane, col_cols}));
      }
    }
    // dcols[col_rows, col_cols] = W^T[col_rows, out_c] * dY[out_c, col_cols]
    util::gemm_at(col_rows, out_c_, col_cols, weight_.value.data(), gout,
                  grad_cols.data(), /*accumulate=*/false);
    tensor::col2im(grad_cols.data(), in_c_, h, w, kernel_, kernel_, stride_,
                   pad_, grad_in.data() + n * in_c_ * h * w);
  }
  return grad_in;
}

std::vector<Parameter*> Conv2d::local_parameters() {
  std::vector<Parameter*> out{&weight_};
  if (has_bias_) out.push_back(&bias_);
  return out;
}

void Conv2d::init(util::Rng& rng) {
  weight_.value.init_he(rng, in_c_ * kernel_ * kernel_);
  bias_.value.zero();
}

// ----------------------------------------------------------------- BatchNorm

BatchNorm::BatchNorm(std::size_t channels, float epsilon)
    : channels_(channels),
      eps_(epsilon),
      gamma_("bn.gamma", Shape{channels}),
      beta_("bn.beta", Shape{channels}) {}

Tensor BatchNorm::forward(const Tensor& input, bool /*train*/) {
  const auto& shape = input.shape();
  require(shape.rank() == 2 || shape.rank() == 4, "BatchNorm: rank must be 2 or 4");
  require(shape[1] == channels_, "BatchNorm: channel mismatch");
  cached_shape_ = shape;
  const std::size_t batch = shape[0];
  const std::size_t spatial = shape.rank() == 4 ? shape[2] * shape[3] : 1;
  const std::size_t per_channel = batch * spatial;
  require(per_channel > 0, "BatchNorm: empty batch");

  cached_xhat_ = Tensor(shape);
  cached_inv_std_.assign(channels_, 0.0f);
  Tensor out(shape);

  for (std::size_t c = 0; c < channels_; ++c) {
    // Single pass per plane through the vectorized reductions: E[x] and
    // E[x^2] in double, var = E[x^2] - mean^2 (clamped; fine at fp32 input
    // scale, and both moments come from the same data sweep).
    double sum_x = 0.0, sum_xx = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const std::span<const float> src{
          input.data() + (n * channels_ + c) * spatial, spatial};
      sum_x += util::sum(src);
      sum_xx += util::dot(src, src);
    }
    const double mean = sum_x / static_cast<double>(per_channel);
    const double var = std::max(
        0.0, sum_xx / static_cast<double>(per_channel) - mean * mean);
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    cached_inv_std_[c] = inv_std;
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    for (std::size_t n = 0; n < batch; ++n) {
      const float* src = input.data() + (n * channels_ + c) * spatial;
      float* xh = cached_xhat_.data() + (n * channels_ + c) * spatial;
      float* dst = out.data() + (n * channels_ + c) * spatial;
      for (std::size_t i = 0; i < spatial; ++i) {
        xh[i] = (src[i] - static_cast<float>(mean)) * inv_std;
        dst[i] = g * xh[i] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  require(grad_output.shape() == cached_shape_, "BatchNorm: bad grad shape");
  const std::size_t batch = cached_shape_[0];
  const std::size_t spatial = cached_shape_.rank() == 4
                                  ? cached_shape_[2] * cached_shape_[3]
                                  : 1;
  const auto per_channel = static_cast<double>(batch * spatial);

  Tensor grad_in(cached_shape_);
  for (std::size_t c = 0; c < channels_; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t n = 0; n < batch; ++n) {
      const std::span<const float> dy{
          grad_output.data() + (n * channels_ + c) * spatial, spatial};
      const std::span<const float> xh{
          cached_xhat_.data() + (n * channels_ + c) * spatial, spatial};
      sum_dy += util::sum(dy);
      sum_dy_xhat += util::dot(dy, xh);
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const float g = gamma_.value[c];
    const float inv_std = cached_inv_std_[c];
    const auto mean_dy = static_cast<float>(sum_dy / per_channel);
    const auto mean_dy_xhat = static_cast<float>(sum_dy_xhat / per_channel);
    for (std::size_t n = 0; n < batch; ++n) {
      const float* dy = grad_output.data() + (n * channels_ + c) * spatial;
      const float* xh = cached_xhat_.data() + (n * channels_ + c) * spatial;
      float* dx = grad_in.data() + (n * channels_ + c) * spatial;
      for (std::size_t i = 0; i < spatial; ++i)
        dx[i] = g * inv_std * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
    }
  }
  return grad_in;
}

std::vector<Parameter*> BatchNorm::local_parameters() { return {&gamma_, &beta_}; }

void BatchNorm::init(util::Rng& /*rng*/) {
  gamma_.value.fill(1.0f);
  beta_.value.zero();
}

// ----------------------------------------------------------------- MaxPool2d

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  require(window >= 1, "MaxPool2d: window must be >= 1");
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*train*/) {
  const auto& shape = input.shape();
  require(shape.rank() == 4, "MaxPool2d: input must be NCHW");
  cached_in_shape_ = shape;
  const std::size_t batch = shape[0], channels = shape[1];
  const std::size_t h = shape[2], w = shape[3];
  const std::size_t oh = h / window_, ow = w / window_;
  require(oh >= 1 && ow >= 1, "MaxPool2d: window larger than input");

  Tensor out(Shape{batch, channels, oh, ow});
  argmax_.assign(out.numel(), 0);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * h * w;
      float* dst = out.data() + (n * channels + c) * oh * ow;
      std::uint32_t* arg = argmax_.data() + (n * channels + c) * oh * ow;
      for (std::size_t i = 0; i < oh; ++i) {
        for (std::size_t j = 0; j < ow; ++j) {
          float best = -std::numeric_limits<float>::infinity();
          std::uint32_t best_at = 0;
          for (std::size_t di = 0; di < window_; ++di) {
            for (std::size_t dj = 0; dj < window_; ++dj) {
              const std::size_t at = (i * window_ + di) * w + (j * window_ + dj);
              if (plane[at] > best) {
                best = plane[at];
                best_at = static_cast<std::uint32_t>(at);
              }
            }
          }
          dst[i * ow + j] = best;
          arg[i * ow + j] = best_at;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_in_shape_[0], channels = cached_in_shape_[1];
  const std::size_t h = cached_in_shape_[2], w = cached_in_shape_[3];
  const std::size_t oh = h / window_, ow = w / window_;
  require(grad_output.shape() == Shape{batch, channels, oh, ow},
          "MaxPool2d: bad grad shape");
  Tensor grad_in(cached_in_shape_);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float* gy = grad_output.data() + (n * channels + c) * oh * ow;
      const std::uint32_t* arg = argmax_.data() + (n * channels + c) * oh * ow;
      float* gx = grad_in.data() + (n * channels + c) * h * w;
      for (std::size_t i = 0; i < oh * ow; ++i) gx[arg[i]] += gy[i];
    }
  }
  return grad_in;
}

// ------------------------------------------------------------- GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*train*/) {
  const auto& shape = input.shape();
  require(shape.rank() == 4, "GlobalAvgPool: input must be NCHW");
  cached_in_shape_ = shape;
  const std::size_t batch = shape[0], channels = shape[1];
  const std::size_t spatial = shape[2] * shape[3];
  Tensor out(Shape{batch, channels});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * spatial;
      double acc = 0.0;
      for (std::size_t i = 0; i < spatial; ++i) acc += plane[i];
      out.at2(n, c) = static_cast<float>(acc / static_cast<double>(spatial));
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_in_shape_[0], channels = cached_in_shape_[1];
  const std::size_t spatial = cached_in_shape_[2] * cached_in_shape_[3];
  require(grad_output.shape() == Shape{batch, channels},
          "GlobalAvgPool: bad grad shape");
  Tensor grad_in(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(spatial);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float g = grad_output.at2(n, c) * inv;
      float* plane = grad_in.data() + (n * channels + c) * spatial;
      for (std::size_t i = 0; i < spatial; ++i) plane[i] = g;
    }
  }
  return grad_in;
}

// ------------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input, bool /*train*/) {
  cached_in_shape_ = input.shape();
  require(cached_in_shape_.rank() >= 2, "Flatten: rank must be >= 2");
  const std::size_t batch = cached_in_shape_[0];
  return input.reshaped(Shape{batch, input.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_in_shape_);
}

}  // namespace dgs::nn
