// Concrete layers: Linear, ReLU, Conv2d (im2col), BatchNorm (batch-stats),
// MaxPool2d, GlobalAvgPool, Flatten.
#pragma once

#include <cstddef>
#include <span>

#include "nn/module.h"
#include "nn/workspace.h"

namespace dgs::nn {

/// Fully connected layer: y = x W^T + b. Input [N, in], output [N, out].
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, bool bias = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> local_parameters() override;
  void init(util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_, out_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  bool has_bias_;
  Tensor cached_input_;
};

/// Elementwise max(0, x).
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// Elementwise tanh (used by gradient-check tests for smooth nonlinearity).
class Tanh : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// 2D convolution via im2col + GEMM. Input [N, C, H, W].
class Conv2d : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride = 1, std::size_t pad = 0, bool bias = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> local_parameters() override;
  void init(util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Conv2d"; }

 private:
  std::size_t in_c_, out_c_, kernel_, stride_, pad_;
  Parameter weight_;  // [out_c, in_c * k * k]
  Parameter bias_;    // [out_c]
  bool has_bias_;
  Tensor cached_input_;
  ConvWorkspace workspace_;
  // [N * (C*k*k) * (oh*ow)] concatenated per image; view into workspace_,
  // written by forward and consumed by the next backward.
  std::span<float> cached_columns_;
};

/// Batch normalization over the channel axis using batch statistics in both
/// train and eval (no running buffers: all trainable state lives in
/// Parameters, which keeps worker/server state transfer complete).
/// Works on [N, C, H, W] (per-channel) and [N, F] (per-feature).
class BatchNorm : public Module {
 public:
  explicit BatchNorm(std::size_t channels, float epsilon = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> local_parameters() override;
  void init(util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "BatchNorm"; }

 private:
  std::size_t channels_;
  float eps_;
  Parameter gamma_, beta_;
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  Shape cached_shape_;
};

/// Max pooling with square window, stride == window. Input [N, C, H, W].
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::size_t window);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t window_;
  Shape cached_in_shape_;
  std::vector<std::uint32_t> argmax_;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_in_shape_;
};

/// [N, ...] -> [N, prod(...)].
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  Shape cached_in_shape_;
};

}  // namespace dgs::nn
