// Softmax cross-entropy loss with integer labels, plus accuracy helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace dgs::nn {

struct LossResult {
  double loss = 0.0;         ///< Mean loss over the batch.
  tensor::Tensor grad;       ///< d(mean loss)/d(logits), same shape as logits.
  std::size_t correct = 0;   ///< Top-1 correct predictions in the batch.
};

/// Numerically stable softmax cross-entropy. logits: [N, classes].
[[nodiscard]] LossResult softmax_cross_entropy(
    const tensor::Tensor& logits, const std::vector<std::int32_t>& labels);

/// Top-1 accuracy only (no gradient); cheaper for evaluation passes.
[[nodiscard]] std::size_t count_correct(const tensor::Tensor& logits,
                                        const std::vector<std::int32_t>& labels);

/// Mean softmax cross-entropy without gradient.
[[nodiscard]] double softmax_loss_only(const tensor::Tensor& logits,
                                       const std::vector<std::int32_t>& labels);

}  // namespace dgs::nn
