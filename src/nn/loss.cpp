#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

namespace dgs::nn {

namespace {

/// Writes softmax probabilities of one row and returns log(sum exp) shift
/// pieces needed for the loss; `probs` may alias nothing.
void row_softmax(const float* logits, std::size_t classes, float* probs) {
  float maxv = logits[0];
  for (std::size_t c = 1; c < classes; ++c) maxv = std::max(maxv, logits[c]);
  double denom = 0.0;
  for (std::size_t c = 0; c < classes; ++c) {
    probs[c] = std::exp(logits[c] - maxv);
    denom += probs[c];
  }
  const auto inv = static_cast<float>(1.0 / denom);
  for (std::size_t c = 0; c < classes; ++c) probs[c] *= inv;
}

std::size_t row_argmax(const float* logits, std::size_t classes) {
  std::size_t best = 0;
  for (std::size_t c = 1; c < classes; ++c)
    if (logits[c] > logits[best]) best = c;
  return best;
}

}  // namespace

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int32_t>& labels) {
  if (logits.shape().rank() != 2)
    throw std::invalid_argument("softmax_cross_entropy: logits must be [N, C]");
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  if (labels.size() != batch)
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");

  LossResult result;
  result.grad = tensor::Tensor(logits.shape());
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    float* grow = result.grad.data() + n * classes;
    row_softmax(row, classes, grow);
    const auto label = static_cast<std::size_t>(labels[n]);
    if (label >= classes)
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    total += -std::log(std::max(grow[label], 1e-30f));
    if (row_argmax(row, classes) == label) ++result.correct;
    // grad = (softmax - onehot) / N
    grow[label] -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) grow[c] *= inv_batch;
  }
  result.loss = total / static_cast<double>(batch);
  return result;
}

std::size_t count_correct(const tensor::Tensor& logits,
                          const std::vector<std::int32_t>& labels) {
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  std::size_t correct = 0;
  for (std::size_t n = 0; n < batch; ++n)
    if (row_argmax(logits.data() + n * classes, classes) ==
        static_cast<std::size_t>(labels[n]))
      ++correct;
  return correct;
}

double softmax_loss_only(const tensor::Tensor& logits,
                         const std::vector<std::int32_t>& labels) {
  const std::size_t batch = logits.shape()[0];
  const std::size_t classes = logits.shape()[1];
  std::vector<float> probs(classes);
  double total = 0.0;
  for (std::size_t n = 0; n < batch; ++n) {
    row_softmax(logits.data() + n * classes, classes, probs.data());
    total += -std::log(
        std::max(probs[static_cast<std::size_t>(labels[n])], 1e-30f));
  }
  return total / static_cast<double>(batch);
}

}  // namespace dgs::nn
