// Neural-network module graph with exact reverse-mode gradients.
//
// The contract is deliberately minimal: a Module maps a batch tensor to a
// batch tensor in forward(), and maps the loss gradient w.r.t. its output to
// the gradient w.r.t. its input in backward(), accumulating parameter
// gradients into Parameter::grad along the way. Each Parameter tensor is one
// "layer" in the sense of the paper's per-layer sparsification (the j index
// in Algorithms 1-3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace dgs::nn {

using tensor::Shape;
using tensor::Tensor;

/// A trainable tensor plus its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Shape shape)
      : name(std::move(n)), value(shape), grad(std::move(shape)) {}
};

class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Forward pass. `train` selects training behaviour (e.g. batch-stat
  /// normalization). Implementations cache activations needed by backward.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Backward pass for the most recent forward() call. Accumulates into
  /// parameter gradients and returns d(loss)/d(input).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Parameters owned directly by this module (not recursive).
  virtual std::vector<Parameter*> local_parameters() { return {}; }

  /// All parameters, depth-first (recursive).
  virtual std::vector<Parameter*> parameters() { return local_parameters(); }

  /// Weight initialization; default initializes nothing.
  virtual void init(util::Rng& /*rng*/) {}

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  Module() = default;
};

using ModulePtr = std::unique_ptr<Module>;

/// Composite module applying children in order.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> children)
      : children_(std::move(children)) {}

  Sequential& add(ModulePtr child) {
    children_.push_back(std::move(child));
    return *this;
  }

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void init(util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

  [[nodiscard]] std::size_t size() const noexcept { return children_.size(); }
  Module& child(std::size_t i) { return *children_.at(i); }

 private:
  std::vector<ModulePtr> children_;
};

/// Residual wrapper: output = body(x) + projection(x) (projection defaults
/// to identity and must produce the body's output shape).
class Residual : public Module {
 public:
  explicit Residual(ModulePtr body, ModulePtr projection = nullptr)
      : body_(std::move(body)), projection_(std::move(projection)) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void init(util::Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "Residual"; }

 private:
  ModulePtr body_;
  ModulePtr projection_;  // may be null (identity)
};

}  // namespace dgs::nn
