// Pooled per-layer compute scratch, following the acquire/recycle idiom of
// sparse::SparsifyWorkspace: buffers grow to a high-water mark and are then
// reused, so the steady-state forward/backward path performs zero heap
// allocations (enforced by the operator-new counter tests in
// tests/test_nn.cpp).
//
// One workspace per layer instance; NOT thread-safe — a layer is owned by
// exactly one engine worker, which is the same ownership rule the rest of
// the per-worker state follows.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/gemm.h"

namespace dgs::nn {

/// Scratch for the im2col convolution path: the unfolded input columns
/// (written in forward, re-read in backward for the weight gradient) and
/// the column-space input gradient (backward only).
class ConvWorkspace {
 public:
  /// Column buffer for the current forward pass, sized to `floats`
  /// (batch * C*k*k * oh*ow). Contents persist until the next
  /// acquire_columns call, which may invalidate previously returned spans.
  [[nodiscard]] std::span<float> acquire_columns(std::size_t floats) {
    return acquire(columns_, floats);
  }

  /// Per-image gradient-column buffer for backward (C*k*k * oh*ow floats).
  /// Does not invalidate the span returned by acquire_columns.
  [[nodiscard]] std::span<float> acquire_grad_columns(std::size_t floats) {
    return acquire(grad_columns_, floats);
  }

  /// Bytes of scratch currently resident (memory-usage accounting, tests).
  [[nodiscard]] std::size_t scratch_bytes() const noexcept {
    return (columns_.capacity() + grad_columns_.capacity()) * sizeof(float);
  }

  /// Bytes of the *calling thread's* pooled GEMM pack scratch — the other
  /// workspace every layer GEMM sizes (ceil(n/kGemmNR) panels of
  /// min(k, kGemmKC) x kGemmNR floats, shared by the parallel pack lanes).
  /// Thread-local and shared across all layers driven by that thread, so
  /// report it once per thread, not once per layer, when summing.
  [[nodiscard]] static std::size_t thread_pack_scratch_bytes() noexcept {
    return util::gemm_scratch_bytes();
  }

 private:
  static std::span<float> acquire(std::vector<float>& buf,
                                  std::size_t floats) {
    if (buf.size() < floats) buf.resize(floats);
    return {buf.data(), floats};
  }

  std::vector<float> columns_;
  std::vector<float> grad_columns_;
};

}  // namespace dgs::nn
