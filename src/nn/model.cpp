#include "nn/model.h"

#include <memory>
#include <stdexcept>

#include "util/math_kernels.h"

namespace dgs::nn {

ModelSpec ModelSpec::mlp(std::size_t input_dim, std::vector<std::size_t> hidden,
                         std::size_t classes) {
  ModelSpec spec;
  spec.kind = Kind::kMlp;
  spec.input_dim = input_dim;
  spec.hidden = std::move(hidden);
  spec.classes = classes;
  return spec;
}

ModelSpec ModelSpec::res_mlp(std::size_t input_dim, std::size_t width,
                             std::size_t blocks, std::size_t classes) {
  ModelSpec spec;
  spec.kind = Kind::kResMlp;
  spec.input_dim = input_dim;
  spec.hidden = {width};
  spec.blocks = blocks;
  spec.classes = classes;
  return spec;
}

ModelSpec ModelSpec::cnn(std::size_t channels, std::size_t height,
                         std::size_t width, std::size_t base_channels,
                         std::size_t classes) {
  ModelSpec spec;
  spec.kind = Kind::kCnn;
  spec.channels = channels;
  spec.height = height;
  spec.width = width;
  spec.base_channels = base_channels;
  spec.classes = classes;
  return spec;
}

ModelSpec ModelSpec::resnet_lite(std::size_t channels, std::size_t height,
                                 std::size_t width, std::size_t base_channels,
                                 std::size_t blocks, std::size_t classes) {
  ModelSpec spec;
  spec.kind = Kind::kResNetLite;
  spec.channels = channels;
  spec.height = height;
  spec.width = width;
  spec.base_channels = base_channels;
  spec.blocks = blocks;
  spec.classes = classes;
  return spec;
}

namespace {

ModulePtr build_mlp(const ModelSpec& spec) {
  auto seq = std::make_unique<Sequential>();
  std::size_t in = spec.input_dim;
  for (std::size_t h : spec.hidden) {
    seq->add(std::make_unique<Linear>(in, h, /*bias=*/!spec.batch_norm));
    if (spec.batch_norm) seq->add(std::make_unique<BatchNorm>(h));
    seq->add(std::make_unique<ReLU>());
    in = h;
  }
  seq->add(std::make_unique<Linear>(in, spec.classes));
  return seq;
}

ModulePtr build_res_mlp(const ModelSpec& spec) {
  const std::size_t width = spec.hidden.empty() ? 64 : spec.hidden[0];
  const bool bn = spec.batch_norm;
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Linear>(spec.input_dim, width, /*bias=*/!bn));
  if (bn) seq->add(std::make_unique<BatchNorm>(width));
  seq->add(std::make_unique<ReLU>());
  for (std::size_t b = 0; b < spec.blocks; ++b) {
    auto body = std::make_unique<Sequential>();
    body->add(std::make_unique<Linear>(width, width, /*bias=*/!bn));
    if (bn) body->add(std::make_unique<BatchNorm>(width));
    body->add(std::make_unique<ReLU>());
    body->add(std::make_unique<Linear>(width, width, /*bias=*/!bn));
    if (bn) body->add(std::make_unique<BatchNorm>(width));
    seq->add(std::make_unique<Residual>(std::move(body)));
    seq->add(std::make_unique<ReLU>());
  }
  seq->add(std::make_unique<Linear>(width, spec.classes));
  return seq;
}

ModulePtr build_cnn(const ModelSpec& spec) {
  const std::size_t c1 = spec.base_channels;
  const std::size_t c2 = spec.base_channels * 2;
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Conv2d>(spec.channels, c1, 3, 1, 1));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<MaxPool2d>(2));
  seq->add(std::make_unique<Conv2d>(c1, c2, 3, 1, 1));
  seq->add(std::make_unique<ReLU>());
  // Flatten head (rather than global average pooling) so spatially
  // unstructured features remain classifiable.
  seq->add(std::make_unique<Flatten>());
  seq->add(std::make_unique<Linear>(c2 * (spec.height / 2) * (spec.width / 2),
                                    spec.classes));
  return seq;
}

ModulePtr build_resnet_lite(const ModelSpec& spec) {
  const std::size_t c = spec.base_channels;
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<Conv2d>(spec.channels, c, 3, 1, 1, /*bias=*/false));
  seq->add(std::make_unique<BatchNorm>(c));
  seq->add(std::make_unique<ReLU>());
  for (std::size_t b = 0; b < spec.blocks; ++b) {
    auto body = std::make_unique<Sequential>();
    body->add(std::make_unique<Conv2d>(c, c, 3, 1, 1, /*bias=*/false));
    body->add(std::make_unique<BatchNorm>(c));
    body->add(std::make_unique<ReLU>());
    body->add(std::make_unique<Conv2d>(c, c, 3, 1, 1, /*bias=*/false));
    body->add(std::make_unique<BatchNorm>(c));
    seq->add(std::make_unique<Residual>(std::move(body)));
    seq->add(std::make_unique<ReLU>());
  }
  seq->add(std::make_unique<GlobalAvgPool>());
  seq->add(std::make_unique<Linear>(c, spec.classes));
  return seq;
}

}  // namespace

ModulePtr ModelSpec::build() const {
  switch (kind) {
    case Kind::kMlp: return build_mlp(*this);
    case Kind::kResMlp: return build_res_mlp(*this);
    case Kind::kCnn: return build_cnn(*this);
    case Kind::kResNetLite: return build_resnet_lite(*this);
  }
  throw std::logic_error("ModelSpec: unknown kind");
}

Shape ModelSpec::input_shape(std::size_t batch) const {
  switch (kind) {
    case Kind::kMlp:
    case Kind::kResMlp:
      return Shape{batch, input_dim};
    case Kind::kCnn:
    case Kind::kResNetLite:
      return Shape{batch, channels, height, width};
  }
  throw std::logic_error("ModelSpec: unknown kind");
}

std::size_t ModelSpec::feature_dim() const noexcept {
  switch (kind) {
    case Kind::kMlp:
    case Kind::kResMlp:
      return input_dim;
    case Kind::kCnn:
    case Kind::kResNetLite:
      return channels * height * width;
  }
  return 0;
}

std::string ModelSpec::name() const {
  switch (kind) {
    case Kind::kMlp: return "MLP";
    case Kind::kResMlp: return "ResMLP";
    case Kind::kCnn: return "CifarNet";
    case Kind::kResNetLite: return "ResNetLite";
  }
  return "?";
}

std::size_t param_numel(const std::vector<Parameter*>& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) n += p->value.numel();
  return n;
}

std::vector<std::size_t> param_layer_sizes(const std::vector<Parameter*>& params) {
  std::vector<std::size_t> out;
  out.reserve(params.size());
  for (const Parameter* p : params) out.push_back(p->value.numel());
  return out;
}

std::vector<float> param_gather_values(const std::vector<Parameter*>& params) {
  std::vector<float> flat(param_numel(params));
  std::size_t at = 0;
  for (const Parameter* p : params) {
    util::copy(p->value.flat(), {flat.data() + at, p->value.numel()});
    at += p->value.numel();
  }
  return flat;
}

std::vector<float> param_gather_grads(const std::vector<Parameter*>& params) {
  std::vector<float> flat(param_numel(params));
  std::size_t at = 0;
  for (const Parameter* p : params) {
    util::copy(p->grad.flat(), {flat.data() + at, p->grad.numel()});
    at += p->grad.numel();
  }
  return flat;
}

void param_scatter_values(const std::vector<float>& flat,
                          const std::vector<Parameter*>& params) {
  if (flat.size() != param_numel(params))
    throw std::invalid_argument("param_scatter_values: size mismatch");
  std::size_t at = 0;
  for (Parameter* p : params) {
    util::copy({flat.data() + at, p->value.numel()}, p->value.flat());
    at += p->value.numel();
  }
}

void param_zero_grads(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.zero();
}

}  // namespace dgs::nn
