// Model zoo and parameter-vector utilities.
//
// Every worker and the evaluation harness must be able to build an identical
// model structure and exchange parameter/gradient state layer-by-layer; the
// ModelSpec (a cheap value type) is the blueprint they share, and the
// param_* helpers give flat per-layer access to a built model's state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"

namespace dgs::nn {

/// Declarative model description, buildable anywhere (worker threads, the
/// evaluator, tests) so all replicas agree on structure and layer order.
struct ModelSpec {
  enum class Kind : std::uint8_t {
    kMlp,         ///< Flatten -> [Linear+ReLU]* -> Linear
    kResMlp,      ///< MLP with residual blocks (Linear-ReLU-Linear + skip)
    kCnn,         ///< Conv stack + pool + classifier head ("CifarNet")
    kResNetLite,  ///< Small residual conv net (BatchNorm + skips)
  };

  Kind kind = Kind::kMlp;
  std::size_t input_dim = 0;   ///< For MLP kinds: feature dimension.
  std::size_t channels = 3;    ///< For conv kinds.
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t classes = 10;
  std::vector<std::size_t> hidden;  ///< MLP hidden widths / ResMlp block widths.
  std::size_t base_channels = 8;    ///< Conv width multiplier.
  std::size_t blocks = 2;           ///< Residual block count for kResNetLite.
  bool batch_norm = false;          ///< Insert BatchNorm in MLP/ResMLP blocks
                                    ///< (ResNet-style training stability).

  [[nodiscard]] static ModelSpec mlp(std::size_t input_dim,
                                     std::vector<std::size_t> hidden,
                                     std::size_t classes);
  [[nodiscard]] static ModelSpec res_mlp(std::size_t input_dim, std::size_t width,
                                         std::size_t blocks, std::size_t classes);
  [[nodiscard]] static ModelSpec cnn(std::size_t channels, std::size_t height,
                                     std::size_t width, std::size_t base_channels,
                                     std::size_t classes);
  [[nodiscard]] static ModelSpec resnet_lite(std::size_t channels,
                                             std::size_t height, std::size_t width,
                                             std::size_t base_channels,
                                             std::size_t blocks,
                                             std::size_t classes);

  /// Instantiate the module graph (uninitialized weights).
  [[nodiscard]] ModulePtr build() const;

  /// Shape a flat feature batch must be reshaped to before forward().
  [[nodiscard]] Shape input_shape(std::size_t batch) const;

  /// Flat feature dimension the datasets must produce.
  [[nodiscard]] std::size_t feature_dim() const noexcept;

  [[nodiscard]] std::string name() const;
};

// ---------------------------------------------------------------------------
// Flat parameter access. "Layer j" in the paper == parameter index j here.
// ---------------------------------------------------------------------------

[[nodiscard]] std::size_t param_numel(const std::vector<Parameter*>& params);

/// Per-layer dense sizes, in layer order.
[[nodiscard]] std::vector<std::size_t> param_layer_sizes(
    const std::vector<Parameter*>& params);

/// Concatenate all parameter values into one flat vector (layer order).
[[nodiscard]] std::vector<float> param_gather_values(
    const std::vector<Parameter*>& params);

/// Concatenate all gradients into one flat vector (layer order).
[[nodiscard]] std::vector<float> param_gather_grads(
    const std::vector<Parameter*>& params);

/// Scatter a flat vector back into parameter values.
void param_scatter_values(const std::vector<float>& flat,
                          const std::vector<Parameter*>& params);

/// Zero all gradients.
void param_zero_grads(const std::vector<Parameter*>& params);

}  // namespace dgs::nn
