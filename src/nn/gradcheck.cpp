#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/model.h"
#include "util/math_kernels.h"

namespace dgs::nn {

namespace {

double weighted_sum(const Tensor& t, const std::vector<float>& weights) {
  double acc = 0.0;
  auto flat = t.flat();
  for (std::size_t i = 0; i < flat.size(); ++i)
    acc += static_cast<double>(flat[i]) * weights[i];
  return acc;
}

}  // namespace

GradCheckResult gradient_check(Module& module, const Tensor& input,
                               util::Rng& rng, const GradCheckOptions& options) {
  GradCheckResult result;

  // Fixed random linear functional over the output: loss = <w, out>.
  Tensor probe_out = module.forward(input, /*train=*/true);
  std::vector<float> w(probe_out.numel());
  for (auto& v : w) v = rng.normal(0.0f, 1.0f);

  auto loss_at = [&](const Tensor& x) {
    return weighted_sum(module.forward(x, /*train=*/true), w);
  };

  // Analytic gradients.
  auto params = module.parameters();
  param_zero_grads(params);
  Tensor out = module.forward(input, /*train=*/true);
  Tensor dloss(out.shape());
  util::copy({w.data(), w.size()}, dloss.flat());
  Tensor input_grad = module.backward(dloss);

  auto record = [&](double analytic, double numeric) {
    const double abs_err = std::fabs(analytic - numeric);
    const double denom =
        std::max({std::fabs(analytic), std::fabs(numeric), 1e-8});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    if (abs_err > options.abs_tolerance)
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    ++result.checked;
  };

  const double h = options.step;
  for (Parameter* p : params) {
    const std::size_t n = p->value.numel();
    const std::size_t samples = std::min(options.samples_per_param, n);
    for (std::size_t s = 0; s < samples; ++s) {
      const auto i = static_cast<std::size_t>(rng.below(n));
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(h);
      const double up = loss_at(input);
      p->value[i] = saved - static_cast<float>(h);
      const double down = loss_at(input);
      p->value[i] = saved;
      record(p->grad[i], (up - down) / (2.0 * h));
    }
  }

  if (options.check_input_grad && input.numel() > 0) {
    Tensor x = input;
    const std::size_t n = x.numel();
    const std::size_t samples = std::min(options.input_samples, n);
    for (std::size_t s = 0; s < samples; ++s) {
      const auto i = static_cast<std::size_t>(rng.below(n));
      const float saved = x[i];
      x[i] = saved + static_cast<float>(h);
      const double up = loss_at(x);
      x[i] = saved - static_cast<float>(h);
      const double down = loss_at(x);
      x[i] = saved;
      record(input_grad[i], (up - down) / (2.0 * h));
    }
  }

  result.ok = result.max_rel_error <= options.rel_tolerance;
  return result;
}

}  // namespace dgs::nn
