// Central-difference gradient checking for Module implementations.
//
// For each sampled parameter (and optionally input) coordinate, compares the
// analytic gradient against (L(x+h) - L(x-h)) / 2h on a scalar loss.
#pragma once

#include <cstddef>
#include <functional>

#include "nn/module.h"
#include "util/rng.h"

namespace dgs::nn {

struct GradCheckResult {
  double max_rel_error = 0.0;
  double max_abs_error = 0.0;
  std::size_t checked = 0;
  bool ok = false;
};

struct GradCheckOptions {
  double step = 1e-3;            ///< finite-difference step h
  double rel_tolerance = 5e-2;   ///< |analytic-numeric| / max(|a|,|n|,eps)
  double abs_tolerance = 1e-4;   ///< absolute floor below which errors pass
  std::size_t samples_per_param = 12;
  bool check_input_grad = true;
  std::size_t input_samples = 12;
};

/// Runs the module on `input`, reduces the output with a fixed random linear
/// functional (so the loss is scalar and smooth), and checks parameter and
/// input gradients at randomly sampled coordinates.
GradCheckResult gradient_check(Module& module, const Tensor& input,
                               util::Rng& rng,
                               const GradCheckOptions& options = {});

}  // namespace dgs::nn
