#include "comm/fault.h"

#include <algorithm>
#include <utility>

namespace dgs::comm {
namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix, so consecutive decision
// keys (same worker, seq, seq+1, ...) produce statistically independent
// uniforms without any shared RNG state to synchronize on.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultPlan::FaultPlan(FaultConfig config, obs::MetricsRegistry* metrics)
    : config_(config) {
  if (metrics != nullptr) {
    injected_ = &metrics->counter("fault.injected");
    dropped_pushes_ = &metrics->counter("fault.dropped_pushes");
    dropped_replies_ = &metrics->counter("fault.dropped_replies");
    duplicated_ = &metrics->counter("fault.duplicated");
    delayed_ = &metrics->counter("fault.delayed");
    reordered_ = &metrics->counter("fault.reordered");
    kills_ = &metrics->counter("fault.worker_kills");
    retransmits_ = &metrics->counter("fault.retransmits");
  }
}

double FaultPlan::unit(FaultDirection direction, std::size_t worker,
                       std::uint64_t seq, std::uint32_t attempt,
                       std::uint64_t salt) const noexcept {
  // Chain the key fields through the mixer rather than XORing them raw:
  // raw XOR would alias (worker=1, seq=2) with (worker=2, seq=1).
  std::uint64_t h = mix64(config_.seed ^ salt);
  h = mix64(h ^ (static_cast<std::uint64_t>(direction) + 1));
  h = mix64(h ^ static_cast<std::uint64_t>(worker));
  h = mix64(h ^ seq);
  h = mix64(h ^ static_cast<std::uint64_t>(attempt));
  // Top 53 bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultAction FaultPlan::classify(FaultDirection direction, std::size_t worker,
                                std::uint64_t seq,
                                std::uint32_t attempt) noexcept {
  const bool armed = direction == FaultDirection::kPush
                         ? config_.faults_on_pushes
                         : config_.faults_on_replies;
  if (!armed || !config_.message_faults()) return FaultAction::kDeliver;

  // One roll against cumulative thresholds: [0, drop) -> drop,
  // [drop, drop+dup) -> dup, and so on; the remainder delivers clean.
  const double roll = unit(direction, worker, seq, attempt, /*salt=*/0x5a17);
  double edge = config_.drop_pct / 100.0;
  FaultAction action = FaultAction::kDeliver;
  if (roll < edge) {
    action = FaultAction::kDrop;
  } else if (roll < (edge += config_.dup_pct / 100.0)) {
    action = FaultAction::kDuplicate;
  } else if (roll < (edge += config_.delay_pct / 100.0)) {
    action = FaultAction::kDelay;
  } else if (roll < (edge += config_.reorder_pct / 100.0)) {
    action = FaultAction::kReorder;
  }

  if (action != FaultAction::kDeliver && injected_ != nullptr) {
    injected_->add();
    switch (action) {
      case FaultAction::kDrop:
        (direction == FaultDirection::kPush ? dropped_pushes_
                                            : dropped_replies_)
            ->add();
        break;
      case FaultAction::kDuplicate:
        duplicated_->add();
        break;
      case FaultAction::kDelay:
        delayed_->add();
        break;
      case FaultAction::kReorder:
        reordered_->add();
        break;
      case FaultAction::kDeliver:
        break;
    }
  }
  return action;
}

double FaultPlan::hold_seconds(FaultAction action, std::size_t worker,
                               std::uint64_t seq,
                               std::uint32_t attempt) const noexcept {
  switch (action) {
    case FaultAction::kDelay:
      return config_.delay_s;
    case FaultAction::kReorder:
      // Uniform in (0, delay_s]: enough jitter that neighbours overtake
      // each other, still bounded so runs terminate promptly.
      return config_.delay_s *
             (1.0 - unit(FaultDirection::kPush, worker, seq, attempt,
                         /*salt=*/0x0c0de));
    default:
      return 0.0;
  }
}

void FaultPlan::count_kill() noexcept {
  if (kills_ != nullptr) kills_->add();
  if (injected_ != nullptr) injected_->add();
}

void FaultPlan::count_retransmit() noexcept {
  if (retransmits_ != nullptr) retransmits_->add();
}

// ---- FaultyThreadTransport --------------------------------------------------

bool FaultyThreadTransport::send_push(Message msg) {
  if (plan_ == nullptr || is_control_message(msg)) {
    return inner_.send_push(std::move(msg));
  }
  const auto action =
      plan_->classify(FaultDirection::kPush,
                      static_cast<std::size_t>(msg.worker_id), msg.seq,
                      msg.attempt);
  switch (action) {
    case FaultAction::kDrop:
      // Swallowed before the channel: no bytes, no delivery. The sender
      // sees success, exactly like a lost datagram.
      return true;
    case FaultAction::kDuplicate: {
      Message copy = msg;
      if (!inner_.send_push(std::move(copy))) return false;
      return inner_.send_push(std::move(msg));
    }
    case FaultAction::kDelay:
    case FaultAction::kReorder: {
      const double hold = plan_->hold_seconds(
          action, static_cast<std::size_t>(msg.worker_id), msg.seq,
          msg.attempt);
      std::this_thread::sleep_for(std::chrono::duration<double>(hold));
      return inner_.send_push(std::move(msg));
    }
    case FaultAction::kDeliver:
      break;
  }
  return inner_.send_push(std::move(msg));
}

bool FaultyThreadTransport::send_reply(std::size_t worker, Message msg) {
  if (plan_ == nullptr || is_control_message(msg)) {
    return inner_.send_reply(worker, std::move(msg));
  }
  const auto action =
      plan_->classify(FaultDirection::kReply, worker, msg.seq, msg.attempt);
  switch (action) {
    case FaultAction::kDrop:
      return true;
    case FaultAction::kDuplicate: {
      Message copy = msg;
      if (!inner_.send_reply(worker, std::move(copy))) return false;
      return inner_.send_reply(worker, std::move(msg));
    }
    case FaultAction::kDelay:
    case FaultAction::kReorder: {
      const double hold =
          plan_->hold_seconds(action, worker, msg.seq, msg.attempt);
      std::this_thread::sleep_for(std::chrono::duration<double>(hold));
      return inner_.send_reply(worker, std::move(msg));
    }
    case FaultAction::kDeliver:
      break;
  }
  return inner_.send_reply(worker, std::move(msg));
}

// ---- FaultySimTransport -----------------------------------------------------

template <typename Send>
std::vector<double> FaultySimTransport::apply(FaultDirection direction,
                                              const Message& msg,
                                              Send&& send) {
  if (plan_ == nullptr || is_control_message(msg)) return {send()};
  const std::size_t worker = static_cast<std::size_t>(msg.worker_id);
  const auto action = plan_->classify(direction, worker, msg.seq, msg.attempt);
  switch (action) {
    case FaultAction::kDrop:
      // The wire carried it (link occupancy + byte accounting via the inner
      // send), the receiver never sees it: no arrival events.
      (void)send();
      return {};
    case FaultAction::kDuplicate:
      return {send(), send()};  // Two back-to-back transfers on the link.
    case FaultAction::kDelay:
    case FaultAction::kReorder:
      return {send() +
              plan_->hold_seconds(action, worker, msg.seq, msg.attempt)};
    case FaultAction::kDeliver:
      break;
  }
  return {send()};
}

std::vector<double> FaultySimTransport::send_push(double now,
                                                  const Message& msg) {
  return apply(FaultDirection::kPush, msg,
               [&] { return inner_.send_push(now, msg); });
}

std::vector<double> FaultySimTransport::send_reply(double now,
                                                   const Message& msg) {
  return apply(FaultDirection::kReply, msg,
               [&] { return inner_.send_reply(now, msg); });
}

}  // namespace dgs::comm
