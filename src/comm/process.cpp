#include "comm/process.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace dgs::comm {

ProcessHandle::ProcessHandle(ProcessHandle&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      reaped_(std::exchange(other.reaped_, true)),
      status_(std::exchange(other.status_, -1)) {}

ProcessHandle& ProcessHandle::operator=(ProcessHandle&& other) noexcept {
  if (this != &other) {
    wait();
    pid_ = std::exchange(other.pid_, -1);
    reaped_ = std::exchange(other.reaped_, true);
    status_ = std::exchange(other.status_, -1);
  }
  return *this;
}

ProcessHandle::~ProcessHandle() { wait(); }

ProcessHandle ProcessHandle::spawn(const std::function<int()>& body) {
  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    int code = 1;
    try {
      code = body();
    } catch (...) {
      code = 70;  // EX_SOFTWARE-ish: uncaught exception in the child
    }
    ::_exit(code);
  }
  ProcessHandle handle;
  handle.pid_ = pid;
  handle.reaped_ = false;
  return handle;
}

bool ProcessHandle::alive() {
  if (reaped_) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == 0) return true;
  if (r == pid_) {
    status_ = status;
    reaped_ = true;
  }
  return false;
}

void ProcessHandle::signal(int signum) const {
  if (!reaped_ && pid_ > 0) (void)::kill(pid_, signum);
}

int ProcessHandle::wait() {
  if (reaped_) return status_;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  if (r == pid_) status_ = status;
  reaped_ = true;
  return status_;
}

}  // namespace dgs::comm
