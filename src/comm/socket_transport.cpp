#include "comm/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dgs::comm {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Fill a sockaddr for `address`. Returns the usable length.
socklen_t make_sockaddr(const SocketAddress& address,
                        ::sockaddr_storage& storage) {
  std::memset(&storage, 0, sizeof(storage));
  if (address.family == SocketAddress::Family::kTcp) {
    auto* in = reinterpret_cast<::sockaddr_in*>(&storage);
    in->sin_family = AF_INET;
    in->sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &in->sin_addr) != 1)
      throw std::runtime_error("socket: bad IPv4 host " + address.host);
    return sizeof(::sockaddr_in);
  }
  auto* un = reinterpret_cast<::sockaddr_un*>(&storage);
  un->sun_family = AF_UNIX;
  if (address.path.size() >= sizeof(un->sun_path))
    throw std::runtime_error("socket: UDS path too long: " + address.path);
  std::memcpy(un->sun_path, address.path.c_str(), address.path.size() + 1);
  return static_cast<socklen_t>(offsetof(::sockaddr_un, sun_path) +
                                address.path.size() + 1);
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketServerTransport

SocketServerTransport::SocketServerTransport(const SocketAddress& address,
                                             std::size_t num_workers,
                                             obs::MetricsRegistry* metrics)
    : bound_(address), inbox_(/*capacity=*/0) {
  (void)num_workers;
  bind_metrics(metrics);
  if (metrics != nullptr) {
    auto bounds = obs::exponential_bounds(0.5, 2.0, 23);
    push_wire_us_ =
        &metrics->histogram("transport.socket.push_wire_us", bounds);
    reply_write_us_ = &metrics->histogram("transport.socket.reply_write_us",
                                          std::move(bounds));
    accepts_ = &metrics->counter("transport.socket.accepts");
    disconnects_ = &metrics->counter("transport.socket.disconnects");
  }

  const int domain =
      address.family == SocketAddress::Family::kTcp ? AF_INET : AF_UNIX;
  listen_fd_ =
      ::socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket(listen)");
  if (address.family == SocketAddress::Family::kTcp) {
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
  } else {
    (void)::unlink(address.path.c_str());  // stale path from a crashed run
  }
  ::sockaddr_storage storage;
  const socklen_t len = make_sockaddr(address, storage);
  if (::bind(listen_fd_, reinterpret_cast<::sockaddr*>(&storage), len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("listen");
  }
  if (address.family == SocketAddress::Family::kTcp && address.port == 0) {
    ::sockaddr_in resolved{};
    socklen_t rlen = sizeof(resolved);
    if (::getsockname(listen_fd_, reinterpret_cast<::sockaddr*>(&resolved),
                      &rlen) != 0)
      throw_errno("getsockname");
    bound_.port = ntohs(resolved.sin_port);
  }
}

SocketServerTransport::~SocketServerTransport() {
  shutdown();  // also closes every connection fd
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (bound_.family == SocketAddress::Family::kUds)
    (void)::unlink(bound_.path.c_str());
}

void SocketServerTransport::start() {
  if (started_) return;
  started_ = true;
  loop_.add_fd(listen_fd_, EPOLLIN,
               [this](std::uint32_t events) { loop_accept(events); });
  loop_thread_ = std::thread([this] { loop_.run(); });
}

void SocketServerTransport::loop_accept(std::uint32_t /*events*/) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: accepted everything pending
    }
    if (bound_.family == SocketAddress::Family::kTcp) set_tcp_nodelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_[fd] = std::move(conn);
    // Look the connection up by fd at every step: loop_flush can close it
    // (freeing the Connection), so a raw pointer captured once would
    // dangle before loop_readable runs. On EPOLLHUP the peer is gone but
    // its final frames may still sit in the receive buffer — drain reads
    // until read() itself reports EOF instead of dropping them.
    loop_.add_fd(fd, EPOLLIN, [this, fd](std::uint32_t ev) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) return;
      if ((ev & EPOLLERR) != 0) {
        loop_close(it->second.get());
        return;
      }
      if ((ev & EPOLLOUT) != 0) {
        loop_flush(it->second.get());
        it = connections_.find(fd);
        if (it == connections_.end()) return;  // flush hit a dead peer
      }
      if ((ev & (EPOLLIN | EPOLLHUP)) != 0) loop_readable(it->second.get());
    });
    if (accepts_ != nullptr) accepts_->add();
  }
}

void SocketServerTransport::loop_readable(Connection* conn) {
  for (;;) {
    auto gap = conn->decoder.writable();
    const ssize_t n = ::read(conn->fd, gap.data(), gap.size());
    if (n == 0) {  // peer gone (clean close or kill -9)
      loop_close(conn);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      loop_close(conn);
      return;
    }
    try {
      conn->decoder.commit(static_cast<std::size_t>(n));
    } catch (const FramingError&) {
      // Corrupt stream: the connection is unrecoverable. Drop it; the
      // lease machinery reclaims the worker slot.
      loop_close(conn);
      return;
    }
    Message msg;
    std::uint64_t send_ns = 0;
    while (conn->decoder.next(msg, &send_ns)) {
      if (conn->worker_id < 0 && msg.worker_id >= 0) {
        // First frame identifies the worker. A rejoining process simply
        // replaces the (dead) mapping for its id.
        conn->worker_id = msg.worker_id;
        by_worker_[msg.worker_id] = conn;
        connected_.fetch_add(1, std::memory_order_release);
      }
      if (push_wire_us_ != nullptr && send_ns != 0) {
        const std::uint64_t now = steady_now_ns();
        if (now > send_ns)
          push_wire_us_->record(static_cast<double>(now - send_ns) * 1e-3);
      }
      account_up(framed_size(msg));
      (void)inbox_.send(std::move(msg));
      msg = Message{};
    }
  }
}

void SocketServerTransport::loop_flush(Connection* conn) {
  while (!conn->write_queue.empty()) {
    // Vectored batch: up to 8 queued frames (header + payload each) in one
    // sendmsg. The head frame honors its partial-write offset.
    constexpr std::size_t kMaxFrames = 8;
    ::iovec iov[kMaxFrames * 2];
    std::size_t iovs = 0;
    std::size_t frames = 0;
    for (const OutFrame& frame : conn->write_queue) {
      if (frames == kMaxFrames) break;
      std::size_t skip = frames == 0 ? frame.offset : 0;
      if (skip < kFrameHeaderBytes) {
        iov[iovs].iov_base =
            const_cast<std::uint8_t*>(frame.header) + skip;
        iov[iovs].iov_len = kFrameHeaderBytes - skip;
        ++iovs;
        skip = 0;
      } else {
        skip -= kFrameHeaderBytes;
      }
      if (frame.payload.size() > skip) {
        iov[iovs].iov_base =
            const_cast<std::uint8_t*>(frame.payload.data()) + skip;
        iov[iovs].iov_len = frame.payload.size() - skip;
        ++iovs;
      }
      ++frames;
    }
    ::msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = iovs;
    const ssize_t n = ::sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->epollout_armed) {
          conn->epollout_armed = true;
          loop_.modify_fd(conn->fd, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      loop_close(conn);  // EPIPE/ECONNRESET: peer died mid-reply
      return;
    }
    std::size_t written = static_cast<std::size_t>(n);
    while (written > 0 && !conn->write_queue.empty()) {
      OutFrame& head = conn->write_queue.front();
      const std::size_t total = kFrameHeaderBytes + head.payload.size();
      const std::size_t remaining = total - head.offset;
      if (written >= remaining) {
        written -= remaining;
        if (reply_write_us_ != nullptr)
          reply_write_us_->record(
              static_cast<double>(steady_now_ns() - head.enqueue_ns) * 1e-3);
        conn->write_queue.pop_front();
      } else {
        head.offset += written;
        written = 0;
      }
    }
  }
  if (conn->epollout_armed) {
    conn->epollout_armed = false;
    loop_.modify_fd(conn->fd, EPOLLIN);
  }
}

void SocketServerTransport::loop_close(Connection* conn) {
  loop_.remove_fd(conn->fd);
  ::close(conn->fd);
  if (conn->worker_id >= 0) {
    auto it = by_worker_.find(conn->worker_id);
    if (it != by_worker_.end() && it->second == conn) {
      by_worker_.erase(it);
      connected_.fetch_sub(1, std::memory_order_release);
    }
  }
  if (disconnects_ != nullptr) disconnects_->add();
  connections_.erase(conn->fd);  // destroys *conn — must be the last touch
}

std::optional<Message> SocketServerTransport::receive_push() {
  return inbox_.receive();
}

ChannelStatus SocketServerTransport::receive_push_for(
    Message& out, std::chrono::microseconds timeout) {
  return inbox_.receive_for(out, timeout);
}

void SocketServerTransport::enqueue_reply(std::int32_t worker, Message msg) {
  auto it = by_worker_.find(worker);
  if (it == by_worker_.end()) return;  // equivalent to a dropped reply
  Connection* conn = it->second;
  conn->write_queue.emplace_back();
  OutFrame& frame = conn->write_queue.back();
  frame.enqueue_ns = steady_now_ns();
  encode_frame_header(msg, frame.enqueue_ns, frame.header);
  frame.payload = std::move(msg.payload);
  loop_flush(conn);
}

bool SocketServerTransport::send_reply(std::size_t worker, Message msg) {
  if (shut_down_.load(std::memory_order_acquire)) return false;
  const std::size_t bytes = framed_size(msg);
  const auto id = static_cast<std::int32_t>(worker);
  loop_.post([this, id, m = std::move(msg)]() mutable {
    enqueue_reply(id, std::move(m));
  });
  // A worker that died between the caller's check and the loop's map
  // lookup makes this an overcount of at most one reply — identical to a
  // reply dropped by the wire, which the recovery machinery tolerates.
  account_down(bytes);
  return true;
}

void SocketServerTransport::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  if (started_) {
    loop_.post([this] {
      // Snapshot the identified workers first: enqueue_reply can flush
      // synchronously, and a flush that hits a dead peer erases from
      // connections_ — iterating the live map here would be UB.
      std::vector<std::int32_t> workers;
      workers.reserve(connections_.size());
      for (auto& [fd, conn] : connections_) {
        (void)fd;
        if (conn->worker_id >= 0) workers.push_back(conn->worker_id);
      }
      for (const std::int32_t worker : workers) {
        Message stop;
        stop.kind = MessageKind::kShutdown;
        stop.worker_id = worker;
        enqueue_reply(worker, std::move(stop));
      }
    });
    // The stop task runs after the broadcast task; loopback buffers make
    // the 64-byte kShutdown flush synchronous in practice, and a worker
    // that misses it sees EOF when the fds close — same outcome.
    loop_.stop();
    if (loop_thread_.joinable()) loop_thread_.join();
  }
  // The loop thread is gone: tear connection state down from here. Closing
  // the fds is what guarantees a blocked worker process wakes up (EOF) even
  // if its kShutdown frame never flushed -- the parent reaps children right
  // after shutdown(), before the destructor runs.
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    ::close(fd);
  }
  connections_.clear();
  by_worker_.clear();
  connected_.store(0, std::memory_order_relaxed);
  inbox_.close();
}

// ---------------------------------------------------------------------------
// SocketClientTransport

SocketClientTransport::SocketClientTransport(
    const SocketAddress& server, std::int32_t worker_id,
    std::chrono::milliseconds connect_timeout)
    : worker_id_(worker_id) {
  const auto deadline = std::chrono::steady_clock::now() + connect_timeout;
  ::sockaddr_storage storage;
  const socklen_t len = make_sockaddr(server, storage);
  const int domain =
      server.family == SocketAddress::Family::kTcp ? AF_INET : AF_UNIX;
  for (;;) {
    fd_ = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw_errno("socket(client)");
    if (::connect(fd_, reinterpret_cast<::sockaddr*>(&storage), len) == 0)
      break;
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    // The server listens before any worker is forked, so refusal here is
    // a transient race (rejoin vs accept backlog) — retry until deadline.
    if (err != ECONNREFUSED && err != ENOENT && err != EINTR &&
        err != EAGAIN)
      throw std::runtime_error(std::string("connect: ") +
                               std::strerror(err));
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error("connect: timed out");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (server.family == SocketAddress::Family::kTcp) set_tcp_nodelay(fd_);
}

SocketClientTransport::~SocketClientTransport() { close(); }

void SocketClientTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketClientTransport::send_push(const Message& msg) {
  if (fd_ < 0) return false;
  std::uint8_t header[kFrameHeaderBytes];
  encode_frame_header(msg, steady_now_ns(), header);
  // Stamp this client's identity over whatever the caller left in the
  // header copy (the first frame on a connection is how the server learns
  // which worker is on the other end).
  std::memcpy(header + 8, &worker_id_, sizeof(worker_id_));

  ::iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = kFrameHeaderBytes;
  iov[1].iov_base = const_cast<std::uint8_t*>(msg.payload.data());
  iov[1].iov_len = msg.payload.size();
  std::size_t skip = 0;
  const std::size_t total = kFrameHeaderBytes + msg.payload.size();
  while (skip < total) {
    ::msghdr mh{};
    ::iovec pending[2];
    std::size_t iovs = 0;
    std::size_t off = skip;
    for (const auto& part : iov) {
      if (off >= part.iov_len) {
        off -= part.iov_len;
        continue;
      }
      pending[iovs].iov_base = static_cast<std::uint8_t*>(part.iov_base) + off;
      pending[iovs].iov_len = part.iov_len - off;
      ++iovs;
      off = 0;
    }
    mh.msg_iov = pending;
    mh.msg_iovlen = iovs;
    const ssize_t n = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();  // EPIPE/ECONNRESET: server gone
      return false;
    }
    skip += static_cast<std::size_t>(n);
  }
  account_up(total);
  return true;
}

ChannelStatus SocketClientTransport::read_one(
    Message& out,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  for (;;) {
    if (decoder_.next(out)) {
      account_down(framed_size(out));
      return ChannelStatus::kOk;
    }
    if (fd_ < 0) return ChannelStatus::kClosed;
    if (deadline.has_value()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= *deadline) return ChannelStatus::kTimedOut;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(*deadline -
                                                                now);
      ::pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(
          &pfd, 1,
          static_cast<int>(remaining.count()) + 1 /* round up */);
      if (pr < 0) {
        if (errno == EINTR) continue;  // re-poll toward the same deadline
        close();
        return ChannelStatus::kClosed;
      }
      if (pr == 0) return ChannelStatus::kTimedOut;
    }
    auto gap = decoder_.writable();
    const ssize_t n = ::read(fd_, gap.data(), gap.size());
    if (n == 0) {
      close();
      return ChannelStatus::kClosed;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      close();
      return ChannelStatus::kClosed;
    }
    try {
      decoder_.commit(static_cast<std::size_t>(n));
    } catch (const FramingError&) {
      close();
      return ChannelStatus::kClosed;
    }
  }
}

bool SocketClientTransport::receive_reply(Message& out) {
  return read_one(out, std::nullopt) == ChannelStatus::kOk;
}

ChannelStatus SocketClientTransport::receive_reply_for(
    Message& out, std::chrono::microseconds timeout) {
  return read_one(out, std::chrono::steady_clock::now() + timeout);
}

}  // namespace dgs::comm
