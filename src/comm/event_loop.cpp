#include "comm/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace dgs::comm {

namespace {
[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  ::epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback callback) {
  handlers_[fd] = std::make_shared<FdCallback>(std::move(callback));
  ::epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    handlers_.erase(fd);
    throw_errno("epoll_ctl(add)");
  }
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  ::epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
    throw_errno("epoll_ctl(mod)");
}

void EventLoop::remove_fd(int fd) {
  // The fd may already be closed by the caller; ignore ENOENT/EBADF so
  // teardown paths can be sloppy about ordering.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; EINTR retries.
  while (::write(wake_fd_, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard lock(post_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::run() {
  stop_requested_ = false;
  constexpr int kMaxEvents = 64;
  ::epoll_event events[kMaxEvents];
  while (!stop_requested_) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n && !stop_requested_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t counter = 0;
        while (::read(wake_fd_, &counter, sizeof(counter)) < 0 &&
               errno == EINTR) {
        }
        drain_posted();
        continue;
      }
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed earlier in this batch
      auto handler = it->second;            // keep alive across the call
      (*handler)(events[i].events);
    }
  }
  // Run tasks posted between the final wake and stop() so posters are not
  // left holding promises that never resolve.
  drain_posted();
}

void EventLoop::stop() {
  post([this] { stop_requested_ = true; });
}

}  // namespace dgs::comm
