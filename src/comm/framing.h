// Length-prefixed wire framing for the socket transport.
//
// Every Message crosses a socket as one frame: a fixed 64-byte header
// followed by the codec payload verbatim. The header carries exactly the
// Message metadata the engines already exchange in-process (kind, worker,
// steps, seq/attempt dedup keys) plus the piggyback block out-of-process
// workers need (loss/density tallies, the server's epoch for the LR
// schedule) and a steady_clock send timestamp so the receiver can measure
// one-way wire latency (CLOCK_MONOTONIC is system-wide on Linux, so the
// stamp is comparable across processes on one machine).
//
// kFrameHeaderBytes == comm::kMessageHeaderBytes by design: the fixed
// per-message overhead the DES network model has charged since the seed is
// the real frame header, byte for byte, so modeled and measured byte
// accounting agree on the constant term.
//
// Layout (little-endian, no implicit struct padding — every field is
// memcpy'd at an explicit offset):
//
//   off  size  field
//     0     4  magic 'DGSF'
//     4     1  version (kFrameVersion)
//     5     1  kind (MessageKind)
//     6     2  reserved (0)
//     8     4  worker_id (i32)
//    12     4  attempt (u32)
//    16     8  worker_step (u64)
//    24     8  server_step (u64)
//    32     8  seq (u64)
//    40     8  send_ns (u64, steady_clock at send; 0 = unstamped)
//    48     4  epoch (u32)
//    52     4  loss (f32)
//    56     4  density (f32)
//    60     4  payload_len (u32, <= sparse::kMaxWirePayloadBytes)
//
// The payload is never copied on the way out: write_frame()-style senders
// put the header and the Message's own payload buffer into one
// sendmsg(iovec[2]) call (see socket_transport.h). On the way in,
// FrameDecoder reads payload bytes straight into the destination
// Message::payload — zero intermediate buffering in either direction.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "comm/message.h"
#include "sparse/codec.h"

namespace dgs::comm {

inline constexpr std::uint32_t kFrameMagic = 0x44475346;  // 'DGSF'
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 64;
static_assert(kFrameHeaderBytes == kMessageHeaderBytes,
              "the modeled per-message charge must equal the real frame "
              "header, or modeled and measured byte accounting diverge");

/// Corrupt or malformed frame stream. Deliberately distinct from the codec
/// decode errors: a FramingError means the *stream* is unrecoverable (the
/// connection must be dropped), while a payload decode error is scoped to
/// one message.
class FramingError : public std::runtime_error {
 public:
  explicit FramingError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
template <typename T>
void put(std::uint8_t* base, std::size_t offset, T value) noexcept {
  std::memcpy(base + offset, &value, sizeof(T));
}
template <typename T>
[[nodiscard]] T get(const std::uint8_t* base, std::size_t offset) noexcept {
  T value;
  std::memcpy(&value, base + offset, sizeof(T));
  return value;
}
}  // namespace detail

/// Serialize a Message's metadata into `out[kFrameHeaderBytes]`. `send_ns`
/// is the sender's steady_clock stamp (0 to skip latency measurement).
inline void encode_frame_header(const Message& msg, std::uint64_t send_ns,
                                std::uint8_t* out) noexcept {
  using detail::put;
  put<std::uint32_t>(out, 0, kFrameMagic);
  put<std::uint8_t>(out, 4, kFrameVersion);
  put<std::uint8_t>(out, 5, static_cast<std::uint8_t>(msg.kind));
  put<std::uint16_t>(out, 6, 0);
  put<std::int32_t>(out, 8, msg.worker_id);
  put<std::uint32_t>(out, 12, msg.attempt);
  put<std::uint64_t>(out, 16, msg.worker_step);
  put<std::uint64_t>(out, 24, msg.server_step);
  put<std::uint64_t>(out, 32, msg.seq);
  put<std::uint64_t>(out, 40, send_ns);
  put<std::uint32_t>(out, 48, msg.epoch);
  put<float>(out, 52, msg.loss);
  put<float>(out, 56, msg.density);
  put<std::uint32_t>(out, 60,
                     static_cast<std::uint32_t>(msg.payload.size()));
}

/// Parsed header: the Message metadata plus the payload length still to be
/// read and the sender's clock stamp.
struct FrameHeader {
  Message meta;  ///< All fields but payload (left empty).
  std::uint64_t send_ns = 0;
  std::uint32_t payload_len = 0;
};

/// Parse and validate `kFrameHeaderBytes` of header. Throws FramingError on
/// a bad magic/version, an unknown message kind, or a payload length above
/// sparse::kMaxWirePayloadBytes (the huge-size rejection: a bit-flipped
/// length must never make the receiver allocate unboundedly).
inline FrameHeader decode_frame_header(const std::uint8_t* in) {
  using detail::get;
  if (get<std::uint32_t>(in, 0) != kFrameMagic)
    throw FramingError("frame: bad magic");
  if (get<std::uint8_t>(in, 4) != kFrameVersion)
    throw FramingError("frame: unsupported version " +
                       std::to_string(get<std::uint8_t>(in, 4)));
  const auto kind = get<std::uint8_t>(in, 5);
  if (kind > static_cast<std::uint8_t>(MessageKind::kFullModel))
    throw FramingError("frame: unknown message kind " + std::to_string(kind));
  FrameHeader header;
  header.meta.kind = static_cast<MessageKind>(kind);
  header.meta.worker_id = get<std::int32_t>(in, 8);
  header.meta.attempt = get<std::uint32_t>(in, 12);
  header.meta.worker_step = get<std::uint64_t>(in, 16);
  header.meta.server_step = get<std::uint64_t>(in, 24);
  header.meta.seq = get<std::uint64_t>(in, 32);
  header.send_ns = get<std::uint64_t>(in, 40);
  header.meta.epoch = get<std::uint32_t>(in, 48);
  header.meta.loss = get<float>(in, 52);
  header.meta.density = get<float>(in, 56);
  header.payload_len = get<std::uint32_t>(in, 60);
  if (header.payload_len > sparse::kMaxWirePayloadBytes)
    throw FramingError("frame: payload length " +
                       std::to_string(header.payload_len) +
                       " exceeds the wire cap");
  return header;
}

/// Incremental frame reassembler. Bytes arrive in arbitrary chunks (socket
/// reads split frames wherever the kernel pleases); the decoder reassembles
/// them into Messages whose content is byte-identical to a whole-frame
/// decode, for every registered payload format (pinned by the framing
/// property tests).
///
/// Two feeding styles:
///   * zero-copy: ask for `writable()` (the next gap to fill — inside the
///     header scratch or directly inside the under-construction
///     Message::payload), read() into it, then `commit(n)`. No intermediate
///     buffer exists anywhere on the receive path.
///   * convenience: `feed(span)` memcpy's through the same state machine
///     (used by tests and by callers that already own a buffer).
///
/// Completed messages queue in arrival order behind `next()`. A
/// FramingError thrown by commit()/feed() poisons the stream: the
/// connection owning this decoder must be dropped.
class FrameDecoder {
 public:
  /// Largest span writable() will offer while reading a header; payload
  /// reads are bounded by the declared payload length instead.
  [[nodiscard]] std::span<std::uint8_t> writable() {
    if (in_payload_)
      return {current_.payload.data() + filled_,
              current_.payload.size() - filled_};
    return {header_ + filled_, kFrameHeaderBytes - filled_};
  }

  /// Account `n` bytes just written into writable(). Throws FramingError
  /// when a completed header fails validation.
  void commit(std::size_t n) {
    filled_ += n;
    if (!in_payload_) {
      if (filled_ < kFrameHeaderBytes) return;
      FrameHeader header = decode_frame_header(header_);
      current_ = std::move(header.meta);
      send_ns_ = header.send_ns;
      current_.payload.resize(header.payload_len);
      filled_ = 0;
      in_payload_ = true;
    }
    if (filled_ == current_.payload.size()) {
      ready_.emplace_back(std::move(current_), send_ns_);
      current_ = Message{};
      filled_ = 0;
      in_payload_ = false;
    }
  }

  /// Convenience chunk feed (memcpy into the writable() gaps).
  void feed(std::span<const std::uint8_t> bytes) {
    while (!bytes.empty()) {
      auto gap = writable();
      const std::size_t n = gap.size() < bytes.size() ? gap.size()
                                                      : bytes.size();
      if (n == 0) {
        // Zero-length payload frame: commit(0) completes it and reopens
        // a header gap.
        commit(0);
        continue;
      }
      std::memcpy(gap.data(), bytes.data(), n);
      commit(n);
      bytes = bytes.subspan(n);
    }
    // A frame whose final byte just arrived (or a zero-payload frame) is
    // completed by the commit above; an empty-payload frame whose header
    // filled exactly needs one more zero-commit.
    if (filled_ == 0 && in_payload_ && current_.payload.empty()) commit(0);
  }

  /// Pop the next completed message (arrival order). `send_ns_out`, when
  /// non-null, receives the sender's clock stamp.
  [[nodiscard]] bool next(Message& out, std::uint64_t* send_ns_out = nullptr) {
    if (ready_.empty()) return false;
    out = std::move(ready_.front().first);
    if (send_ns_out != nullptr) *send_ns_out = ready_.front().second;
    ready_.pop_front();
    return true;
  }

  /// Bytes of the frame under construction consumed so far (diagnostics).
  [[nodiscard]] std::size_t partial_bytes() const noexcept {
    return filled_ + (in_payload_ ? kFrameHeaderBytes : 0);
  }
  [[nodiscard]] bool mid_frame() const noexcept {
    return filled_ != 0 || in_payload_;
  }

 private:
  std::uint8_t header_[kFrameHeaderBytes] = {};
  Message current_;
  std::uint64_t send_ns_ = 0;
  std::size_t filled_ = 0;
  bool in_payload_ = false;
  std::deque<std::pair<Message, std::uint64_t>> ready_;
};

/// Exact wire size of a message as framed (header + payload). Matches
/// Message::wire_size() because kFrameHeaderBytes == kMessageHeaderBytes.
[[nodiscard]] inline std::size_t framed_size(const Message& msg) noexcept {
  return kFrameHeaderBytes + msg.payload.size();
}

}  // namespace dgs::comm
