// Minimal epoll event loop for the socket transport.
//
// One loop thread owns the epoll instance; fd callbacks run on that thread.
// Cross-thread interaction happens through post(): an eventfd wakes the
// loop, which drains a mutex-guarded task queue. That is the only
// synchronization the transport needs — per-connection state (frame
// decoders, write queues) is touched exclusively from the loop thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dgs::comm {

/// Callback invoked with the ready epoll event mask (EPOLLIN/EPOLLOUT/...).
using FdCallback = std::function<void(std::uint32_t events)>;

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for `events` (EPOLLIN etc.). The callback runs on the
  /// loop thread. The loop does not own the fd — unregister + close it
  /// yourself (from the loop thread or before run() starts).
  void add_fd(int fd, std::uint32_t events, FdCallback callback);

  /// Change the interest mask of a registered fd (e.g. arm/disarm EPOLLOUT
  /// as a write queue fills and drains).
  void modify_fd(int fd, std::uint32_t events);

  /// Unregister an fd. Safe to call from inside a callback, including the
  /// fd's own callback (removal is deferred past the dispatch in flight).
  void remove_fd(int fd);

  /// Queue `task` to run on the loop thread and wake the loop. Safe from
  /// any thread; the only cross-thread entry point.
  void post(std::function<void()> task);

  /// Run until stop(). Call from exactly one thread.
  void run();

  /// Ask run() to return once the current dispatch batch finishes. Safe
  /// from any thread (and from signal-free contexts only — it writes the
  /// eventfd).
  void stop();

 private:
  void wake();
  void drain_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  // shared_ptr so a callback that removes its own fd (or another fd ready
  // in the same batch) cannot free a handler the dispatcher still holds.
  std::unordered_map<int, std::shared_ptr<FdCallback>> handlers_;
  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  // loop thread only
};

}  // namespace dgs::comm
