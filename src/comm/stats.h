// Communication accounting: bytes and messages per direction.
#pragma once

#include <cstdint>

namespace dgs::comm {

struct ByteCounter {
  std::uint64_t upward_bytes = 0;    ///< worker -> server
  std::uint64_t downward_bytes = 0;  ///< server -> worker
  std::uint64_t upward_messages = 0;
  std::uint64_t downward_messages = 0;

  void count_up(std::size_t bytes) noexcept {
    upward_bytes += bytes;
    ++upward_messages;
  }
  void count_down(std::size_t bytes) noexcept {
    downward_bytes += bytes;
    ++downward_messages;
  }

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return upward_bytes + downward_bytes;
  }

  ByteCounter& operator+=(const ByteCounter& other) noexcept {
    upward_bytes += other.upward_bytes;
    downward_bytes += other.downward_bytes;
    upward_messages += other.upward_messages;
    downward_messages += other.downward_messages;
    return *this;
  }
};

}  // namespace dgs::comm
