// Messages exchanged between workers and the parameter server.
//
// The payload is always a serialized sparse or dense update (see
// sparse/codec.h); wire_size() includes a fixed header charge so that even
// empty messages cost something on the modeled network, as they would with
// TCP/IP + framing in the paper's gloo deployment.
#pragma once

#include <cstdint>

#include "sparse/codec.h"

namespace dgs::comm {

enum class MessageKind : std::uint8_t {
  kGradientPush,   ///< worker -> server: encoded g_{k,t}
  kModelDiff,      ///< server -> worker: encoded G_{k,t+1}
  kShutdown,       ///< server -> worker: stop training
  kRejoinRequest,  ///< worker -> server: re-register after a crash
  kFullModel,      ///< server -> worker: dense model snapshot (warm start)
};

/// Fixed per-message overhead charged by the network model (Ethernet + IP +
/// TCP headers and framing, amortized): 64 bytes.
inline constexpr std::size_t kMessageHeaderBytes = 64;

struct Message {
  MessageKind kind = MessageKind::kGradientPush;
  std::int32_t worker_id = -1;
  std::uint64_t worker_step = 0;  ///< Worker-local iteration c.
  std::uint64_t server_step = 0;  ///< Server timestamp t known to the sender.
  /// Per-worker sequence number (1-based; 0 = untracked legacy traffic).
  /// The server dedups duplicated/retransmitted pushes by it, and a worker
  /// matches replies against the seq it is waiting on.
  std::uint64_t seq = 0;
  /// Retransmission counter: 0 for the original send, +1 per resend. Folded
  /// into the fault-classification key so a retransmit rolls a fresh die.
  std::uint32_t attempt = 0;
  /// Piggyback block. In-process engines read these tallies straight off the
  /// Worker; out-of-process workers must ship them in the frame header
  /// instead, so the server can aggregate loss/density and drive the epoch
  /// schedule without a shared address space. Pushes carry loss/density;
  /// replies carry the server's current epoch (for the worker-side LR
  /// schedule).
  float loss = 0.0F;
  float density = 0.0F;
  std::uint32_t epoch = 0;
  sparse::Bytes payload;

  [[nodiscard]] std::size_t wire_size() const noexcept {
    return payload.size() + kMessageHeaderBytes;
  }
};

}  // namespace dgs::comm
