// Bounded-unbounded MPSC/MPMC channel for the real-thread engine.
//
// A minimal mutex+condvar queue: multiple producers, multiple consumers,
// close() semantics for shutdown. Throughput is far from being the
// bottleneck (each message carries kilobytes of encoded floats), so simplicity
// and correctness win over lock-free cleverness here.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dgs::comm {

template <typename T>
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Returns false if the channel is closed.
  bool send(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a value is available or the channel is closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace dgs::comm
