// MPSC/MPMC channel for the real-thread engine, optionally bounded.
//
// A minimal mutex+condvar queue: multiple producers, multiple consumers,
// close() semantics for shutdown. By default the queue is unbounded; a
// nonzero capacity turns send() into a blocking call that waits for space
// (backpressure), which keeps a slow consumer from accumulating an
// arbitrarily deep backlog. Throughput is far from being the bottleneck
// (each message carries kilobytes of encoded floats), so simplicity and
// correctness win over lock-free cleverness here.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace dgs::comm {

/// Outcome of a timed channel operation. Distinguishes "the channel was
/// closed under me" (terminal — stop using it) from "nothing happened within
/// the deadline" (transient — retry, back off, or escalate), which a bare
/// bool cannot express and which the fault-recovery paths need.
enum class ChannelStatus : std::uint8_t {
  kOk,        ///< Value moved.
  kClosed,    ///< Channel closed (before, or while blocked).
  kTimedOut,  ///< Deadline expired with the channel still open.
};

template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded (send never blocks).
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue a value. On a bounded channel this blocks while the queue is
  /// full. Returns false if the channel is (or becomes, while waiting)
  /// closed.
  bool send(T value) {
    {
      std::unique_lock lock(mutex_);
      not_full_.wait(lock, [&] {
        return closed_ || capacity_ == 0 || queue_.size() < capacity_;
      });
      if (closed_) return false;
      queue_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Bounded-wait send: like send(), but gives up after `timeout` if the
  /// queue stays full. A close while blocked is reported as kClosed rather
  /// than being conflated with the timeout.
  ChannelStatus send_for(T value, std::chrono::microseconds timeout) {
    return send_until(std::move(value),
                      std::chrono::steady_clock::now() + timeout);
  }

  /// Absolute-deadline send. The deadline is a steady_clock time point by
  /// signature, so callers cannot hand in a wall clock that jumps under
  /// them (NTP step, suspend/resume) — a hazard that only became real once
  /// deadlines started racing actual socket I/O instead of in-process
  /// handoffs. Spurious and EINTR-adjacent wakeups re-wait toward the same
  /// fixed deadline instead of restarting the full timeout.
  ChannelStatus send_until(T value,
                           std::chrono::steady_clock::time_point deadline) {
    {
      std::unique_lock lock(mutex_);
      const bool ready = not_full_.wait_until(lock, deadline, [&] {
        return closed_ || capacity_ == 0 || queue_.size() < capacity_;
      });
      if (closed_) return ChannelStatus::kClosed;
      if (!ready) return ChannelStatus::kTimedOut;
      queue_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return ChannelStatus::kOk;
  }

  /// Non-blocking send: returns false (without enqueueing) if the channel is
  /// closed or full.
  bool try_send(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || (capacity_ != 0 && queue_.size() >= capacity_))
        return false;
      queue_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a value is available or the channel is closed and drained.
  std::optional<T> receive() {
    std::optional<T> value;
    {
      std::unique_lock lock(mutex_);
      not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
      if (queue_.empty()) return std::nullopt;
      value = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Bounded-wait receive: kOk with `out` assigned, kTimedOut if nothing
  /// arrived within the deadline, kClosed once the channel is closed *and*
  /// drained (queued values are still delivered after close, matching
  /// receive()).
  ChannelStatus receive_for(T& out, std::chrono::microseconds timeout) {
    return receive_until(out, std::chrono::steady_clock::now() + timeout);
  }

  /// Absolute-deadline receive (see send_until for the clock rationale).
  ChannelStatus receive_until(T& out,
                              std::chrono::steady_clock::time_point deadline) {
    {
      std::unique_lock lock(mutex_);
      const bool ready = not_empty_.wait_until(
          lock, deadline, [&] { return !queue_.empty() || closed_; });
      if (queue_.empty()) {
        return closed_ ? ChannelStatus::kClosed : ChannelStatus::kTimedOut;
      }
      (void)ready;
      out = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    return ChannelStatus::kOk;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::optional<T> value;
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty()) return std::nullopt;
      value = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  /// Configured bound (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dgs::comm
