// Deterministic fault injection for the transport seam.
//
// A FaultPlan turns a seed plus a handful of rates into a pure function
//   (direction, worker, sequence number, attempt) -> FaultAction
// so every decision is reproducible regardless of thread interleaving: the
// same seeded plan drops / duplicates / delays / reorders the same messages
// in every run, and a retransmission (same seq, higher attempt) rolls a
// fresh, equally deterministic die — which is what lets bounded retry heal
// transient drops.
//
// Two decorators apply the plan at the transport boundary without the
// engines duplicating their scheduling loops:
//
//   * FaultyThreadTransport wraps ThreadTransport: drops vanish before the
//     channel (the worker's reply timeout + retransmit heals them), dups
//     enqueue twice, delay/reorder hold the message briefly before enqueue.
//   * FaultySimTransport wraps SimTransport: send_* returns the list of
//     modeled arrival times — empty for a drop, two entries for a dup,
//     shifted entries for delay/reorder — and the DES schedules whatever
//     events those imply.
//
// Control-plane messages (kRejoinRequest / kFullModel / kShutdown) bypass
// injection in both decorators: recovery models a reliable reconnect, so a
// crashed worker can always re-register (see DESIGN.md §11).
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "comm/message.h"
#include "comm/transport.h"
#include "obs/metrics.h"

namespace dgs::comm {

/// Fault-injection knobs. All rates are percentages of messages in the
/// faulted direction(s); `seed == 0` with zero rates and no kill disables
/// everything (the engines then skip the fault plumbing entirely).
struct FaultConfig {
  std::uint64_t seed = 0;    ///< Decision stream; same seed = same faults.
  double drop_pct = 0.0;     ///< Message silently lost.
  double dup_pct = 0.0;      ///< Message delivered twice.
  double delay_pct = 0.0;    ///< Message held for delay_s before delivery.
  double reorder_pct = 0.0;  ///< Held for a random fraction of delay_s, so
                             ///< a later message can overtake it.
  double delay_s = 5e-3;     ///< Hold time for delayed/reordered messages.
  bool faults_on_pushes = true;   ///< Inject on worker -> server messages.
  bool faults_on_replies = true;  ///< Inject on server -> worker messages.

  std::ptrdiff_t kill_worker = -1;  ///< Worker to crash (-1 = none).
  std::uint64_t kill_at_step = 0;   ///< Crash before its Nth local step.
  double rejoin_delay_s = 20e-3;    ///< Downtime before the rejoin request.

  /// Server-side worker lease: a worker silent for longer than this has its
  /// v_k reclaimed (reset) and must resync from a full-model snapshot on
  /// next contact. 0 disables leases.
  double lease_timeout_s = 0.0;

  /// Worker-side reply timeout before retransmitting the in-flight push
  /// (same seq, next attempt). After max_retransmits the worker declares
  /// itself crashed and goes through the rejoin path instead.
  double retransmit_timeout_s = 10e-3;
  std::size_t max_retransmits = 8;

  [[nodiscard]] bool message_faults() const noexcept {
    return drop_pct + dup_pct + delay_pct + reorder_pct > 0.0;
  }
  [[nodiscard]] bool enabled() const noexcept {
    return message_faults() || kill_worker >= 0;
  }
};

enum class FaultAction : std::uint8_t {
  kDeliver,
  kDrop,
  kDuplicate,
  kDelay,
  kReorder,
};

enum class FaultDirection : std::uint8_t { kPush, kReply };

/// Seeded decision engine. classify() is deterministic per
/// (direction, worker, seq, attempt) and thread-safe; the optional metrics
/// registry receives "fault.*" counters (injected total plus per kind).
class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig config,
                     obs::MetricsRegistry* metrics = nullptr);

  /// Decide the fate of one message and count it. Control messages are the
  /// caller's responsibility to exempt (the decorators do).
  FaultAction classify(FaultDirection direction, std::size_t worker,
                       std::uint64_t seq, std::uint32_t attempt) noexcept;

  /// Hold time for a kDelay/kReorder decision: delay_s for kDelay, a
  /// deterministic uniform fraction of delay_s for kReorder.
  [[nodiscard]] double hold_seconds(FaultAction action, std::size_t worker,
                                    std::uint64_t seq,
                                    std::uint32_t attempt) const noexcept;

  /// True when `worker` is scheduled to crash before local step `step`.
  /// Pure; the engine crashes a worker at most once per run.
  [[nodiscard]] bool wants_kill(std::size_t worker,
                                std::uint64_t step) const noexcept {
    return config_.kill_worker >= 0 &&
           static_cast<std::size_t>(config_.kill_worker) == worker &&
           step >= config_.kill_at_step;
  }

  /// Engine-side bookkeeping hooks (kills and retransmits are decided by
  /// the engines, not by classify).
  void count_kill() noexcept;
  void count_retransmit() noexcept;

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

 private:
  /// Deterministic uniform in [0, 1) for one decision key.
  [[nodiscard]] double unit(FaultDirection direction, std::size_t worker,
                            std::uint64_t seq, std::uint32_t attempt,
                            std::uint64_t salt) const noexcept;

  FaultConfig config_;
  // Observability (see obs/): optional, resolved once at construction.
  obs::Counter* injected_ = nullptr;
  obs::Counter* dropped_pushes_ = nullptr;
  obs::Counter* dropped_replies_ = nullptr;
  obs::Counter* duplicated_ = nullptr;
  obs::Counter* delayed_ = nullptr;
  obs::Counter* reordered_ = nullptr;
  obs::Counter* kills_ = nullptr;
  obs::Counter* retransmits_ = nullptr;
};

/// True for messages the fault decorators must never touch: the recovery
/// control plane plus shutdown.
[[nodiscard]] inline bool is_control_message(const Message& msg) noexcept {
  return msg.kind == MessageKind::kRejoinRequest ||
         msg.kind == MessageKind::kFullModel ||
         msg.kind == MessageKind::kShutdown;
}

/// ThreadTransport decorator. With a null plan every call is a passthrough,
/// so the ThreadEngine always routes through this wrapper and pays nothing
/// on fault-free runs. Dropped messages are consumed before the channel
/// (they never count toward byte accounting); delayed/reordered messages
/// are held in the sending thread for the plan's hold time, which is how a
/// real slow link back-pressures its sender.
class FaultyThreadTransport {
 public:
  explicit FaultyThreadTransport(ThreadTransport& inner,
                                 FaultPlan* plan = nullptr)
      : inner_(inner), plan_(plan) {}

  bool send_push(Message msg);
  bool send_reply(std::size_t worker, Message msg);

  std::optional<Message> receive_push() { return inner_.receive_push(); }
  std::optional<Message> receive_reply(std::size_t worker) {
    return inner_.receive_reply(worker);
  }
  ChannelStatus receive_reply_for(std::size_t worker, Message& out,
                                  std::chrono::microseconds timeout) {
    return inner_.receive_reply_for(worker, out, timeout);
  }

  void shutdown() { inner_.shutdown(); }
  [[nodiscard]] ByteCounter bytes() const noexcept { return inner_.bytes(); }
  [[nodiscard]] std::size_t pending_pushes() const {
    return inner_.pending_pushes();
  }
  [[nodiscard]] FaultPlan* plan() const noexcept { return plan_; }

 private:
  ThreadTransport& inner_;
  FaultPlan* plan_;
};

/// SimTransport decorator for the DES: send_* returns every modeled arrival
/// time of the message at the far end (empty = dropped; dups yield two
/// arrivals that queued back-to-back on the shared link). Dropped messages
/// still occupy the link and count as transmitted bytes — the wire carried
/// them, the receiver never saw them.
class FaultySimTransport {
 public:
  explicit FaultySimTransport(SimTransport& inner, FaultPlan* plan = nullptr)
      : inner_(inner), plan_(plan) {}

  [[nodiscard]] std::vector<double> send_push(double now, const Message& msg);
  [[nodiscard]] std::vector<double> send_reply(double now, const Message& msg);

  [[nodiscard]] ByteCounter bytes() const noexcept { return inner_.bytes(); }
  [[nodiscard]] FaultPlan* plan() const noexcept { return plan_; }

 private:
  template <typename Send>
  [[nodiscard]] std::vector<double> apply(FaultDirection direction,
                                          const Message& msg, Send&& send);

  SimTransport& inner_;
  FaultPlan* plan_;
};

}  // namespace dgs::comm
