// Real out-of-process transport: TCP / Unix-domain sockets behind the
// same Transport seam the in-process engines use.
//
// Topology matches ThreadTransport's star: one server, N workers. The
// server side runs an epoll event loop (comm/event_loop.h) on a single
// loop thread; every worker connection gets a FrameDecoder that reads
// payload bytes straight into the destination Message (zero-copy receive)
// and an outbound write queue flushed with vectored sendmsg calls that put
// the 64-byte frame header and the codec payload buffer on the wire in one
// syscall (zero-copy send — the payload bytes the codec produced via
// encode_into are the bytes handed to the kernel). Completed pushes land
// in a thread-safe inbox Channel, so the engine-facing API is the familiar
// receive_push()/send_reply() pair.
//
// The client side is deliberately dumb and blocking: a worker process
// alternates compute with exactly one in-flight push, so a synchronous
// sendmsg/poll pair with EINTR- and partial-transfer-safe loops is both
// simpler and faster than a second event loop per worker.
//
// Fork discipline: constructing a SocketServerTransport binds and listens
// but starts NO threads — fork all worker processes first, then call
// start(). This keeps every fork() in a single-threaded parent, the only
// regime where fork without exec is safe.
//
// Failure semantics: a dead peer (kill -9) surfaces as EOF/ECONNRESET on
// the loop thread; the connection is closed and unmapped, and recovery is
// left to the layers above (worker leases reclaim the slot, a rejoining
// process simply connects again and identifies itself with its first
// frame). Writes use MSG_NOSIGNAL so a death between poll and write is an
// EPIPE, not a process-killing SIGPIPE.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "comm/channel.h"
#include "comm/event_loop.h"
#include "comm/framing.h"
#include "comm/message.h"
#include "comm/transport.h"
#include "obs/metrics.h"

namespace dgs::comm {

/// Where a socket transport listens/connects.
struct SocketAddress {
  enum class Family : std::uint8_t { kTcp, kUds };
  Family family = Family::kUds;
  std::string host = "127.0.0.1";  ///< TCP only (dotted quad, no DNS).
  std::uint16_t port = 0;          ///< TCP only; 0 = kernel-assigned.
  std::string path;                ///< UDS only (unlinked on teardown).

  static SocketAddress tcp(std::string host, std::uint16_t port) {
    SocketAddress a;
    a.family = Family::kTcp;
    a.host = std::move(host);
    a.port = port;
    return a;
  }
  static SocketAddress uds(std::string path) {
    SocketAddress a;
    a.family = Family::kUds;
    a.path = std::move(path);
    return a;
  }
};

/// Server half: accepts worker connections, decodes pushes into an inbox,
/// writes replies addressed by worker id.
class SocketServerTransport final : public Transport {
 public:
  /// Binds and listens immediately (so the address — including a
  /// kernel-assigned TCP port — is final before any child is forked), but
  /// starts no threads until start(). `metrics`/`phases` optional, not
  /// owned.
  explicit SocketServerTransport(const SocketAddress& address,
                                 std::size_t num_workers,
                                 obs::MetricsRegistry* metrics = nullptr);
  ~SocketServerTransport() override;

  /// Spawn the epoll loop thread. Call after all forks.
  void start();

  /// The listening address with any kernel-assigned TCP port resolved.
  [[nodiscard]] const SocketAddress& bound_address() const noexcept {
    return bound_;
  }

  /// Next decoded worker->server message (push or rejoin request), in
  /// arrival order across all connections. Blocks; nullopt once shutdown
  /// drained the inbox.
  std::optional<Message> receive_push();

  /// Timed variant, so a serving loop can interleave lease sweeps with
  /// receives even when the wire is quiet.
  ChannelStatus receive_push_for(Message& out,
                                 std::chrono::microseconds timeout);

  /// Queue a reply to worker `worker` and flush as far as the socket
  /// allows (EPOLLOUT drains the rest). A reply addressed to a worker with
  /// no live connection is silently dropped on the loop thread — exactly a
  /// dropped reply, which the retransmit/lease machinery recovers from.
  /// Returns false only after shutdown.
  bool send_reply(std::size_t worker, Message msg);

  /// Broadcast kShutdown to every live connection, close the inbox, stop
  /// and join the loop. Idempotent.
  void shutdown();

  /// Live connections that have identified a worker id (a rejoining
  /// process counts again once its first frame arrives).
  [[nodiscard]] std::size_t connected_workers() const noexcept {
    return connected_.load(std::memory_order_acquire);
  }

 private:
  struct OutFrame {
    std::uint8_t header[kFrameHeaderBytes];
    sparse::Bytes payload;
    std::size_t offset = 0;  ///< Bytes of (header+payload) already written.
    std::uint64_t enqueue_ns = 0;  ///< For the reply_write_us histogram.
  };
  struct Connection {
    int fd = -1;
    std::int32_t worker_id = -1;  ///< Learned from the first frame.
    FrameDecoder decoder;
    std::deque<OutFrame> write_queue;
    bool epollout_armed = false;
  };

  void loop_accept(std::uint32_t events);
  void loop_readable(Connection* conn);
  void loop_flush(Connection* conn);
  void loop_close(Connection* conn);
  void enqueue_reply(std::int32_t worker, Message msg);

  SocketAddress bound_;
  int listen_fd_ = -1;
  EventLoop loop_;
  std::thread loop_thread_;
  bool started_ = false;
  std::atomic<bool> shut_down_{false};
  Channel<Message> inbox_;
  std::atomic<std::size_t> connected_{0};

  // Loop-thread-only state.
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::unordered_map<std::int32_t, Connection*> by_worker_;

  // Measured (not modeled) wire observability; optional.
  obs::Histogram* push_wire_us_ = nullptr;   ///< sender stamp -> decode.
  obs::Histogram* reply_write_us_ = nullptr; ///< enqueue -> kernel accepted.
  obs::Counter* accepts_ = nullptr;
  obs::Counter* disconnects_ = nullptr;
};

/// Worker half: one blocking connection to the server.
class SocketClientTransport final : public Transport {
 public:
  /// Connects immediately, retrying with backoff until `connect_timeout`
  /// (a rejoining worker may race the server's accept loop). Throws
  /// std::runtime_error if the server never answers.
  explicit SocketClientTransport(
      const SocketAddress& server, std::int32_t worker_id,
      std::chrono::milliseconds connect_timeout =
          std::chrono::milliseconds(5000));
  ~SocketClientTransport() override;

  /// Frame and send any worker->server message (push or rejoin request).
  /// Stamps msg.worker_id with this client's id and the frame header with
  /// a steady_clock send time. Blocking, EINTR- and partial-write-safe.
  /// False once the connection is gone.
  bool send_push(const Message& msg);

  /// Blocking receive of the next server->worker message. False on EOF.
  bool receive_reply(Message& out);

  /// Timed receive against an absolute steady_clock deadline computed
  /// once — EINTR or partial frames re-poll toward the same deadline, so
  /// a signal storm cannot extend the wait (the retransmit path depends
  /// on this bound being real).
  ChannelStatus receive_reply_for(Message& out,
                                  std::chrono::microseconds timeout);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::int32_t worker_id() const noexcept { return worker_id_; }

  /// Close the connection (idempotent).
  void close();

 private:
  /// Pull bytes until the decoder completes one message or the deadline
  /// passes (nullopt deadline = block forever).
  ChannelStatus read_one(
      Message& out,
      std::optional<std::chrono::steady_clock::time_point> deadline);

  int fd_ = -1;
  std::int32_t worker_id_ = -1;
  FrameDecoder decoder_;
};

}  // namespace dgs::comm
