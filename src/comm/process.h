// Fork-based worker-process launcher.
//
// The multi-process engine builds the full training context (datasets,
// model, workers) in the parent and then forks: each child inherits a
// copy-on-write snapshot of that memory, runs one function, and _exit()s.
// No exec — the child IS the parent program, just scoped to one worker's
// loop. Two rules make this safe:
//
//   1. All forks happen while the parent is single-threaded (the socket
//      server's epoll thread starts only after the last fork; see
//      SocketServerTransport::start()). Forking a multithreaded process
//      clones only the calling thread, leaving any lock held by another
//      thread locked forever in the child.
//   2. The child calls _exit(), not exit(): no atexit handlers, no static
//      destructors — those belong to the parent's lifetime.
#pragma once

#include <sys/types.h>

#include <functional>

namespace dgs::comm {

/// Handle to one forked child.
class ProcessHandle {
 public:
  ProcessHandle() = default;
  ProcessHandle(const ProcessHandle&) = delete;
  ProcessHandle& operator=(const ProcessHandle&) = delete;
  ProcessHandle(ProcessHandle&& other) noexcept;
  ProcessHandle& operator=(ProcessHandle&& other) noexcept;
  /// Reaps (blocking) if the child was never waited on, so a dropped
  /// handle cannot leak a zombie.
  ~ProcessHandle();

  /// Fork and run `body` in the child; its return value becomes the
  /// child's exit status. Throws std::runtime_error if fork fails.
  static ProcessHandle spawn(const std::function<int()>& body);

  [[nodiscard]] pid_t pid() const noexcept { return pid_; }

  /// True while the child has not yet been reaped and is still running
  /// (WNOHANG probe; reaps if it just exited).
  [[nodiscard]] bool alive();

  /// Send `signum` (e.g. SIGKILL for the chaos tests). No-op once reaped.
  void signal(int signum) const;

  /// Blocking reap. Returns the raw wait(2) status (-1 if already reaped
  /// or never started). Idempotent.
  int wait();

 private:
  pid_t pid_ = -1;
  bool reaped_ = true;
  int status_ = -1;
};

}  // namespace dgs::comm
