// Network timing model for the discrete-event engine.
//
// Reproduces the paper's two environments (10 Gbps and 1 Gbps Ethernet LAN,
// §5.2 / §5.5) without hardware: a message of b bytes occupies a link for
// latency + b*8/bandwidth seconds. The parameter server hangs off a single
// NIC, so all worker<->server transfers in one direction serialize through a
// SharedLink FIFO — this is what makes dense ASGD stop scaling in Fig. 6.
#pragma once

#include <cstdint>

namespace dgs::comm {

struct NetworkModel {
  double bandwidth_bps = 10e9;  ///< Link bandwidth, bits per second.
  double latency_s = 50e-6;     ///< One-way latency per message.

  [[nodiscard]] static NetworkModel ten_gbps() { return {10e9, 50e-6}; }
  [[nodiscard]] static NetworkModel one_gbps() { return {1e9, 50e-6}; }
  /// Infinite bandwidth / zero latency — isolates compute in ablations.
  [[nodiscard]] static NetworkModel ideal() { return {0.0, 0.0}; }

  [[nodiscard]] bool is_ideal() const noexcept { return bandwidth_bps <= 0.0; }

  /// End-to-end time of one message on an idle link: serialization +
  /// propagation.
  [[nodiscard]] double transfer_seconds(std::size_t bytes) const noexcept {
    if (is_ideal()) return 0.0;
    return latency_s + serialization_seconds(bytes);
  }

  /// Time the message occupies the link (what serializes through a shared
  /// NIC). Propagation latency overlaps with other transfers and is added
  /// after the link releases the message.
  [[nodiscard]] double serialization_seconds(std::size_t bytes) const noexcept {
    if (is_ideal()) return 0.0;
    return static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

/// FIFO link resource for the DES: transfers serialize; begin(now, duration)
/// returns the completion time and advances the link clock.
class SharedLink {
 public:
  /// Schedule a transfer arriving at `now` lasting `duration`; returns the
  /// completion time (start may be delayed by earlier transfers).
  double begin(double now, double duration) noexcept {
    const double start = now > next_free_ ? now : next_free_;
    next_free_ = start + duration;
    busy_ += duration;
    return next_free_;
  }

  void reset() noexcept {
    next_free_ = 0.0;
    busy_ = 0.0;
  }

  [[nodiscard]] double next_free_time() const noexcept { return next_free_; }
  /// Total seconds the link spent transferring (utilization numerator).
  [[nodiscard]] double busy_seconds() const noexcept { return busy_; }

 private:
  double next_free_ = 0.0;
  double busy_ = 0.0;
};

}  // namespace dgs::comm
