// Transport seam between the training engines and the comm substrate.
//
// The engines differ only in *when* messages move; the mechanics of moving
// them — and the byte/message accounting every run reports — are identical.
// Transport owns that shared accounting (thread-safe, since the real-thread
// engine sends from many threads at once) and two policies implement the
// actual movement:
//
//   * ThreadTransport — comm::Channel queues for the real-thread engine:
//     a shared server inbox (optionally bounded, see channel.h) plus one
//     reply inbox per worker, with kShutdown broadcast on teardown.
//   * SimTransport — the modeled-time path for the DES and synchronous
//     engines: both directions serialize through SharedLink FIFOs (the
//     single server NIC of the paper's Fig. 6) and send_* returns the
//     simulated arrival time instead of enqueueing anything.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "comm/channel.h"
#include "comm/message.h"
#include "comm/network.h"
#include "comm/stats.h"

namespace dgs::comm {

/// Byte/message accounting shared by every transport. Counters are atomics
/// because the thread transport is driven from N worker + M server threads.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Snapshot of the per-direction accounting.
  [[nodiscard]] ByteCounter bytes() const noexcept {
    ByteCounter counter;
    counter.upward_bytes = up_bytes_.load(std::memory_order_relaxed);
    counter.upward_messages = up_messages_.load(std::memory_order_relaxed);
    counter.downward_bytes = down_bytes_.load(std::memory_order_relaxed);
    counter.downward_messages = down_messages_.load(std::memory_order_relaxed);
    return counter;
  }

 protected:
  void account_up(std::size_t bytes) noexcept {
    up_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    up_messages_.fetch_add(1, std::memory_order_relaxed);
  }
  void account_down(std::size_t bytes) noexcept {
    down_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    down_messages_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> up_bytes_{0};
  std::atomic<std::uint64_t> down_bytes_{0};
  std::atomic<std::uint64_t> up_messages_{0};
  std::atomic<std::uint64_t> down_messages_{0};
};

/// Channel-backed transport for ThreadEngine: workers push into one shared
/// server inbox; each worker receives replies on its own inbox.
class ThreadTransport final : public Transport {
 public:
  /// `inbox_capacity` bounds the server inbox (0 = unbounded): with a bound,
  /// workers block in send_push when the server pool falls behind.
  explicit ThreadTransport(std::size_t num_workers,
                           std::size_t inbox_capacity = 0)
      : server_inbox_(inbox_capacity) {
    worker_inbox_.reserve(num_workers);
    for (std::size_t k = 0; k < num_workers; ++k)
      worker_inbox_.push_back(std::make_unique<Channel<Message>>());
  }

  /// Worker -> server. Counts upward traffic; false once shut down.
  bool send_push(Message msg) {
    const std::size_t bytes = msg.wire_size();
    if (!server_inbox_.send(std::move(msg))) return false;
    account_up(bytes);
    return true;
  }

  /// Server side: next push, or nullopt after shutdown drains the inbox.
  std::optional<Message> receive_push() { return server_inbox_.receive(); }

  /// Server -> worker k. Counts downward traffic; false once shut down.
  bool send_reply(std::size_t worker, Message msg) {
    const std::size_t bytes = msg.wire_size();
    if (!worker_inbox_.at(worker)->send(std::move(msg))) return false;
    account_down(bytes);
    return true;
  }

  /// Worker side: next reply (kModelDiff or kShutdown), nullopt when closed.
  std::optional<Message> receive_reply(std::size_t worker) {
    return worker_inbox_.at(worker)->receive();
  }

  /// Budget exhausted: stop accepting pushes and tell every worker to exit.
  /// Each worker inbox gets a kShutdown message before being closed, so a
  /// worker blocked waiting for a reply wakes up with an explicit stop
  /// instead of inferring it from a closed channel. Idempotent and safe to
  /// call from any server thread (late calls send into closed channels,
  /// which is a no-op).
  void shutdown() {
    server_inbox_.close();
    for (std::size_t k = 0; k < worker_inbox_.size(); ++k) {
      Message stop;
      stop.kind = MessageKind::kShutdown;
      stop.worker_id = static_cast<std::int32_t>(k);
      (void)worker_inbox_[k]->send(std::move(stop));
      worker_inbox_[k]->close();
    }
  }

  [[nodiscard]] std::size_t pending_pushes() const {
    return server_inbox_.size();
  }

 private:
  Channel<Message> server_inbox_;
  std::vector<std::unique_ptr<Channel<Message>>> worker_inbox_;
};

/// Modeled-time transport for the DES and synchronous engines. send_*
/// returns the simulated arrival time of the message at the far end; the
/// caller schedules whatever event that implies. Not thread-safe (the DES
/// is single-threaded by construction).
class SimTransport final : public Transport {
 public:
  explicit SimTransport(NetworkModel network) : network_(network) {}

  /// Worker -> server: occupies the shared ingress link, returns arrival.
  double send_push(double now, const Message& msg) {
    account_up(msg.wire_size());
    return up_.begin(now, network_.serialization_seconds(msg.wire_size())) +
           network_.latency_s;
  }

  /// Server -> worker: occupies the shared egress link, returns arrival.
  double send_reply(double now, const Message& msg) {
    return send_reply_bytes(now, msg.wire_size());
  }

  /// Raw-byte variant for transfers without a Message object (the SSGD
  /// engine's dense model broadcast).
  double send_reply_bytes(double now, std::size_t bytes) {
    account_down(bytes);
    return down_.begin(now, network_.serialization_seconds(bytes)) +
           network_.latency_s;
  }

  [[nodiscard]] const NetworkModel& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const SharedLink& up_link() const noexcept { return up_; }
  [[nodiscard]] const SharedLink& down_link() const noexcept { return down_; }

 private:
  NetworkModel network_;
  SharedLink up_;    ///< All pushes share the server NIC (ingress).
  SharedLink down_;  ///< All replies share the server NIC (egress).
};

}  // namespace dgs::comm
