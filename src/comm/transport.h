// Transport seam between the training engines and the comm substrate.
//
// The engines differ only in *when* messages move; the mechanics of moving
// them — and the byte/message accounting every run reports — are identical.
// Transport owns that shared accounting (thread-safe, since the real-thread
// engine sends from many threads at once) and two policies implement the
// actual movement:
//
//   * ThreadTransport — comm::Channel queues for the real-thread engine:
//     a shared server inbox (optionally bounded, see channel.h) plus one
//     reply inbox per worker, with kShutdown broadcast on teardown.
//   * SimTransport — the modeled-time path for the DES and synchronous
//     engines: both directions serialize through SharedLink FIFOs (the
//     single server NIC of the paper's Fig. 6) and send_* returns the
//     simulated arrival time instead of enqueueing anything.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "comm/channel.h"
#include "comm/message.h"
#include "comm/network.h"
#include "comm/stats.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace dgs::comm {

/// Byte/message accounting shared by every transport. Counters are atomics
/// because the thread transport is driven from N worker + M server threads.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Snapshot of the per-direction accounting.
  [[nodiscard]] ByteCounter bytes() const noexcept {
    ByteCounter counter;
    counter.upward_bytes = up_bytes_.load(std::memory_order_relaxed);
    counter.upward_messages = up_messages_.load(std::memory_order_relaxed);
    counter.downward_bytes = down_bytes_.load(std::memory_order_relaxed);
    counter.downward_messages = down_messages_.load(std::memory_order_relaxed);
    return counter;
  }

 protected:
  /// Mirror the per-direction byte totals into registry counters
  /// ("comm.bytes_up" / "comm.bytes_down"), so RunResult summaries and the
  /// metrics export show the dual-way traffic split without reaching into
  /// the transport object. Call once from a subclass constructor.
  void bind_metrics(obs::MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    bytes_up_counter_ = &metrics->counter("comm.bytes_up");
    bytes_down_counter_ = &metrics->counter("comm.bytes_down");
  }

  void account_up(std::size_t bytes) noexcept {
    up_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    up_messages_.fetch_add(1, std::memory_order_relaxed);
    if (bytes_up_counter_ != nullptr) bytes_up_counter_->add(bytes);
  }
  void account_down(std::size_t bytes) noexcept {
    down_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    down_messages_.fetch_add(1, std::memory_order_relaxed);
    if (bytes_down_counter_ != nullptr) bytes_down_counter_->add(bytes);
  }

 private:
  std::atomic<std::uint64_t> up_bytes_{0};
  std::atomic<std::uint64_t> down_bytes_{0};
  std::atomic<std::uint64_t> up_messages_{0};
  std::atomic<std::uint64_t> down_messages_{0};
  obs::Counter* bytes_up_counter_ = nullptr;
  obs::Counter* bytes_down_counter_ = nullptr;
};

/// Bounded retry-with-backoff for ThreadTransport sends. With a bounded
/// inbox and a struggling server pool, a send can stall; instead of blocking
/// indefinitely on the first attempt, the transport tries `attempts` timed
/// sends with doubling backoff (starting at `initial_backoff`) and only then
/// falls back to the fully blocking path. attempts == 0 disables retries
/// (every send blocks, the pre-fault behavior).
struct SendRetryPolicy {
  std::size_t attempts = 0;
  std::chrono::microseconds initial_backoff{500};
};

/// Channel-backed transport for ThreadEngine: workers push into one shared
/// server inbox; each worker receives replies on its own inbox.
class ThreadTransport final : public Transport {
 public:
  /// `inbox_capacity` bounds the server inbox (0 = unbounded): with a bound,
  /// workers block in send_push when the server pool falls behind. When
  /// `metrics` is non-null (not owned; must outlive the transport), the
  /// transport records blocking-time histograms: "transport.send_block_us"
  /// (worker blocked in send_push under backpressure), "transport
  /// .recv_wait_us" (server idle waiting for a push) and
  /// "transport.reply_wait_us" (worker waiting for its reply). When
  /// `phases` is non-null (not owned), send blocking and reply waits are
  /// additionally attributed to Phase::kWire for the calling worker — the
  /// transport time the worker observes (see obs/phase.h). Server-side
  /// recv_wait (idle) is deliberately NOT kWire: no worker is waiting on it.
  explicit ThreadTransport(std::size_t num_workers,
                           std::size_t inbox_capacity = 0,
                           obs::MetricsRegistry* metrics = nullptr,
                           SendRetryPolicy retry = {},
                           obs::PhaseProfiler* phases = nullptr)
      : server_inbox_(inbox_capacity), retry_(retry), phases_(phases) {
    bind_metrics(metrics);
    worker_inbox_.reserve(num_workers);
    for (std::size_t k = 0; k < num_workers; ++k)
      worker_inbox_.push_back(std::make_unique<Channel<Message>>());
    if (metrics != nullptr) {
      send_retries_ = &metrics->counter("transport.send_retries");
      // Log-spaced microsecond buckets, ~0.5us .. ~4s (matches the shard
      // lock histograms so waits are directly comparable).
      auto bounds = obs::exponential_bounds(0.5, 2.0, 23);
      send_block_us_ = &metrics->histogram("transport.send_block_us", bounds);
      recv_wait_us_ = &metrics->histogram("transport.recv_wait_us", bounds);
      reply_wait_us_ =
          &metrics->histogram("transport.reply_wait_us", std::move(bounds));
    }
  }

  /// Worker -> server. Counts upward traffic; false once shut down. Blocks
  /// when the inbox is bounded and full (backpressure). With a retry policy,
  /// the blocking wait is split into bounded attempts with doubling backoff
  /// (counted in "transport.send_retries") before falling back to a final
  /// blocking send, so a transiently full inbox heals without the worker
  /// camping on the channel lock.
  bool send_push(Message msg) {
    DGS_TRACE_SCOPE("send_push", "transport");
    const std::size_t bytes = msg.wire_size();
    const std::int32_t worker_id = msg.worker_id;  // captured before the move
    const bool timed = send_block_us_ != nullptr || phases_ != nullptr;
    const double begin = timed ? obs::Tracer::now_us() : 0.0;
    bool sent = false;
    if (retry_.attempts > 0) {
      auto backoff = retry_.initial_backoff;
      for (std::size_t a = 0; a < retry_.attempts && !sent; ++a) {
        switch (server_inbox_.send_for(msg, backoff)) {
          case ChannelStatus::kOk:
            sent = true;
            break;
          case ChannelStatus::kClosed:
            return false;
          case ChannelStatus::kTimedOut:
            if (send_retries_ != nullptr) send_retries_->add();
            backoff *= 2;
            break;
        }
      }
    }
    if (!sent && !server_inbox_.send(std::move(msg))) return false;
    if (timed) {
      const double blocked_us = obs::Tracer::now_us() - begin;
      if (send_block_us_ != nullptr) send_block_us_->record(blocked_us);
      if (phases_ != nullptr && worker_id >= 0)
        phases_->add(static_cast<std::size_t>(worker_id), obs::Phase::kWire,
                     blocked_us);
    }
    account_up(bytes);
    return true;
  }

  /// Server side: next push, or nullopt after shutdown drains the inbox.
  std::optional<Message> receive_push() {
    DGS_TRACE_SCOPE("recv_push", "transport");
    const double begin =
        recv_wait_us_ != nullptr ? obs::Tracer::now_us() : 0.0;
    auto msg = server_inbox_.receive();
    if (recv_wait_us_ != nullptr)
      recv_wait_us_->record(obs::Tracer::now_us() - begin);
    return msg;
  }

  /// Server -> worker k. Counts downward traffic; false once shut down.
  bool send_reply(std::size_t worker, Message msg) {
    DGS_TRACE_SCOPE("send_reply", "transport");
    const std::size_t bytes = msg.wire_size();
    if (!worker_inbox_.at(worker)->send(std::move(msg))) return false;
    account_down(bytes);
    return true;
  }

  /// Worker side: next reply (kModelDiff or kShutdown), nullopt when closed.
  std::optional<Message> receive_reply(std::size_t worker) {
    DGS_TRACE_SCOPE("wait_reply", "transport");
    const bool timed = reply_wait_us_ != nullptr || phases_ != nullptr;
    const double begin = timed ? obs::Tracer::now_us() : 0.0;
    auto msg = worker_inbox_.at(worker)->receive();
    if (timed) {
      const double waited_us = obs::Tracer::now_us() - begin;
      if (reply_wait_us_ != nullptr) reply_wait_us_->record(waited_us);
      if (phases_ != nullptr)
        phases_->add(worker, obs::Phase::kWire, waited_us);
    }
    return msg;
  }

  /// Worker side, bounded wait: kOk with `out` assigned, kTimedOut when the
  /// reply did not arrive in time (the caller may retransmit its push), or
  /// kClosed after shutdown. The fault-recovery retransmit loop lives on
  /// this instead of the blocking receive_reply.
  ChannelStatus receive_reply_for(std::size_t worker, Message& out,
                                  std::chrono::microseconds timeout) {
    DGS_TRACE_SCOPE("wait_reply", "transport");
    const bool timed = reply_wait_us_ != nullptr || phases_ != nullptr;
    const double begin = timed ? obs::Tracer::now_us() : 0.0;
    const ChannelStatus status =
        worker_inbox_.at(worker)->receive_for(out, timeout);
    if (timed && status == ChannelStatus::kOk) {
      const double waited_us = obs::Tracer::now_us() - begin;
      if (reply_wait_us_ != nullptr) reply_wait_us_->record(waited_us);
      if (phases_ != nullptr)
        phases_->add(worker, obs::Phase::kWire, waited_us);
    }
    return status;
  }

  /// Budget exhausted: stop accepting pushes and tell every worker to exit.
  /// Each worker inbox gets a kShutdown message before being closed, so a
  /// worker blocked waiting for a reply wakes up with an explicit stop
  /// instead of inferring it from a closed channel. Idempotent and safe to
  /// call from any server thread (late calls send into closed channels,
  /// which is a no-op).
  void shutdown() {
    server_inbox_.close();
    for (std::size_t k = 0; k < worker_inbox_.size(); ++k) {
      Message stop;
      stop.kind = MessageKind::kShutdown;
      stop.worker_id = static_cast<std::int32_t>(k);
      (void)worker_inbox_[k]->send(std::move(stop));
      worker_inbox_[k]->close();
    }
  }

  [[nodiscard]] std::size_t pending_pushes() const {
    return server_inbox_.size();
  }

 private:
  Channel<Message> server_inbox_;
  std::vector<std::unique_ptr<Channel<Message>>> worker_inbox_;
  SendRetryPolicy retry_;

  // Observability (see obs/): optional, resolved once at construction.
  obs::Histogram* send_block_us_ = nullptr;
  obs::Histogram* recv_wait_us_ = nullptr;
  obs::Histogram* reply_wait_us_ = nullptr;
  obs::Counter* send_retries_ = nullptr;
  obs::PhaseProfiler* phases_ = nullptr;  ///< Optional, not owned.
};

/// Modeled-time transport for the DES and synchronous engines. send_*
/// returns the simulated arrival time of the message at the far end; the
/// caller schedules whatever event that implies. Not thread-safe (the DES
/// is single-threaded by construction).
class SimTransport final : public Transport {
 public:
  /// When `metrics` is non-null (not owned; must outlive the transport),
  /// records "transport.sim.link_wait_ms": the *modeled* milliseconds each
  /// transfer queued behind earlier ones on the shared NIC (both
  /// directions) — the DES analogue of the thread transport's blocking
  /// histograms. When `phases` is non-null (not owned), the real
  /// (wall-clock) cost of each send_push call is attributed to
  /// Phase::kWire for the sending worker: in a modeled-time engine the
  /// wire itself is simulated, so the worker's observed transport time is
  /// just this bookkeeping. send_reply is deliberately NOT attributed —
  /// it runs in server event context, outside any worker step sample.
  explicit SimTransport(NetworkModel network,
                        obs::MetricsRegistry* metrics = nullptr,
                        obs::PhaseProfiler* phases = nullptr)
      : network_(network), phases_(phases) {
    bind_metrics(metrics);
    if (metrics != nullptr)
      link_wait_ms_ = &metrics->histogram(
          "transport.sim.link_wait_ms", obs::exponential_bounds(1e-3, 2.0, 24));
  }

  /// Worker -> server: occupies the shared ingress link, returns arrival.
  double send_push(double now, const Message& msg) {
    const bool timed = phases_ != nullptr && msg.worker_id >= 0;
    const double begin = timed ? obs::Tracer::now_us() : 0.0;
    account_up(msg.wire_size());
    record_link_wait(up_, now);
    const double arrival =
        up_.begin(now, network_.serialization_seconds(msg.wire_size())) +
        network_.latency_s;
    if (timed)
      phases_->add(static_cast<std::size_t>(msg.worker_id), obs::Phase::kWire,
                   obs::Tracer::now_us() - begin);
    return arrival;
  }

  /// Server -> worker: occupies the shared egress link, returns arrival.
  double send_reply(double now, const Message& msg) {
    return send_reply_bytes(now, msg.wire_size());
  }

  /// Raw-byte variant for transfers without a Message object (the SSGD
  /// engine's dense model broadcast).
  double send_reply_bytes(double now, std::size_t bytes) {
    account_down(bytes);
    record_link_wait(down_, now);
    return down_.begin(now, network_.serialization_seconds(bytes)) +
           network_.latency_s;
  }

  [[nodiscard]] const NetworkModel& network() const noexcept {
    return network_;
  }
  [[nodiscard]] const SharedLink& up_link() const noexcept { return up_; }
  [[nodiscard]] const SharedLink& down_link() const noexcept { return down_; }

 private:
  void record_link_wait(const SharedLink& link, double now) noexcept {
    if (link_wait_ms_ != nullptr)
      link_wait_ms_->record(
          link.next_free_time() > now
              ? (link.next_free_time() - now) * 1e3
              : 0.0);
  }

  NetworkModel network_;
  SharedLink up_;    ///< All pushes share the server NIC (ingress).
  SharedLink down_;  ///< All replies share the server NIC (egress).
  obs::Histogram* link_wait_ms_ = nullptr;  ///< See obs/; optional.
  obs::PhaseProfiler* phases_ = nullptr;    ///< Optional, not owned.
};

}  // namespace dgs::comm
