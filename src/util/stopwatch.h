// Wall-clock stopwatch for the real-thread engine and the micro-benchmarks.
#pragma once

#include <chrono>

namespace dgs::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  // Timing audit (DESIGN.md §15): every wall measurement in the repo —
  // this stopwatch, obs::Tracer::now_us() and the phase profiler built on
  // it — reads the same monotonic clock, so durations are mutually
  // comparable and immune to wall-clock adjustments.
  using clock = std::chrono::steady_clock;
  static_assert(clock::is_steady, "Stopwatch requires a monotonic clock");
  clock::time_point start_;
};

}  // namespace dgs::util
