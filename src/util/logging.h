// Tiny leveled logger. Single free function API, thread-safe line emission.
// Off by default above INFO; benches raise verbosity with --verbose.
#pragma once

#include <sstream>
#include <string>

namespace dgs::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global threshold; messages above it are dropped. The level is an atomic
/// with relaxed ordering, so it is safe to change from any thread at any
/// time — concurrent loggers observe the old or the new level, never a torn
/// value.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits "[level] message\n" to stderr atomically (single write call).
void log_line(LogLevel level, const std::string& message);

/// Redirect log output: when a sink is set, every line that passes the
/// threshold is handed to it (complete, newline-free) instead of stderr.
/// The sink pointer is an atomic, so installing/clearing it races safely
/// with concurrent loggers — each line goes entirely to the old or entirely
/// to the new destination. Pass nullptr to restore stderr. Tests use this
/// to capture output; the sink must be safe to call from multiple threads.
using LogSink = void (*)(LogLevel level, const std::string& line);
void set_log_sink(LogSink sink) noexcept;

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }

}  // namespace dgs::util

/// Streaming log statement with early-out: the message is only formatted
/// when `level` passes the threshold, so hot paths can log unconditionally.
/// `level` is a bare enumerator name (kError/kWarn/kInfo/kDebug). The
/// if/else shape (rather than a naked `if`) keeps the macro dangling-else
/// safe inside unbraced conditionals.
#define DGS_LOG(level)                                                   \
  if (static_cast<int>(::dgs::util::LogLevel::level) >                   \
      static_cast<int>(::dgs::util::log_level())) {                      \
  } else                                                                 \
    ::dgs::util::detail::LogStream(::dgs::util::LogLevel::level)
