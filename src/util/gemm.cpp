// Packed GEMM implementation. See gemm.h for the layout, blocking and
// determinism contract, and DESIGN.md §18 for the runtime ISA dispatch.
//
// Three micro-kernels share the packed-panel layout and the entry-point
// code: the scalar (autovectorized, SSE2-on-baseline) kernel is the PR 5
// code and stays the DGS_FORCE_ISA=scalar / TSan / reproducibility path;
// the AVX2+FMA and AVX-512F kernels are explicit-intrinsic register
// tiles selected at runtime through a function-pointer table indexed by
// util::active_isa(). The intrinsic functions carry per-function target
// attributes, so this TU still compiles for baseline x86-64 and the
// unsupported instructions are unreachable on lesser hosts.
#include "util/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DGS_X86 1
#endif

#include "util/math_kernels.h"
#include "util/parallel_for.h"
#include "util/simd.h"

namespace dgs::util {

namespace {

constexpr std::size_t kMR = kGemmMR;
constexpr std::size_t kNR = kGemmNR;
constexpr std::size_t kKC = kGemmKC;

// Pooled per-thread pack scratch: grows to the high-water mark of
// ceil(n / kNR) * kNR * min(k, kKC) floats and is then reused, so warm
// gemm calls allocate nothing.
struct PackScratch {
  std::vector<float> panels;
  float* acquire(std::size_t floats) {
    if (panels.size() < floats) panels.resize(floats);
    return panels.data();
  }
};

PackScratch& pack_scratch() {
  thread_local PackScratch scratch;
  return scratch;
}

// Pack B rows [p0, p0 + kc) of panels [jp_begin, jp_end) into NR-wide
// panels: panel jp holds columns [jp*kNR, jp*kNR + kNR) in layout
// bp[jp*kc*kNR + p*kNR + u], zero-padded past n so the micro-kernel never
// needs a column tail path. BTrans reads B stored [n x k] (absorbing the
// `_bt` transpose into the pack). Each panel is written by exactly one
// caller, so any panel partition produces bit-identical scratch — this is
// what lets gemm_impl fan the pack out over ParallelFor for large n
// without touching the determinism contract (the pack is pure data
// movement; float values are copied, never combined).
template <bool BTrans>
void pack_b(std::size_t jp_begin, std::size_t jp_end, std::size_t kc,
            std::size_t n, std::size_t k, std::size_t p0,
            const float* __restrict b, float* __restrict bp) noexcept {
  for (std::size_t jp = jp_begin; jp < jp_end; ++jp) {
    const std::size_t j0 = jp * kNR;
    const std::size_t nr = std::min(kNR, n - j0);
    float* __restrict dst = bp + jp * kc * kNR;
    if (nr == kNR) {
      for (std::size_t p = 0; p < kc; ++p)
        for (std::size_t u = 0; u < kNR; ++u)
          dst[p * kNR + u] = BTrans ? b[(j0 + u) * k + (p0 + p)]
                                    : b[(p0 + p) * n + (j0 + u)];
    } else {
      for (std::size_t p = 0; p < kc; ++p) {
        for (std::size_t u = 0; u < nr; ++u)
          dst[p * kNR + u] = BTrans ? b[(j0 + u) * k + (p0 + p)]
                                    : b[(p0 + p) * n + (j0 + u)];
        for (std::size_t u = nr; u < kNR; ++u) dst[p * kNR + u] = 0.0f;
      }
    }
  }
}

// ---- scalar micro-kernel (the PR 5 autovectorized path) --------------------
// Row-at-a-time kernel over one packed panel. A is read in place through
// (row_stride, p_stride): (k, 1) for row-major A, (1, m) for the
// transposed-A layout, where ap already points at element (i0, p0). Each
// row carries two kNR-wide local accumulators fed by even and odd p — the
// constant-trip u-loops vectorize into two independent chains and the
// 2*kNR floats fill the sixteen XMM registers, while `#pragma GCC unroll 1`
// on the p-loop stops gcc from re-vectorizing across the reduction with
// shuffles (which is ~4x slower; the intrinsic kernels below fix their
// schedule explicitly and need no such pragma). The even/odd split and the
// final l0 + l1 sum are part of this path's fixed per-element reduction
// order (see gemm.h: the order is fixed per ISA path, and bitwise
// determinism across thread counts holds within each path).
void micro_kernel_scalar(std::size_t mr, std::size_t kc,
                         const float* __restrict ap, std::size_t row_stride,
                         std::size_t p_stride, const float* __restrict bp,
                         float* __restrict acc) noexcept {
  for (std::size_t r = 0; r < mr; ++r) {
    float l0[kNR] = {}, l1[kNR] = {};
    std::size_t p = 0;
#pragma GCC unroll 1
    for (; p + 2 <= kc; p += 2) {
      const float a0 = ap[r * row_stride + p * p_stride];
      const float a1 = ap[r * row_stride + (p + 1) * p_stride];
      const float* __restrict b0 = bp + p * kNR;
      const float* __restrict b1 = bp + (p + 1) * kNR;
      for (std::size_t u = 0; u < kNR; ++u) l0[u] += a0 * b0[u];
      for (std::size_t u = 0; u < kNR; ++u) l1[u] += a1 * b1[u];
    }
    if (p < kc) {
      const float a0 = ap[r * row_stride + p * p_stride];
      const float* __restrict b0 = bp + p * kNR;
      for (std::size_t u = 0; u < kNR; ++u) l0[u] += a0 * b0[u];
    }
    float* __restrict arow = acc + r * kNR;
    for (std::size_t u = 0; u < kNR; ++u) arow[u] += l0[u] + l1[u];
  }
}

#ifdef DGS_X86

// ---- AVX2+FMA micro-kernel -------------------------------------------------
// Register tile: 2 rows x kNR(=32) columns = 8 ymm accumulators, one FMA
// chain per output element (p ascending), plus 4 ymm panel loads shared
// across both rows and 2 broadcasts — 14 of the 16 ymm registers. Eight
// independent chains cover the FMA latency-throughput product (~10 on
// current cores) well enough while halving panel loads vs row-at-a-time.
// Per-element reduction order: single chain over p ascending; tail rows
// use the identical per-element sequence, so results do not depend on how
// rows group into blocks (and therefore not on the thread partition).
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(
    std::size_t mr, std::size_t kc, const float* __restrict ap,
    std::size_t row_stride, std::size_t p_stride, const float* __restrict bp,
    float* __restrict acc) noexcept {
  static_assert(kNR == 32, "AVX2 kernel is shaped for kNR == 32");
  std::size_t r = 0;
  for (; r + 2 <= mr; r += 2) {
    const float* __restrict a0 = ap + r * row_stride;
    const float* __restrict a1 = ap + (r + 1) * row_stride;
    __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
    __m256 c02 = _mm256_setzero_ps(), c03 = _mm256_setzero_ps();
    __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
    __m256 c12 = _mm256_setzero_ps(), c13 = _mm256_setzero_ps();
    for (std::size_t p = 0; p < kc; ++p) {
      const float* __restrict bq = bp + p * kNR;
      const __m256 b0 = _mm256_loadu_ps(bq);
      const __m256 b1 = _mm256_loadu_ps(bq + 8);
      const __m256 b2 = _mm256_loadu_ps(bq + 16);
      const __m256 b3 = _mm256_loadu_ps(bq + 24);
      const __m256 va0 = _mm256_broadcast_ss(a0 + p * p_stride);
      c00 = _mm256_fmadd_ps(va0, b0, c00);
      c01 = _mm256_fmadd_ps(va0, b1, c01);
      c02 = _mm256_fmadd_ps(va0, b2, c02);
      c03 = _mm256_fmadd_ps(va0, b3, c03);
      const __m256 va1 = _mm256_broadcast_ss(a1 + p * p_stride);
      c10 = _mm256_fmadd_ps(va1, b0, c10);
      c11 = _mm256_fmadd_ps(va1, b1, c11);
      c12 = _mm256_fmadd_ps(va1, b2, c12);
      c13 = _mm256_fmadd_ps(va1, b3, c13);
    }
    float* __restrict arow0 = acc + r * kNR;
    float* __restrict arow1 = acc + (r + 1) * kNR;
    _mm256_storeu_ps(arow0, _mm256_add_ps(_mm256_loadu_ps(arow0), c00));
    _mm256_storeu_ps(arow0 + 8, _mm256_add_ps(_mm256_loadu_ps(arow0 + 8), c01));
    _mm256_storeu_ps(arow0 + 16,
                     _mm256_add_ps(_mm256_loadu_ps(arow0 + 16), c02));
    _mm256_storeu_ps(arow0 + 24,
                     _mm256_add_ps(_mm256_loadu_ps(arow0 + 24), c03));
    _mm256_storeu_ps(arow1, _mm256_add_ps(_mm256_loadu_ps(arow1), c10));
    _mm256_storeu_ps(arow1 + 8, _mm256_add_ps(_mm256_loadu_ps(arow1 + 8), c11));
    _mm256_storeu_ps(arow1 + 16,
                     _mm256_add_ps(_mm256_loadu_ps(arow1 + 16), c12));
    _mm256_storeu_ps(arow1 + 24,
                     _mm256_add_ps(_mm256_loadu_ps(arow1 + 24), c13));
  }
  if (r < mr) {  // odd tail row: same per-element chain, 4 accumulators
    const float* __restrict a0 = ap + r * row_stride;
    __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
    __m256 c02 = _mm256_setzero_ps(), c03 = _mm256_setzero_ps();
    for (std::size_t p = 0; p < kc; ++p) {
      const float* __restrict bq = bp + p * kNR;
      const __m256 va0 = _mm256_broadcast_ss(a0 + p * p_stride);
      c00 = _mm256_fmadd_ps(va0, _mm256_loadu_ps(bq), c00);
      c01 = _mm256_fmadd_ps(va0, _mm256_loadu_ps(bq + 8), c01);
      c02 = _mm256_fmadd_ps(va0, _mm256_loadu_ps(bq + 16), c02);
      c03 = _mm256_fmadd_ps(va0, _mm256_loadu_ps(bq + 24), c03);
    }
    float* __restrict arow = acc + r * kNR;
    _mm256_storeu_ps(arow, _mm256_add_ps(_mm256_loadu_ps(arow), c00));
    _mm256_storeu_ps(arow + 8, _mm256_add_ps(_mm256_loadu_ps(arow + 8), c01));
    _mm256_storeu_ps(arow + 16,
                     _mm256_add_ps(_mm256_loadu_ps(arow + 16), c02));
    _mm256_storeu_ps(arow + 24,
                     _mm256_add_ps(_mm256_loadu_ps(arow + 24), c03));
  }
}

// ---- AVX-512F micro-kernel -------------------------------------------------
// Register tile: 4 rows x kNR(=32) columns with the scalar path's even/odd
// p split = 16 zmm accumulators (2x16 lanes per row per parity), 4 panel
// loads shared across all rows and broadcast scalars — comfortably inside
// the 32 zmm registers, with 16 independent FMA chains. Per-element
// reduction order: even and odd p accumulate separately (both ascending),
// summed even+odd at writeback — the same shape as the scalar path but
// with FMA, so the path is deterministic in itself and oracle-bounded
// against the others. Tail rows reuse the identical per-element sequence.
__attribute__((target("avx512f"))) void micro_kernel_avx512(
    std::size_t mr, std::size_t kc, const float* __restrict ap,
    std::size_t row_stride, std::size_t p_stride, const float* __restrict bp,
    float* __restrict acc) noexcept {
  static_assert(kNR == 32, "AVX-512 kernel is shaped for kNR == 32");
  std::size_t r = 0;
  for (; r + 4 <= mr; r += 4) {
    __m512 ce[8], co[8];  // [row*2 + half]: even-p / odd-p accumulators
    for (int i = 0; i < 8; ++i) ce[i] = co[i] = _mm512_setzero_ps();
    std::size_t p = 0;
    for (; p + 2 <= kc; p += 2) {
      const float* __restrict b0 = bp + p * kNR;
      const float* __restrict b1 = b0 + kNR;
      const __m512 b0lo = _mm512_loadu_ps(b0);
      const __m512 b0hi = _mm512_loadu_ps(b0 + 16);
      const __m512 b1lo = _mm512_loadu_ps(b1);
      const __m512 b1hi = _mm512_loadu_ps(b1 + 16);
      for (int row = 0; row < 4; ++row) {
        const float* __restrict ar =
            ap + (r + static_cast<std::size_t>(row)) * row_stride;
        const __m512 ae = _mm512_set1_ps(ar[p * p_stride]);
        const __m512 ao = _mm512_set1_ps(ar[(p + 1) * p_stride]);
        ce[row * 2] = _mm512_fmadd_ps(ae, b0lo, ce[row * 2]);
        ce[row * 2 + 1] = _mm512_fmadd_ps(ae, b0hi, ce[row * 2 + 1]);
        co[row * 2] = _mm512_fmadd_ps(ao, b1lo, co[row * 2]);
        co[row * 2 + 1] = _mm512_fmadd_ps(ao, b1hi, co[row * 2 + 1]);
      }
    }
    if (p < kc) {
      const float* __restrict b0 = bp + p * kNR;
      const __m512 b0lo = _mm512_loadu_ps(b0);
      const __m512 b0hi = _mm512_loadu_ps(b0 + 16);
      for (int row = 0; row < 4; ++row) {
        const float* __restrict ar =
            ap + (r + static_cast<std::size_t>(row)) * row_stride;
        const __m512 ae = _mm512_set1_ps(ar[p * p_stride]);
        ce[row * 2] = _mm512_fmadd_ps(ae, b0lo, ce[row * 2]);
        ce[row * 2 + 1] = _mm512_fmadd_ps(ae, b0hi, ce[row * 2 + 1]);
      }
    }
    for (int row = 0; row < 4; ++row) {
      float* __restrict arow =
          acc + (r + static_cast<std::size_t>(row)) * kNR;
      const __m512 lo = _mm512_add_ps(ce[row * 2], co[row * 2]);
      const __m512 hi = _mm512_add_ps(ce[row * 2 + 1], co[row * 2 + 1]);
      _mm512_storeu_ps(arow, _mm512_add_ps(_mm512_loadu_ps(arow), lo));
      _mm512_storeu_ps(arow + 16,
                       _mm512_add_ps(_mm512_loadu_ps(arow + 16), hi));
    }
  }
  for (; r < mr; ++r) {  // tail rows: identical per-element chain shape
    const float* __restrict ar = ap + r * row_stride;
    __m512 celo = _mm512_setzero_ps(), cehi = _mm512_setzero_ps();
    __m512 colo = _mm512_setzero_ps(), cohi = _mm512_setzero_ps();
    std::size_t p = 0;
    for (; p + 2 <= kc; p += 2) {
      const float* __restrict b0 = bp + p * kNR;
      const float* __restrict b1 = b0 + kNR;
      const __m512 ae = _mm512_set1_ps(ar[p * p_stride]);
      const __m512 ao = _mm512_set1_ps(ar[(p + 1) * p_stride]);
      celo = _mm512_fmadd_ps(ae, _mm512_loadu_ps(b0), celo);
      cehi = _mm512_fmadd_ps(ae, _mm512_loadu_ps(b0 + 16), cehi);
      colo = _mm512_fmadd_ps(ao, _mm512_loadu_ps(b1), colo);
      cohi = _mm512_fmadd_ps(ao, _mm512_loadu_ps(b1 + 16), cohi);
    }
    if (p < kc) {
      const float* __restrict b0 = bp + p * kNR;
      const __m512 ae = _mm512_set1_ps(ar[p * p_stride]);
      celo = _mm512_fmadd_ps(ae, _mm512_loadu_ps(b0), celo);
      cehi = _mm512_fmadd_ps(ae, _mm512_loadu_ps(b0 + 16), cehi);
    }
    float* __restrict arow = acc + r * kNR;
    const __m512 lo = _mm512_add_ps(celo, colo);
    const __m512 hi = _mm512_add_ps(cehi, cohi);
    _mm512_storeu_ps(arow, _mm512_add_ps(_mm512_loadu_ps(arow), lo));
    _mm512_storeu_ps(arow + 16,
                     _mm512_add_ps(_mm512_loadu_ps(arow + 16), hi));
  }
}

#endif  // DGS_X86

// Function-pointer kernel table, indexed by isa_index(). Static and
// constexpr: dispatch allocates nothing and resolution is one relaxed
// atomic load + an indexed call.
using MicroKernelFn = void (*)(std::size_t, std::size_t, const float*,
                               std::size_t, std::size_t, const float*,
                               float*) noexcept;
constexpr MicroKernelFn kMicroKernels[kNumIsas] = {
    micro_kernel_scalar,
#ifdef DGS_X86
    micro_kernel_avx2,
    micro_kernel_avx512,
#else
    micro_kernel_scalar,
    micro_kernel_scalar,
#endif
};

// Compute C rows [i_begin, i_end) against the packed k-block at [p0, kc).
// Each row's reduction is self-contained in the kernel, so any row
// partition yields bit-identical results within one ISA path; ParallelFor's
// kMR-aligned slices just keep each lane reusing the packed panel across a
// full row block.
template <bool ATrans>
void compute_rows(std::size_t i_begin, std::size_t i_end, std::size_t m,
                  std::size_t k, std::size_t n, std::size_t p0,
                  std::size_t kc, const float* __restrict a,
                  const float* __restrict bp, float* __restrict c) noexcept {
  const MicroKernelFn kernel = kMicroKernels[isa_index(active_isa())];
  const std::size_t row_stride = ATrans ? 1 : k;
  const std::size_t p_stride = ATrans ? m : 1;
  const std::size_t panels = (n + kNR - 1) / kNR;
  for (std::size_t i0 = i_begin; i0 < i_end; i0 += kMR) {
    const std::size_t mr = std::min(kMR, i_end - i0);
    const float* ap = ATrans ? a + p0 * m + i0 : a + i0 * k + p0;
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const std::size_t j0 = jp * kNR;
      const std::size_t nr = std::min(kNR, n - j0);
      float acc[kMR * kNR] = {};
      const float* panel = bp + jp * kc * kNR;
      kernel(mr, kc, ap, row_stride, p_stride, panel, acc);
      // Block partial -> C. The zero-padded panel columns (u >= nr) are
      // computed but discarded; valid lanes are untouched by the padding.
      for (std::size_t r = 0; r < mr; ++r) {
        float* __restrict crow = c + (i0 + r) * n + j0;
        const float* __restrict arow = acc + r * kNR;
        if (nr == kNR) {
          for (std::size_t u = 0; u < kNR; ++u) crow[u] += arow[u];
        } else {
          for (std::size_t u = 0; u < nr; ++u) crow[u] += arow[u];
        }
      }
    }
  }
}

// Packing a k-block fans out over panels once the block is large enough
// to amortize the fork/join (the big Linear/im2col shapes: the gate shape
// packs 1 MiB per k-block). Below the cutoff the pack stays serial — the
// pool wakeup costs more than the copy.
constexpr std::size_t kParallelPackMinFloats = 1u << 16;

template <bool ATrans, bool BTrans>
void gemm_impl(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c, bool accumulate) noexcept {
  if (!accumulate && m != 0 && n != 0) std::memset(c, 0, m * n * sizeof(float));
  if (m == 0 || n == 0 || k == 0) return;

  const std::size_t panels = (n + kNR - 1) / kNR;
  float* bp = pack_scratch().acquire(panels * std::min(k, kKC) * kNR);
  ParallelFor* pool = intra_op_pool();

  for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
    const std::size_t kc = std::min(kKC, k - p0);
    if (pool != nullptr && panels > 1 &&
        panels * kc * kNR >= kParallelPackMinFloats) {
      pool->run(panels, 1, [&](std::size_t begin, std::size_t end) {
        pack_b<BTrans>(begin, end, kc, n, k, p0, b, bp);
      });
    } else {
      pack_b<BTrans>(0, panels, kc, n, k, p0, b, bp);
    }
    if (pool != nullptr && m > kMR) {
      pool->run(m, kMR, [&](std::size_t begin, std::size_t end) {
        compute_rows<ATrans>(begin, end, m, k, n, p0, kc, a, bp, c);
      });
    } else {
      compute_rows<ATrans>(0, m, m, k, n, p0, kc, a, bp, c);
    }
  }
}

}  // namespace

std::size_t gemm_scratch_bytes() noexcept {
  return pack_scratch().panels.capacity() * sizeof(float);
}

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c, bool accumulate) noexcept {
  gemm_impl<false, false>(m, k, n, a, b, c, accumulate);
}

void gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) noexcept {
  gemm_impl<true, false>(m, k, n, a, b, c, accumulate);
}

void gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) noexcept {
  gemm_impl<false, true>(m, k, n, a, b, c, accumulate);
}

}  // namespace dgs::util
