// Packed GEMM implementation. See gemm.h for the layout, blocking and
// determinism contract. Like math_kernels.cpp this TU is pinned to -O3:
// the micro-kernel's constant-trip accumulator loops rely on the
// auto-vectorizer, which gcc's -O2 cost model declines.
#include "util/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/math_kernels.h"
#include "util/parallel_for.h"

namespace dgs::util {

namespace {

constexpr std::size_t kMR = kGemmMR;
constexpr std::size_t kNR = kGemmNR;
constexpr std::size_t kKC = kGemmKC;

// Pooled per-thread pack scratch: grows to the high-water mark of
// ceil(n / kNR) * kNR * min(k, kKC) floats and is then reused, so warm
// gemm calls allocate nothing.
struct PackScratch {
  std::vector<float> panels;
  float* acquire(std::size_t floats) {
    if (panels.size() < floats) panels.resize(floats);
    return panels.data();
  }
};

PackScratch& pack_scratch() {
  thread_local PackScratch scratch;
  return scratch;
}

// Pack B rows [p0, p0 + kc) into NR-wide panels: panel jp holds columns
// [jp*kNR, jp*kNR + kNR) in layout bp[jp*kc*kNR + p*kNR + u], zero-padded
// past n so the micro-kernel never needs a column tail path. BTrans reads
// B stored [n x k] (absorbing the `_bt` transpose into the pack).
template <bool BTrans>
void pack_b(std::size_t kc, std::size_t n, std::size_t k, std::size_t p0,
            const float* __restrict b, float* __restrict bp) noexcept {
  const std::size_t panels = (n + kNR - 1) / kNR;
  for (std::size_t jp = 0; jp < panels; ++jp) {
    const std::size_t j0 = jp * kNR;
    const std::size_t nr = std::min(kNR, n - j0);
    float* __restrict dst = bp + jp * kc * kNR;
    if (nr == kNR) {
      for (std::size_t p = 0; p < kc; ++p)
        for (std::size_t u = 0; u < kNR; ++u)
          dst[p * kNR + u] = BTrans ? b[(j0 + u) * k + (p0 + p)]
                                    : b[(p0 + p) * n + (j0 + u)];
    } else {
      for (std::size_t p = 0; p < kc; ++p) {
        for (std::size_t u = 0; u < nr; ++u)
          dst[p * kNR + u] = BTrans ? b[(j0 + u) * k + (p0 + p)]
                                    : b[(p0 + p) * n + (j0 + u)];
        for (std::size_t u = nr; u < kNR; ++u) dst[p * kNR + u] = 0.0f;
      }
    }
  }
}

// Row-at-a-time kernel over one packed panel. A is read in place through
// (row_stride, p_stride): (k, 1) for row-major A, (1, m) for the
// transposed-A layout, where ap already points at element (i0, p0). Each
// row carries two kNR-wide local accumulators fed by even and odd p — the
// constant-trip u-loops vectorize into two independent FMA chains and the
// 2*kNR floats fill the sixteen XMM registers, while `#pragma GCC unroll 1`
// on the p-loop stops gcc from re-vectorizing across the reduction with
// shuffles (which is ~4x slower). The even/odd split and the final
// l0 + l1 sum are part of the fixed per-element reduction order the
// determinism contract documents in gemm.h.
void micro_kernel(std::size_t mr, std::size_t kc, const float* __restrict ap,
                  std::size_t row_stride, std::size_t p_stride,
                  const float* __restrict bp,
                  float* __restrict acc) noexcept {
  for (std::size_t r = 0; r < mr; ++r) {
    float l0[kNR] = {}, l1[kNR] = {};
    std::size_t p = 0;
#pragma GCC unroll 1
    for (; p + 2 <= kc; p += 2) {
      const float a0 = ap[r * row_stride + p * p_stride];
      const float a1 = ap[r * row_stride + (p + 1) * p_stride];
      const float* __restrict b0 = bp + p * kNR;
      const float* __restrict b1 = bp + (p + 1) * kNR;
      for (std::size_t u = 0; u < kNR; ++u) l0[u] += a0 * b0[u];
      for (std::size_t u = 0; u < kNR; ++u) l1[u] += a1 * b1[u];
    }
    if (p < kc) {
      const float a0 = ap[r * row_stride + p * p_stride];
      const float* __restrict b0 = bp + p * kNR;
      for (std::size_t u = 0; u < kNR; ++u) l0[u] += a0 * b0[u];
    }
    float* __restrict arow = acc + r * kNR;
    for (std::size_t u = 0; u < kNR; ++u) arow[u] += l0[u] + l1[u];
  }
}

// Compute C rows [i_begin, i_end) against the packed k-block at [p0, kc).
// Each row's reduction is self-contained in the kernel, so any row
// partition yields bit-identical results; ParallelFor's kMR-aligned slices
// just keep each lane reusing the packed panel across a full row block.
template <bool ATrans>
void compute_rows(std::size_t i_begin, std::size_t i_end, std::size_t m,
                  std::size_t k, std::size_t n, std::size_t p0,
                  std::size_t kc, const float* __restrict a,
                  const float* __restrict bp, float* __restrict c) noexcept {
  const std::size_t row_stride = ATrans ? 1 : k;
  const std::size_t p_stride = ATrans ? m : 1;
  const std::size_t panels = (n + kNR - 1) / kNR;
  for (std::size_t i0 = i_begin; i0 < i_end; i0 += kMR) {
    const std::size_t mr = std::min(kMR, i_end - i0);
    const float* ap = ATrans ? a + p0 * m + i0 : a + i0 * k + p0;
    for (std::size_t jp = 0; jp < panels; ++jp) {
      const std::size_t j0 = jp * kNR;
      const std::size_t nr = std::min(kNR, n - j0);
      float acc[kMR * kNR] = {};
      const float* panel = bp + jp * kc * kNR;
      micro_kernel(mr, kc, ap, row_stride, p_stride, panel, acc);
      // Block partial -> C. The zero-padded panel columns (u >= nr) are
      // computed but discarded; valid lanes are untouched by the padding.
      for (std::size_t r = 0; r < mr; ++r) {
        float* __restrict crow = c + (i0 + r) * n + j0;
        const float* __restrict arow = acc + r * kNR;
        if (nr == kNR) {
          for (std::size_t u = 0; u < kNR; ++u) crow[u] += arow[u];
        } else {
          for (std::size_t u = 0; u < nr; ++u) crow[u] += arow[u];
        }
      }
    }
  }
}

template <bool ATrans, bool BTrans>
void gemm_impl(std::size_t m, std::size_t k, std::size_t n, const float* a,
               const float* b, float* c, bool accumulate) noexcept {
  if (!accumulate && m != 0 && n != 0) std::memset(c, 0, m * n * sizeof(float));
  if (m == 0 || n == 0 || k == 0) return;

  const std::size_t panels = (n + kNR - 1) / kNR;
  float* bp = pack_scratch().acquire(panels * std::min(k, kKC) * kNR);
  ParallelFor* pool = intra_op_pool();

  for (std::size_t p0 = 0; p0 < k; p0 += kKC) {
    const std::size_t kc = std::min(kKC, k - p0);
    pack_b<BTrans>(kc, n, k, p0, b, bp);
    if (pool != nullptr && m > kMR) {
      pool->run(m, kMR, [&](std::size_t begin, std::size_t end) {
        compute_rows<ATrans>(begin, end, m, k, n, p0, kc, a, bp, c);
      });
    } else {
      compute_rows<ATrans>(0, m, m, k, n, p0, kc, a, bp, c);
    }
  }
}

}  // namespace

std::size_t gemm_scratch_bytes() noexcept {
  return pack_scratch().panels.capacity() * sizeof(float);
}

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c, bool accumulate) noexcept {
  gemm_impl<false, false>(m, k, n, a, b, c, accumulate);
}

void gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) noexcept {
  gemm_impl<true, false>(m, k, n, a, b, c, accumulate);
}

void gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) noexcept {
  gemm_impl<false, true>(m, k, n, a, b, c, accumulate);
}

}  // namespace dgs::util
