// Plain-text table and CSV emitters used by the benchmark harnesses to print
// rows in the same shape as the paper's tables and figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dgs::util {

/// Column-aligned ASCII table. Collects rows of strings, prints with a
/// header rule, and can also be dumped as CSV for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Percent with sign, e.g. "-0.40%".
  static std::string pct(double v, int precision = 2, bool forced_sign = true);

  void print(std::ostream& os) const;
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Simple (x, series...) curve recorder for figure-style output. Prints a
/// gnuplot-ready whitespace table and CSV.
class CurveSet {
 public:
  CurveSet(std::string x_label, std::vector<std::string> series_names);

  void add_point(double x, const std::vector<double>& ys);

  void print(std::ostream& os, int max_rows = 0) const;
  void write_csv(const std::string& path) const;

  /// Render a crude ASCII chart of all series (log-or-linear y), for eyeball
  /// verification of curve shapes in terminal output.
  void print_ascii_chart(std::ostream& os, int width = 72, int height = 20,
                         bool log_y = false) const;

 private:
  std::string x_label_;
  std::vector<std::string> series_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> ys_;  // ys_[row][series]
};

}  // namespace dgs::util
