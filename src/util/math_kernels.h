// Dense float32 math kernels used by the tensor library and the optimizers.
//
// These are the hot loops of the whole system: every optimizer step, every
// sparsification pass and every matmul bottoms out here. The streaming
// kernels (axpy/axpby/scale/amax) dispatch at runtime through the
// util/simd.h ISA table: a baseline autovectorized path plus explicit
// AVX2 / AVX-512F intrinsic paths, all byte-identical by construction
// (element-wise mul+add, never FMA, and NaN-skipping max with the scalar
// operand order — see DESIGN.md §18). No external BLAS dependency is
// assumed. The bench gate (scripts/check_bench.py over
// bench_micro_kernels) keeps them honest.
#pragma once

#include <cstddef>
#include <span>

#include "util/gemm.h"

namespace dgs::util {

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept;

/// y = alpha * x + beta * y
void axpby(float alpha, std::span<const float> x, float beta,
           std::span<float> y) noexcept;

/// x *= alpha
void scale(float alpha, std::span<float> x) noexcept;

/// dst = src
void copy(std::span<const float> src, std::span<float> dst) noexcept;

/// x = value
void fill(float value, std::span<float> x) noexcept;

/// sum_i x[i] * y[i]
[[nodiscard]] double dot(std::span<const float> x,
                         std::span<const float> y) noexcept;

/// sqrt(sum x^2) accumulated in double.
[[nodiscard]] double nrm2(std::span<const float> x) noexcept;

/// sum_i x[i], accumulated in double.
[[nodiscard]] double sum(std::span<const float> x) noexcept;

/// sum_i |x[i]|, accumulated in double.
[[nodiscard]] double asum(std::span<const float> x) noexcept;

/// max_i |x[i]|; 0 for empty input. NaN elements are skipped (std::max
/// second-operand order); infinities propagate.
[[nodiscard]] float amax(std::span<const float> x) noexcept;

/// max_i |x[i]| over *finite* elements only (NaN and +-inf skipped);
/// 0 when no finite element exists. Computed as an integer maximum over
/// magnitude keys (bits & 0x7fffffff), so it is exact, order-free and
/// byte-identical across ISA paths and thread partitions. This is the
/// quantizer scale scan (sparse/quantize.cpp).
[[nodiscard]] float max_abs_finite(std::span<const float> x) noexcept;

/// Elementwise z = x + y (z may alias x or y).
void add(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept;

/// Elementwise z = x - y (z may alias x or y).
void sub(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept;

/// Elementwise z = x * y (z may alias x or y).
void mul(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept;

// ---- GEMM (implemented by the packed micro-kernel layer, gemm.cpp) --------
//
// Accumulation policy (uniform across all three variants): float32
// throughout — the register tile accumulates block partials in float and
// adds them to C in float. gemm_bt historically accumulated in double;
// that asymmetry is gone so all variants share one kernel, one error
// model, and one bitwise-determinism contract (see gemm.h). The expected
// error versus a double-precision oracle is the usual inner-product bound
// O(k) * FLT_EPSILON relative to sum_p |a_ip * b_pj|; tests/test_util.cpp
// pins all three variants to the `reference::` oracle at
// 16 * FLT_EPSILON * sqrt(k) * sum_p |a_ip * b_pj| per element.
//
// Dense-input contract: there is no zero-skip fast path (`aip == 0`)
// anywhere in the hot loops — every call site feeds dense activations or
// gradients, and the branch cost/vectorization damage outweighed the
// skipped multiplies even on mostly-zero inputs.

/// Row-major GEMM: C[m x n] (+)= A[m x k] * B[k x n].
/// If accumulate is false C is overwritten.
void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c, bool accumulate) noexcept;

/// Row-major GEMM with A transposed: C[m x n] (+)= A^T where A is [k x m].
void gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) noexcept;

/// Row-major GEMM with B transposed: C[m x n] (+)= A[m x k] * B^T, B is [n x k].
void gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) noexcept;

}  // namespace dgs::util
