// Minimal command-line flag parser for the bench harnesses and examples.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags are an error so that typos in experiment sweeps fail loudly
// instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dgs::util {

class Flags {
 public:
  Flags(int argc, char** argv);

  /// Declare a flag with a default; returns the parsed (or default) value.
  /// Declaration also whitelists the flag for the final unknown-flag check.
  std::string str(const std::string& name, std::string def,
                  const std::string& help = "");
  std::int64_t i64(const std::string& name, std::int64_t def,
                   const std::string& help = "");
  double f64(const std::string& name, double def, const std::string& help = "");
  bool boolean(const std::string& name, bool def, const std::string& help = "");

  /// Comma-separated int list, e.g. --workers=1,4,8.
  std::vector<std::int64_t> i64_list(const std::string& name,
                                     std::vector<std::int64_t> def,
                                     const std::string& help = "");

  [[nodiscard]] bool help_requested() const noexcept { return help_; }

  /// Throws std::runtime_error if any provided flag was never declared.
  /// Prints usage and returns true if --help was given.
  bool finish() const;

 private:
  struct Decl {
    std::string help;
    std::string default_repr;
  };

  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, Decl> decls_;
  mutable std::map<std::string, bool> consumed_;
  bool help_ = false;
};

}  // namespace dgs::util
