#include "util/parallel_for.h"

#include <memory>
#include <utility>

namespace dgs::util {

ParallelFor::ParallelFor(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    // Worker i runs slice i + 1; the calling thread runs slice 0.
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ParallelFor::~ParallelFor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ParallelFor::Slice ParallelFor::slice_of(std::size_t n, std::size_t align,
                                         std::size_t t,
                                         std::size_t parts) noexcept {
  if (align == 0) align = 1;
  if (parts == 0) parts = 1;
  // Blocks of `align`, distributed as evenly as possible: the first `extra`
  // lanes get one extra block. Depends only on (n, align, parts), so the
  // partition is identical across runs and thread schedules.
  const std::size_t blocks = (n + align - 1) / align;
  const std::size_t base = blocks / parts;
  const std::size_t extra = blocks % parts;
  const std::size_t begin_block = t * base + (t < extra ? t : extra);
  const std::size_t end_block = begin_block + base + (t < extra ? 1 : 0);
  Slice s;
  s.begin = begin_block * align;
  s.end = end_block * align;
  if (s.begin > n) s.begin = n;
  if (s.end > n) s.end = n;
  return s;
}

void ParallelFor::run(std::size_t n, std::size_t align, RawBody body,
                      void* ctx) {
  const std::size_t parts = threads();
  if (parts == 1 || n == 0) {
    if (n != 0) body(ctx, 0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = body;
    ctx_ = ctx;
    job_n_ = n;
    job_align_ = align;
    pending_ = workers_.size();
    ++epoch_;
  }
  work_cv_.notify_all();

  const Slice mine = slice_of(n, align, 0, parts);
  if (mine.begin < mine.end) body(ctx, mine.begin, mine.end);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ParallelFor::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    RawBody body;
    void* ctx;
    std::size_t n, align, parts;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
      body = body_;
      ctx = ctx_;
      n = job_n_;
      align = job_align_;
      parts = workers_.size() + 1;
    }
    const Slice mine = slice_of(n, align, index, parts);
    if (mine.begin < mine.end) body(ctx, mine.begin, mine.end);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

namespace {

// Thread-local budget + lazily built pool. The pool is heap-held behind a
// unique_ptr so rebuilds on budget changes are explicit, and destruction at
// thread exit joins the workers before thread-locals of other TUs go away.
struct IntraOpState {
  std::size_t budget = 1;
  std::unique_ptr<ParallelFor> pool;
};

IntraOpState& intra_op_state() {
  thread_local IntraOpState state;
  return state;
}

}  // namespace

void set_intra_op_threads(std::size_t n) {
  IntraOpState& state = intra_op_state();
  if (n == 0) n = 1;
  if (state.budget == n) return;
  state.budget = n;
  state.pool.reset();  // Rebuilt lazily at the new width on next use.
}

std::size_t intra_op_threads() noexcept { return intra_op_state().budget; }

ParallelFor* intra_op_pool() {
  IntraOpState& state = intra_op_state();
  if (state.budget <= 1) return nullptr;
  if (!state.pool) state.pool = std::make_unique<ParallelFor>(state.budget);
  return state.pool.get();
}

}  // namespace dgs::util
