#include "util/math_kernels.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace dgs::util {

namespace {

// The streaming kernels below process fixed-width blocks with a
// constant-trip inner loop. The restrict-qualified pointers plus the
// constant trip count let the compiler fully unroll and vectorize the
// block body; the scalar tail handles the last n % kBlock elements.
// gcc 12's -O2 cost model ("very-cheap") declines most of these loops,
// so CMake compiles this TU at -O3, where -fopt-info-vec reports all
// block bodies vectorized; bench_micro_kernels guards the result.
constexpr std::size_t kBlock = 16;

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock)
    for (std::size_t u = 0; u < kBlock; ++u) yp[i + u] += alpha * xp[i + u];
  for (; i < n; ++i) yp[i] += alpha * xp[i];
}

void axpby(float alpha, std::span<const float> x, float beta,
           std::span<float> y) noexcept {
  assert(x.size() == y.size());
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock)
    for (std::size_t u = 0; u < kBlock; ++u)
      yp[i + u] = alpha * xp[i + u] + beta * yp[i + u];
  for (; i < n; ++i) yp[i] = alpha * xp[i] + beta * yp[i];
}

void scale(float alpha, std::span<float> x) noexcept {
  float* __restrict xp = x.data();
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock)
    for (std::size_t u = 0; u < kBlock; ++u) xp[i + u] *= alpha;
  for (; i < n; ++i) xp[i] *= alpha;
}

void copy(std::span<const float> src, std::span<float> dst) noexcept {
  assert(src.size() == dst.size());
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
}

void fill(float value, std::span<float> x) noexcept {
  float* __restrict xp = x.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) xp[i] = value;
}

double dot(std::span<const float> x, std::span<const float> y) noexcept {
  assert(x.size() == y.size());
  const float* __restrict xp = x.data();
  const float* __restrict yp = y.data();
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(xp[i]) * yp[i];
  return acc;
}

double nrm2(std::span<const float> x) noexcept { return std::sqrt(dot(x, x)); }

double sum(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc;
}

double asum(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (float v : x) acc += std::fabs(v);
  return acc;
}

float amax(std::span<const float> x) noexcept {
  float best = 0.0f;
  for (float v : x) best = std::max(best, std::fabs(v));
  return best;
}

void add(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept {
  assert(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] + y[i];
}

void sub(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept {
  assert(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] - y[i];
}

void mul(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept {
  assert(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
}

namespace {

// Blocked row-major kernel: accumulates into c. The (i,k)-outer, j-inner
// loop order keeps the innermost loop contiguous over both b and c so the
// compiler can vectorize it.
void gemm_accumulate(std::size_t m, std::size_t k, std::size_t n,
                     const float* __restrict a, const float* __restrict b,
                     float* __restrict c) noexcept {
  constexpr std::size_t kBlock = 64;
  for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::size_t i1 = std::min(i0 + kBlock, m);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlock) {
      const std::size_t p1 = std::min(p0 + kBlock, k);
      for (std::size_t i = i0; i < i1; ++i) {
        float* __restrict crow = c + i * n;
        for (std::size_t p = p0; p < p1; ++p) {
          const float aip = a[i * k + p];
          if (aip == 0.0f) continue;
          const float* __restrict brow = b + p * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
        }
      }
    }
  }
}

}  // namespace

void gemm(std::size_t m, std::size_t k, std::size_t n, const float* a,
          const float* b, float* c, bool accumulate) noexcept {
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
  gemm_accumulate(m, k, n, a, b, c);
}

void gemm_at(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) noexcept {
  // C[m x n] (+)= A^T[m x k] * B[k x n] with A stored [k x m].
  if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
  for (std::size_t p = 0; p < k; ++p) {
    const float* __restrict arow = a + p * m;
    const float* __restrict brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aip = arow[i];
      if (aip == 0.0f) continue;
      float* __restrict crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void gemm_bt(std::size_t m, std::size_t k, std::size_t n, const float* a,
             const float* b, float* c, bool accumulate) noexcept {
  // C[m x n] (+)= A[m x k] * B^T with B stored [n x k].
  for (std::size_t i = 0; i < m; ++i) {
    const float* __restrict arow = a + i * k;
    float* __restrict crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* __restrict brow = b + j * k;
      double acc = accumulate ? static_cast<double>(crow[j]) : 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<double>(arow[p]) * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
}

}  // namespace dgs::util
