#include "util/math_kernels.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace dgs::util {

namespace {

// The streaming kernels below process fixed-width blocks with a
// constant-trip inner loop. The restrict-qualified pointers plus the
// constant trip count let the compiler fully unroll and vectorize the
// block body; the scalar tail handles the last n % kBlock elements.
// gcc 12's -O2 cost model ("very-cheap") declines most of these loops,
// so CMake compiles this TU at -O3, where -fopt-info-vec reports all
// block bodies vectorized; bench_micro_kernels guards the result.
constexpr std::size_t kBlock = 16;

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock)
    for (std::size_t u = 0; u < kBlock; ++u) yp[i + u] += alpha * xp[i + u];
  for (; i < n; ++i) yp[i] += alpha * xp[i];
}

void axpby(float alpha, std::span<const float> x, float beta,
           std::span<float> y) noexcept {
  assert(x.size() == y.size());
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock)
    for (std::size_t u = 0; u < kBlock; ++u)
      yp[i + u] = alpha * xp[i + u] + beta * yp[i + u];
  for (; i < n; ++i) yp[i] = alpha * xp[i] + beta * yp[i];
}

void scale(float alpha, std::span<float> x) noexcept {
  float* __restrict xp = x.data();
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock)
    for (std::size_t u = 0; u < kBlock; ++u) xp[i + u] *= alpha;
  for (; i < n; ++i) xp[i] *= alpha;
}

void copy(std::span<const float> src, std::span<float> dst) noexcept {
  assert(src.size() == dst.size());
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
}

void fill(float value, std::span<float> x) noexcept {
  float* __restrict xp = x.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) xp[i] = value;
}

double dot(std::span<const float> x, std::span<const float> y) noexcept {
  assert(x.size() == y.size());
  const float* __restrict xp = x.data();
  const float* __restrict yp = y.data();
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(xp[i]) * yp[i];
  return acc;
}

double nrm2(std::span<const float> x) noexcept { return std::sqrt(dot(x, x)); }

double sum(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc;
}

double asum(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (float v : x) acc += std::fabs(v);
  return acc;
}

float amax(std::span<const float> x) noexcept {
  float best = 0.0f;
  for (float v : x) best = std::max(best, std::fabs(v));
  return best;
}

void add(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept {
  assert(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] + y[i];
}

void sub(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept {
  assert(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] - y[i];
}

void mul(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept {
  assert(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
}

// gemm / gemm_at / gemm_bt live in gemm.cpp (the packed micro-kernel
// layer); only the streaming kernels are implemented here.

}  // namespace dgs::util
