#include "util/math_kernels.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DGS_X86 1
#endif

#include "util/simd.h"

namespace dgs::util {

namespace {

// The streaming kernels dispatch through util/simd.h: the scalar variants
// below are the baseline (autovectorized) path and the byte-identity
// reference; the AVX2 / AVX-512F variants are explicit-intrinsic rewrites
// of the *same* per-element arithmetic. Byte-identity across paths is by
// construction:
//   - axpy/axpby/scale are element-wise mul + add. The intrinsic paths
//     deliberately use separate vmulps/vaddps, never FMA — the baseline
//     path has no FMA to contract into, and fusing would change rounding.
//   - amax uses max(vabs, acc) with the accumulator as the *second*
//     operand: x86 maxps returns the second operand when either input is
//     NaN, which reproduces std::max(best, fabs(v))'s NaN-skip exactly;
//     max over non-NaN floats is associative+commutative with results
//     drawn from the input set, so lane order does not matter.
//   - max_abs_finite is an integer maximum over magnitude keys — exact in
//     any order.
// The scalar variants keep the fixed-width kBlock shape: the constant-trip
// inner loop is what gcc 12 -O3 (this TU is pinned to -O3, see
// util/CMakeLists.txt) fully unrolls and vectorizes to SSE2.
constexpr std::size_t kBlock = 16;

// ---- scalar (baseline) paths ----------------------------------------------

void axpy_scalar(float alpha, const float* __restrict xp, float* __restrict yp,
                 std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock)
    for (std::size_t u = 0; u < kBlock; ++u) yp[i + u] += alpha * xp[i + u];
  for (; i < n; ++i) yp[i] += alpha * xp[i];
}

void axpby_scalar(float alpha, const float* __restrict xp, float beta,
                  float* __restrict yp, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock)
    for (std::size_t u = 0; u < kBlock; ++u)
      yp[i + u] = alpha * xp[i + u] + beta * yp[i + u];
  for (; i < n; ++i) yp[i] = alpha * xp[i] + beta * yp[i];
}

void scale_scalar(float alpha, float* __restrict xp, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock)
    for (std::size_t u = 0; u < kBlock; ++u) xp[i + u] *= alpha;
  for (; i < n; ++i) xp[i] *= alpha;
}

float amax_scalar(const float* __restrict xp, std::size_t n) noexcept {
  float best = 0.0f;
  for (std::size_t i = 0; i < n; ++i) best = std::max(best, std::fabs(xp[i]));
  return best;
}

constexpr std::uint32_t kMagMask = 0x7fffffffu;
constexpr std::uint32_t kInfKey = 0x7f800000u;

float max_abs_finite_scalar(const float* __restrict xp,
                            std::size_t n) noexcept {
  std::uint32_t best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t key = std::bit_cast<std::uint32_t>(xp[i]) & kMagMask;
    if (key < kInfKey && key > best) best = key;
  }
  return std::bit_cast<float>(best);
}

#ifdef DGS_X86

// ---- AVX2 paths ------------------------------------------------------------

__attribute__((target("avx2"))) void axpy_avx2(float alpha,
                                               const float* __restrict xp,
                                               float* __restrict yp,
                                               std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    for (std::size_t u = 0; u < 32; u += 8) {
      const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(xp + i + u));
      _mm256_storeu_ps(yp + i + u,
                       _mm256_add_ps(_mm256_loadu_ps(yp + i + u), prod));
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(xp + i));
    _mm256_storeu_ps(yp + i, _mm256_add_ps(_mm256_loadu_ps(yp + i), prod));
  }
  for (; i < n; ++i) yp[i] += alpha * xp[i];
}

__attribute__((target("avx2"))) void axpby_avx2(float alpha,
                                                const float* __restrict xp,
                                                float beta,
                                                float* __restrict yp,
                                                std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vb = _mm256_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 ax = _mm256_mul_ps(va, _mm256_loadu_ps(xp + i));
    const __m256 by = _mm256_mul_ps(vb, _mm256_loadu_ps(yp + i));
    _mm256_storeu_ps(yp + i, _mm256_add_ps(ax, by));
  }
  for (; i < n; ++i) yp[i] = alpha * xp[i] + beta * yp[i];
}

__attribute__((target("avx2"))) void scale_avx2(float alpha,
                                                float* __restrict xp,
                                                std::size_t n) noexcept {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(xp + i, _mm256_mul_ps(_mm256_loadu_ps(xp + i), va));
  for (; i < n; ++i) xp[i] *= alpha;
}

__attribute__((target("avx2"))) float amax_avx2(const float* __restrict xp,
                                                std::size_t n) noexcept {
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vabs = _mm256_and_ps(_mm256_loadu_ps(xp + i), absmask);
    // NaN lane in vabs -> maxps returns acc's lane: std::max's NaN-skip.
    acc = _mm256_max_ps(vabs, acc);
  }
  const __m128 h = _mm_max_ps(_mm256_castps256_ps128(acc),
                              _mm256_extractf128_ps(acc, 1));
  __m128 m = _mm_max_ps(h, _mm_movehl_ps(h, h));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  float best = _mm_cvtss_f32(m);
  for (; i < n; ++i) best = std::max(best, std::fabs(xp[i]));
  return best;
}

__attribute__((target("avx2"))) float max_abs_finite_avx2(
    const float* __restrict xp, std::size_t n) noexcept {
  const __m256i magmask = _mm256_set1_epi32(0x7fffffff);
  const __m256i inf = _mm256_set1_epi32(0x7f800000);
  __m256i best = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i key = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xp + i)), magmask);
    // Keys are <= 0x7fffffff, i.e. non-negative as signed int32, so the
    // signed compare/max are exact. Non-finite keys (>= inf) drop to 0.
    key = _mm256_and_si256(key, _mm256_cmpgt_epi32(inf, key));
    best = _mm256_max_epi32(key, best);
  }
  const __m128i h = _mm_max_epi32(_mm256_castsi256_si128(best),
                                  _mm256_extracti128_si256(best, 1));
  __m128i m = _mm_max_epi32(h, _mm_shuffle_epi32(h, _MM_SHUFFLE(1, 0, 3, 2)));
  m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
  std::uint32_t bestk = static_cast<std::uint32_t>(_mm_cvtsi128_si32(m));
  for (; i < n; ++i) {
    const std::uint32_t key = std::bit_cast<std::uint32_t>(xp[i]) & kMagMask;
    if (key < kInfKey && key > bestk) bestk = key;
  }
  return std::bit_cast<float>(bestk);
}

// ---- AVX-512F paths --------------------------------------------------------

__attribute__((target("avx512f"))) void axpy_avx512(float alpha,
                                                    const float* __restrict xp,
                                                    float* __restrict yp,
                                                    std::size_t n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    for (std::size_t u = 0; u < 64; u += 16) {
      const __m512 prod = _mm512_mul_ps(va, _mm512_loadu_ps(xp + i + u));
      _mm512_storeu_ps(yp + i + u,
                       _mm512_add_ps(_mm512_loadu_ps(yp + i + u), prod));
    }
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 prod = _mm512_mul_ps(va, _mm512_loadu_ps(xp + i));
    _mm512_storeu_ps(yp + i, _mm512_add_ps(_mm512_loadu_ps(yp + i), prod));
  }
  for (; i < n; ++i) yp[i] += alpha * xp[i];
}

__attribute__((target("avx512f"))) void axpby_avx512(
    float alpha, const float* __restrict xp, float beta, float* __restrict yp,
    std::size_t n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  const __m512 vb = _mm512_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 ax = _mm512_mul_ps(va, _mm512_loadu_ps(xp + i));
    const __m512 by = _mm512_mul_ps(vb, _mm512_loadu_ps(yp + i));
    _mm512_storeu_ps(yp + i, _mm512_add_ps(ax, by));
  }
  for (; i < n; ++i) yp[i] = alpha * xp[i] + beta * yp[i];
}

__attribute__((target("avx512f"))) void scale_avx512(float alpha,
                                                     float* __restrict xp,
                                                     std::size_t n) noexcept {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(xp + i, _mm512_mul_ps(_mm512_loadu_ps(xp + i), va));
  for (; i < n; ++i) xp[i] *= alpha;
}

__attribute__((target("avx512f"))) float amax_avx512(
    const float* __restrict xp, std::size_t n) noexcept {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // _mm512_abs_ps is the sign-bit clear (AVX-512F; _mm512_and_ps is DQ).
    const __m512 vabs = _mm512_abs_ps(_mm512_loadu_ps(xp + i));
    acc = _mm512_max_ps(vabs, acc);  // NaN lane -> acc lane survives
  }
  float best = _mm512_reduce_max_ps(acc);
  for (; i < n; ++i) best = std::max(best, std::fabs(xp[i]));
  return best;
}

__attribute__((target("avx512f"))) float max_abs_finite_avx512(
    const float* __restrict xp, std::size_t n) noexcept {
  const __m512i magmask = _mm512_set1_epi32(0x7fffffff);
  const __m512i inf = _mm512_set1_epi32(0x7f800000);
  __m512i best = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i key = _mm512_and_si512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(xp + i)), magmask);
    const __mmask16 finite = _mm512_cmplt_epi32_mask(key, inf);
    best = _mm512_mask_max_epi32(best, finite, key, best);
  }
  std::uint32_t bestk =
      static_cast<std::uint32_t>(_mm512_reduce_max_epi32(best));
  for (; i < n; ++i) {
    const std::uint32_t key = std::bit_cast<std::uint32_t>(xp[i]) & kMagMask;
    if (key < kInfKey && key > bestk) bestk = key;
  }
  return std::bit_cast<float>(bestk);
}

#endif  // DGS_X86

// ---- dispatch tables -------------------------------------------------------
// constexpr function-pointer tables indexed by isa_index(active_isa()):
// dispatch is one relaxed atomic load + an indexed call and allocates
// nothing (tests/test_simd.cpp counts operator new at steady state).

using AxpyFn = void (*)(float, const float*, float*, std::size_t) noexcept;
using AxpbyFn = void (*)(float, const float*, float, float*,
                         std::size_t) noexcept;
using ScaleFn = void (*)(float, float*, std::size_t) noexcept;
using ReduceFn = float (*)(const float*, std::size_t) noexcept;

#ifdef DGS_X86
constexpr AxpyFn kAxpy[kNumIsas] = {axpy_scalar, axpy_avx2, axpy_avx512};
constexpr AxpbyFn kAxpby[kNumIsas] = {axpby_scalar, axpby_avx2, axpby_avx512};
constexpr ScaleFn kScale[kNumIsas] = {scale_scalar, scale_avx2, scale_avx512};
constexpr ReduceFn kAmax[kNumIsas] = {amax_scalar, amax_avx2, amax_avx512};
constexpr ReduceFn kMaxAbsFinite[kNumIsas] = {
    max_abs_finite_scalar, max_abs_finite_avx2, max_abs_finite_avx512};
#else
constexpr AxpyFn kAxpy[kNumIsas] = {axpy_scalar, axpy_scalar, axpy_scalar};
constexpr AxpbyFn kAxpby[kNumIsas] = {axpby_scalar, axpby_scalar,
                                      axpby_scalar};
constexpr ScaleFn kScale[kNumIsas] = {scale_scalar, scale_scalar,
                                      scale_scalar};
constexpr ReduceFn kAmax[kNumIsas] = {amax_scalar, amax_scalar, amax_scalar};
constexpr ReduceFn kMaxAbsFinite[kNumIsas] = {
    max_abs_finite_scalar, max_abs_finite_scalar, max_abs_finite_scalar};
#endif

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  assert(x.size() == y.size());
  kAxpy[isa_index(active_isa())](alpha, x.data(), y.data(), x.size());
}

void axpby(float alpha, std::span<const float> x, float beta,
           std::span<float> y) noexcept {
  assert(x.size() == y.size());
  kAxpby[isa_index(active_isa())](alpha, x.data(), beta, y.data(), x.size());
}

void scale(float alpha, std::span<float> x) noexcept {
  kScale[isa_index(active_isa())](alpha, x.data(), x.size());
}

float amax(std::span<const float> x) noexcept {
  return kAmax[isa_index(active_isa())](x.data(), x.size());
}

float max_abs_finite(std::span<const float> x) noexcept {
  return kMaxAbsFinite[isa_index(active_isa())](x.data(), x.size());
}

void copy(std::span<const float> src, std::span<float> dst) noexcept {
  assert(src.size() == dst.size());
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
}

void fill(float value, std::span<float> x) noexcept {
  float* __restrict xp = x.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) xp[i] = value;
}

double dot(std::span<const float> x, std::span<const float> y) noexcept {
  assert(x.size() == y.size());
  const float* __restrict xp = x.data();
  const float* __restrict yp = y.data();
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(xp[i]) * yp[i];
  return acc;
}

double nrm2(std::span<const float> x) noexcept { return std::sqrt(dot(x, x)); }

double sum(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (float v : x) acc += v;
  return acc;
}

double asum(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (float v : x) acc += std::fabs(v);
  return acc;
}

void add(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept {
  assert(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] + y[i];
}

void sub(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept {
  assert(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] - y[i];
}

void mul(std::span<const float> x, std::span<const float> y,
         std::span<float> z) noexcept {
  assert(x.size() == y.size() && x.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
}

// gemm / gemm_at / gemm_bt live in gemm.cpp (the packed micro-kernel
// layer); only the streaming kernels are implemented here.

}  // namespace dgs::util
