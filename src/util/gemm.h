// Packed, cache-blocked GEMM micro-kernel layer.
//
// All three row-major matmul entry points (`gemm`, `gemm_at`, `gemm_bt`,
// declared in math_kernels.h) are backed by one templated implementation
// here (gemm.cpp, -O3-pinned like the streaming kernels):
//
//   * B is packed k-block by k-block into NR-wide column panels held in a
//     pooled thread-local scratch buffer (panel-major layout
//     `bp[panel*kc*kNR + p*kNR + u]`, zero-padded to kNR), so the inner
//     kernel streams B contiguously regardless of the source layout —
//     packing is also where the `_bt` transpose is absorbed. For large
//     k-blocks the pack itself fans out over the ParallelFor pool, one or
//     more whole panels per lane; packing is pure data movement (values
//     copied, never combined), so any panel partition is bit-identical.
//   * The inner micro-kernel dispatches on the runtime ISA (util/simd.h):
//     the scalar path computes one C row at a time with two kNR-wide
//     even/odd-p accumulators that auto-vectorize at -O3; the AVX2+FMA
//     path is an explicit 2-row x kNR intrinsic register tile (8 ymm
//     accumulators, single fmadd chain per element); the AVX-512F path is
//     a 4-row x kNR tile with the even/odd p split (16 zmm accumulators).
//     A is read in place (contiguous per-p for the `_at` layout, stride-k
//     otherwise). Tail rows reuse the same per-element operation sequence
//     as full row blocks on every path.
//   * k is blocked at kKC so the active B panel stays cache-resident.
//
// Parallelism and determinism: when the calling thread's intra-op budget
// (util::set_intra_op_threads) exceeds 1, rows of C are partitioned across
// a persistent ParallelFor pool in kMR-aligned static slices. Every output
// element is reduced by exactly one lane in a fixed serial order
// (k-blocks ascending; within a block a per-element accumulation order
// that depends only on the active ISA path, never on the row partition),
// so the result is bitwise identical to single-threaded execution for any
// thread count and any row/panel partition *within one ISA path*. Across
// ISA paths GEMM results are oracle-bounded, not byte-identical: the
// intrinsic paths use fused multiply-add and different chain counts, which
// round differently. Pin DGS_FORCE_ISA (or util::set_forced_isa) when
// cross-machine bit reproducibility matters.
//
// Accumulation policy: float throughout (see math_kernels.h).
//
// The `reference::` kernels below are the scalar double-accumulation
// oracle: tests compare the packed kernels against them under a stated
// relative tolerance, and bench_micro_kernels uses them as the in-run
// baseline for the packed-vs-reference gate in scripts/check_bench.py.
#pragma once

#include <cstddef>

namespace dgs::util {

/// Register-tile and cache-block geometry, exported for tests and the
/// DESIGN.md §13 numbers. kNR = 32 gives each of the kernel's two per-row
/// accumulator lanes eight XMM registers on baseline x86-64 (all sixteen
/// in use); kMR = 4 is the row-slice alignment unit, sized so a lane
/// reuses the packed panel from L1 across its rows; kKC = 256 keeps a
/// packed kc x kNR panel (32 KiB) plus the A working set inside L1/L2.
inline constexpr std::size_t kGemmMR = 4;
inline constexpr std::size_t kGemmNR = 32;
inline constexpr std::size_t kGemmKC = 256;

/// Bytes of pooled pack scratch currently resident on the calling thread
/// (high-water mark; reused across calls — the warm path allocates
/// nothing). Exposed for the zero-allocation tests.
[[nodiscard]] std::size_t gemm_scratch_bytes() noexcept;

namespace reference {

/// Scalar oracle: C[m x n] (+)= A[m x k] * B[k x n], double accumulation,
/// one dot product per output element. Slow on purpose — it is the
/// correctness baseline, not a compute kernel.
inline void gemm(std::size_t m, std::size_t k, std::size_t n,
                 const float* a, const float* b, float* c,
                 bool accumulate) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = accumulate ? static_cast<double>(c[i * n + j]) : 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

/// Scalar oracle for C (+)= A^T * B with A stored [k x m].
inline void gemm_at(std::size_t m, std::size_t k, std::size_t n,
                    const float* a, const float* b, float* c,
                    bool accumulate) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = accumulate ? static_cast<double>(c[i * n + j]) : 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[p * m + i]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

/// Scalar oracle for C (+)= A * B^T with B stored [n x k].
inline void gemm_bt(std::size_t m, std::size_t k, std::size_t n,
                    const float* a, const float* b, float* c,
                    bool accumulate) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = accumulate ? static_cast<double>(c[i * n + j]) : 0.0;
      for (std::size_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) * b[j * k + p];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

}  // namespace reference
}  // namespace dgs::util
