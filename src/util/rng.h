// Deterministic random number generation for reproducible experiments.
//
// All stochastic behaviour in this repository (weight init, data synthesis,
// shuffling, compute-time jitter) flows through Rng so that every experiment
// is bit-reproducible given a seed. The generator is xoshiro256**, seeded via
// SplitMix64 so that small consecutive seeds yield independent streams.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace dgs::util {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
    has_gauss_ = false;
  }

  /// A decorrelated child stream, e.g. one per worker thread.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t sm = state_[0] ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1));
    return Rng(splitmix64(sm));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double normal() noexcept {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    gauss_ = v * f;
    has_gauss_ = true;
    return u * f;
  }

  float normal(float mean, float stddev) noexcept {
    return mean + stddev * static_cast<float>(normal());
  }

  /// Exponential with the given mean (for compute-time jitter models).
  double exponential(double mean) noexcept {
    return -mean * std::log1p(-uniform());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double gauss_ = 0.0;
  bool has_gauss_ = false;
};

/// Fisher-Yates shuffle of [first, first+n) using rng.
template <typename T>
void shuffle(T* first, std::size_t n, Rng& rng) {
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    T tmp = first[i - 1];
    first[i - 1] = first[j];
    first[j] = tmp;
  }
}

}  // namespace dgs::util
