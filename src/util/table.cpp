#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dgs::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision, bool forced_sign) {
  std::ostringstream os;
  if (forced_sign) os << std::showpos;
  os << std::fixed << std::setprecision(precision) << v << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << std::left << std::setw(static_cast<int>(width[c])) << row[c]
         << " |";
    os << "\n";
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ",";
      f << csv_escape(row[c]);
    }
    f << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

CurveSet::CurveSet(std::string x_label, std::vector<std::string> series_names)
    : x_label_(std::move(x_label)), series_(std::move(series_names)) {}

void CurveSet::add_point(double x, const std::vector<double>& ys) {
  if (ys.size() != series_.size())
    throw std::invalid_argument("CurveSet point width mismatch");
  xs_.push_back(x);
  ys_.push_back(ys);
}

void CurveSet::print(std::ostream& os, int max_rows) const {
  os << "# " << x_label_;
  for (const auto& s : series_) os << "  " << s;
  os << "\n";
  const std::size_t n = xs_.size();
  std::size_t stride = 1;
  if (max_rows > 0 && n > static_cast<std::size_t>(max_rows))
    stride = (n + max_rows - 1) / max_rows;
  for (std::size_t i = 0; i < n; i += stride) {
    os << std::setw(10) << xs_[i];
    for (double y : ys_[i]) {
      if (std::isnan(y))
        os << "  " << std::setw(10) << "-";
      else
        os << "  " << std::setw(10) << std::setprecision(5) << y;
    }
    os << "\n";
  }
}

void CurveSet::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  f << x_label_;
  for (const auto& s : series_) f << "," << csv_escape(s);
  f << "\n";
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    f << xs_[i];
    for (double y : ys_[i]) {
      f << ",";
      if (!std::isnan(y)) f << y;
    }
    f << "\n";
  }
}

void CurveSet::print_ascii_chart(std::ostream& os, int width, int height,
                                 bool log_y) const {
  if (xs_.empty()) return;
  double xmin = xs_.front(), xmax = xs_.back();
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -ymin;
  for (const auto& row : ys_)
    for (double y : row) {
      if (std::isnan(y)) continue;
      if (log_y && y <= 0) continue;
      const double v = log_y ? std::log10(y) : y;
      ymin = std::min(ymin, v);
      ymax = std::max(ymax, v);
    }
  if (!(ymax > ymin)) ymax = ymin + 1.0;
  if (!(xmax > xmin)) xmax = xmin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const char* marks = "*o+x#@%&";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const char mark = marks[s % 8];
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      double y = ys_[i][s];
      if (std::isnan(y) || (log_y && y <= 0)) continue;
      const double v = log_y ? std::log10(y) : y;
      int col = static_cast<int>((xs_[i] - xmin) / (xmax - xmin) * (width - 1));
      int row = static_cast<int>((v - ymin) / (ymax - ymin) * (height - 1));
      row = height - 1 - row;
      col = std::clamp(col, 0, width - 1);
      row = std::clamp(row, 0, height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
    }
  }
  os << "  y" << (log_y ? " (log10)" : "") << " in ["
     << (log_y ? std::pow(10.0, ymin) : ymin) << ", "
     << (log_y ? std::pow(10.0, ymax) : ymax) << "], x in [" << xmin << ", "
     << xmax << "]  (" << x_label_ << ")\n";
  for (const auto& line : grid) os << "  |" << line << "\n";
  os << "  +" << std::string(static_cast<std::size_t>(width), '-') << "\n  legend:";
  for (std::size_t s = 0; s < series_.size(); ++s)
    os << " " << marks[s % 8] << "=" << series_[s];
  os << "\n";
}

}  // namespace dgs::util
