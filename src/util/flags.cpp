#include "util/flags.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dgs::util {

Flags::Flags(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0)
      throw std::runtime_error("positional arguments are not supported: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else if (arg.rfind("no-", 0) == 0) {
      values_[arg.substr(3)] = "false";
    } else {
      values_[arg] = "true";
    }
  }
}

std::string Flags::str(const std::string& name, std::string def,
                       const std::string& help) {
  decls_[name] = {help, def};
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return it->second;
}

std::int64_t Flags::i64(const std::string& name, std::int64_t def,
                        const std::string& help) {
  const std::string v = str(name, std::to_string(def), help);
  return std::stoll(v);
}

double Flags::f64(const std::string& name, double def, const std::string& help) {
  const std::string v = str(name, std::to_string(def), help);
  return std::stod(v);
}

bool Flags::boolean(const std::string& name, bool def, const std::string& help) {
  const std::string v = str(name, def ? "true" : "false", help);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::runtime_error("bad boolean for --" + name + ": " + v);
}

std::vector<std::int64_t> Flags::i64_list(const std::string& name,
                                          std::vector<std::int64_t> def,
                                          const std::string& help) {
  std::ostringstream d;
  for (std::size_t i = 0; i < def.size(); ++i) d << (i ? "," : "") << def[i];
  const std::string v = str(name, d.str(), help);
  std::vector<std::int64_t> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoll(item));
  return out;
}

bool Flags::finish() const {
  if (help_) {
    std::printf("usage: %s [flags]\n", program_.c_str());
    for (const auto& [name, decl] : decls_)
      std::printf("  --%-28s %s (default: %s)\n", name.c_str(),
                  decl.help.c_str(), decl.default_repr.c_str());
    return true;
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!decls_.count(name))
      throw std::runtime_error("unknown flag --" + name + " (see --help)");
  }
  return false;
}

}  // namespace dgs::util
