// Runtime ISA dispatch for the compute kernels (DESIGN.md §18).
//
// The repo builds for baseline x86-64 (no -march flags), so the
// autovectorized kernels bottom out at SSE2. This layer detects what the
// host actually supports — AVX2+FMA and AVX-512F — once at startup and
// resolves every dispatched kernel family (packed GEMM micro-kernel, the
// streaming axpy/axpby/scale/amax kernels, the radix-select magnitude-key
// passes, the quantizer scale scan) through a per-TU function-pointer
// table indexed by the active Isa. The intrinsic kernels themselves are
// ordinary functions carrying per-function target attributes
// (`__attribute__((target("avx2,fma")))`), so no TU is compiled with a
// raised -march and an unsupported instruction can never leak into code
// reachable on a lesser machine.
//
// Forcing a path: the DGS_FORCE_ISA environment variable (scalar | avx2 |
// avx512), the --force-isa bench flag (bench_common), or
// set_forced_isa()/ForcedIsaScope in tests pin the active ISA — clamped
// to what the host supports, never above it. Forcing exists for
// per-ISA equivalence tests, TSan runs (scalar instruments fastest) and
// cross-machine reproducibility of GEMM results (float reduction order
// is fixed *within* an ISA path; across paths GEMM is oracle-bounded,
// while every non-GEMM dispatched kernel is byte-identical by
// construction — element-wise IEEE ops or exact integer work only).
//
// The resolved ISA is reported once via DGS_LOG(kInfo) and recorded in
// the run ledger (`simd_isa`, obs/ledger.h) so committed trajectory
// entries say which path produced them.
#pragma once

#include <string_view>

namespace dgs::util {

/// Dispatchable instruction-set tiers, in strictly increasing order of
/// capability. Used as the index into every kernel table, so the values
/// are dense and start at 0.
enum class Isa : int {
  kScalar = 0,  ///< Baseline x86-64 (SSE2 autovectorization only).
  kAvx2 = 1,    ///< AVX2 + FMA intrinsic kernels.
  kAvx512 = 2,  ///< AVX-512F intrinsic kernels.
};

inline constexpr int kNumIsas = 3;

/// Dense table index for an Isa.
[[nodiscard]] constexpr int isa_index(Isa isa) noexcept {
  return static_cast<int>(isa);
}

/// Stable lowercase name ("scalar" | "avx2" | "avx512"); also the ledger
/// and DGS_FORCE_ISA vocabulary.
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Parse an isa_name() string (case-sensitive). Returns false and leaves
/// *out untouched on anything else.
[[nodiscard]] bool parse_isa(std::string_view name, Isa* out) noexcept;

/// Highest tier the host CPU supports (cpuid, cached after first call).
/// kAvx2 requires AVX2 and FMA; kAvx512 additionally AVX-512F.
[[nodiscard]] Isa best_supported_isa() noexcept;

/// True when the host can execute `isa`'s kernels.
[[nodiscard]] bool isa_supported(Isa isa) noexcept;

/// The ISA every dispatched kernel table uses right now. Resolved once on
/// first use: DGS_FORCE_ISA if set (clamped to host support, with a
/// warning when clamped), else best_supported_isa(); the resolution is
/// logged at info level. A single relaxed atomic load afterwards — safe
/// and allocation-free on any hot path.
[[nodiscard]] Isa active_isa() noexcept;

/// Pin the active ISA at runtime (tests, the --force-isa bench flag).
/// Requests above host support are clamped to best_supported_isa() with a
/// warning. Returns the ISA actually installed. Not thread-safe against
/// concurrently running kernels — call between runs, like the intra-op
/// budget.
Isa set_forced_isa(Isa isa) noexcept;

/// RAII pin: forces `isa` for the scope, restores the previous active ISA
/// on destruction. The per-ISA equivalence tests iterate supported tiers
/// with this.
class ForcedIsaScope {
 public:
  explicit ForcedIsaScope(Isa isa) noexcept : previous_(active_isa()) {
    set_forced_isa(isa);
  }
  ~ForcedIsaScope() { set_forced_isa(previous_); }
  ForcedIsaScope(const ForcedIsaScope&) = delete;
  ForcedIsaScope& operator=(const ForcedIsaScope&) = delete;

 private:
  Isa previous_;
};

}  // namespace dgs::util
