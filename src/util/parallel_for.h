// Deterministic intra-op fork/join parallelism.
//
// ParallelFor is a persistent worker pool (threads are spawned once and
// parked on a condition variable between jobs) that partitions an index
// range [0, n) into one contiguous, `align`-rounded slice per thread. The
// partition is a pure function of (n, align, thread count) — never of
// scheduling — so a kernel that reduces within its slice in serial order
// (the packed GEMM partitions by output-row blocks; every output element
// keeps its full serial reduction) produces results bitwise identical to
// single-threaded execution for any thread count.
//
// The per-thread intra-op budget (set_intra_op_threads) is how the engines
// divide the machine: worker-level parallelism owns the threads, and each
// worker grants its compute kernels at most `threads_per_worker` lanes, so
// the two levels never oversubscribe (see core/config.h and DESIGN.md §13).
// The budget and its lazily-built pool are thread-local: pools are never
// shared across engine workers, and nested ParallelFor bodies see a budget
// of 1 (workers start with the default), so recursion cannot fan out.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace dgs::util {

class ParallelFor {
 public:
  /// Plain-function body: no std::function, so dispatch from a hot loop
  /// performs zero heap allocations.
  using RawBody = void (*)(void* ctx, std::size_t begin, std::size_t end);

  /// A pool that fans out over `threads` lanes total: the calling thread
  /// runs slice 0 and `threads - 1` parked workers run the rest. 0 and 1
  /// both mean "serial" (no workers are spawned).
  explicit ParallelFor(std::size_t threads);
  ~ParallelFor();

  ParallelFor(const ParallelFor&) = delete;
  ParallelFor& operator=(const ParallelFor&) = delete;

  /// Total lanes (calling thread included).
  [[nodiscard]] std::size_t threads() const noexcept {
    return workers_.size() + 1;
  }

  /// Run body over a static partition of [0, n): slice boundaries are
  /// multiples of `align` (the last slice takes the remainder), empty
  /// slices are skipped, and the call returns after every slice finished.
  /// Blocking fork/join: not reentrant, single owner per pool.
  void run(std::size_t n, std::size_t align, RawBody body, void* ctx);

  /// Convenience adapter for lambdas; the callable must outlive the call
  /// (it does: run() joins before returning).
  template <typename F>
  void run(std::size_t n, std::size_t align, F&& f) {
    run(n, align,
        [](void* ctx, std::size_t begin, std::size_t end) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(begin, end);
        },
        &f);
  }

  /// The slice lane `t` of `parts` owns: a pure function of its arguments,
  /// exposed for the partition-coverage tests.
  struct Slice {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  [[nodiscard]] static Slice slice_of(std::size_t n, std::size_t align,
                                      std::size_t t,
                                      std::size_t parts) noexcept;

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  RawBody body_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_align_ = 1;
  std::uint64_t epoch_ = 0;    ///< Bumped per job; workers latch onto it.
  std::size_t pending_ = 0;    ///< Workers still inside the current job.
  bool shutdown_ = false;
};

/// Set this thread's intra-op budget: how many lanes parallel kernels
/// (currently the packed GEMM layer) may fan out over. Defaults to 1
/// (serial). The backing pool is created lazily on first parallel use and
/// torn down when the budget changes or the thread exits.
void set_intra_op_threads(std::size_t n);

/// This thread's current intra-op budget (>= 1).
[[nodiscard]] std::size_t intra_op_threads() noexcept;

/// This thread's pool, created on demand; nullptr when the budget is 1.
[[nodiscard]] ParallelFor* intra_op_pool();

/// RAII budget override for an engine run: sets the calling thread's
/// budget, restores the previous value on destruction.
class IntraOpBudgetScope {
 public:
  explicit IntraOpBudgetScope(std::size_t n) : previous_(intra_op_threads()) {
    set_intra_op_threads(n);
  }
  ~IntraOpBudgetScope() { set_intra_op_threads(previous_); }
  IntraOpBudgetScope(const IntraOpBudgetScope&) = delete;
  IntraOpBudgetScope& operator=(const IntraOpBudgetScope&) = delete;

 private:
  std::size_t previous_;
};

}  // namespace dgs::util
