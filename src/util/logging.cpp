#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace dgs::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<LogSink> g_sink{nullptr};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  std::string line = "[";
  line += level_name(level);
  line += "] ";
  line += message;
  if (LogSink sink = g_sink.load(std::memory_order_acquire)) {
    sink(level, line);
    return;
  }
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace dgs::util
