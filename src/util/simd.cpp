#include "util/simd.h"

#include <atomic>
#include <cstdlib>

#include "util/logging.h"

namespace dgs::util {

namespace {

// __builtin_cpu_supports reads cpuid through the compiler runtime; it is
// cheap but not free, so both detection and resolution are cached.
Isa detect_best_isa() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return Isa::kAvx2;
#endif
  return Isa::kScalar;
}

// Resolved active ISA + a "resolved yet" flag. Plain atomics (no
// std::once_flag: its libstdc++ implementation can allocate on some
// paths, and active_isa() must stay allocation-free for the steady-state
// kernel dispatch). The resolve race is benign: both threads compute the
// same value from the same environment.
std::atomic<int> g_active{-1};

Isa clamp_to_host(Isa requested, const char* origin) noexcept {
  if (isa_supported(requested)) return requested;
  const Isa best = best_supported_isa();
  DGS_LOG(kWarn) << "simd: " << origin << " requested " << isa_name(requested)
                 << " but host only supports " << isa_name(best)
                 << "; clamping";
  return best;
}

Isa resolve() noexcept {
  Isa resolved = best_supported_isa();
  const char* origin = "auto";
  if (const char* env = std::getenv("DGS_FORCE_ISA");
      env != nullptr && *env != '\0') {
    Isa forced;
    if (parse_isa(env, &forced)) {
      resolved = clamp_to_host(forced, "DGS_FORCE_ISA");
      origin = "DGS_FORCE_ISA";
    } else {
      DGS_LOG(kWarn) << "simd: DGS_FORCE_ISA='" << env
                     << "' is not scalar|avx2|avx512; ignoring";
    }
  }
  DGS_LOG(kInfo) << "simd: dispatch resolved to " << isa_name(resolved)
                 << " (host supports " << isa_name(best_supported_isa())
                 << ", source: " << origin << ")";
  return resolved;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "scalar";
}

bool parse_isa(std::string_view name, Isa* out) noexcept {
  if (name == "scalar") {
    *out = Isa::kScalar;
  } else if (name == "avx2") {
    *out = Isa::kAvx2;
  } else if (name == "avx512") {
    *out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

Isa best_supported_isa() noexcept {
  static const Isa best = detect_best_isa();
  return best;
}

bool isa_supported(Isa isa) noexcept {
  return isa_index(isa) <= isa_index(best_supported_isa());
}

Isa active_isa() noexcept {
  int current = g_active.load(std::memory_order_relaxed);
  if (current < 0) {
    current = isa_index(resolve());
    int expected = -1;
    // First resolver wins; a concurrent set_forced_isa() is not clobbered.
    g_active.compare_exchange_strong(expected, current,
                                     std::memory_order_relaxed);
    current = g_active.load(std::memory_order_relaxed);
  }
  return static_cast<Isa>(current);
}

Isa set_forced_isa(Isa isa) noexcept {
  const Isa installed = clamp_to_host(isa, "set_forced_isa");
  g_active.store(isa_index(installed), std::memory_order_relaxed);
  return installed;
}

}  // namespace dgs::util
