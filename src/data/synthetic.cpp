#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace dgs::data {

SyntheticSpec SyntheticSpec::synth_cifar(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_train = 4096;
  spec.num_test = 2048;
  spec.feature_dim = 64;
  spec.num_classes = 10;
  spec.latent_dim = 16;
  spec.teacher_width = 48;
  spec.latent_jitter = 0.9f;
  spec.feature_noise = 0.25f;
  spec.label_noise = 0.05f;
  spec.seed = seed;
  return spec;
}

SyntheticSpec SyntheticSpec::synth_imagenet(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.num_train = 8192;
  spec.num_test = 2048;
  spec.feature_dim = 128;
  spec.num_classes = 50;
  spec.latent_dim = 24;
  spec.teacher_width = 96;
  spec.latent_jitter = 1.4f;
  spec.feature_noise = 0.35f;
  spec.label_noise = 0.12f;
  spec.seed = seed;
  return spec;
}

namespace {

/// Frozen two-layer tanh teacher: features = W2 tanh(W1 z + b1) + b2,
/// where z = [one_hot(class) * margin ; jitter].
class Teacher {
 public:
  Teacher(const SyntheticSpec& spec, util::Rng& rng)
      : classes_(spec.num_classes),
        latent_(spec.num_classes + spec.latent_dim),
        width_(spec.teacher_width),
        dim_(spec.feature_dim),
        w1_(width_ * latent_),
        b1_(width_),
        w2_(dim_ * width_),
        b2_(dim_) {
    const float s1 = 1.0f / std::sqrt(static_cast<float>(latent_));
    const float s2 = 1.0f / std::sqrt(static_cast<float>(width_));
    for (auto& v : w1_) v = rng.normal(0.0f, s1 * 2.0f);
    for (auto& v : b1_) v = rng.normal(0.0f, 0.3f);
    for (auto& v : w2_) v = rng.normal(0.0f, s2 * 2.0f);
    for (auto& v : b2_) v = rng.normal(0.0f, 0.3f);
  }

  void sample(std::size_t label, float jitter_std, float noise_std,
              util::Rng& rng, float* out) const {
    std::vector<float> z(latent_, 0.0f);
    z[label] = 2.0f;  // class margin in latent space
    for (std::size_t i = classes_; i < latent_; ++i)
      z[i] = rng.normal(0.0f, jitter_std);
    std::vector<float> h(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      double acc = b1_[i];
      const float* row = w1_.data() + i * latent_;
      for (std::size_t j = 0; j < latent_; ++j) acc += static_cast<double>(row[j]) * z[j];
      h[i] = std::tanh(static_cast<float>(acc));
    }
    for (std::size_t i = 0; i < dim_; ++i) {
      double acc = b2_[i];
      const float* row = w2_.data() + i * width_;
      for (std::size_t j = 0; j < width_; ++j) acc += static_cast<double>(row[j]) * h[j];
      out[i] = static_cast<float>(acc) + rng.normal(0.0f, noise_std);
    }
  }

 private:
  std::size_t classes_, latent_, width_, dim_;
  std::vector<float> w1_, b1_, w2_, b2_;
};

std::shared_ptr<const InMemoryDataset> make_split(const SyntheticSpec& spec,
                                                  const Teacher& teacher,
                                                  std::size_t count,
                                                  util::Rng& rng) {
  std::vector<float> features(count * spec.feature_dim);
  std::vector<std::int32_t> labels(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto true_label =
        static_cast<std::size_t>(rng.below(spec.num_classes));
    teacher.sample(true_label, spec.latent_jitter, spec.feature_noise, rng,
                   features.data() + i * spec.feature_dim);
    // Label noise: with probability rho the recorded label is re-drawn
    // uniformly, capping achievable top-1 at ~ (1-rho) + rho/classes.
    std::size_t label = true_label;
    if (rng.uniform() < spec.label_noise)
      label = static_cast<std::size_t>(rng.below(spec.num_classes));
    labels[i] = static_cast<std::int32_t>(label);
  }
  return std::make_shared<InMemoryDataset>(spec.feature_dim, spec.num_classes,
                                           std::move(features), std::move(labels));
}

}  // namespace

SyntheticDataset make_synthetic(const SyntheticSpec& spec) {
  util::Rng teacher_rng(spec.seed);
  Teacher teacher(spec, teacher_rng);
  util::Rng train_rng = teacher_rng.fork(1);
  util::Rng test_rng = teacher_rng.fork(2);
  SyntheticDataset out;
  out.train = make_split(spec, teacher, spec.num_train, train_rng);
  out.test = make_split(spec, teacher, spec.num_test, test_rng);
  return out;
}

}  // namespace dgs::data
