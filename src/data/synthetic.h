// Synthetic classification datasets standing in for CIFAR-10 / ImageNet.
//
// The paper's evaluation compares the *relative* convergence of five
// optimizers on a fixed task; the task itself only needs to be (a) genuinely
// nonlinear, (b) learnable to a controllable accuracy ceiling, and (c)
// deterministic. We generate samples through a frozen random "teacher"
// network: a class-conditioned latent (one-hot class code + Gaussian jitter)
// is pushed through two random tanh layers to produce features, then feature
// noise and label noise are added. Label noise sets a hard accuracy ceiling
// (~ (1-rho) + rho/classes), mirroring how CIFAR-10/ImageNet cap top-1 well
// below 100%; the latent jitter and feature noise control task difficulty so
// the methods separate the same way they do in the paper.
#pragma once

#include <cstdint>
#include <memory>

#include "data/dataset.h"

namespace dgs::data {

struct SyntheticSpec {
  std::size_t num_train = 4096;
  std::size_t num_test = 1024;
  std::size_t feature_dim = 64;
  std::size_t num_classes = 10;
  std::size_t latent_dim = 16;     ///< Gaussian jitter dimension.
  std::size_t teacher_width = 48;  ///< Hidden width of the frozen teacher.
  float latent_jitter = 0.9f;      ///< Std of class-latent jitter.
  float feature_noise = 0.25f;     ///< Std of additive feature noise.
  float label_noise = 0.05f;       ///< Fraction of uniformly re-drawn labels.
  std::uint64_t seed = 42;

  /// Defaults shaped like the paper's CIFAR-10 task (10 classes, moderate
  /// difficulty, ~93% ceiling).
  [[nodiscard]] static SyntheticSpec synth_cifar(std::uint64_t seed = 42);

  /// Defaults shaped like the paper's ImageNet task: more classes, higher
  /// dimension, lower ceiling (~70%), harder separation.
  [[nodiscard]] static SyntheticSpec synth_imagenet(std::uint64_t seed = 1337);
};

struct SyntheticDataset {
  std::shared_ptr<const InMemoryDataset> train;
  std::shared_ptr<const InMemoryDataset> test;
};

/// Generate train and test splits from the same frozen teacher (same seed
/// always yields bit-identical data).
[[nodiscard]] SyntheticDataset make_synthetic(const SyntheticSpec& spec);

}  // namespace dgs::data
