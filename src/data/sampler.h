// Mini-batch samplers. Each asynchronous worker owns one sampler over its
// shard of the training set, mirroring the per-GPU data loaders of the
// paper's PyTorch setup.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dgs::data {

/// Epoch-shuffled sampler over a contiguous shard of dataset indices.
/// Worker w of N gets indices {i : i % N == w}; each epoch the shard is
/// reshuffled deterministically from the seed.
class ShardSampler {
 public:
  ShardSampler(std::size_t dataset_size, std::size_t shard, std::size_t num_shards,
               std::size_t batch_size, std::uint64_t seed);

  /// Fill `out` with the next batch of dataset indices; reshuffles and wraps
  /// at epoch boundaries. Returns the (0-based) epoch the batch starts in.
  std::size_t next_batch(std::vector<std::size_t>& out);

  [[nodiscard]] std::size_t shard_size() const noexcept { return indices_.size(); }
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }
  /// Batches per epoch (ceiling division; last batch may wrap).
  [[nodiscard]] std::size_t batches_per_epoch() const noexcept;
  [[nodiscard]] std::size_t epoch() const noexcept { return epoch_; }

 private:
  void reshuffle();

  std::vector<std::size_t> indices_;
  std::size_t batch_size_;
  std::size_t cursor_ = 0;
  std::size_t epoch_ = 0;
  util::Rng rng_;
};

/// Uniform with-replacement sampler (used by some tests and the stress
/// benches where epoch boundaries are irrelevant).
class UniformSampler {
 public:
  UniformSampler(std::size_t dataset_size, std::size_t batch_size,
                 std::uint64_t seed)
      : dataset_size_(dataset_size), batch_size_(batch_size), rng_(seed) {}

  void next_batch(std::vector<std::size_t>& out) {
    out.resize(batch_size_);
    for (auto& i : out)
      i = static_cast<std::size_t>(rng_.below(dataset_size_));
  }

 private:
  std::size_t dataset_size_;
  std::size_t batch_size_;
  util::Rng rng_;
};

}  // namespace dgs::data
