#include "data/dataset.h"

#include <cstring>
#include <stdexcept>

namespace dgs::data {

InMemoryDataset::InMemoryDataset(std::size_t feature_dim, std::size_t num_classes,
                                 std::vector<float> features,
                                 std::vector<std::int32_t> labels)
    : feature_dim_(feature_dim),
      num_classes_(num_classes),
      features_(std::move(features)),
      labels_(std::move(labels)) {
  if (feature_dim_ == 0) throw std::invalid_argument("dataset: feature_dim == 0");
  if (features_.size() != labels_.size() * feature_dim_)
    throw std::invalid_argument("dataset: features/labels size mismatch");
  for (std::int32_t label : labels_)
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes_)
      throw std::invalid_argument("dataset: label out of range");
}

void InMemoryDataset::fill_batch(std::span<const std::size_t> indices,
                                 float* features_out,
                                 std::int32_t* labels_out) const {
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const std::size_t i = indices[b];
    if (i >= size()) throw std::out_of_range("dataset: index out of range");
    std::memcpy(features_out + b * feature_dim_,
                features_.data() + i * feature_dim_, feature_dim_ * sizeof(float));
    labels_out[b] = labels_[i];
  }
}

}  // namespace dgs::data
