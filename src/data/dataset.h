// Dataset interface and the in-memory implementation backing all synthetic
// datasets. Features are flat float vectors; models reshape per ModelSpec.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dgs::data {

class Dataset {
 public:
  virtual ~Dataset() = default;

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  [[nodiscard]] virtual std::size_t feature_dim() const noexcept = 0;
  [[nodiscard]] virtual std::size_t num_classes() const noexcept = 0;

  /// Copy the samples at `indices` into caller-provided storage.
  /// `features_out` must hold indices.size() * feature_dim() floats.
  virtual void fill_batch(std::span<const std::size_t> indices,
                          float* features_out,
                          std::int32_t* labels_out) const = 0;
};

class InMemoryDataset final : public Dataset {
 public:
  InMemoryDataset(std::size_t feature_dim, std::size_t num_classes,
                  std::vector<float> features, std::vector<std::int32_t> labels);

  [[nodiscard]] std::size_t size() const noexcept override { return labels_.size(); }
  [[nodiscard]] std::size_t feature_dim() const noexcept override {
    return feature_dim_;
  }
  [[nodiscard]] std::size_t num_classes() const noexcept override {
    return num_classes_;
  }

  void fill_batch(std::span<const std::size_t> indices, float* features_out,
                  std::int32_t* labels_out) const override;

  [[nodiscard]] std::span<const float> features_of(std::size_t i) const {
    return {features_.data() + i * feature_dim_, feature_dim_};
  }
  [[nodiscard]] std::int32_t label_of(std::size_t i) const { return labels_.at(i); }

 private:
  std::size_t feature_dim_;
  std::size_t num_classes_;
  std::vector<float> features_;
  std::vector<std::int32_t> labels_;
};

}  // namespace dgs::data
