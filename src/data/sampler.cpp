#include "data/sampler.h"

#include <stdexcept>

namespace dgs::data {

ShardSampler::ShardSampler(std::size_t dataset_size, std::size_t shard,
                           std::size_t num_shards, std::size_t batch_size,
                           std::uint64_t seed)
    : batch_size_(batch_size), rng_(seed) {
  if (num_shards == 0 || shard >= num_shards)
    throw std::invalid_argument("ShardSampler: bad shard index");
  if (batch_size == 0) throw std::invalid_argument("ShardSampler: batch_size == 0");
  for (std::size_t i = shard; i < dataset_size; i += num_shards)
    indices_.push_back(i);
  if (indices_.empty())
    throw std::invalid_argument("ShardSampler: empty shard");
  reshuffle();
}

std::size_t ShardSampler::batches_per_epoch() const noexcept {
  return (indices_.size() + batch_size_ - 1) / batch_size_;
}

std::size_t ShardSampler::next_batch(std::vector<std::size_t>& out) {
  out.clear();
  out.reserve(batch_size_);
  // Wrap before recording the epoch so a batch that begins exactly at the
  // shard boundary is attributed to the new epoch.
  if (cursor_ == indices_.size()) {
    cursor_ = 0;
    ++epoch_;
    reshuffle();
  }
  const std::size_t start_epoch = epoch_;
  while (out.size() < batch_size_) {
    if (cursor_ == indices_.size()) {
      cursor_ = 0;
      ++epoch_;
      reshuffle();
    }
    out.push_back(indices_[cursor_++]);
  }
  return start_epoch;
}

void ShardSampler::reshuffle() {
  util::shuffle(indices_.data(), indices_.size(), rng_);
}

}  // namespace dgs::data
