// Shared low-level primitives for the sparse wire formats: little-endian
// byte readers/writers (lifted out of codec.cpp so every codec stage uses
// one bounds-checked implementation) and LSB-first bit streams for the
// Golomb-Rice index coding of the SBC format (compressor.h).
//
// Reader/BitReader throw std::runtime_error on any out-of-bounds read, so a
// truncated or hostile payload is rejected before any oversized allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace dgs::sparse::wire {

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void f32(float v) { raw(&v, sizeof(v)); }
  void f32s(std::span<const float> v) { raw(v.data(), v.size() * sizeof(float)); }
  void u32s(std::span<const std::uint32_t> v) {
    raw(v.data(), v.size() * sizeof(std::uint32_t));
  }
  void bytes(std::span<const std::uint8_t> v) { raw(v.data(), v.size()); }

 private:
  void raw(const void* p, std::size_t n) {
    if (n == 0) return;  // empty span => p may be null
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}
  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint16_t u16() {
    std::uint16_t v;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof(v));
    return v;
  }
  float f32() {
    float v;
    raw(&v, sizeof(v));
    return v;
  }
  void f32s(std::span<float> v) { raw(v.data(), v.size() * sizeof(float)); }
  void u32s(std::span<std::uint32_t> v) {
    raw(v.data(), v.size() * sizeof(std::uint32_t));
  }
  /// Borrow the next `n` bytes without copying (for bit streams / sign
  /// bitmaps); the view stays valid as long as the input payload does.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
    if (n > remaining()) throw std::runtime_error("codec: truncated payload");
    const std::span<const std::uint8_t> view = in_.subspan(pos_, n);
    pos_ += n;
    return view;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == in_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return in_.size() - pos_;
  }

 private:
  void raw(void* p, std::size_t n) {
    if (n > remaining()) throw std::runtime_error("codec: truncated payload");
    if (n == 0) return;  // empty destination span => p may be null
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

/// Appends bits LSB-first within each byte. finish() zero-pads the last
/// partial byte; bits() is the exact payload bit count (pad excluded).
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void put(std::uint32_t value, unsigned count) {
    for (unsigned b = 0; b < count; ++b) put_bit((value >> b) & 1u);
  }
  void put_unary(std::uint32_t q) {  // q ones terminated by a zero
    for (std::uint32_t i = 0; i < q; ++i) put_bit(1);
    put_bit(0);
  }
  void finish() {
    if (fill_ > 0) {
      out_.push_back(cur_);
      cur_ = 0;
      fill_ = 0;
    }
  }
  [[nodiscard]] std::uint64_t bits() const noexcept { return bits_; }

 private:
  void put_bit(std::uint32_t b) {
    cur_ |= static_cast<std::uint8_t>((b & 1u) << fill_);
    if (++fill_ == 8) {
      out_.push_back(cur_);
      cur_ = 0;
      fill_ = 0;
    }
    ++bits_;
  }
  std::vector<std::uint8_t>& out_;
  std::uint8_t cur_ = 0;
  unsigned fill_ = 0;
  std::uint64_t bits_ = 0;
};

/// Bounded LSB-first bit reader over a borrowed byte span. Reads past the
/// end throw (truncated stream); unary runs are capped by the caller so a
/// stream of 0xFF bytes cannot spin the decoder.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> in) : in_(in) {}

  [[nodiscard]] std::uint32_t get(unsigned count) {
    std::uint32_t value = 0;
    for (unsigned b = 0; b < count; ++b) value |= get_bit() << b;
    return value;
  }
  /// Count of 1-bits before the terminating 0; throws when the run exceeds
  /// `cap` (a corrupt stream, since the caller knows the maximum gap).
  [[nodiscard]] std::uint32_t get_unary(std::uint32_t cap) {
    std::uint32_t q = 0;
    while (get_bit() != 0)
      if (++q > cap) throw std::runtime_error("codec: unary run too long");
    return q;
  }
  [[nodiscard]] std::uint64_t consumed() const noexcept { return pos_; }
  /// Every unread bit must be 0 (the writer's zero padding); rejects
  /// streams carrying trailing garbage.
  void expect_zero_padding() {
    while (pos_ < 8 * static_cast<std::uint64_t>(in_.size()))
      if (get_bit() != 0) throw std::runtime_error("codec: nonzero bit padding");
  }

 private:
  [[nodiscard]] std::uint32_t get_bit() {
    if (pos_ >= 8 * static_cast<std::uint64_t>(in_.size()))
      throw std::runtime_error("codec: truncated bit stream");
    const std::uint32_t bit = (in_[pos_ / 8] >> (pos_ % 8)) & 1u;
    ++pos_;
    return bit;
  }
  std::span<const std::uint8_t> in_;
  std::uint64_t pos_ = 0;
};

}  // namespace dgs::sparse::wire
