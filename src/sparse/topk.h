// Top-k magnitude threshold selection.
//
// The paper (Algorithms 1-3) sparsifies per layer: "thr <- R% of |u[j]|;
// Mask <- |u[j]| > thr". We define the threshold as the k-th largest
// magnitude with k = ceil(R/100 * n), and keep entries with |v| >= thr.
// With R=100 the threshold is the minimum magnitude, so everything is kept
// and the sparsified path degenerates to the dense one (needed for the
// Eq. 5 "DGS without sparsification == ASGD" identity). Ties at the
// threshold may keep slightly more than k entries; this is deterministic.
#pragma once

#include <cstddef>
#include <span>

#include "util/rng.h"

namespace dgs::sparse {

/// Number of entries kept at ratio R (in percent) of n: ceil(R/100 * n),
/// clamped to [1, n] for non-empty input (we always send at least one value
/// so progress is guaranteed even for tiny layers).
[[nodiscard]] std::size_t keep_count(std::size_t n, double ratio_percent) noexcept;

/// Exact k-th largest magnitude of `values` (k in [1, n]). O(n) average via
/// nth_element on a scratch copy.
[[nodiscard]] float kth_largest_magnitude(std::span<const float> values,
                                          std::size_t k);

/// Threshold for keeping the top R% magnitudes of `values`.
/// Returns 0 for empty input (mask keeps everything).
[[nodiscard]] float topk_threshold(std::span<const float> values,
                                   double ratio_percent);

/// Approximate threshold estimated from a uniform sample, as used by DGC for
/// very large layers: samples `sample_size` entries, takes their top-R%
/// threshold. Falls back to the exact method when n <= sample_size.
[[nodiscard]] float sampled_topk_threshold(std::span<const float> values,
                                           double ratio_percent,
                                           std::size_t sample_size,
                                           util::Rng& rng);

/// Count of entries with |v| >= thr.
[[nodiscard]] std::size_t count_above(std::span<const float> values,
                                      float thr) noexcept;

}  // namespace dgs::sparse
