// Top-k magnitude threshold selection.
//
// The paper (Algorithms 1-3) sparsifies per layer: "thr <- R% of |u[j]|;
// Mask <- |u[j]| > thr". We define the threshold as the k-th largest
// magnitude with k = ceil(R/100 * n), and keep entries with |v| >= thr.
// With R=100 the threshold is the minimum magnitude, so everything is kept
// and the sparsified path degenerates to the dense one (needed for the
// Eq. 5 "DGS without sparsification == ASGD" identity). Ties at the
// threshold may keep slightly more than k entries; this is deterministic.
//
// Magnitudes are ordered by the IEEE-754 magnitude key (see select.h):
// denormals and ±0 order exactly as their float magnitudes, and NaN sorts
// above every finite value (so the returned threshold is never NaN).
//
// The free functions here are conveniences over a thread-local
// SparsifyWorkspace (exact O(n) histogram select, allocation-free in
// steady state). Hot paths that own a workspace should call it directly.
#pragma once

#include <cstddef>
#include <span>

#include "util/rng.h"

namespace dgs::sparse {

/// Number of entries kept at ratio R (in percent) of n: ceil(R/100 * n),
/// clamped to [1, n] for non-empty input (we always send at least one value
/// so progress is guaranteed even for tiny layers). Non-finite or negative
/// ratios clamp the same way: NaN/-R keep 1 entry, R >= 100 keeps all n.
[[nodiscard]] std::size_t keep_count(std::size_t n, double ratio_percent) noexcept;

/// Exact k-th largest magnitude of `values` (k in [1, n]). O(n) via the
/// two-pass histogram select; no scratch copy of the data.
[[nodiscard]] float kth_largest_magnitude(std::span<const float> values,
                                          std::size_t k);

/// Threshold for keeping the top R% magnitudes of `values`.
/// Returns 0 for empty input (mask keeps everything).
[[nodiscard]] float topk_threshold(std::span<const float> values,
                                   double ratio_percent);

/// Approximate threshold estimated from a uniform sample, as used by DGC for
/// very large layers: samples `sample_size` entries, takes their top-R%
/// threshold. Clamps to the exact method when n < 4 * sample_size — sampling
/// with replacement from a population that small is biased (duplicates
/// shadow distinct order statistics) and exact selection is O(n) anyway.
[[nodiscard]] float sampled_topk_threshold(std::span<const float> values,
                                           double ratio_percent,
                                           std::size_t sample_size,
                                           util::Rng& rng);

/// Count of entries with magnitude key >= key(thr), i.e. |v| >= thr with
/// NaN entries always counted and a NaN threshold treated as +inf.
[[nodiscard]] std::size_t count_above(std::span<const float> values,
                                      float thr) noexcept;

namespace reference {

/// Pre-kernel-layer implementations: heap-allocated scratch copy plus
/// nth_element. Kept as the independent oracle for the fused-kernel
/// property tests and as the denominator of the bench gate's
/// fused-vs-reference speedup ratio. Not on any hot path.
[[nodiscard]] float kth_largest_magnitude(std::span<const float> values,
                                          std::size_t k);
[[nodiscard]] float topk_threshold(std::span<const float> values,
                                   double ratio_percent);

}  // namespace reference

}  // namespace dgs::sparse
