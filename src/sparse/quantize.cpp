#include "sparse/quantize.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "sparse/coo.h"
#include "util/math_kernels.h"

namespace dgs::sparse {

namespace {

/// 2-bit codes for ternary values.
constexpr std::uint8_t kZero = 0b00;
constexpr std::uint8_t kPlus = 0b01;
constexpr std::uint8_t kMinus = 0b10;

void pack2(std::vector<std::uint8_t>& out, std::size_t index, std::uint8_t code) {
  const std::size_t byte = index / 4;
  const std::size_t shift = (index % 4) * 2;
  out[byte] |= static_cast<std::uint8_t>(code << shift);
}

std::uint8_t unpack2(const std::vector<std::uint8_t>& in, std::size_t index) {
  const std::size_t byte = index / 4;
  const std::size_t shift = (index % 4) * 2;
  return static_cast<std::uint8_t>((in[byte] >> shift) & 0b11);
}

}  // namespace

TernaryLayer ternary_quantize(std::uint32_t layer, std::span<const float> values,
                              util::Rng& rng) {
  TernaryLayer out;
  out.layer = layer;
  out.dense_size = static_cast<std::uint32_t>(values.size());
  // Scale over the *finite* magnitudes only: a NaN (or inf) entry must not
  // poison s for the whole layer. max_abs_finite is the dispatched exact
  // integer-key maximum — identical to the old isfinite/max scan.
  const float scale = util::max_abs_finite(values);
  out.scale = scale;
  out.packed.assign((values.size() + 3) / 4, 0);
  if (scale == 0.0f) return out;  // no finite magnitude: layer ships zero

  for (std::size_t i = 0; i < values.size(); ++i) {
    const float v = values[i];
    if (!std::isfinite(v)) {
      // NaN/±inf always ships at full scale with its sign bit (the select.h
      // policy: a poisoned entry is surfaced, never dropped — and
      // `uniform() < NaN` is false, which would drop it silently).
      pack2(out.packed, i, std::signbit(v) ? kMinus : kPlus);
      continue;
    }
    // b ~ Bernoulli(|v|/s): E[s * sign(v) * b] = v (unbiased).
    const double p = std::fabs(v) / scale;
    if (rng.uniform() < p)
      pack2(out.packed, i, v > 0.0f ? kPlus : kMinus);
    // else kZero (already zero-initialized; exact ±0 has p == 0)
  }
  return out;
}

std::vector<float> ternary_dequantize(const TernaryLayer& layer) {
  std::vector<float> out(layer.dense_size, 0.0f);
  for (std::size_t i = 0; i < out.size(); ++i) {
    switch (unpack2(layer.packed, i)) {
      case kPlus: out[i] = layer.scale; break;
      case kMinus: out[i] = -layer.scale; break;
      default: break;
    }
  }
  return out;
}

std::size_t encoded_size(const TernaryUpdate& update) noexcept {
  std::size_t n = 8;  // magic + num_layers
  for (const auto& layer : update.layers) n += layer.wire_bytes();
  return n;
}

std::vector<std::uint8_t> encode(const TernaryUpdate& update) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(update));
  auto put_u32 = [&](std::uint32_t v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), b, b + 4);
  };
  put_u32(kTernaryMagic);
  put_u32(static_cast<std::uint32_t>(update.layers.size()));
  for (const auto& layer : update.layers) {
    if (layer.packed.size() != (layer.dense_size + 3) / 4)
      throw std::invalid_argument("ternary encode: packed size mismatch");
    put_u32(layer.layer);
    put_u32(layer.dense_size);
    std::uint32_t scale_bits;
    std::memcpy(&scale_bits, &layer.scale, 4);
    put_u32(scale_bits);
    out.insert(out.end(), layer.packed.begin(), layer.packed.end());
  }
  return out;
}

TernaryUpdate decode_ternary(std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  auto get_u32 = [&]() {
    if (pos + 4 > bytes.size())
      throw std::runtime_error("ternary decode: truncated");
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + pos, 4);
    pos += 4;
    return v;
  };
  if (get_u32() != kTernaryMagic)
    throw std::runtime_error("ternary decode: bad magic");
  TernaryUpdate update;
  const std::uint32_t num_layers = get_u32();
  if (static_cast<std::size_t>(num_layers) * 12 > bytes.size() - pos)
    throw std::runtime_error("ternary decode: truncated");
  update.layers.resize(num_layers);
  for (auto& layer : update.layers) {
    layer.layer = get_u32();
    layer.dense_size = get_u32();
    const std::uint32_t scale_bits = get_u32();
    std::memcpy(&layer.scale, &scale_bits, 4);
    const std::size_t packed_size =
        (static_cast<std::size_t>(layer.dense_size) + 3) / 4;
    if (pos + packed_size > bytes.size())
      throw std::runtime_error("ternary decode: truncated payload");
    layer.packed.assign(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                        bytes.begin() + static_cast<std::ptrdiff_t>(pos + packed_size));
    pos += packed_size;
  }
  if (pos != bytes.size())
    throw std::runtime_error("ternary decode: trailing bytes");
  return update;
}

bool is_ternary_payload(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < 4) return false;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  return magic == kTernaryMagic;
}

QsgdLayer qsgd_quantize(std::uint32_t layer, std::span<const float> values,
                        util::Rng& rng) {
  QsgdLayer out;
  out.layer = layer;
  out.dense_size = static_cast<std::uint32_t>(values.size());
  // Norm over the finite entries only (one NaN would otherwise zero the
  // whole layer: NaN norm makes every level comparison false).
  double norm_sq = 0.0;
  for (float v : values)
    if (std::isfinite(v)) norm_sq += static_cast<double>(v) * v;
  out.norm = static_cast<float>(std::sqrt(norm_sq));
  // 5 bits per element: 1 sign bit + 4 level bits (levels = 15).
  out.packed.assign((values.size() * 5 + 7) / 8, 0);
  if (out.norm == 0.0f) return out;  // no finite mass: layer ships zero

  auto put_bits = [&](std::size_t bit_pos, std::uint8_t value, int bits) {
    for (int b = 0; b < bits; ++b) {
      if (value & (1u << b))
        out.packed[(bit_pos + static_cast<std::size_t>(b)) / 8] |=
            static_cast<std::uint8_t>(1u << ((bit_pos + static_cast<std::size_t>(b)) % 8));
    }
  };

  for (std::size_t i = 0; i < values.size(); ++i) {
    const float v = values[i];
    if (!std::isfinite(v)) {
      // NaN/±inf saturates to the top level with its sign bit — surfaced at
      // max magnitude, never silently zeroed (the select.h policy).
      put_bits(i * 5,
               static_cast<std::uint8_t>((std::signbit(v) ? 1 : 0) |
                                         (kQsgdLevels << 1)),
               5);
      continue;
    }
    const double ratio = std::fabs(v) / out.norm * kQsgdLevels;
    auto level = static_cast<std::uint32_t>(ratio);  // floor
    const double frac = ratio - level;
    if (rng.uniform() < frac) ++level;  // stochastic rounding (unbiased)
    if (level > kQsgdLevels) level = kQsgdLevels;
    const std::uint8_t sign = v < 0.0f ? 1 : 0;
    put_bits(i * 5, static_cast<std::uint8_t>(sign | (level << 1)), 5);
  }
  return out;
}

std::vector<float> qsgd_dequantize(const QsgdLayer& layer) {
  std::vector<float> out(layer.dense_size, 0.0f);
  auto get_bits = [&](std::size_t bit_pos, int bits) {
    std::uint8_t value = 0;
    for (int b = 0; b < bits; ++b) {
      const std::size_t at = bit_pos + static_cast<std::size_t>(b);
      if (layer.packed[at / 8] & (1u << (at % 8)))
        value |= static_cast<std::uint8_t>(1u << b);
    }
    return value;
  };
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint8_t bits = get_bits(i * 5, 5);
    const bool negative = bits & 1;
    const auto level = static_cast<float>(bits >> 1);
    const float magnitude = layer.norm * level / static_cast<float>(kQsgdLevels);
    out[i] = negative ? -magnitude : magnitude;
  }
  return out;
}

LayerChunk random_drop(std::uint32_t layer, std::span<const float> values,
                       double keep_probability, util::Rng& rng) {
  if (!(keep_probability > 0.0 && keep_probability <= 1.0))
    throw std::invalid_argument("random_drop: keep probability in (0, 1]");
  LayerChunk chunk;
  chunk.layer = layer;
  chunk.dense_size = static_cast<std::uint32_t>(values.size());
  const auto inv_p = static_cast<float>(1.0 / keep_probability);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] == 0.0f) continue;  // exact ±0 carries no update
    // NaN is kept unconditionally (and unscaled — NaN * 1/p is still NaN):
    // dropping it with probability 1-p would hide a poisoned coordinate.
    if (std::isnan(values[i])) {
      chunk.idx.push_back(static_cast<std::uint32_t>(i));
      chunk.val.push_back(values[i]);
      continue;
    }
    if (rng.uniform() < keep_probability) {
      chunk.idx.push_back(static_cast<std::uint32_t>(i));
      chunk.val.push_back(values[i] * inv_p);  // unbiased rescaling
    }
  }
  return chunk;
}

}  // namespace dgs::sparse

namespace dgs::sparse {

void encode_sparse_ternary_into(const SparseUpdate& update,
                                std::vector<std::uint8_t>& out) {
  out.clear();
  std::size_t total = 8;  // magic + num_layers
  for (const auto& c : update.layers) total += 16 + c.nnz() * 4 + (c.nnz() + 7) / 8;
  out.reserve(total);
  auto put_u32 = [&](std::uint32_t v) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), b, b + 4);
  };
  put_u32(kSparseTernaryMagic);
  put_u32(static_cast<std::uint32_t>(update.layers.size()));
  for (const auto& chunk : update.layers) {
    // util::amax has exactly this loop's semantics (NaN skipped via the
    // std::max operand order, inf included) behind the ISA dispatch.
    const float scale = util::amax(chunk.val);
    put_u32(chunk.layer);
    put_u32(chunk.dense_size);
    put_u32(static_cast<std::uint32_t>(chunk.nnz()));
    std::uint32_t scale_bits;
    std::memcpy(&scale_bits, &scale, 4);
    put_u32(scale_bits);
    for (std::uint32_t idx : chunk.idx) put_u32(idx);
    const std::size_t sign_base = out.size();
    out.resize(sign_base + (chunk.nnz() + 7) / 8, 0);
    for (std::size_t i = 0; i < chunk.nnz(); ++i) {
      const float v = chunk.val[i];
      if (std::fabs(std::fabs(v) - scale) > 1e-6f * std::max(scale, 1e-20f))
        throw std::invalid_argument(
            "encode_sparse_ternary: value is not +/- the layer scale");
      if (v < 0.0f)
        out[sign_base + i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
}

std::vector<std::uint8_t> encode_sparse_ternary(const SparseUpdate& update) {
  std::vector<std::uint8_t> out;
  encode_sparse_ternary_into(update, out);
  return out;
}

SparseUpdate decode_sparse_ternary(std::span<const std::uint8_t> bytes) {
  std::size_t pos = 0;
  auto get_u32 = [&]() {
    if (pos + 4 > bytes.size())
      throw std::runtime_error("sparse-ternary decode: truncated");
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + pos, 4);
    pos += 4;
    return v;
  };
  if (get_u32() != kSparseTernaryMagic)
    throw std::runtime_error("sparse-ternary decode: bad magic");
  SparseUpdate update;
  const std::uint32_t num_layers = get_u32();
  if (static_cast<std::size_t>(num_layers) * 16 > bytes.size() - pos)
    throw std::runtime_error("sparse-ternary decode: truncated");
  update.layers.resize(num_layers);
  for (auto& chunk : update.layers) {
    chunk.layer = get_u32();
    chunk.dense_size = get_u32();
    const std::uint32_t nnz = get_u32();
    if (nnz > chunk.dense_size)
      throw std::runtime_error("sparse-ternary decode: nnz > dense_size");
    if (static_cast<std::size_t>(nnz) * 4 > bytes.size() - pos)
      throw std::runtime_error("sparse-ternary decode: truncated");
    float scale;
    const std::uint32_t scale_bits = get_u32();
    std::memcpy(&scale, &scale_bits, 4);
    chunk.idx.resize(nnz);
    for (auto& idx : chunk.idx) {
      idx = get_u32();
      if (idx >= chunk.dense_size)
        throw std::runtime_error("sparse-ternary decode: index out of range");
    }
    const std::size_t sign_bytes = (nnz + 7) / 8;
    if (pos + sign_bytes > bytes.size())
      throw std::runtime_error("sparse-ternary decode: truncated signs");
    chunk.val.resize(nnz);
    for (std::size_t i = 0; i < nnz; ++i) {
      const bool negative = bytes[pos + i / 8] & (1u << (i % 8));
      chunk.val[i] = negative ? -scale : scale;
    }
    pos += sign_bytes;
  }
  if (pos != bytes.size())
    throw std::runtime_error("sparse-ternary decode: trailing bytes");
  return update;
}

bool is_sparse_ternary_payload(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < 4) return false;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  return magic == kSparseTernaryMagic;
}

LayerChunk ternary_quantize_chunk(const LayerChunk& chunk, util::Rng& rng) {
  LayerChunk out;
  out.layer = chunk.layer;
  out.dense_size = chunk.dense_size;
  const float scale = util::max_abs_finite(chunk.val);
  if (scale == 0.0f) return out;  // no finite magnitude: nothing ships
  for (std::size_t i = 0; i < chunk.nnz(); ++i) {
    const float v = chunk.val[i];
    if (!std::isfinite(v)) {
      // Always ship NaN/±inf at full scale with its sign bit (see
      // ternary_quantize); `uniform() < NaN` is false and would drop it.
      out.idx.push_back(chunk.idx[i]);
      out.val.push_back(std::signbit(v) ? -scale : scale);
      continue;
    }
    if (rng.uniform() < std::fabs(v) / scale) {
      out.idx.push_back(chunk.idx[i]);
      out.val.push_back(v > 0.0f ? scale : -scale);
    }
  }
  return out;
}

}  // namespace dgs::sparse
