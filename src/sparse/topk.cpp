#include "sparse/topk.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "sparse/select.h"

namespace dgs::sparse {

namespace {

/// Workspace backing the free functions. Thread-local so concurrent server
/// shards / workers calling the conveniences never share scratch; each
/// thread pays for the histogram only once it selects on a large layer.
SparsifyWorkspace& tls_workspace() {
  thread_local SparsifyWorkspace ws;
  return ws;
}

}  // namespace

std::size_t keep_count(std::size_t n, double ratio_percent) noexcept {
  if (n == 0) return 0;
  const double frac = ratio_percent / 100.0;
  // Guard the double->size_t cast: a NaN or negative ratio must clamp to
  // "keep 1", not hit undefined behavior in the conversion.
  if (!(frac > 0.0)) return 1;
  if (frac >= 1.0) return n;
  const auto k = static_cast<std::size_t>(
      std::ceil(frac * static_cast<double>(n)));
  return std::clamp<std::size_t>(k, 1, n);
}

float kth_largest_magnitude(std::span<const float> values, std::size_t k) {
  if (values.empty()) return 0.0f;
  return tls_workspace().kth_magnitude(values, k);
}

float topk_threshold(std::span<const float> values, double ratio_percent) {
  if (values.empty()) return 0.0f;
  return kth_largest_magnitude(values, keep_count(values.size(), ratio_percent));
}

float sampled_topk_threshold(std::span<const float> values, double ratio_percent,
                             std::size_t sample_size, util::Rng& rng) {
  if (values.empty()) return 0.0f;
  // sampled_key, not sampled_select: only the threshold is wanted here, so
  // stay O(sample_size) and skip the exact kept-count pass over the input.
  return key_magnitude(
      tls_workspace().sampled_key(values, ratio_percent, sample_size, rng));
}

std::size_t count_above(std::span<const float> values, float thr) noexcept {
  return count_ge_key(values, magnitude_key(thr));
}

namespace reference {

float kth_largest_magnitude(std::span<const float> values, std::size_t k) {
  if (values.empty()) return 0.0f;
  k = std::clamp<std::size_t>(k, 1, values.size());
  // The historical path: copy every |v| into fresh scratch, nth_element it.
  // Magnitude keys keep the ordering NaN-safe and policy-identical.
  std::vector<std::uint32_t> keys(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    keys[i] = magnitude_key(values[i]);
  std::nth_element(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   keys.end(), std::greater<std::uint32_t>());
  return key_magnitude(keys[k - 1]);
}

float topk_threshold(std::span<const float> values, double ratio_percent) {
  if (values.empty()) return 0.0f;
  return kth_largest_magnitude(values, keep_count(values.size(), ratio_percent));
}

}  // namespace reference

}  // namespace dgs::sparse
