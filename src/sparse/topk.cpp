#include "sparse/topk.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dgs::sparse {

std::size_t keep_count(std::size_t n, double ratio_percent) noexcept {
  if (n == 0) return 0;
  const double frac = ratio_percent / 100.0;
  auto k = static_cast<std::size_t>(std::ceil(frac * static_cast<double>(n)));
  return std::clamp<std::size_t>(k, 1, n);
}

float kth_largest_magnitude(std::span<const float> values, std::size_t k) {
  if (values.empty()) return 0.0f;
  k = std::clamp<std::size_t>(k, 1, values.size());
  std::vector<float> mags(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) mags[i] = std::fabs(values[i]);
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   mags.end(), std::greater<float>());
  return mags[k - 1];
}

float topk_threshold(std::span<const float> values, double ratio_percent) {
  if (values.empty()) return 0.0f;
  return kth_largest_magnitude(values, keep_count(values.size(), ratio_percent));
}

float sampled_topk_threshold(std::span<const float> values, double ratio_percent,
                             std::size_t sample_size, util::Rng& rng) {
  if (values.size() <= sample_size || sample_size == 0)
    return topk_threshold(values, ratio_percent);
  std::vector<float> sample(sample_size);
  for (auto& s : sample)
    s = values[static_cast<std::size_t>(rng.below(values.size()))];
  return topk_threshold({sample.data(), sample.size()}, ratio_percent);
}

std::size_t count_above(std::span<const float> values, float thr) noexcept {
  std::size_t n = 0;
  for (float v : values)
    if (std::fabs(v) >= thr) ++n;
  return n;
}

}  // namespace dgs::sparse
