#include "sparse/compressor.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "sparse/quantize.h"
#include "sparse/wire.h"

namespace dgs::sparse {

namespace {

// ------------------------------------------------------------ DGSQ helpers

/// Smallest power of two >= absmax / qmax (0 when absmax is not positive).
/// A power-of-two scale makes q * scale exact in f32 for |q| <= qmax, and
/// survives the encoder's re-derivation (max|val| = qmax * 2^e divides back
/// to exactly 2^e), so transform / encode / decode all land on the same
/// bits.
float pow2_scale(float absmax, long qmax) {
  if (!(absmax > 0.0f)) return 0.0f;
  int exp = 0;
  const float m = std::frexp(absmax / static_cast<float>(qmax), &exp);
  return std::ldexp(1.0f, m == 0.5f ? exp - 1 : exp);
}

/// Quantize one value to the [-qmax, qmax] grid. Non-finite values saturate
/// to the largest magnitude code with their sign bit (the policy in
/// compressor.h: a poisoned coordinate ships at full scale, never silently
/// drops).
long quantize_value(float v, float scale, long qmax) {
  if (!std::isfinite(v)) return std::signbit(v) ? -qmax : qmax;
  const long q = std::lround(v / scale);
  return std::clamp(q, -qmax, qmax);
}

/// Max |v| over the finite entries (the scale basis for both lossy stages).
float finite_absmax(std::span<const float> values) noexcept {
  float absmax = 0.0f;
  for (float v : values)
    if (std::isfinite(v)) absmax = std::max(absmax, std::fabs(v));
  return absmax;
}

// --------------------------------------------------------- concrete stages

class CooCompressor final : public Compressor {
 public:
  [[nodiscard]] Codec codec() const noexcept override { return Codec::kCoo; }
  void encode_into(const SparseUpdate& update, Bytes& out) const override {
    sparse::encode_into(update, out);
  }
};

class DenseCompressor final : public Compressor {
 public:
  [[nodiscard]] Codec codec() const noexcept override { return Codec::kDense; }
  void encode_into(const SparseUpdate& update, Bytes& out) const override {
    // The densify staging keeps its per-layer buffers across calls
    // (thread-local: the stage itself is a shared singleton).
    static thread_local DenseUpdate scratch;
    scratch.layers.resize(update.layers.size());
    for (std::size_t j = 0; j < update.layers.size(); ++j) {
      scratch.layers[j].layer = update.layers[j].layer;
      densify_into(update.layers[j], scratch.layers[j].values);
    }
    sparse::encode_into(scratch, out);
  }
};

class TernaryCompressor final : public Compressor {
 public:
  [[nodiscard]] Codec codec() const noexcept override { return Codec::kTernary; }
  void encode_into(const SparseUpdate& update, Bytes& out) const override {
    out.clear();
    std::size_t size = 8;
    for (const auto& c : update.layers)
      size += 12 + (static_cast<std::size_t>(c.dense_size) + 3) / 4;
    out.reserve(size);
    wire::Writer w(out);
    w.u32(kTernaryMagic);
    w.u32(static_cast<std::uint32_t>(update.layers.size()));
    for (const auto& c : update.layers) {
      // The ternary contract: all values are +/- one scale per layer (the
      // quantizer ran in the worker algorithm; this stage only packs).
      float scale = 0.0f;
      for (float v : c.val) scale = std::max(scale, std::fabs(v));
      w.u32(c.layer);
      w.u32(c.dense_size);
      w.f32(scale);
      const std::size_t start = out.size();
      out.resize(start + (static_cast<std::size_t>(c.dense_size) + 3) / 4, 0);
      for (std::size_t i = 0; i < c.nnz(); ++i) {
        const float v = c.val[i];
        if (std::fabs(std::fabs(v) - scale) >
            1e-6f * std::max(scale, 1e-20f))
          throw std::invalid_argument(
              "ternary compressor: value is not +/- the layer scale");
        if (c.idx[i] >= c.dense_size)
          throw std::invalid_argument("ternary compressor: index out of range");
        const std::uint8_t code = v < 0.0f ? 0b10 : 0b01;
        out[start + c.idx[i] / 4] |=
            static_cast<std::uint8_t>(code << ((c.idx[i] % 4) * 2));
      }
    }
  }
};

class SparseTernaryCompressor final : public Compressor {
 public:
  [[nodiscard]] Codec codec() const noexcept override {
    return Codec::kSparseTernary;
  }
  void encode_into(const SparseUpdate& update, Bytes& out) const override {
    encode_sparse_ternary_into(update, out);
  }
};

class QuantCompressor final : public Compressor {
 public:
  explicit QuantCompressor(unsigned bits)
      : bits_(bits), qmax_(bits == 8 ? 127 : 7) {}

  [[nodiscard]] Codec codec() const noexcept override {
    return bits_ == 8 ? Codec::kQcoo8 : Codec::kQcoo4;
  }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  void transform(LayerChunk& chunk) const override {
    const float scale =
        pow2_scale(finite_absmax({chunk.val.data(), chunk.val.size()}), qmax_);
    if (scale == 0.0f) {  // no finite nonzero magnitude: nothing to send
      chunk.idx.clear();
      chunk.val.clear();
      return;
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < chunk.nnz(); ++i) {
      const long q = quantize_value(chunk.val[i], scale, qmax_);
      if (q == 0) continue;  // rounded to zero: drops out, stays in M - v_k
      chunk.idx[kept] = chunk.idx[i];
      chunk.val[kept] = static_cast<float>(q) * scale;
      ++kept;
    }
    chunk.idx.resize(kept);
    chunk.val.resize(kept);
  }

  void encode_into(const SparseUpdate& update, Bytes& out) const override {
    out.clear();
    out.reserve(encoded_size(update));  // COO size is a safe upper bound
    wire::Writer w(out);
    w.u32(kQuantMagic);
    w.u8(kQuantVersion);
    w.u8(static_cast<std::uint8_t>(bits_));
    w.u16(0);
    w.u32(static_cast<std::uint32_t>(update.layers.size()));
    for (const auto& c : update.layers) {
      if (c.idx.size() != c.val.size())
        throw std::invalid_argument("quant compressor: idx/val size mismatch");
      const float scale =
          pow2_scale(finite_absmax({c.val.data(), c.val.size()}), qmax_);
      // First pass: count surviving codes to pick the cheaper layout.
      std::size_t nnz = 0;
      if (scale != 0.0f)
        for (float v : c.val)
          if (quantize_value(v, scale, qmax_) != 0) ++nnz;
      const std::size_t sparse_bytes = nnz * 4 + (nnz * bits_ + 7) / 8;
      const std::size_t dense_bytes =
          (static_cast<std::size_t>(c.dense_size) * bits_ + 7) / 8;
      const std::uint8_t layout = dense_bytes < sparse_bytes ? 1 : 0;

      w.u32(c.layer);
      w.u32(c.dense_size);
      w.u32(static_cast<std::uint32_t>(nnz));
      w.f32(scale);
      w.u8(layout);
      w.u8(0);
      w.u8(0);
      w.u8(0);
      if (layout == 0) {
        for (std::size_t i = 0; i < c.nnz(); ++i) {
          if (c.idx[i] >= c.dense_size)
            throw std::invalid_argument("quant compressor: index out of range");
          if (scale != 0.0f && quantize_value(c.val[i], scale, qmax_) != 0)
            w.u32(c.idx[i]);
        }
        const std::size_t start = out.size();
        out.resize(start + (nnz * bits_ + 7) / 8, 0);
        std::size_t slot = 0;
        if (scale != 0.0f) {
          for (std::size_t i = 0; i < c.nnz(); ++i) {
            const long q = quantize_value(c.val[i], scale, qmax_);
            if (q == 0) continue;
            put_code(out, start, slot++, static_cast<std::uint8_t>(q + qmax_));
          }
        }
      } else {
        // Dense layout: every position carries a code; absent entries are
        // the zero code (qmax). Fill with the zero pattern, then overwrite.
        const std::size_t start = out.size();
        const std::uint8_t fill =
            bits_ == 8 ? static_cast<std::uint8_t>(qmax_)
                       : static_cast<std::uint8_t>(qmax_ | (qmax_ << 4));
        out.resize(start + dense_bytes, fill);
        if (bits_ == 4 && c.dense_size % 2 != 0)
          out.back() &= 0x0F;  // zero the pad nibble
        for (std::size_t i = 0; i < c.nnz(); ++i) {
          if (c.idx[i] >= c.dense_size)
            throw std::invalid_argument("quant compressor: index out of range");
          if (scale == 0.0f) continue;  // no finite mass: all-zero codes
          const long q = quantize_value(c.val[i], scale, qmax_);
          put_code(out, start, c.idx[i], static_cast<std::uint8_t>(q + qmax_));
        }
      }
    }
  }

 private:
  void put_code(Bytes& out, std::size_t start, std::size_t slot,
                std::uint8_t code) const {
    if (bits_ == 8) {
      out[start + slot] = code;
    } else {
      std::uint8_t& b = out[start + slot / 2];
      const unsigned shift = (slot % 2) * 4;
      b = static_cast<std::uint8_t>((b & ~(0x0F << shift)) | (code << shift));
    }
  }
  unsigned bits_;
  long qmax_;
};

class SbcCompressor final : public Compressor {
 public:
  [[nodiscard]] Codec codec() const noexcept override { return Codec::kSbc; }
  [[nodiscard]] bool lossy() const noexcept override { return true; }

  void transform(LayerChunk& chunk) const override {
    // mu = mean |v| over the finite nonzero entries; every kept entry
    // becomes +/-mu (non-finite entries keep their sign bit and ship at
    // mu — visible, per the NaN policy).
    double sum = 0.0;
    std::size_t n = 0;
    for (float v : chunk.val) {
      if (v == 0.0f || !std::isfinite(v)) continue;
      sum += std::fabs(static_cast<double>(v));
      ++n;
    }
    const float mu =
        n > 0 ? static_cast<float>(sum / static_cast<double>(n)) : 0.0f;
    if (!(mu > 0.0f)) {
      chunk.idx.clear();
      chunk.val.clear();
      return;
    }
    std::size_t kept = 0;
    for (std::size_t i = 0; i < chunk.nnz(); ++i) {
      const float v = chunk.val[i];
      if (v == 0.0f) continue;
      chunk.idx[kept] = chunk.idx[i];
      chunk.val[kept] = std::signbit(v) ? -mu : mu;
      ++kept;
    }
    chunk.idx.resize(kept);
    chunk.val.resize(kept);
  }

  void encode_into(const SparseUpdate& update, Bytes& out) const override {
    out.clear();
    out.reserve(12 + update.layers.size() * 24 + update.total_nnz() / 4);
    wire::Writer w(out);
    w.u32(kSbcMagic);
    w.u8(kSbcVersion);
    w.u8(0);
    w.u16(0);
    w.u32(static_cast<std::uint32_t>(update.layers.size()));
    for (const auto& c : update.layers) {
      if (c.idx.size() != c.val.size())
        throw std::invalid_argument("sbc compressor: idx/val size mismatch");
      const std::uint32_t nnz = static_cast<std::uint32_t>(c.nnz());
      // Derive mu from the first value instead of re-averaging: transform()
      // already put every entry on +/-mu, and bit-equality (not a
      // tolerance) is what keeps decode identical to what v_k was charged.
      const float mu = nnz > 0 ? std::fabs(c.val[0]) : 0.0f;
      std::uint32_t prev = 0;
      for (std::size_t i = 0; i < nnz; ++i) {
        if (c.val[i] != mu && c.val[i] != -mu)
          throw std::invalid_argument(
              "sbc compressor: values are not +/- one magnitude "
              "(call transform first)");
        if (c.idx[i] >= c.dense_size || (i > 0 && c.idx[i] <= prev))
          throw std::invalid_argument(
              "sbc compressor: indices must be ascending and in range");
        prev = c.idx[i];
      }
      const std::uint8_t k = rice_parameter(c);
      // Exact stream size: sum of (gap >> k) + 1 unary bits + k remainder
      // bits per entry.
      std::uint64_t bits = 0;
      for (std::size_t i = 0; i < nnz; ++i)
        bits += (gap_at(c, i) >> k) + 1 + k;
      const auto stream_bytes = static_cast<std::uint32_t>((bits + 7) / 8);

      w.u32(c.layer);
      w.u32(c.dense_size);
      w.u32(nnz);
      w.f32(mu);
      w.u8(k);
      w.u8(0);
      w.u8(0);
      w.u8(0);
      w.u32(stream_bytes);
      const std::size_t sign_start = out.size();
      out.resize(sign_start + (nnz + 7) / 8, 0);
      for (std::size_t i = 0; i < nnz; ++i)
        if (std::signbit(c.val[i]))
          out[sign_start + i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
      wire::BitWriter bw(out);
      for (std::size_t i = 0; i < nnz; ++i) {
        const std::uint32_t gap = gap_at(c, i);
        bw.put_unary(gap >> k);
        bw.put(gap, k);
      }
      bw.finish();
    }
  }

 private:
  /// Stored gap i: idx_0 for the first entry, idx_i - idx_{i-1} - 1 after.
  static std::uint32_t gap_at(const LayerChunk& c, std::size_t i) noexcept {
    return i == 0 ? c.idx[0] : c.idx[i] - c.idx[i - 1] - 1;
  }
  /// Rice parameter ~ floor(log2(mean gap)): within half a bit of the
  /// optimum for geometric gaps, which is what top-k index streams are.
  static std::uint8_t rice_parameter(const LayerChunk& c) noexcept {
    if (c.nnz() == 0) return 0;
    const std::uint64_t total =
        c.idx.back() - (static_cast<std::uint64_t>(c.nnz()) - 1);
    const std::uint64_t mean = total / c.nnz();
    if (mean < 2) return 0;
    return static_cast<std::uint8_t>(
        std::min<unsigned>(24, std::bit_width(mean) - 1));
  }
};

// ----------------------------------------------------------- decode helpers

DecodedLayer from_chunk(LayerChunk chunk) {
  DecodedLayer segment;
  segment.sparse = true;
  segment.chunk = std::move(chunk);
  return segment;
}

DecodedLayer from_dense(std::uint32_t layer, std::vector<float> values) {
  DecodedLayer segment;
  segment.sparse = false;
  segment.chunk.layer = layer;
  segment.chunk.dense_size = static_cast<std::uint32_t>(values.size());
  segment.dense = std::move(values);
  return segment;
}

DecodedUpdate decode_coo_entry(std::span<const std::uint8_t> bytes) {
  SparseUpdate chunks = decode(bytes);
  DecodedUpdate update;
  update.reserve(chunks.layers.size());
  for (auto& chunk : chunks.layers) update.push_back(from_chunk(std::move(chunk)));
  return update;
}

DecodedUpdate decode_dense_entry(std::span<const std::uint8_t> bytes) {
  DenseUpdate dense = decode_dense(bytes);
  DecodedUpdate update;
  update.reserve(dense.layers.size());
  for (auto& l : dense.layers)
    update.push_back(from_dense(l.layer, std::move(l.values)));
  return update;
}

DecodedUpdate decode_ternary_entry(std::span<const std::uint8_t> bytes) {
  const TernaryUpdate ternary = decode_ternary(bytes);
  DecodedUpdate update;
  update.reserve(ternary.layers.size());
  for (const auto& tl : ternary.layers)
    update.push_back(from_dense(tl.layer, ternary_dequantize(tl)));
  return update;
}

DecodedUpdate decode_sparse_ternary_entry(std::span<const std::uint8_t> bytes) {
  SparseUpdate chunks = decode_sparse_ternary(bytes);
  DecodedUpdate update;
  update.reserve(chunks.layers.size());
  for (auto& chunk : chunks.layers) update.push_back(from_chunk(std::move(chunk)));
  return update;
}

DecodedUpdate decode_sbc_entry(std::span<const std::uint8_t> bytes) {
  SparseUpdate chunks = decode_sbc(bytes);
  DecodedUpdate update;
  update.reserve(chunks.layers.size());
  for (auto& chunk : chunks.layers) update.push_back(from_chunk(std::move(chunk)));
  return update;
}

// ----------------------------------------------------------- format registry

struct WireFormat {
  std::uint32_t magic;
  const char* name;
  DecodedUpdate (*decode)(std::span<const std::uint8_t>);
};

/// Dispatch table for every format the system ever shipped. Order is
/// documentation only; lookup is by magic. The legacy formats are implicit
/// version 0 (no version byte) and must keep decoding forever — rejoin
/// snapshots and recorded payloads depend on it.
constexpr WireFormat kFormats[] = {
    {kSparseMagic, "coo", decode_coo_entry},
    {kDenseMagic, "dense", decode_dense_entry},
    {kTernaryMagic, "ternary", decode_ternary_entry},
    {kSparseTernaryMagic, "sparse-ternary", decode_sparse_ternary_entry},
    {kQuantMagic, "qcoo", decode_quantized},
    {kSbcMagic, "sbc", decode_sbc_entry},
};

const WireFormat* find_format(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < 4) return nullptr;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  for (const WireFormat& f : kFormats)
    if (f.magic == magic) return &f;
  return nullptr;
}

}  // namespace

const char* codec_name(Codec codec) noexcept {
  switch (codec) {
    case Codec::kCoo: return "coo";
    case Codec::kDense: return "dense";
    case Codec::kTernary: return "ternary";
    case Codec::kSparseTernary: return "sparse-ternary";
    case Codec::kQcoo8: return "q8";
    case Codec::kQcoo4: return "q4";
    case Codec::kSbc: return "sbc";
  }
  return "?";
}

Codec parse_codec(const std::string& text) {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (t == "coo") return Codec::kCoo;
  if (t == "dense") return Codec::kDense;
  if (t == "ternary") return Codec::kTernary;
  if (t == "sparse-ternary" || t == "sternary") return Codec::kSparseTernary;
  if (t == "q8" || t == "qcoo8") return Codec::kQcoo8;
  if (t == "q4" || t == "qcoo4") return Codec::kQcoo4;
  if (t == "sbc") return Codec::kSbc;
  throw std::invalid_argument("unknown codec: " + text);
}

const Compressor& compressor_for(Codec codec) {
  static const CooCompressor coo;
  static const DenseCompressor dense;
  static const TernaryCompressor ternary;
  static const SparseTernaryCompressor sparse_ternary;
  static const QuantCompressor q8(8);
  static const QuantCompressor q4(4);
  static const SbcCompressor sbc;
  switch (codec) {
    case Codec::kCoo: return coo;
    case Codec::kDense: return dense;
    case Codec::kTernary: return ternary;
    case Codec::kSparseTernary: return sparse_ternary;
    case Codec::kQcoo8: return q8;
    case Codec::kQcoo4: return q4;
    case Codec::kSbc: return sbc;
  }
  throw std::logic_error("compressor_for: unknown codec");
}

DecodedUpdate decode_any(std::span<const std::uint8_t> bytes) {
  const WireFormat* format = find_format(bytes);
  if (format == nullptr)
    throw std::runtime_error("decode: unknown wire format");
  return format->decode(bytes);
}

const char* payload_format_name(std::span<const std::uint8_t> bytes) noexcept {
  const WireFormat* format = find_format(bytes);
  return format != nullptr ? format->name : nullptr;
}

DecodedUpdate decode_quantized(std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  if (r.u32() != kQuantMagic)
    throw std::runtime_error("quantized decode: bad magic");
  if (r.u8() != kQuantVersion)
    throw std::runtime_error("quantized decode: unsupported version");
  const std::uint8_t bits = r.u8();
  if (bits != 8 && bits != 4)
    throw std::runtime_error("quantized decode: bad bit width");
  if (r.u16() != 0)
    throw std::runtime_error("quantized decode: nonzero reserved field");
  const long qmax = bits == 8 ? 127 : 7;
  const std::uint32_t num_layers = r.u32();
  if (static_cast<std::size_t>(num_layers) * 20 > r.remaining())
    throw std::runtime_error("quantized decode: truncated payload");

  auto code_at = [bits](std::span<const std::uint8_t> codes,
                        std::size_t slot) -> std::uint8_t {
    if (bits == 8) return codes[slot];
    return static_cast<std::uint8_t>((codes[slot / 2] >> ((slot % 2) * 4)) &
                                     0x0F);
  };

  DecodedUpdate update;
  update.reserve(num_layers);
  for (std::uint32_t l = 0; l < num_layers; ++l) {
    const std::uint32_t layer = r.u32();
    const std::uint32_t dense_size = r.u32();
    const std::uint32_t nnz = r.u32();
    const float scale = r.f32();
    const std::uint8_t layout = r.u8();
    if (r.u8() != 0 || r.u8() != 0 || r.u8() != 0)
      throw std::runtime_error("quantized decode: nonzero reserved field");
    if (nnz > dense_size)
      throw std::runtime_error("quantized decode: nnz > dense_size");

    if (layout == 0) {
      if (static_cast<std::size_t>(nnz) * 4 > r.remaining())
        throw std::runtime_error("quantized decode: truncated payload");
      LayerChunk chunk;
      chunk.layer = layer;
      chunk.dense_size = dense_size;
      chunk.idx.resize(nnz);
      r.u32s(chunk.idx);
      for (std::uint32_t i : chunk.idx)
        if (i >= dense_size)
          throw std::runtime_error("quantized decode: index out of range");
      const std::span<const std::uint8_t> codes =
          r.bytes((static_cast<std::size_t>(nnz) * bits + 7) / 8);
      if (bits == 4 && nnz % 2 != 0 && (codes.back() & 0xF0) != 0)
        throw std::runtime_error("quantized decode: nonzero nibble padding");
      chunk.val.resize(nnz);
      for (std::size_t i = 0; i < nnz; ++i) {
        const std::uint8_t code = code_at(codes, i);
        if (code > 2 * qmax)
          throw std::runtime_error("quantized decode: invalid code");
        chunk.val[i] =
            static_cast<float>(static_cast<long>(code) - qmax) * scale;
      }
      update.push_back(from_chunk(std::move(chunk)));
    } else if (layout == 1) {
      const std::span<const std::uint8_t> codes =
          r.bytes((static_cast<std::size_t>(dense_size) * bits + 7) / 8);
      if (bits == 4 && dense_size % 2 != 0 && (codes.back() & 0xF0) != 0)
        throw std::runtime_error("quantized decode: nonzero nibble padding");
      std::vector<float> values(dense_size);
      for (std::size_t i = 0; i < dense_size; ++i) {
        const std::uint8_t code = code_at(codes, i);
        if (code > 2 * qmax)
          throw std::runtime_error("quantized decode: invalid code");
        values[i] = static_cast<float>(static_cast<long>(code) - qmax) * scale;
      }
      update.push_back(from_dense(layer, std::move(values)));
    } else {
      throw std::runtime_error("quantized decode: bad layout");
    }
  }
  if (!r.exhausted())
    throw std::runtime_error("quantized decode: trailing bytes");
  return update;
}

SparseUpdate decode_sbc(std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  if (r.u32() != kSbcMagic) throw std::runtime_error("sbc decode: bad magic");
  if (r.u8() != kSbcVersion)
    throw std::runtime_error("sbc decode: unsupported version");
  if (r.u8() != 0 || r.u16() != 0)
    throw std::runtime_error("sbc decode: nonzero reserved field");
  const std::uint32_t num_layers = r.u32();
  if (static_cast<std::size_t>(num_layers) * 24 > r.remaining())
    throw std::runtime_error("sbc decode: truncated payload");

  SparseUpdate update;
  update.layers.reserve(num_layers);
  for (std::uint32_t l = 0; l < num_layers; ++l) {
    LayerChunk chunk;
    chunk.layer = r.u32();
    chunk.dense_size = r.u32();
    const std::uint32_t nnz = r.u32();
    const float mu = r.f32();
    const std::uint8_t k = r.u8();
    if (r.u8() != 0 || r.u8() != 0 || r.u8() != 0)
      throw std::runtime_error("sbc decode: nonzero reserved field");
    const std::uint32_t stream_bytes = r.u32();
    if (nnz > chunk.dense_size)
      throw std::runtime_error("sbc decode: nnz > dense_size");
    if (k > 24) throw std::runtime_error("sbc decode: bad rice parameter");

    const std::span<const std::uint8_t> signs = r.bytes((nnz + 7) / 8);
    if (nnz % 8 != 0 && !signs.empty() &&
        (signs.back() & static_cast<std::uint8_t>(0xFF << (nnz % 8))) != 0)
      throw std::runtime_error("sbc decode: nonzero sign padding");
    const std::span<const std::uint8_t> stream = r.bytes(stream_bytes);

    wire::BitReader br(stream);
    chunk.idx.resize(nnz);
    chunk.val.resize(nnz);
    std::uint64_t next = 0;  // idx_i = next + gap_i
    for (std::size_t i = 0; i < nnz; ++i) {
      // No valid gap exceeds dense_size, so cap the unary run there: a
      // stream of 0xFF bytes is rejected after at most dense_size bits.
      const std::uint32_t gap =
          (br.get_unary(chunk.dense_size >> k) << k) | br.get(k);
      const std::uint64_t idx = next + gap;
      if (idx >= chunk.dense_size)
        throw std::runtime_error("sbc decode: index out of range");
      chunk.idx[i] = static_cast<std::uint32_t>(idx);
      const bool negative = (signs[i / 8] >> (i % 8)) & 1u;
      chunk.val[i] = negative ? -mu : mu;
      next = idx + 1;
    }
    if ((br.consumed() + 7) / 8 != stream_bytes)
      throw std::runtime_error("sbc decode: stream size mismatch");
    br.expect_zero_padding();
    update.layers.push_back(std::move(chunk));
  }
  if (!r.exhausted()) throw std::runtime_error("sbc decode: trailing bytes");
  return update;
}

bool is_quantized_payload(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < 4) return false;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  return magic == kQuantMagic;
}

bool is_sbc_payload(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < 4) return false;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  return magic == kSbcMagic;
}

}  // namespace dgs::sparse
