// Gradient quantization: TernGrad-style ternary quantization and QSGD-style
// stochastic uniform quantization, with bit-packed wire formats.
//
// The paper's future-work section proposes combining DGS with compression
// approaches such as TernGrad [Wen et al. 2017] and random coordinate
// dropping [Wangni et al. 2018]; this module provides the quantizers (the
// combined worker algorithms live in core/optimizer_ext.h).
//
// Both quantizers are unbiased: E[dequantize(quantize(x))] == x, which is
// what keeps SGD convergent under quantization.
//
// NaN / ±0 policy (matches the magnitude-ordering contract in select.h):
// exact zeros never ship — they carry no update. A non-finite value is
// never silently dropped: the stochastic quantizers always ship NaN/±inf
// at the layer's full scale (top QSGD level) with the sign taken from the
// value's sign bit, and random_drop keeps NaN unconditionally, so a
// poisoned coordinate stays visible at the receiver instead of vanishing
// behind a `uniform() < NaN == false` comparison. Scales and norms are
// computed over the *finite* entries only; a layer with no finite
// magnitude quantizes to all-zero.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace dgs::sparse {

// ---------------------------------------------------------------------------
// TernGrad: x -> s * sign(x) * b, b ~ Bernoulli(|x|/s), s = max |x|.
// Wire format: f32 scale + 2 bits per element ({-1, 0, +1}).
// ---------------------------------------------------------------------------

struct TernaryLayer {
  std::uint32_t layer = 0;
  std::uint32_t dense_size = 0;
  float scale = 0.0f;                 ///< s = max |x| at quantization time.
  std::vector<std::uint8_t> packed;   ///< 2 bits/element, 4 elements/byte.

  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return 12 + packed.size();  // layer + dense_size + scale + payload
  }
};

struct TernaryUpdate {
  std::vector<TernaryLayer> layers;
};

/// Stochastic ternary quantization of one dense layer.
[[nodiscard]] TernaryLayer ternary_quantize(std::uint32_t layer,
                                            std::span<const float> values,
                                            util::Rng& rng);

/// Dequantize into a dense float vector (length dense_size).
[[nodiscard]] std::vector<float> ternary_dequantize(const TernaryLayer& layer);

/// Exact encoded size and codec for the full update.
[[nodiscard]] std::size_t encoded_size(const TernaryUpdate& update) noexcept;
[[nodiscard]] std::vector<std::uint8_t> encode(const TernaryUpdate& update);
[[nodiscard]] TernaryUpdate decode_ternary(std::span<const std::uint8_t> bytes);

inline constexpr std::uint32_t kTernaryMagic = 0x44475354;  // 'DGST'

/// True if the payload carries a ternary update.
[[nodiscard]] bool is_ternary_payload(std::span<const std::uint8_t> bytes) noexcept;

// ---------------------------------------------------------------------------
// QSGD: stochastic uniform quantization with `levels` buckets per unit of
// the layer L2 norm. Stored as f32 norm + per-element (sign, level) pairs
// packed into ceil(log2(levels+1))+1 bits. We fix levels=15 -> 5 bits/elem.
// ---------------------------------------------------------------------------

struct QsgdLayer {
  std::uint32_t layer = 0;
  std::uint32_t dense_size = 0;
  float norm = 0.0f;
  std::vector<std::uint8_t> packed;  ///< 5 bits/element.
};

inline constexpr std::uint32_t kQsgdLevels = 15;

[[nodiscard]] QsgdLayer qsgd_quantize(std::uint32_t layer,
                                      std::span<const float> values,
                                      util::Rng& rng);
[[nodiscard]] std::vector<float> qsgd_dequantize(const QsgdLayer& layer);

// ---------------------------------------------------------------------------
// Random coordinate dropping (Wangni et al.): keep each coordinate with
// probability p, scale kept values by 1/p (unbiased). Returns a COO chunk.
// ---------------------------------------------------------------------------

struct LayerChunk;  // from coo.h
struct SparseUpdate;

[[nodiscard]] LayerChunk random_drop(std::uint32_t layer,
                                     std::span<const float> values,
                                     double keep_probability, util::Rng& rng);

// ---------------------------------------------------------------------------
// Sparse-ternary wire format (the paper's future-work combination of DGS
// with TernGrad): a COO update whose values are all in {-s, 0, +s} per layer
// is shipped as indices + one sign bit per entry + one f32 scale, i.e.
// ~4.1 bytes/entry instead of COO's 8.
//
// Layout: u32 magic 'DGSU' | u32 num_layers | per layer:
//   u32 layer | u32 dense_size | u32 nnz | f32 scale |
//   nnz * u32 idx | ceil(nnz/8) sign bytes (bit set = negative)
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kSparseTernaryMagic = 0x44475355;  // 'DGSU'

/// Encode a SparseUpdate whose chunk values are all +/- one scale per layer
/// (zero-valued entries are dropped). Throws if a value is not +/-scale.
[[nodiscard]] std::vector<std::uint8_t> encode_sparse_ternary(
    const SparseUpdate& update);

/// Same, into a caller-owned buffer (cleared, capacity reused — the
/// encode_into contract from codec.h).
void encode_sparse_ternary_into(const SparseUpdate& update,
                                std::vector<std::uint8_t>& out);

[[nodiscard]] SparseUpdate decode_sparse_ternary(
    std::span<const std::uint8_t> bytes);

[[nodiscard]] bool is_sparse_ternary_payload(
    std::span<const std::uint8_t> bytes) noexcept;

/// Quantize a COO chunk's values to {-s, 0, +s} with s = max |val|
/// (stochastic, unbiased). Entries rounded to zero are removed. The
/// returned chunk is valid input to encode_sparse_ternary.
[[nodiscard]] LayerChunk ternary_quantize_chunk(const LayerChunk& chunk,
                                                util::Rng& rng);

}  // namespace dgs::sparse
