// COO-format sparse vectors and the sparsify / unsparsify primitives from
// the paper (Algorithms 1-3).
//
// A LayerChunk is one layer's sparse content: parallel index/value arrays
// plus the dense length. A SparseUpdate is the per-message collection of
// chunks (one per layer), which is what crosses the wire between worker and
// server.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dgs::sparse {

struct LayerChunk {
  std::uint32_t layer = 0;       ///< Layer index within the model.
  std::uint32_t dense_size = 0;  ///< Dense length of this layer.
  std::vector<std::uint32_t> idx;
  std::vector<float> val;

  [[nodiscard]] std::size_t nnz() const noexcept { return idx.size(); }
};

struct SparseUpdate {
  std::vector<LayerChunk> layers;

  [[nodiscard]] std::size_t total_nnz() const noexcept {
    std::size_t n = 0;
    for (const auto& c : layers) n += c.nnz();
    return n;
  }
  [[nodiscard]] std::size_t total_dense() const noexcept {
    std::size_t n = 0;
    for (const auto& c : layers) n += c.dense_size;
    return n;
  }
  /// nnz / dense, in [0, 1]; 0 for an empty update.
  [[nodiscard]] double density() const noexcept {
    const auto d = total_dense();
    return d == 0 ? 0.0 : static_cast<double>(total_nnz()) / static_cast<double>(d);
  }
};

// The extraction predicate is shared with the fused kernels in select.h:
// keep entries whose magnitude key is >= the threshold's key, excluding
// exact (±) zeros, which carry no update. For finite data this is exactly
// "|v| >= thr"; NaN entries are always kept (they order above +inf's
// finite neighbors) so a poisoned gradient is surfaced, not silently
// dropped. These scalar loops are the reference implementation the fused
// kernels are property-tested against; hot paths use SparsifyWorkspace.

/// Extract entries with |v| >= thr into a chunk and ZERO them in `values`
/// (the "sparsify + keep residual" move of Algorithm 1 / Algorithm 2).
/// Exact zeros are never extracted; they carry no update.
LayerChunk extract_and_zero(std::uint32_t layer, std::span<float> values,
                            float thr);

/// Extract entries with |v| >= thr into a chunk WITHOUT modifying `values`
/// (DGS keeps sent velocity entries resident; Algorithm 3).
LayerChunk extract_copy(std::uint32_t layer, std::span<const float> values,
                        float thr);

/// Scale entries with |v| < thr by `factor`, leave the rest untouched
/// (the SAMomentum 1/m rescaling of unsent entries, Eq. 14a / Alg. 3 l.11).
void scale_below(std::span<float> values, float thr, float factor) noexcept;

/// dst[idx[i]] += scale * val[i] for every entry of the chunk.
void scatter_add(const LayerChunk& chunk, float scale, std::span<float> dst);

/// Densify the chunk into a zero-initialized buffer of chunk.dense_size.
[[nodiscard]] std::vector<float> densify(const LayerChunk& chunk);

/// Densify into a caller-owned buffer (resized to chunk.dense_size and
/// zero-filled first); reuses the buffer's capacity across calls.
void densify_into(const LayerChunk& chunk, std::vector<float>& out);

}  // namespace dgs::sparse
