// The dual-way compression pipeline: one symmetric `Compressor` interface
// for every wire codec, composed per direction.
//
// The paper's point is *dual-way* sparsification: workers compress the
// upward gradient push, and Algorithm 2 (lines 5-11) has the server
// secondarily compress the downward model difference G_k = M - v_k. Both
// directions now flow through the same stateless codec stages:
//
//   * upward — each WorkerAlgorithm names its `Codec` and the stage packs
//     the update it produced (COO, dense, ternary, sparse-ternary);
//   * downward — the server's reply policy optionally installs a lossy
//     stage (quantized COO or SBC). The shard calls `transform()` on each
//     reply chunk *before* charging it to v_k (Eq. 6b), so v_k advances by
//     exactly what the decoder will reconstruct and the quantization error
//     stays inside the outstanding difference M - v_k — residual error
//     feedback for free, the same mechanism that makes top-k sound.
//
// Stages are stateless singletons (`compressor_for`); per-call scratch is
// thread-local or caller-owned, so one stage serves every shard and worker
// concurrently. `encode_into` clears and refills a caller-owned buffer,
// reusing its capacity — the steady-state encode loop stops allocating once
// buffers have warmed up (see select.h for the same idiom).
//
// Wire formats. Decoding goes through a versioned format registry
// (`decode_any`) keyed on the leading u32 magic. The four legacy formats
// (DGSS/DGSD/DGST/DGSU, see codec.h and quantize.h) carry no version byte
// and are grandfathered as implicit version 0 — old payloads, checkpoints
// and kFullModel rejoin snapshots keep decoding bit-identically. The two
// formats introduced here carry an explicit version byte after the magic:
//
//   DGSQ (quantized COO, 8- or 4-bit):
//     u32 magic 'DGSQ' | u8 version=1 | u8 bits (8|4) | u16 reserved=0 |
//     u32 num_layers
//     per layer: u32 layer | u32 dense_size | u32 nnz | f32 scale |
//                u8 layout | u8[3] reserved=0 | <payload>
//       layout 0 (sparse): nnz*u32 idx | ceil(nnz*bits/8) code bytes
//       layout 1 (dense):  ceil(dense_size*bits/8) code bytes
//     Codes are offset-binary: code = q + qmax with q in [-qmax, qmax]
//     (qmax = 127 or 7); codes > 2*qmax are invalid. value = (code - qmax)
//     * scale. The scale is a power of two (smallest 2^e >= absmax/qmax),
//     which makes q * scale and the scale's own wire round trip exact in
//     f32 — the decoder reconstructs bit-identically what transform()
//     produced, at the cost of at most one halving of grid resolution.
//     The encoder picks the cheaper layout per layer.
//
//   DGSB (sparse binary compression, after Sattler et al.'s SBC):
//     u32 magic 'DGSB' | u8 version=1 | u8 reserved=0 | u16 reserved=0 |
//     u32 num_layers
//     per layer: u32 layer | u32 dense_size | u32 nnz | f32 mu |
//                u8 rice_k | u8[3] reserved=0 | u32 stream_bytes |
//                ceil(nnz/8) sign bytes (bit set = negative) |
//                stream_bytes of Golomb-Rice coded index gaps
//     Values are mean-magnitude signs: transform() replaces every kept
//     entry with ±mu (mu = mean |v| over finite values). Gaps are
//     g_0 = idx_0, g_i = idx_i - idx_{i-1} - 1, Rice-coded with parameter
//     k chosen from the mean gap: ~1 byte/entry at the paper's R=1%
//     density vs COO's 8.
//
// NaN / ±0 policy (matches select.h): exact zeros are never shipped; a
// non-finite value is never silently dropped — a quantized grid cannot
// represent NaN, so DGSQ saturates non-finite entries to the largest
// magnitude code and DGSB ships them as ±mu, keeping the poisoned
// coordinate visible at the receiver. A layer with no finite nonzero
// magnitude compresses to an empty chunk (the un-sendable mass stays in
// M - v_k and is surfaced by the density metrics).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sparse/codec.h"
#include "sparse/coo.h"

namespace dgs::sparse {

/// Every wire codec a compression stage can target. kCoo..kSparseTernary
/// pack losslessly what they are handed; kQcoo8/kQcoo4/kSbc are lossy
/// (transform() is not the identity).
enum class Codec : std::uint8_t {
  kCoo,            ///< DGSS: u32 idx + f32 val, 8 bytes/entry.
  kDense,          ///< DGSD: f32 per element (densifies sparse chunks).
  kTernary,        ///< DGST: f32 scale + 2 bits/element over the dense size.
  kSparseTernary,  ///< DGSU: u32 idx + sign bit + f32 scale, ~4.1 B/entry.
  kQcoo8,          ///< DGSQ: u32 idx + 8-bit quantized value, ~5 B/entry.
  kQcoo4,          ///< DGSQ: u32 idx + 4-bit quantized value, ~4.5 B/entry.
  kSbc,            ///< DGSB: Rice-coded gaps + sign bits, ~1 B/entry.
};

[[nodiscard]] const char* codec_name(Codec codec) noexcept;
/// Parse "coo" | "dense" | "ternary" | "sparse-ternary" | "q8" | "q4" |
/// "sbc" (case-insensitive). Throws std::invalid_argument.
[[nodiscard]] Codec parse_codec(const std::string& text);

inline constexpr std::uint32_t kQuantMagic = 0x44475351;  // 'DGSQ'
inline constexpr std::uint32_t kSbcMagic = 0x44475342;    // 'DGSB'
inline constexpr std::uint8_t kQuantVersion = 1;
inline constexpr std::uint8_t kSbcVersion = 1;

/// One decoded per-layer segment of an update payload, normalized across
/// all wire formats. Sparse layouts keep their index/value chunk; dense
/// layouts are materialized into `dense`. `chunk.layer` /
/// `chunk.dense_size` describe the segment in both cases.
struct DecodedLayer {
  bool sparse = true;
  LayerChunk chunk;          ///< Sparse content; layer/dense_size always set.
  std::vector<float> dense;  ///< Dense values when !sparse.

  [[nodiscard]] std::uint32_t layer() const noexcept { return chunk.layer; }
  [[nodiscard]] std::uint32_t dense_size() const noexcept {
    return chunk.dense_size;
  }
};

using DecodedUpdate = std::vector<DecodedLayer>;

/// A stateless codec stage. One instance per Codec serves all threads.
class Compressor {
 public:
  virtual ~Compressor() = default;

  [[nodiscard]] virtual Codec codec() const noexcept = 0;
  [[nodiscard]] const char* name() const noexcept { return codec_name(codec()); }

  /// True when transform() may change values (quantizing stages).
  [[nodiscard]] virtual bool lossy() const noexcept { return false; }

  /// Rewrite the chunk's values to exactly what the decoder will
  /// reconstruct from this stage's wire format, dropping entries that
  /// quantize to zero. Idempotent; the identity for lossless stages.
  /// The server shard applies this *before* charging the reply to v_k, so
  /// bookkeeping and wire stay bit-identical (Eq. 6b).
  virtual void transform(LayerChunk& chunk) const { (void)chunk; }

  /// Wire-encode into a caller-owned buffer (cleared, capacity reused).
  /// Lossy stages quantize while packing, so encode(u) == encode(t) where
  /// t is a transform()ed copy of u — but only transform() tells the
  /// caller what the decoder will see.
  virtual void encode_into(const SparseUpdate& update, Bytes& out) const = 0;

  [[nodiscard]] Bytes encode(const SparseUpdate& update) const {
    Bytes out;
    encode_into(update, out);
    return out;
  }
};

/// The stage singleton for a codec (valid for the program lifetime).
[[nodiscard]] const Compressor& compressor_for(Codec codec);

// ---------------------------------------------------------------------------
// Versioned wire-format registry. Every payload that crosses the transport
// — pushes, replies, retransmits, kFullModel rejoin snapshots — dispatches
// through decode_any on its magic word.
// ---------------------------------------------------------------------------

/// Decode any registered wire format into normalized per-layer segments.
/// Throws std::runtime_error on an unknown magic, unsupported version or
/// malformed payload.
[[nodiscard]] DecodedUpdate decode_any(std::span<const std::uint8_t> bytes);

/// Registry name for the payload's magic ("coo", "dense", "ternary",
/// "sparse-ternary", "qcoo", "sbc"), or nullptr when unknown.
[[nodiscard]] const char* payload_format_name(
    std::span<const std::uint8_t> bytes) noexcept;

// Direct decoders for the new formats (fuzz tests and tools; decode_any is
// the production entry point).
[[nodiscard]] DecodedUpdate decode_quantized(std::span<const std::uint8_t> bytes);
[[nodiscard]] SparseUpdate decode_sbc(std::span<const std::uint8_t> bytes);
[[nodiscard]] bool is_quantized_payload(
    std::span<const std::uint8_t> bytes) noexcept;
[[nodiscard]] bool is_sbc_payload(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace dgs::sparse
