#include "sparse/codec.h"

#include <cstring>
#include <stdexcept>

#include "sparse/wire.h"

namespace dgs::sparse {

using wire::Reader;
using wire::Writer;

std::size_t encoded_size(const SparseUpdate& update) noexcept {
  std::size_t n = 8;  // magic + num_layers
  for (const auto& c : update.layers)
    n += 12 + c.nnz() * (sizeof(std::uint32_t) + sizeof(float));
  return n;
}

Bytes encode(const SparseUpdate& update) {
  Bytes out;
  encode_into(update, out);
  return out;
}

void encode_into(const SparseUpdate& update, Bytes& out) {
  out.clear();
  out.reserve(encoded_size(update));
  Writer w(out);
  w.u32(kSparseMagic);
  w.u32(static_cast<std::uint32_t>(update.layers.size()));
  for (const auto& c : update.layers) {
    if (c.idx.size() != c.val.size())
      throw std::invalid_argument("codec: idx/val size mismatch");
    w.u32(c.layer);
    w.u32(c.dense_size);
    w.u32(static_cast<std::uint32_t>(c.nnz()));
    w.u32s(c.idx);
    w.f32s(c.val);
  }
}

SparseUpdate decode(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  if (r.u32() != kSparseMagic) throw std::runtime_error("codec: bad sparse magic");
  SparseUpdate update;
  const std::uint32_t num_layers = r.u32();
  // Each layer needs at least a 12-byte header; reject inflated counts
  // before allocating.
  if (static_cast<std::size_t>(num_layers) * 12 > r.remaining())
    throw std::runtime_error("codec: truncated payload");
  update.layers.resize(num_layers);
  for (auto& c : update.layers) {
    c.layer = r.u32();
    c.dense_size = r.u32();
    const std::uint32_t nnz = r.u32();
    if (nnz > c.dense_size) throw std::runtime_error("codec: nnz > dense_size");
    // Bound allocations by the bytes actually present (a corrupted header
    // must not trigger a multi-gigabyte resize).
    if (static_cast<std::size_t>(nnz) * 8 > r.remaining())
      throw std::runtime_error("codec: truncated payload");
    c.idx.resize(nnz);
    c.val.resize(nnz);
    r.u32s(c.idx);
    r.f32s(c.val);
    for (std::uint32_t i : c.idx)
      if (i >= c.dense_size) throw std::runtime_error("codec: index out of range");
  }
  if (!r.exhausted()) throw std::runtime_error("codec: trailing bytes");
  return update;
}

std::size_t encoded_size(const DenseUpdate& update) noexcept {
  std::size_t n = 8;
  for (const auto& l : update.layers) n += 8 + l.values.size() * sizeof(float);
  return n;
}

Bytes encode(const DenseUpdate& update) {
  Bytes out;
  encode_into(update, out);
  return out;
}

void encode_into(const DenseUpdate& update, Bytes& out) {
  out.clear();
  out.reserve(encoded_size(update));
  Writer w(out);
  w.u32(kDenseMagic);
  w.u32(static_cast<std::uint32_t>(update.layers.size()));
  for (const auto& l : update.layers) {
    w.u32(l.layer);
    w.u32(static_cast<std::uint32_t>(l.values.size()));
    w.f32s(l.values);
  }
}

DenseUpdate decode_dense(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  if (r.u32() != kDenseMagic) throw std::runtime_error("codec: bad dense magic");
  DenseUpdate update;
  const std::uint32_t num_layers = r.u32();
  if (static_cast<std::size_t>(num_layers) * 8 > r.remaining())
    throw std::runtime_error("codec: truncated payload");
  update.layers.resize(num_layers);
  for (auto& l : update.layers) {
    l.layer = r.u32();
    const std::uint32_t size = r.u32();
    if (static_cast<std::size_t>(size) * 4 > r.remaining())
      throw std::runtime_error("codec: truncated payload");
    l.values.resize(size);
    r.f32s(l.values);
  }
  if (!r.exhausted()) throw std::runtime_error("codec: trailing bytes");
  return update;
}

bool is_sparse_payload(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < 4) return false;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  return magic == kSparseMagic;
}

bool is_dense_payload(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < 4) return false;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  return magic == kDenseMagic;
}

}  // namespace dgs::sparse
