// Binary wire codec for sparse and dense updates.
//
// Everything exchanged between workers and the parameter server crosses this
// serialization boundary, so the byte counts used by the network model are
// the real encoded sizes, not analytic estimates.
//
// Sparse payload layout (little-endian):
//   u32 magic 'DGSS' | u32 num_layers
//   per layer: u32 layer | u32 dense_size | u32 nnz | nnz*u32 idx | nnz*f32 val
//
// Dense payload layout:
//   u32 magic 'DGSD' | u32 num_layers
//   per layer: u32 layer | u32 dense_size | dense_size * f32
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/coo.h"

namespace dgs::sparse {

using Bytes = std::vector<std::uint8_t>;

inline constexpr std::uint32_t kSparseMagic = 0x44475353;  // 'DGSS'
inline constexpr std::uint32_t kDenseMagic = 0x44475344;   // 'DGSD'

/// Upper bound on a single encoded payload crossing a transport (1 GiB).
/// Generous — a dense float snapshot of a 250M-parameter model fits — but
/// finite, so a corrupted length field in a socket frame header can never
/// make a receiver allocate unboundedly (comm/framing.h rejects anything
/// larger before touching the allocator).
inline constexpr std::size_t kMaxWirePayloadBytes = std::size_t{1} << 30;

/// Exact encoded size in bytes of a sparse update.
[[nodiscard]] std::size_t encoded_size(const SparseUpdate& update) noexcept;

[[nodiscard]] Bytes encode(const SparseUpdate& update);
[[nodiscard]] SparseUpdate decode(std::span<const std::uint8_t> bytes);

/// Encode into a caller-owned buffer: `out` is cleared and refilled,
/// reusing its capacity, so a steady-state encode loop stops allocating
/// once the buffer has warmed up to the largest payload seen.
void encode_into(const SparseUpdate& update, Bytes& out);

/// Dense update: one contiguous float block per layer.
struct DenseUpdate {
  struct Layer {
    std::uint32_t layer = 0;
    std::vector<float> values;
  };
  std::vector<Layer> layers;

  [[nodiscard]] std::size_t total_dense() const noexcept {
    std::size_t n = 0;
    for (const auto& l : layers) n += l.values.size();
    return n;
  }
};

[[nodiscard]] std::size_t encoded_size(const DenseUpdate& update) noexcept;
[[nodiscard]] Bytes encode(const DenseUpdate& update);
/// Dense counterpart of the sparse encode_into (same capacity-reuse
/// contract).
void encode_into(const DenseUpdate& update, Bytes& out);
[[nodiscard]] DenseUpdate decode_dense(std::span<const std::uint8_t> bytes);

/// Peek at the magic word to distinguish payload kinds.
[[nodiscard]] bool is_sparse_payload(std::span<const std::uint8_t> bytes) noexcept;
[[nodiscard]] bool is_dense_payload(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace dgs::sparse
