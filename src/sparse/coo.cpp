#include "sparse/coo.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dgs::sparse {

LayerChunk extract_and_zero(std::uint32_t layer, std::span<float> values,
                            float thr) {
  LayerChunk chunk;
  chunk.layer = layer;
  chunk.dense_size = static_cast<std::uint32_t>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float v = values[i];
    if (v != 0.0f && std::fabs(v) >= thr) {
      chunk.idx.push_back(static_cast<std::uint32_t>(i));
      chunk.val.push_back(v);
      values[i] = 0.0f;
    }
  }
  return chunk;
}

LayerChunk extract_copy(std::uint32_t layer, std::span<const float> values,
                        float thr) {
  LayerChunk chunk;
  chunk.layer = layer;
  chunk.dense_size = static_cast<std::uint32_t>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float v = values[i];
    if (v != 0.0f && std::fabs(v) >= thr) {
      chunk.idx.push_back(static_cast<std::uint32_t>(i));
      chunk.val.push_back(v);
    }
  }
  return chunk;
}

void scale_below(std::span<float> values, float thr, float factor) noexcept {
  for (auto& v : values)
    if (std::fabs(v) < thr) v *= factor;
}

void scatter_add(const LayerChunk& chunk, float scale, std::span<float> dst) {
  if (dst.size() != chunk.dense_size)
    throw std::invalid_argument("scatter_add: dense size mismatch");
  for (std::size_t i = 0; i < chunk.idx.size(); ++i) {
    assert(chunk.idx[i] < dst.size());
    dst[chunk.idx[i]] += scale * chunk.val[i];
  }
}

std::vector<float> densify(const LayerChunk& chunk) {
  std::vector<float> out(chunk.dense_size, 0.0f);
  for (std::size_t i = 0; i < chunk.idx.size(); ++i)
    out[chunk.idx[i]] = chunk.val[i];
  return out;
}

}  // namespace dgs::sparse
