#include "sparse/coo.h"

#include <cassert>
#include <stdexcept>

#include "sparse/select.h"
#include "util/math_kernels.h"

namespace dgs::sparse {

namespace {

/// Shared keep predicate: magnitude-key ordering, exact zeros excluded.
/// Must match the fused kernels in select.cpp exactly (property-tested).
inline bool keeps(float v, std::uint32_t thr_key) noexcept {
  const std::uint32_t key = magnitude_key(v);
  return key >= thr_key && key != 0;
}

}  // namespace

LayerChunk extract_and_zero(std::uint32_t layer, std::span<float> values,
                            float thr) {
  const std::uint32_t thr_key = magnitude_key(thr);
  LayerChunk chunk;
  chunk.layer = layer;
  chunk.dense_size = static_cast<std::uint32_t>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (keeps(values[i], thr_key)) {
      chunk.idx.push_back(static_cast<std::uint32_t>(i));
      chunk.val.push_back(values[i]);
      values[i] = 0.0f;
    }
  }
  return chunk;
}

LayerChunk extract_copy(std::uint32_t layer, std::span<const float> values,
                        float thr) {
  const std::uint32_t thr_key = magnitude_key(thr);
  LayerChunk chunk;
  chunk.layer = layer;
  chunk.dense_size = static_cast<std::uint32_t>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (keeps(values[i], thr_key)) {
      chunk.idx.push_back(static_cast<std::uint32_t>(i));
      chunk.val.push_back(values[i]);
    }
  }
  return chunk;
}

void scale_below(std::span<float> values, float thr, float factor) noexcept {
  const std::uint32_t thr_key = magnitude_key(thr);
  for (auto& v : values)
    if (!keeps(v, thr_key)) v *= factor;
}

void scatter_add(const LayerChunk& chunk, float scale, std::span<float> dst) {
  if (dst.size() != chunk.dense_size)
    throw std::invalid_argument("scatter_add: dense size mismatch");
  const std::uint32_t* __restrict idx = chunk.idx.data();
  const float* __restrict val = chunk.val.data();
  float* __restrict out = dst.data();
  const std::size_t nnz = chunk.idx.size();
  for (std::size_t i = 0; i < nnz; ++i) {
    assert(idx[i] < dst.size());
    out[idx[i]] += scale * val[i];
  }
}

std::vector<float> densify(const LayerChunk& chunk) {
  std::vector<float> out;
  densify_into(chunk, out);
  return out;
}

void densify_into(const LayerChunk& chunk, std::vector<float>& out) {
  out.resize(chunk.dense_size);
  util::fill(0.0f, {out.data(), out.size()});
  const std::uint32_t* __restrict idx = chunk.idx.data();
  const float* __restrict val = chunk.val.data();
  for (std::size_t i = 0; i < chunk.idx.size(); ++i) out[idx[i]] = val[i];
}

}  // namespace dgs::sparse
