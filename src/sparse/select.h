// Fused, allocation-free sparsification kernels.
//
// Every DGS step bottoms out in the same three operations per layer:
// compute |v|, find the top-R% magnitude threshold, and compact the kept
// entries into a COO chunk. The original substrate did these as separate
// passes with a fresh heap-allocated scratch vector per call
// (copy + nth_element + push_back compaction). This layer replaces them
// with a reusable per-owner `SparsifyWorkspace`:
//
//   * an exact O(n) two-pass histogram (radix) select over IEEE-754
//     magnitude keys — no scratch copy of the data, no nth_element;
//   * a fused threshold-select + COO-compact kernel: the select pass
//     already knows the exact kept count, so compaction is a single pass
//     writing through bump pointers into exactly-sized output arrays;
//   * buffer pooling (`acquire_update` / `recycle`) so the steady-state
//     worker sparsify path performs zero heap allocations.
//
// Magnitude-ordering policy (the single source of truth; topk.h and the
// scalar reference kernels in coo.cpp follow it):
//
//   key(v) = IEEE-754 bit pattern of |v| as uint32, with NaN clamped to
//            the +inf key (0x7f800000).
//
// For every finite value — including denormals and both zeros, which map
// to key 0 — key order equals magnitude order, so the policy is invisible
// on clean data. It pins down the edge cases:
//   * NaN sorts above every finite magnitude: NaN entries consume top-k
//     slots and are always extracted ("kept"), never silently dropped or
//     rescaled, so a poisoned gradient is visible at the server instead
//     of festering in worker-resident state. Thresholds returned by the
//     selectors are at most +inf, never NaN.
//   * +0 and -0 both have magnitude key 0 and are never extracted (an
//     exact zero carries no update), and scaling them is a no-op.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/coo.h"
#include "util/rng.h"

namespace dgs::sparse {

/// Magnitude ordering key: bits of |v|, NaN clamped to the +inf key.
[[nodiscard]] inline std::uint32_t magnitude_key(float v) noexcept {
  constexpr std::uint32_t kAbsMask = 0x7fffffffu;
  constexpr std::uint32_t kInfKey = 0x7f800000u;
  const std::uint32_t key = std::bit_cast<std::uint32_t>(v) & kAbsMask;
  return key > kInfKey ? kInfKey : key;
}

/// Inverse of magnitude_key for non-NaN keys: the non-negative float whose
/// bit pattern is `key`.
[[nodiscard]] inline float key_magnitude(std::uint32_t key) noexcept {
  return std::bit_cast<float>(key);
}

/// Result of a threshold selection, sized for the fused compaction pass.
struct SelectResult {
  float threshold = 0.0f;   ///< key_magnitude(key); 0 keeps all nonzero.
  std::uint32_t key = 0;    ///< Magnitude key of the threshold.
  std::size_t kept = 0;     ///< Exact entries a compact_* call will emit.
};

/// Reusable selection + compaction scratch. One owner per worker algorithm
/// and per server shard; NOT thread-safe (callers hold their own locks).
/// All buffers grow to a high-water mark and are then reused, so the
/// steady-state sparsify path performs zero heap allocations.
class SparsifyWorkspace {
 public:
  /// Exact magnitude key of the k-th largest |value| (k clamped to [1, n]).
  /// O(n): two histogram passes for large inputs, nth_element over a
  /// reusable key scratch below kRadixCutoff. Returns 0 for empty input.
  [[nodiscard]] std::uint32_t kth_key(std::span<const float> values,
                                      std::size_t k);

  /// Exact k-th largest magnitude as a float (see kth_key).
  [[nodiscard]] float kth_magnitude(std::span<const float> values,
                                    std::size_t k) {
    return key_magnitude(kth_key(values, k));
  }

  /// Threshold selection for keeping the top R% magnitudes. When the ratio
  /// degenerates to keep-everything (R >= 100 or tiny layers), selection is
  /// skipped entirely: the returned key is 0 and `kept` counts the nonzero
  /// entries, which is the exact set the compaction kernels emit.
  [[nodiscard]] SelectResult select(std::span<const float> values,
                                    double ratio_percent);

  /// Threshold selection for keeping exactly the top `k` magnitudes (k
  /// clamped to [1, n]; empty input returns the default result). This is
  /// select() with the ratio -> keep_count conversion skipped, for callers
  /// that already hold an integer allocation (the adaptive controller,
  /// core/adaptive.h) — round-tripping k through a percentage would not
  /// survive keep_count's ceil.
  [[nodiscard]] SelectResult select_k(std::span<const float> values,
                                      std::size_t k);

  /// DGC-style sampled threshold-key estimate for very large layers:
  /// O(sample_size), never scans the full input. Exact selection is used
  /// when it is at least as trustworthy as sampling: n < 4 * sample_size
  /// (sampling with replacement from a small population is biased and
  /// high-variance) or sample_size == 0.
  [[nodiscard]] std::uint32_t sampled_key(std::span<const float> values,
                                          double ratio_percent,
                                          std::size_t sample_size,
                                          util::Rng& rng);

  /// sampled_key plus the exact kept count (one extra O(n) pass over the
  /// full input) so fused compaction can size its output; callers that only
  /// need the threshold should use sampled_key and stay O(sample_size).
  [[nodiscard]] SelectResult sampled_select(std::span<const float> values,
                                            double ratio_percent,
                                            std::size_t sample_size,
                                            util::Rng& rng);

  // ---- fused compaction (single pass over `values`) -----------------------
  // All three kernels emit entries with magnitude_key(v) >= sel.key,
  // excluding exact zeros, into `out` (resized to exactly sel.kept; index
  // order ascending). `out.layer` / `out.dense_size` are set.

  /// Keep `values` intact (Algorithm 3: sent velocity stays resident).
  void compact_copy(std::uint32_t layer, std::span<const float> values,
                    const SelectResult& sel, LayerChunk& out);

  /// Zero extracted entries in `values` (Algorithms 1-2: send + residual).
  void compact_zero(std::uint32_t layer, std::span<float> values,
                    const SelectResult& sel, LayerChunk& out);

  /// Extract kept entries and scale every *other* entry by `factor` in the
  /// same pass (SAMomentum's 1/m rescale of unsent velocity, Alg. 3 l.11).
  void compact_rescale(std::uint32_t layer, std::span<float> values,
                       const SelectResult& sel, float factor, LayerChunk& out);

  // ---- fully fused: threshold + compact in one call -----------------------
  // For large inputs the copy/zero variants skip the separate compaction
  // scan entirely: the radix select's second pass already visits every
  // entry, so it gathers the certain keeps (buckets above the winner) and
  // the in-bucket candidates as it ranks, and the output is assembled from
  // those gathered lists — two passes over `values` instead of three.
  // Output is byte-identical to select() + compact_*().

  void sparsify_copy(std::uint32_t layer, std::span<const float> values,
                     double ratio_percent, LayerChunk& out);
  void sparsify_zero(std::uint32_t layer, std::span<float> values,
                     double ratio_percent, LayerChunk& out);
  /// Rescaling mutates every *unsent* entry, which needs a full pass over
  /// `values` regardless, so this variant stays select() + compact_rescale.
  void sparsify_rescale(std::uint32_t layer, std::span<float> values,
                        double ratio_percent, float factor, LayerChunk& out) {
    compact_rescale(layer, values, select(values, ratio_percent), factor, out);
  }
  /// sparsify_rescale with an exact integer keep count (see select_k).
  void sparsify_rescale_k(std::uint32_t layer, std::span<float> values,
                          std::size_t k, float factor, LayerChunk& out) {
    compact_rescale(layer, values, select_k(values, k), factor, out);
  }

  // ---- update pooling -----------------------------------------------------
  // acquire_update hands out a SparseUpdate whose layer chunks retain the
  // capacity of previously recycled ones; recycle returns an update (e.g.
  // after wire-encoding it) to the pool. Together they make the per-step
  // update construction allocation-free once capacities have warmed up.

  [[nodiscard]] SparseUpdate acquire_update(std::size_t num_layers);
  void recycle(SparseUpdate&& update) noexcept;

  /// Bytes of scratch currently resident (histograms, key scratch, pools);
  /// exposed for the memory-usage accounting and tests.
  [[nodiscard]] std::size_t scratch_bytes() const noexcept;

  /// Inputs shorter than this use the nth_element fallback: the radix
  /// path's fixed cost (two 256 KiB histogram clears + bucket scans,
  /// ~50 us) only amortizes above roughly this size (measured crossover
  /// vs nth_element on the key scratch: ~24K-32K elements).
  static constexpr std::size_t kRadixCutoff = 32768;

 private:
  struct RankedKey {
    std::uint32_t key = 0;      ///< Exact k-th largest magnitude key.
    std::size_t count_ge = 0;   ///< Entries with magnitude key >= key.
  };
  [[nodiscard]] RankedKey ranked_key(std::span<const float> values,
                                     std::size_t k);
  [[nodiscard]] RankedKey ranked_key_radix(std::span<const float> values,
                                           std::size_t k);
  [[nodiscard]] RankedKey ranked_key_small(std::span<const float> values,
                                           std::size_t k);

  /// Two-pass gather for the fully fused copy/zero kernels: histogram pass
  /// plus a collect pass filling sure_*_ (entries in buckets above the
  /// winner — kept for certain) and cand_*_ (the winning bucket, ranked by
  /// nth_element afterwards). Returns false when the shape wants one of the
  /// fallback paths (small input or keep-everything) instead.
  [[nodiscard]] bool gather_radix(std::span<const float> values,
                                  std::size_t k);
  /// Merge sure_*_ and the kept candidates (ascending index order on both
  /// sides) into `out`, sized exactly. `cand_thr` is the exact in-bucket
  /// threshold key from gather_radix.
  void emit_gathered(std::uint32_t layer, std::size_t dense_size,
                     std::uint32_t cand_thr, LayerChunk& out);

  std::vector<std::uint32_t> hist_;   ///< 65536 buckets, allocated lazily.
  std::vector<std::uint32_t> keys_;   ///< Small-n nth_element scratch.
  std::vector<float> sample_;         ///< Sampled-estimator scratch.
  std::vector<SparseUpdate> pool_;    ///< Recycled updates (warm capacity).

  // Fused-gather scratch (certain keeps / in-bucket candidates), all with
  // warm capacity after the first large call.
  std::vector<std::uint32_t> sure_idx_;
  std::vector<float> sure_val_;
  std::vector<std::uint32_t> cand_idx_;
  std::vector<std::uint32_t> cand_key_;
  std::vector<float> cand_val_;
  std::uint32_t gathered_thr_ = 0;    ///< Exact kth key from gather_radix.
};

/// Count of entries that a compaction at threshold `thr` keeps, i.e. with
/// magnitude_key(v) >= magnitude_key(thr), *including* exact zeros when
/// thr == 0 (historical contract: count_above(v, 0) == v.size()).
[[nodiscard]] std::size_t count_ge_key(std::span<const float> values,
                                       std::uint32_t key) noexcept;

/// Count of exact (±) zeros.
[[nodiscard]] std::size_t count_zeros(std::span<const float> values) noexcept;

}  // namespace dgs::sparse
