#include "sparse/select.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DGS_X86 1
#endif

#include "sparse/topk.h"
#include "util/simd.h"

namespace dgs::sparse {

namespace {

// 16/16 split of the 31-bit magnitude key space: pass 1 ranks the high
// half-word, pass 2 ranks the low half-word within the winning bucket.
// Two passes fully determine the exact key of the k-th largest magnitude.
constexpr std::size_t kBuckets = 1u << 16;
constexpr std::uint32_t kHiShift = 16;
constexpr std::uint32_t kLoMask = 0xffffu;

// ---- dispatched magnitude-key kernels (util/simd.h, DESIGN.md §18) ---------
// magnitude_key is pure integer work (bits & 0x7fffffff clamped to the inf
// key), so every SIMD variant is exact and byte-identical to the scalar
// path by construction. Keys are <= 0x7f800000, i.e. non-negative as
// signed int32, so the signed epi32 min/compare instructions are valid.
// Three kernel families:
//   * keys_fill: bulk key computation (ranked_key_small's scratch fill);
//   * hist_hi16: the radix pass-1 histogram — keys are computed 8/16-wide
//     and spilled to a small stack buffer, the bucket increments stay
//     scalar (a gather/scatter histogram would race its own lanes);
//   * count_ge / count_zeros: compare + movemask popcount.

void keys_fill_scalar(const float* __restrict vp, std::uint32_t* __restrict kp,
                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) kp[i] = magnitude_key(vp[i]);
}

void hist_hi16_scalar(const float* __restrict vp, std::size_t n,
                      std::uint32_t* __restrict hist) noexcept {
  for (std::size_t i = 0; i < n; ++i) ++hist[magnitude_key(vp[i]) >> kHiShift];
}

std::size_t count_ge_scalar(const float* __restrict vp, std::size_t n,
                            std::uint32_t key) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += magnitude_key(vp[i]) >= key;
  return count;
}

std::size_t count_zeros_scalar(const float* __restrict vp,
                               std::size_t n) noexcept {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += magnitude_key(vp[i]) == 0;
  return count;
}

#ifdef DGS_X86

__attribute__((target("avx2"))) inline __m256i keys8_avx2(
    const float* p) noexcept {
  const __m256i mag = _mm256_set1_epi32(0x7fffffff);
  const __m256i inf = _mm256_set1_epi32(0x7f800000);
  const __m256i k = _mm256_and_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), mag);
  return _mm256_min_epi32(k, inf);  // NaN clamps to the inf key
}

__attribute__((target("avx2"))) void keys_fill_avx2(
    const float* __restrict vp, std::uint32_t* __restrict kp,
    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(kp + i), keys8_avx2(vp + i));
  for (; i < n; ++i) kp[i] = magnitude_key(vp[i]);
}

__attribute__((target("avx2"))) void hist_hi16_avx2(
    const float* __restrict vp, std::size_t n,
    std::uint32_t* __restrict hist) noexcept {
  alignas(32) std::uint32_t buf[16];
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf),
                       _mm256_srli_epi32(keys8_avx2(vp + i), 16));
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 8),
                       _mm256_srli_epi32(keys8_avx2(vp + i + 8), 16));
    for (std::size_t u = 0; u < 16; ++u) ++hist[buf[u]];
  }
  for (; i < n; ++i) ++hist[magnitude_key(vp[i]) >> kHiShift];
}

__attribute__((target("avx2,popcnt"))) std::size_t count_ge_avx2(
    const float* __restrict vp, std::size_t n, std::uint32_t key) noexcept {
  // key - 1 as signed turns >= key into > key-1; key == 0 gives -1, which
  // every (non-negative) key exceeds — matching the count-all contract.
  const __m256i thr = _mm256_set1_epi32(static_cast<int>(key) - 1);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i ge = _mm256_cmpgt_epi32(keys8_avx2(vp + i), thr);
    count += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(ge)))));
  }
  for (; i < n; ++i) count += magnitude_key(vp[i]) >= key;
  return count;
}

__attribute__((target("avx2,popcnt"))) std::size_t count_zeros_avx2(
    const float* __restrict vp, std::size_t n) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i eq = _mm256_cmpeq_epi32(keys8_avx2(vp + i), zero);
    count += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
  }
  for (; i < n; ++i) count += magnitude_key(vp[i]) == 0;
  return count;
}

__attribute__((target("avx512f"))) inline __m512i keys16_avx512(
    const float* p) noexcept {
  const __m512i mag = _mm512_set1_epi32(0x7fffffff);
  const __m512i inf = _mm512_set1_epi32(0x7f800000);
  const __m512i k = _mm512_and_si512(
      _mm512_loadu_si512(reinterpret_cast<const void*>(p)), mag);
  return _mm512_min_epi32(k, inf);
}

__attribute__((target("avx512f"))) void keys_fill_avx512(
    const float* __restrict vp, std::uint32_t* __restrict kp,
    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_si512(reinterpret_cast<void*>(kp + i), keys16_avx512(vp + i));
  for (; i < n; ++i) kp[i] = magnitude_key(vp[i]);
}

__attribute__((target("avx512f"))) void hist_hi16_avx512(
    const float* __restrict vp, std::size_t n,
    std::uint32_t* __restrict hist) noexcept {
  alignas(64) std::uint32_t buf[32];
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm512_store_si512(reinterpret_cast<void*>(buf),
                       _mm512_srli_epi32(keys16_avx512(vp + i), 16));
    _mm512_store_si512(reinterpret_cast<void*>(buf + 16),
                       _mm512_srli_epi32(keys16_avx512(vp + i + 16), 16));
    for (std::size_t u = 0; u < 32; ++u) ++hist[buf[u]];
  }
  for (; i < n; ++i) ++hist[magnitude_key(vp[i]) >> kHiShift];
}

__attribute__((target("avx512f,popcnt"))) std::size_t count_ge_avx512(
    const float* __restrict vp, std::size_t n, std::uint32_t key) noexcept {
  const __m512i thr = _mm512_set1_epi32(static_cast<int>(key) - 1);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 ge = _mm512_cmpgt_epi32_mask(keys16_avx512(vp + i), thr);
    count += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(ge)));
  }
  for (; i < n; ++i) count += magnitude_key(vp[i]) >= key;
  return count;
}

__attribute__((target("avx512f,popcnt"))) std::size_t count_zeros_avx512(
    const float* __restrict vp, std::size_t n) noexcept {
  const __m512i zero = _mm512_setzero_si512();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 eq = _mm512_cmpeq_epi32_mask(keys16_avx512(vp + i), zero);
    count += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(eq)));
  }
  for (; i < n; ++i) count += magnitude_key(vp[i]) == 0;
  return count;
}

#endif  // DGS_X86

using KeysFillFn = void (*)(const float*, std::uint32_t*, std::size_t) noexcept;
using HistFn = void (*)(const float*, std::size_t, std::uint32_t*) noexcept;
using CountKeyFn = std::size_t (*)(const float*, std::size_t,
                                   std::uint32_t) noexcept;
using CountFn = std::size_t (*)(const float*, std::size_t) noexcept;

#ifdef DGS_X86
constexpr KeysFillFn kKeysFill[util::kNumIsas] = {
    keys_fill_scalar, keys_fill_avx2, keys_fill_avx512};
constexpr HistFn kHistHi16[util::kNumIsas] = {hist_hi16_scalar, hist_hi16_avx2,
                                              hist_hi16_avx512};
constexpr CountKeyFn kCountGe[util::kNumIsas] = {
    count_ge_scalar, count_ge_avx2, count_ge_avx512};
constexpr CountFn kCountZeros[util::kNumIsas] = {
    count_zeros_scalar, count_zeros_avx2, count_zeros_avx512};
#else
constexpr KeysFillFn kKeysFill[util::kNumIsas] = {
    keys_fill_scalar, keys_fill_scalar, keys_fill_scalar};
constexpr HistFn kHistHi16[util::kNumIsas] = {hist_hi16_scalar,
                                              hist_hi16_scalar,
                                              hist_hi16_scalar};
constexpr CountKeyFn kCountGe[util::kNumIsas] = {
    count_ge_scalar, count_ge_scalar, count_ge_scalar};
constexpr CountFn kCountZeros[util::kNumIsas] = {
    count_zeros_scalar, count_zeros_scalar, count_zeros_scalar};
#endif

}  // namespace

std::uint32_t SparsifyWorkspace::kth_key(std::span<const float> values,
                                         std::size_t k) {
  if (values.empty()) return 0;
  k = std::clamp<std::size_t>(k, 1, values.size());
  return ranked_key(values, k).key;
}

SparsifyWorkspace::RankedKey SparsifyWorkspace::ranked_key(
    std::span<const float> values, std::size_t k) {
  assert(!values.empty() && k >= 1 && k <= values.size());
  if (values.size() < kRadixCutoff) return ranked_key_small(values, k);
  return ranked_key_radix(values, k);
}

SparsifyWorkspace::RankedKey SparsifyWorkspace::ranked_key_small(
    std::span<const float> values, std::size_t k) {
  keys_.resize(values.size());
  const float* __restrict vp = values.data();
  std::uint32_t* __restrict kp = keys_.data();
  const std::size_t n = values.size();
  kKeysFill[util::isa_index(util::active_isa())](vp, kp, n);
  std::nth_element(keys_.begin(),
                   keys_.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   keys_.end(), std::greater<std::uint32_t>());
  RankedKey out;
  out.key = keys_[k - 1];
  // nth_element partitions: [0, k) are >= key. Ties at the key may sit in
  // the tail, so count them there instead of rescanning the whole input.
  out.count_ge = k;
  for (std::size_t i = k; i < n; ++i) out.count_ge += kp[i] >= out.key;
  return out;
}

SparsifyWorkspace::RankedKey SparsifyWorkspace::ranked_key_radix(
    std::span<const float> values, std::size_t k) {
  hist_.resize(kBuckets);
  std::uint32_t* __restrict hist = hist_.data();
  const float* __restrict vp = values.data();
  const std::size_t n = values.size();

  // Pass 1: rank the high 16 bits of the magnitude key.
  std::memset(hist, 0, kBuckets * sizeof(std::uint32_t));
  kHistHi16[util::isa_index(util::active_isa())](vp, n, hist);
  std::size_t cumulative = 0;
  std::size_t hi = kBuckets - 1;
  for (;; --hi) {
    cumulative += hist[hi];
    if (cumulative >= k || hi == 0) break;
  }
  const std::size_t above_hi = cumulative - hist[hi];
  // Remaining rank to resolve inside bucket `hi` (>= 1 by construction).
  const std::size_t k_lo = k - above_hi;
  const auto hi_key = static_cast<std::uint32_t>(hi);

  // Pass 2: gather the entries whose high half-word matched and rank them
  // directly. Bucket `hi` holds a ~1/128 relative magnitude band, so for
  // gradient-like data it is a few thousand entries at most — collecting
  // them beats a second histogram pass (no 256 KiB clear, no bucket scan),
  // and even the adversarial all-one-bucket case just degrades to the
  // nth_element small path.
  const std::size_t in_bucket = hist[hi];
  keys_.resize(in_bucket);
  std::uint32_t* __restrict kp = keys_.data();
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t key = magnitude_key(vp[i]);
    if ((key >> kHiShift) == hi_key) kp[w++] = key;
  }
  assert(w == in_bucket && k_lo >= 1 && k_lo <= in_bucket);
  std::nth_element(keys_.begin(),
                   keys_.begin() + static_cast<std::ptrdiff_t>(k_lo - 1),
                   keys_.end(), std::greater<std::uint32_t>());
  RankedKey out;
  out.key = keys_[k_lo - 1];
  // nth_element partitions: [0, k_lo) are >= key; ties at the key may sit
  // in the tail, so count them there.
  out.count_ge = above_hi + k_lo;
  for (std::size_t i = k_lo; i < in_bucket; ++i)
    out.count_ge += kp[i] >= out.key;
  return out;
}

SelectResult SparsifyWorkspace::select(std::span<const float> values,
                                       double ratio_percent) {
  if (values.empty()) return {};
  return select_k(values, keep_count(values.size(), ratio_percent));
}

SelectResult SparsifyWorkspace::select_k(std::span<const float> values,
                                         std::size_t k) {
  SelectResult sel;
  if (values.empty()) return sel;
  k = std::clamp<std::size_t>(k, 1, values.size());
  if (k == values.size()) {
    // Keep-everything fast path (R >= 100, or clamping on tiny layers):
    // the compaction kernels emit every nonzero entry at key 0, so no
    // selection pass is needed — just size the output.
    sel.kept = values.size() - count_zeros(values);
    return sel;
  }
  const RankedKey ranked = ranked_key(values, k);
  sel.key = ranked.key;
  sel.threshold = key_magnitude(ranked.key);
  sel.kept = ranked.count_ge;
  if (sel.key == 0) sel.kept -= count_zeros(values);
  return sel;
}

std::uint32_t SparsifyWorkspace::sampled_key(std::span<const float> values,
                                             double ratio_percent,
                                             std::size_t sample_size,
                                             util::Rng& rng) {
  if (values.empty()) return 0;
  // Sampling with replacement from a population not much larger than the
  // sample is both biased (duplicates shadow distinct order statistics)
  // and pointless now that exact selection is O(n): clamp to exact.
  if (sample_size == 0 || values.size() < 4 * sample_size) {
    const std::size_t k = keep_count(values.size(), ratio_percent);
    // k == n is the keep-everything degeneration: key 0, same as select().
    return k == values.size() ? 0u : kth_key(values, k);
  }
  sample_.resize(sample_size);
  for (auto& s : sample_)
    s = values[static_cast<std::size_t>(rng.below(values.size()))];
  const std::size_t k = keep_count(sample_size, ratio_percent);
  return kth_key({sample_.data(), sample_.size()}, k);
}

SelectResult SparsifyWorkspace::sampled_select(std::span<const float> values,
                                               double ratio_percent,
                                               std::size_t sample_size,
                                               util::Rng& rng) {
  SelectResult sel;
  if (values.empty()) return sel;
  sel.key = sampled_key(values, ratio_percent, sample_size, rng);
  sel.threshold = key_magnitude(sel.key);
  // The estimate came from a sample, but the kept count must be exact for
  // the fused compaction to size its output: count against the full input.
  sel.kept = count_ge_key(values, sel.key);
  if (sel.key == 0) sel.kept -= count_zeros(values);
  return sel;
}

namespace {

/// Shared single-pass compaction core. `Mutate` is applied to each entry
/// after classification: it receives (value_ptr, kept) and implements the
/// zero-extracted / rescale-unsent variants without a second pass.
template <typename Mutate>
void compact_into(std::uint32_t layer, const float* __restrict vp,
                  std::size_t n, std::uint32_t thr_key, std::size_t kept,
                  LayerChunk& out, Mutate&& mutate) {
  out.layer = layer;
  out.dense_size = static_cast<std::uint32_t>(n);
  out.idx.resize(kept);
  out.val.resize(kept);
  std::uint32_t* __restrict oi = out.idx.data();
  float* __restrict ov = out.val.data();
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t key = magnitude_key(vp[i]);
    const bool keep = key >= thr_key && key != 0;
    if (keep) {
      oi[w] = static_cast<std::uint32_t>(i);
      ov[w] = vp[i];
      ++w;
    }
    mutate(i, keep);
  }
  assert(w == kept);
  (void)w;
}

}  // namespace

void SparsifyWorkspace::compact_copy(std::uint32_t layer,
                                     std::span<const float> values,
                                     const SelectResult& sel, LayerChunk& out) {
  compact_into(layer, values.data(), values.size(), sel.key, sel.kept, out,
               [](std::size_t, bool) {});
}

void SparsifyWorkspace::compact_zero(std::uint32_t layer,
                                     std::span<float> values,
                                     const SelectResult& sel, LayerChunk& out) {
  float* __restrict vp = values.data();
  compact_into(layer, vp, values.size(), sel.key, sel.kept, out,
               [vp](std::size_t i, bool keep) {
                 if (keep) vp[i] = 0.0f;
               });
}

void SparsifyWorkspace::compact_rescale(std::uint32_t layer,
                                        std::span<float> values,
                                        const SelectResult& sel, float factor,
                                        LayerChunk& out) {
  float* __restrict vp = values.data();
  compact_into(layer, vp, values.size(), sel.key, sel.kept, out,
               [vp, factor](std::size_t i, bool keep) {
                 if (!keep) vp[i] *= factor;
               });
}

bool SparsifyWorkspace::gather_radix(std::span<const float> values,
                                     std::size_t k) {
  const std::size_t n = values.size();
  if (n < kRadixCutoff || k >= n) return false;
  assert(k >= 1);
  hist_.resize(kBuckets);
  std::uint32_t* __restrict hist = hist_.data();
  const float* __restrict vp = values.data();

  // Pass 1: rank the high 16 bits (identical to ranked_key_radix).
  std::memset(hist, 0, kBuckets * sizeof(std::uint32_t));
  kHistHi16[util::isa_index(util::active_isa())](vp, n, hist);
  std::size_t cumulative = 0;
  std::size_t hi = kBuckets - 1;
  for (;; --hi) {
    cumulative += hist[hi];
    if (cumulative >= k || hi == 0) break;
  }
  const std::size_t above_hi = cumulative - hist[hi];
  const std::size_t k_lo = k - above_hi;
  const auto hi_key = static_cast<std::uint32_t>(hi);

  // Pass 2: gather instead of just ranking — entries in buckets above the
  // winner are kept for certain, entries in the winning bucket are
  // candidates whose fate the in-bucket rank decides. Both lists come out
  // in ascending index order because this is one forward scan.
  sure_idx_.clear();
  sure_val_.clear();
  cand_idx_.clear();
  cand_key_.clear();
  cand_val_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t key = magnitude_key(vp[i]);
    const std::uint32_t h = key >> kHiShift;
    if (h < hi_key) continue;
    if (h > hi_key) {
      sure_idx_.push_back(static_cast<std::uint32_t>(i));
      sure_val_.push_back(vp[i]);
    } else {
      cand_idx_.push_back(static_cast<std::uint32_t>(i));
      cand_key_.push_back(key);
      cand_val_.push_back(vp[i]);
    }
  }
  assert(sure_idx_.size() == above_hi && cand_idx_.size() == hist[hi]);

  // Exact in-bucket threshold: k_lo-th largest among the candidate keys
  // (ranked on a copy so candidate order stays ascending-index).
  keys_.assign(cand_key_.begin(), cand_key_.end());
  std::nth_element(keys_.begin(),
                   keys_.begin() + static_cast<std::ptrdiff_t>(k_lo - 1),
                   keys_.end(), std::greater<std::uint32_t>());
  gathered_thr_ = keys_[k_lo - 1];
  return true;
}

void SparsifyWorkspace::emit_gathered(std::uint32_t layer,
                                      std::size_t dense_size,
                                      std::uint32_t cand_thr, LayerChunk& out) {
  const auto keeps_cand = [cand_thr](std::uint32_t key) {
    return key >= cand_thr && key != 0;
  };
  std::size_t kept = sure_idx_.size();
  for (const std::uint32_t key : cand_key_) kept += keeps_cand(key);

  out.layer = layer;
  out.dense_size = static_cast<std::uint32_t>(dense_size);
  out.idx.resize(kept);
  out.val.resize(kept);
  const std::size_t ns = sure_idx_.size();
  const std::size_t nc = cand_idx_.size();
  std::size_t s = 0, c = 0, w = 0;
  while (true) {
    while (c < nc && !keeps_cand(cand_key_[c])) ++c;
    bool take_sure;
    if (s < ns && c < nc) {
      take_sure = sure_idx_[s] < cand_idx_[c];
    } else if (s < ns) {
      take_sure = true;
    } else if (c < nc) {
      take_sure = false;
    } else {
      break;
    }
    if (take_sure) {
      out.idx[w] = sure_idx_[s];
      out.val[w] = sure_val_[s];
      ++s;
    } else {
      out.idx[w] = cand_idx_[c];
      out.val[w] = cand_val_[c];
      ++c;
    }
    ++w;
  }
  assert(w == kept);
  (void)w;
}

void SparsifyWorkspace::sparsify_copy(std::uint32_t layer,
                                      std::span<const float> values,
                                      double ratio_percent, LayerChunk& out) {
  if (!values.empty() &&
      gather_radix(values, keep_count(values.size(), ratio_percent))) {
    emit_gathered(layer, values.size(), gathered_thr_, out);
    return;
  }
  compact_copy(layer, values, select(values, ratio_percent), out);
}

void SparsifyWorkspace::sparsify_zero(std::uint32_t layer,
                                      std::span<float> values,
                                      double ratio_percent, LayerChunk& out) {
  if (!values.empty() &&
      gather_radix(values, keep_count(values.size(), ratio_percent))) {
    emit_gathered(layer, values.size(), gathered_thr_, out);
    // Zero exactly the extracted entries — a sparse scatter over the kept
    // indices, far cheaper than a third full pass at typical ratios.
    float* __restrict vp = values.data();
    for (const std::uint32_t i : out.idx) vp[i] = 0.0f;
    return;
  }
  compact_zero(layer, values, select(values, ratio_percent), out);
}

SparseUpdate SparsifyWorkspace::acquire_update(std::size_t num_layers) {
  SparseUpdate update;
  if (!pool_.empty()) {
    update = std::move(pool_.back());
    pool_.pop_back();
  }
  if (update.layers.size() != num_layers) update.layers.resize(num_layers);
  for (auto& chunk : update.layers) {
    chunk.idx.clear();
    chunk.val.clear();
  }
  return update;
}

void SparsifyWorkspace::recycle(SparseUpdate&& update) noexcept {
  // pool_ growth is bounded by the number of updates simultaneously in
  // flight per owner (one, for every current caller), so push_back settles
  // at capacity 1 and the recycle round-trip is allocation-free.
  pool_.push_back(std::move(update));
}

std::size_t SparsifyWorkspace::scratch_bytes() const noexcept {
  std::size_t bytes = hist_.capacity() * sizeof(std::uint32_t) +
                      keys_.capacity() * sizeof(std::uint32_t) +
                      sample_.capacity() * sizeof(float) +
                      sure_idx_.capacity() * sizeof(std::uint32_t) +
                      sure_val_.capacity() * sizeof(float) +
                      cand_idx_.capacity() * sizeof(std::uint32_t) +
                      cand_key_.capacity() * sizeof(std::uint32_t) +
                      cand_val_.capacity() * sizeof(float);
  for (const auto& update : pool_)
    for (const auto& chunk : update.layers)
      bytes += chunk.idx.capacity() * sizeof(std::uint32_t) +
               chunk.val.capacity() * sizeof(float);
  return bytes;
}

std::size_t count_ge_key(std::span<const float> values,
                         std::uint32_t key) noexcept {
  return kCountGe[util::isa_index(util::active_isa())](values.data(),
                                                       values.size(), key);
}

std::size_t count_zeros(std::span<const float> values) noexcept {
  return kCountZeros[util::isa_index(util::active_isa())](values.data(),
                                                          values.size());
}

}  // namespace dgs::sparse
