#include "obs/ledger.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <utility>

namespace dgs::obs {

namespace {

// ---- JSON writing -----------------------------------------------------------

/// Shortest round-trip double; NaN/inf (not JSON) clamp to 0 / +-1e308,
/// matching MetricsSnapshot::write_jsonl.
std::string jnum(double v) {
  if (std::isnan(v)) v = 0.0;
  if (std::isinf(v)) v = v > 0 ? 1e308 : -1e308;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// ---- JSON parsing -----------------------------------------------------------
// Minimal recursive-descent parser for the subset to_json emits (objects,
// arrays, strings, numbers, booleans, null). No external JSON dependency is
// available in this repo, and the ledger round-trip test needs real parsing
// rather than substring matching.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it != object.end() ? &it->second : nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return at_ == text_.size();
  }

 private:
  void skip_ws() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_])) != 0)
      ++at_;
  }

  bool consume(char c) {
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    if (at_ >= text_.size()) return false;
    switch (text_[at_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string);
      }
      case 't':
        if (text_.compare(at_, 4, "true") == 0) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
          at_ += 4;
          return true;
        }
        return false;
      case 'f':
        if (text_.compare(at_, 5, "false") == 0) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
          at_ += 5;
          return true;
        }
        return false;
      case 'n':
        if (text_.compare(at_, 4, "null") == 0) {
          out->kind = JsonValue::Kind::kNull;
          at_ += 4;
          return true;
        }
        return false;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (at_ < text_.size()) {
      const char c = text_[at_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (at_ >= text_.size()) return false;
      const char esc = text_[at_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (at_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[at_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // to_json only escapes control characters this way; decode the
          // single-byte range and reject anything wider.
          if (code > 0xFF) return false;
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = at_;
    if (at_ < text_.size() && (text_[at_] == '-' || text_[at_] == '+')) ++at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) != 0 ||
            text_[at_] == '.' || text_[at_] == 'e' || text_[at_] == 'E' ||
            text_[at_] == '+' || text_[at_] == '-'))
      ++at_;
    if (at_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    const std::string token = text_.substr(start, at_ - start);
    out->number = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  const std::string& text_;
  std::size_t at_ = 0;
};

// ---- extraction helpers -----------------------------------------------------
// Absent key -> keep the default (schema-forward-compatible); present key
// with the wrong type -> hard failure.

bool get_num(const JsonValue& obj, const std::string& key, double* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (v->kind != JsonValue::Kind::kNumber) return false;
  *out = v->number;
  return true;
}

bool get_u64(const JsonValue& obj, const std::string& key,
             std::uint64_t* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (v->kind != JsonValue::Kind::kNumber || v->number < 0) return false;
  *out = static_cast<std::uint64_t>(v->number);
  return true;
}

bool get_str(const JsonValue& obj, const std::string& key, std::string* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (v->kind != JsonValue::Kind::kString) return false;
  *out = v->string;
  return true;
}

bool get_bool(const JsonValue& obj, const std::string& key, bool* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (v->kind != JsonValue::Kind::kBool) return false;
  *out = v->boolean;
  return true;
}

}  // namespace

std::string RunLedger::to_json() const {
  std::string out = "{";
  out += "\"schema\":" + std::to_string(schema);
  out += ",\"run\":" + jstr(run);
  out += ",\"bench\":" + jstr(bench);
  out += ",\"engine\":" + jstr(engine);
  out += ",\"method\":" + jstr(method);
  out += ",\"simd_isa\":" + jstr(simd_isa);
  out += ",\"workers\":" + std::to_string(workers);
  out += ",\"batch_size\":" + std::to_string(batch_size);
  out += ",\"epochs_configured\":" + std::to_string(epochs_configured);
  out += ",\"epochs_completed\":" + std::to_string(epochs_completed);
  out += ",\"final_test_accuracy\":" + jnum(final_test_accuracy);
  out += ",\"final_train_loss\":" + jnum(final_train_loss);
  out += ",\"sim_seconds\":" + jnum(sim_seconds);
  out += ",\"wall_seconds\":" + jnum(wall_seconds);
  out += ",\"epoch_sim_seconds\":" + jnum(epoch_sim_seconds);
  out += ",\"epoch_wall_seconds\":" + jnum(epoch_wall_seconds);
  out += ",\"server_steps\":" + std::to_string(server_steps);
  out += ",\"samples\":" + std::to_string(samples);
  out += ",\"bytes_up\":" + std::to_string(bytes_up);
  out += ",\"bytes_down\":" + std::to_string(bytes_down);
  out += ",\"up_bytes_per_element\":" + jnum(up_bytes_per_element);
  out += ",\"down_bytes_per_element\":" + jnum(down_bytes_per_element);
  out += ",\"staleness\":{\"count\":" + std::to_string(staleness.count) +
         ",\"mean\":" + jnum(staleness.mean) + ",\"p50\":" +
         jnum(staleness.p50) + ",\"p95\":" + jnum(staleness.p95) +
         ",\"max\":" + jnum(staleness.max) + "}";
  out += ",\"faults_injected\":" + std::to_string(faults_injected);
  out += ",\"leases_reclaimed\":" + std::to_string(leases_reclaimed);
  out += ",\"worker_rejoins\":" + std::to_string(worker_rejoins);
  out += ",\"warm_steps\":" + std::to_string(warm_steps);
  out += ",\"step_us\":{\"mean\":" + jnum(step_us_mean) + ",\"p50\":" +
         jnum(step_us_p50) + ",\"p95\":" + jnum(step_us_p95) + ",\"p99\":" +
         jnum(step_us_p99) + "}";
  out += ",\"attributed_fraction\":" + jnum(attributed_fraction);
  out += ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"name\":" + jstr(phases[i].name) + ",\"total_us\":" +
           jnum(phases[i].total_us) + ",\"count\":" +
           std::to_string(phases[i].count) + "}";
  }
  out += "],\"milestones\":[";
  for (std::size_t i = 0; i < milestones.size(); ++i) {
    const Milestone& m = milestones[i];
    if (i != 0) out += ',';
    out += "{\"frac\":" + jnum(m.frac) + ",\"reached\":" +
           (m.reached ? "true" : "false") + ",\"epoch\":" +
           std::to_string(m.epoch) + ",\"time_s\":" + jnum(m.time_s) +
           ",\"accuracy\":" + jnum(m.accuracy) + "}";
  }
  out += "],\"adaptive\":{\"decisions\":" + std::to_string(adaptive.decisions) +
         ",\"base_ratio_percent\":" + jnum(adaptive.base_ratio_percent) +
         ",\"min_ratio_percent\":" + jnum(adaptive.min_ratio_percent) +
         ",\"mean_ratio_percent\":" + jnum(adaptive.mean_ratio_percent) +
         ",\"keep_budget\":" + std::to_string(adaptive.keep_budget) +
         ",\"trajectory\":[";
  for (std::size_t i = 0; i < adaptive.trajectory.size(); ++i) {
    const Adaptive::Point& p = adaptive.trajectory[i];
    if (i != 0) out += ',';
    out += "{\"step\":" + std::to_string(p.step) + ",\"ratios\":[";
    for (std::size_t j = 0; j < p.ratios.size(); ++j) {
      if (j != 0) out += ',';
      out += jnum(p.ratios[j]);
    }
    out += "]}";
  }
  out += "]}}";
  return out;
}

bool RunLedger::from_json(const std::string& json, RunLedger* out) {
  JsonValue root;
  if (!JsonParser(json).parse(&root) ||
      root.kind != JsonValue::Kind::kObject)
    return false;

  RunLedger ledger;
  double schema_num = static_cast<double>(kSchemaVersion);
  if (!get_num(root, "schema", &schema_num)) return false;
  ledger.schema = static_cast<int>(schema_num);

  bool ok = get_str(root, "run", &ledger.run) &&
            get_str(root, "bench", &ledger.bench) &&
            get_str(root, "engine", &ledger.engine) &&
            get_str(root, "method", &ledger.method) &&
            get_str(root, "simd_isa", &ledger.simd_isa) &&
            get_u64(root, "workers", &ledger.workers) &&
            get_u64(root, "batch_size", &ledger.batch_size) &&
            get_u64(root, "epochs_configured", &ledger.epochs_configured) &&
            get_u64(root, "epochs_completed", &ledger.epochs_completed) &&
            get_num(root, "final_test_accuracy",
                    &ledger.final_test_accuracy) &&
            get_num(root, "final_train_loss", &ledger.final_train_loss) &&
            get_num(root, "sim_seconds", &ledger.sim_seconds) &&
            get_num(root, "wall_seconds", &ledger.wall_seconds) &&
            get_num(root, "epoch_sim_seconds", &ledger.epoch_sim_seconds) &&
            get_num(root, "epoch_wall_seconds", &ledger.epoch_wall_seconds) &&
            get_u64(root, "server_steps", &ledger.server_steps) &&
            get_u64(root, "samples", &ledger.samples) &&
            get_u64(root, "bytes_up", &ledger.bytes_up) &&
            get_u64(root, "bytes_down", &ledger.bytes_down) &&
            get_num(root, "up_bytes_per_element",
                    &ledger.up_bytes_per_element) &&
            get_num(root, "down_bytes_per_element",
                    &ledger.down_bytes_per_element) &&
            get_u64(root, "faults_injected", &ledger.faults_injected) &&
            get_u64(root, "leases_reclaimed", &ledger.leases_reclaimed) &&
            get_u64(root, "worker_rejoins", &ledger.worker_rejoins) &&
            get_u64(root, "warm_steps", &ledger.warm_steps) &&
            get_num(root, "attributed_fraction", &ledger.attributed_fraction);
  if (!ok) return false;

  if (const JsonValue* s = root.find("staleness")) {
    if (s->kind != JsonValue::Kind::kObject) return false;
    if (!get_u64(*s, "count", &ledger.staleness.count) ||
        !get_num(*s, "mean", &ledger.staleness.mean) ||
        !get_num(*s, "p50", &ledger.staleness.p50) ||
        !get_num(*s, "p95", &ledger.staleness.p95) ||
        !get_num(*s, "max", &ledger.staleness.max))
      return false;
  }

  if (const JsonValue* s = root.find("step_us")) {
    if (s->kind != JsonValue::Kind::kObject) return false;
    if (!get_num(*s, "mean", &ledger.step_us_mean) ||
        !get_num(*s, "p50", &ledger.step_us_p50) ||
        !get_num(*s, "p95", &ledger.step_us_p95) ||
        !get_num(*s, "p99", &ledger.step_us_p99))
      return false;
  }

  if (const JsonValue* arr = root.find("phases")) {
    if (arr->kind != JsonValue::Kind::kArray) return false;
    for (const JsonValue& entry : arr->array) {
      if (entry.kind != JsonValue::Kind::kObject) return false;
      PhaseEntry phase;
      if (!get_str(entry, "name", &phase.name) ||
          !get_num(entry, "total_us", &phase.total_us) ||
          !get_u64(entry, "count", &phase.count))
        return false;
      ledger.phases.push_back(std::move(phase));
    }
  }

  if (const JsonValue* arr = root.find("milestones")) {
    if (arr->kind != JsonValue::Kind::kArray) return false;
    for (const JsonValue& entry : arr->array) {
      if (entry.kind != JsonValue::Kind::kObject) return false;
      Milestone m;
      if (!get_num(entry, "frac", &m.frac) ||
          !get_bool(entry, "reached", &m.reached) ||
          !get_u64(entry, "epoch", &m.epoch) ||
          !get_num(entry, "time_s", &m.time_s) ||
          !get_num(entry, "accuracy", &m.accuracy))
        return false;
      ledger.milestones.push_back(m);
    }
  }

  if (const JsonValue* a = root.find("adaptive")) {
    if (a->kind != JsonValue::Kind::kObject) return false;
    if (!get_u64(*a, "decisions", &ledger.adaptive.decisions) ||
        !get_num(*a, "base_ratio_percent",
                 &ledger.adaptive.base_ratio_percent) ||
        !get_num(*a, "min_ratio_percent",
                 &ledger.adaptive.min_ratio_percent) ||
        !get_num(*a, "mean_ratio_percent",
                 &ledger.adaptive.mean_ratio_percent) ||
        !get_u64(*a, "keep_budget", &ledger.adaptive.keep_budget))
      return false;
    if (const JsonValue* arr = a->find("trajectory")) {
      if (arr->kind != JsonValue::Kind::kArray) return false;
      for (const JsonValue& entry : arr->array) {
        if (entry.kind != JsonValue::Kind::kObject) return false;
        Adaptive::Point p;
        if (!get_u64(entry, "step", &p.step)) return false;
        if (const JsonValue* ratios = entry.find("ratios")) {
          if (ratios->kind != JsonValue::Kind::kArray) return false;
          for (const JsonValue& r : ratios->array) {
            if (r.kind != JsonValue::Kind::kNumber) return false;
            p.ratios.push_back(r.number);
          }
        }
        ledger.adaptive.trajectory.push_back(std::move(p));
      }
    }
  }

  *out = std::move(ledger);
  return true;
}

}  // namespace dgs::obs
