#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace dgs::obs {

namespace {

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string jnum(double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

double Tracer::now_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch)
      .count();
}

void Tracer::enable(std::size_t events_per_thread) {
  capacity_.store(events_per_thread > 0 ? events_per_thread : 1,
                  std::memory_order_relaxed);
  (void)now_us();  // pin the epoch before the first event
  enabled_.store(true, std::memory_order_relaxed);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard lock(mutex_);
    track_names_.push_back("thread/" +
                           std::to_string(track_names_.size() + 1));
    buffer->track = static_cast<std::uint32_t>(track_names_.size());
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::set_thread_name(const std::string& name) {
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard lock(mutex_);
  track_names_.at(buffer.track - 1) = name;
}

std::uint32_t Tracer::register_track(const std::string& name) {
  std::lock_guard lock(mutex_);
  track_names_.push_back(name);
  return static_cast<std::uint32_t>(track_names_.size());
}

void Tracer::record(const TraceEvent& event) {
  ThreadBuffer& buffer = local_buffer();
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  std::lock_guard lock(buffer.mutex);
  if (buffer.ring.size() < capacity) {
    buffer.ring.push_back(event);
  } else {
    buffer.ring[buffer.head] = event;
    buffer.head = (buffer.head + 1) % buffer.ring.size();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::record_complete(const char* name, const char* cat, double ts_us,
                             double dur_us, std::uint32_t track) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ts_us = ts_us;
  event.dur_us = dur_us >= 0.0 ? dur_us : 0.0;
  event.track = track;
  record(event);
}

void Tracer::record_instant(const char* name, const char* cat,
                            std::uint64_t arg, bool has_arg,
                            std::uint32_t track) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ts_us = now_us();
  event.dur_us = -1.0;
  event.track = track;
  event.arg = arg;
  event.has_arg = has_arg;
  record(event);
}

void Tracer::export_json(std::ostream& os) const {
  // Copy under locks first so emission happens without blocking writers.
  std::vector<std::string> names;
  std::vector<std::pair<std::uint32_t, std::vector<TraceEvent>>> per_thread;
  {
    std::lock_guard lock(mutex_);
    names = track_names_;
    per_thread.reserve(buffers_.size());
    for (const auto& buffer : buffers_) {
      std::lock_guard buffer_lock(buffer->mutex);
      per_thread.emplace_back(buffer->track, buffer->ring);
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };

  comma();
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"dgs\"}}";
  for (std::size_t i = 0; i < names.size(); ++i) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << i + 1
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << escape_json(names[i]) << "\"}}";
  }

  for (const auto& [own_track, events] : per_thread) {
    for (const TraceEvent& event : events) {
      const std::uint32_t tid = event.track != 0 ? event.track : own_track;
      comma();
      if (event.dur_us >= 0.0) {
        os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
           << ",\"ts\":" << jnum(event.ts_us)
           << ",\"dur\":" << jnum(event.dur_us) << ",\"name\":\""
           << escape_json(event.name) << "\",\"cat\":\""
           << escape_json(event.cat) << "\"}";
      } else {
        os << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << tid
           << ",\"ts\":" << jnum(event.ts_us) << ",\"s\":\"t\",\"name\":\""
           << escape_json(event.name) << "\",\"cat\":\""
           << escape_json(event.cat) << "\"";
        if (event.has_arg) os << ",\"args\":{\"value\":" << event.arg << "}";
        os << "}";
      }
    }
  }
  os << "]}\n";
}

bool Tracer::export_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  export_json(os);
  return static_cast<bool>(os);
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard buffer_lock(buffer->mutex);
    buffer->ring.clear();
    buffer->head = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace dgs::obs
