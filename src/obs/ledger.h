// RunLedger: one versioned JSON record per bench run — the committed
// perf-trajectory unit (DESIGN.md §15).
//
// A ledger distills a RunResult into the numbers the paper's evaluation
// actually argues about: time-to-accuracy milestones (Figs. 2-5), warm
// step-time quantiles and epoch time (Tables 3-4), bytes per element in
// both directions (Fig. 6), staleness and fault counts, and the phase
// breakdown from obs/phase.h. EngineContext::finalize assembles it on
// RunResult::ledger; bench_common's --ledger-out stamps the run/bench keys
// and appends one JSON line per run; scripts/record_trajectory.py folds
// those lines into the committed BENCH_*.json files keyed by git sha, and
// scripts/check_bench.py --trajectory gates new runs against the last
// committed entry.
//
// Schema stability: the field set below IS the schema. Bump kSchemaVersion
// on any breaking rename/retype; additions are backwards-compatible
// (from_json ignores unknown keys, absent keys keep their defaults). The
// cross-engine schema-stability test in tests/test_obs.cpp pins the key
// set, so accidental drift fails fast.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dgs::obs {

struct RunLedger {
  // v2: added the `adaptive` block (runtime sparsity-controller summary and
  // per-layer ratio trajectory, core/adaptive.h). Additive — v1 lines parse
  // with the block at its defaults. The `simd_isa` field is a later v2
  // addition under the same rules: absent keys keep their defaults, so
  // older lines parse with it empty.
  static constexpr int kSchemaVersion = 2;

  int schema = kSchemaVersion;
  std::string run;     ///< Series key within a bench (e.g. "w8/DGS").
  std::string bench;   ///< Bench binary family (e.g. "table3_cifar_scalability").
  std::string engine;  ///< "SimEngine" | "ThreadEngine" | "SyncEngine".
  std::string method;  ///< Training method name (e.g. "DGS", "ASGD").
  /// SIMD dispatch path the run's kernels used ("scalar" | "avx2" |
  /// "avx512", util/simd.h); empty on lines recorded before the field
  /// existed. Committed trajectory entries carry this so a step-time
  /// change can be attributed to (or disambiguated from) an ISA change.
  std::string simd_isa;

  std::uint64_t workers = 0;
  std::uint64_t batch_size = 0;
  std::uint64_t epochs_configured = 0;
  std::uint64_t epochs_completed = 0;

  double final_test_accuracy = 0.0;
  double final_train_loss = 0.0;
  double sim_seconds = 0.0;   ///< Modeled time (== wall for thread runs).
  double wall_seconds = 0.0;  ///< Real execution time of the run.
  double epoch_sim_seconds = 0.0;   ///< sim_seconds / epochs_completed.
  double epoch_wall_seconds = 0.0;  ///< wall_seconds / epochs_completed.

  std::uint64_t server_steps = 0;
  std::uint64_t samples = 0;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  /// Payload bytes per shipped element in each direction (the Fig. 5/6
  /// bandwidth metric); 0 when the run shipped no elements that way.
  double up_bytes_per_element = 0.0;
  double down_bytes_per_element = 0.0;

  struct Staleness {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
  };
  Staleness staleness;

  std::uint64_t faults_injected = 0;
  std::uint64_t leases_reclaimed = 0;
  std::uint64_t worker_rejoins = 0;

  /// Warm step-time distribution and attribution from the phase profiler
  /// (obs/phase.h); all zero when the build compiled the profiler out.
  std::uint64_t warm_steps = 0;
  double step_us_mean = 0.0;
  double step_us_p50 = 0.0;
  double step_us_p95 = 0.0;
  double step_us_p99 = 0.0;
  double attributed_fraction = 0.0;

  struct PhaseEntry {
    std::string name;  ///< obs::phase_name() string, stable across PRs.
    double total_us = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<PhaseEntry> phases;

  /// Time-to-accuracy milestones: the first learning-curve point whose test
  /// accuracy reaches frac * final accuracy (fracs 0.5 / 0.8 / 0.9).
  /// `reached` is false when no curve point got there (e.g. curve recording
  /// off); epoch/time_s/accuracy are then zero.
  struct Milestone {
    double frac = 0.0;
    bool reached = false;
    std::uint64_t epoch = 0;
    double time_s = 0.0;  ///< Engine time of the milestone curve point.
    double accuracy = 0.0;
  };
  std::vector<Milestone> milestones;

  /// Runtime per-layer sparsity controller summary (Method::kDGSAdaptive,
  /// core/adaptive.h). All-defaults for non-adaptive runs. The trajectory
  /// is worker 0's committed schedule: `step` is the worker push count the
  /// decision fired at, `ratios` the per-layer keep-ratios in percent.
  /// Empty when the run's workers live in forked processes (uds/tcp
  /// transports) — the parent cannot see their controller state.
  struct Adaptive {
    std::uint64_t decisions = 0;
    double base_ratio_percent = 0.0;
    double min_ratio_percent = 0.0;
    double mean_ratio_percent = 0.0;
    std::uint64_t keep_budget = 0;
    struct Point {
      std::uint64_t step = 0;
      std::vector<double> ratios;
    };
    std::vector<Point> trajectory;
  };
  Adaptive adaptive;

  /// Single-line JSON object (no trailing newline), append-friendly for
  /// JSONL ledger files.
  [[nodiscard]] std::string to_json() const;

  /// Parse a to_json() line back. Unknown keys are ignored; absent keys
  /// keep their defaults. Returns false (leaving *out unspecified) on
  /// malformed JSON or wrong value types for known keys.
  static bool from_json(const std::string& json, RunLedger* out);
};

}  // namespace dgs::obs
