// Chrome trace_event recorder: RAII scoped spans and instant events written
// into per-thread ring buffers and exported as JSON that Perfetto /
// chrome://tracing can open directly.
//
// Cost model: recording is gated twice. At compile time the DGS_TRACE CMake
// option (on by default) controls whether the DGS_TRACE_* macros expand at
// all — with it OFF every span compiles to nothing. At runtime the tracer
// is off until Tracer::enable() flips an atomic flag; a disabled span costs
// one relaxed load and a branch, so instrumentation can stay in the hot
// paths permanently. When enabled, each event is one timestamped struct
// appended to the calling thread's bounded ring buffer (oldest events are
// overwritten), guarded by a per-thread mutex that is only ever contended
// by export.
//
// Tracks: every recording thread gets its own track, named via
// set_thread_name ("worker/3", "server/1"). register_track creates a
// *virtual* track ("shard/2") that any thread can target explicitly — used
// for spans that describe a resource (a shard's critical section) rather
// than a thread.
//
// Span names must be string literals (or otherwise outlive the tracer):
// events store the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dgs::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< Static string; not owned.
  const char* cat = nullptr;   ///< Static string; not owned.
  double ts_us = 0.0;          ///< Start, microseconds since tracer epoch.
  double dur_us = -1.0;        ///< Span duration; < 0 marks an instant event.
  std::uint32_t track = 0;     ///< Resolved track id (1-based).
  std::uint64_t arg = 0;       ///< Optional numeric payload ("value" arg).
  bool has_arg = false;
};

class Tracer {
 public:
  /// Process-wide tracer (thread-local ring buffers make per-run instances
  /// impractical; runs isolate by clear() + export).
  [[nodiscard]] static Tracer& instance();

  /// Start recording; each thread buffers up to `events_per_thread` events
  /// (ring, oldest overwritten). Idempotent.
  void enable(std::size_t events_per_thread = 1 << 15);
  void disable() noexcept {
    enabled_.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the tracer epoch (steady clock).
  [[nodiscard]] static double now_us() noexcept;

  /// Name the calling thread's track (e.g. "worker/0"). Safe any time.
  void set_thread_name(const std::string& name);
  /// Create a named virtual track and return its id for explicit targeting.
  [[nodiscard]] std::uint32_t register_track(const std::string& name);

  /// Record a complete ('X') span. track == 0 targets the calling thread's
  /// own track. No-op while disabled.
  void record_complete(const char* name, const char* cat, double ts_us,
                       double dur_us, std::uint32_t track = 0);
  /// Record an instant ('i') event, optionally carrying a numeric value.
  void record_instant(const char* name, const char* cat, std::uint64_t arg = 0,
                      bool has_arg = false, std::uint32_t track = 0);

  /// Export everything buffered so far as Chrome trace JSON. Safe while
  /// other threads keep recording (their buffers are locked one at a time).
  void export_json(std::ostream& os) const;
  bool export_json(const std::string& path) const;

  /// Drop all buffered events (track registrations are kept).
  void clear();

  /// Events overwritten because a ring filled up (diagnostic).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> ring;
    std::size_t head = 0;  ///< Next overwrite position once full.
    std::uint32_t track = 0;
  };

  Tracer() = default;
  ThreadBuffer& local_buffer();
  void record(const TraceEvent& event);

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{1 << 15};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;  ///< Guards buffers_ and track_names_.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<std::string> track_names_;
};

/// RAII span: captures the start time if tracing is enabled at entry and
/// records a complete event at scope exit.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat,
                      std::uint32_t track = 0) noexcept {
    if (Tracer::instance().enabled()) {
      name_ = name;
      cat_ = cat;
      track_ = track;
      start_us_ = Tracer::now_us();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr)
      Tracer::instance().record_complete(name_, cat_, start_us_,
                                         Tracer::now_us() - start_us_, track_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  double start_us_ = 0.0;
  std::uint32_t track_ = 0;
};

}  // namespace dgs::obs

// ---- instrumentation macros -------------------------------------------------
// DGS_TRACE_COMPILED is defined by CMake (option DGS_TRACE, default ON).
// With it OFF, spans vanish entirely; the Tracer class itself stays
// available so enable()/export paths still link.
#ifndef DGS_TRACE_COMPILED
#define DGS_TRACE_COMPILED 1
#endif

#if DGS_TRACE_COMPILED
#define DGS_OBS_CONCAT_IMPL(a, b) a##b
#define DGS_OBS_CONCAT(a, b) DGS_OBS_CONCAT_IMPL(a, b)
#define DGS_TRACE_SCOPE(name, cat) \
  ::dgs::obs::ScopedSpan DGS_OBS_CONCAT(dgs_trace_span_, __LINE__)(name, cat)
#define DGS_TRACE_SCOPE_TRACK(name, cat, track)                          \
  ::dgs::obs::ScopedSpan DGS_OBS_CONCAT(dgs_trace_span_, __LINE__)(name, \
                                                                   cat, track)
#define DGS_TRACE_INSTANT(name, cat, value)                             \
  do {                                                                  \
    ::dgs::obs::Tracer& dgs_trace_tracer = ::dgs::obs::Tracer::instance(); \
    if (dgs_trace_tracer.enabled())                                     \
      dgs_trace_tracer.record_instant(                                  \
          name, cat, static_cast<std::uint64_t>(value), true);          \
  } while (0)
#else
#define DGS_TRACE_SCOPE(name, cat) \
  do {                             \
  } while (0)
#define DGS_TRACE_SCOPE_TRACK(name, cat, track) \
  do {                                          \
  } while (0)
#define DGS_TRACE_INSTANT(name, cat, value) \
  do {                                      \
  } while (0)
#endif
