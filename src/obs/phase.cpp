#include "obs/phase.h"

namespace dgs::obs {

namespace {
constexpr const char* kPhaseNames[kNumPhases] = {
    "fwd_bwd",      "sparsify_select", "encode",      "wire",
    "server_apply", "reply_encode",    "decode_apply"};
constexpr const char* kPhaseSpanNames[kNumPhases] = {
    "phase/fwd_bwd",      "phase/sparsify_select", "phase/encode",
    "phase/wire",         "phase/server_apply",    "phase/reply_encode",
    "phase/decode_apply"};

// The worker-path phases that tile a worker's step (see the attribution
// identity in phase.h); kServerApply/kReplyEncode overlap kWire and are
// deliberately excluded.
constexpr Phase kWorkerPathPhases[] = {
    Phase::kForwardBackward, Phase::kSparsifySelect, Phase::kEncode,
    Phase::kWire, Phase::kDecodeApply};
}  // namespace

const char* phase_name(Phase phase) noexcept {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

const char* phase_span_name(Phase phase) noexcept {
  return kPhaseSpanNames[static_cast<std::size_t>(phase)];
}

double PhaseBreakdown::attributed_fraction() const noexcept {
  double step_us = 0.0;
  double attributed_us = 0.0;
  for (const WorkerRow& row : workers) {
    step_us += row.step_us;
    for (Phase phase : kWorkerPathPhases)
      attributed_us += row.phase_us[static_cast<std::size_t>(phase)];
  }
  return step_us > 0.0 ? attributed_us / step_us : 0.0;
}

#if DGS_TRACE_COMPILED

PhaseProfiler::PhaseProfiler(std::size_t num_workers, std::size_t warmup_steps)
    : slots_(num_workers),
      warmup_(warmup_steps),
      // 1us..~537s in x2 steps: covers sub-ms sim steps through multi-second
      // full-batch thread steps without quantile starvation at either end.
      step_us_(exponential_bounds(1.0, 2.0, 30)) {}

PhaseBreakdown PhaseProfiler::breakdown() const {
  PhaseBreakdown out;
  out.workers.resize(slots_.size());
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    const WorkerSlot& slot = slots_[w];
    PhaseBreakdown::WorkerRow& row = out.workers[w];
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const double us =
          static_cast<double>(slot.phase_ns[p].load(std::memory_order_relaxed)) *
          1e-3;
      const std::uint64_t n = slot.phase_count[p].load(std::memory_order_relaxed);
      row.phase_us[p] = us;
      out.phases[p].total_us += us;
      out.phases[p].count += n;
    }
    row.step_us =
        static_cast<double>(slot.step_ns.load(std::memory_order_relaxed)) * 1e-3;
    row.steps = slot.warm_steps.load(std::memory_order_relaxed);
    const std::uint64_t all_steps = slot.steps.load(std::memory_order_relaxed);
    out.warmup_steps_skipped += all_steps - row.steps;
  }
  out.step_us_hist = step_us_.snapshot();
  return out;
}

#else  // !DGS_TRACE_COMPILED

PhaseProfiler::PhaseProfiler(std::size_t, std::size_t) {}

PhaseBreakdown PhaseProfiler::breakdown() const { return {}; }

#endif

}  // namespace dgs::obs
