// Runtime metrics: named counters, gauges and fixed-bucket histograms.
//
// Designed for the async hot paths (server pool threads, worker threads):
// every instrument is lock-free on record — counters stripe across
// cache-line-padded atomic cells indexed by a per-thread stripe id,
// histograms use one relaxed atomic per bucket — and the registry mutex is
// only taken on first registration and on snapshot. Snapshots are plain
// value types that can be exported as JSONL (one metric per line) or CSV
// and queried for interpolated quantiles (p50/p95/p99).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dgs::obs {

// ---- bucket helpers ---------------------------------------------------------

/// Upper bounds {start, start+width, ...}, `n` buckets; a final implicit
/// overflow bucket catches everything above the last bound.
[[nodiscard]] std::vector<double> linear_bounds(double start, double width,
                                                std::size_t n);
/// Upper bounds {start, start*factor, start*factor^2, ...}, `n` buckets.
[[nodiscard]] std::vector<double> exponential_bounds(double start,
                                                     double factor,
                                                     std::size_t n);

// ---- instruments ------------------------------------------------------------

namespace detail {
/// Stable per-thread stripe id so concurrent writers hit distinct cells.
[[nodiscard]] std::size_t thread_stripe() noexcept;
}  // namespace detail

/// Monotonic counter, striped to avoid cross-thread cache-line ping-pong.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::thread_stripe() % kStripes].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& cell : cells_) sum += cell.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// Last-write-wins scalar (e.g. queue depth, configured pool size).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Immutable-snapshot view of one histogram; quantiles interpolate linearly
/// inside the bucket containing the requested rank, clamped to the observed
/// [min, max].
struct HistogramSnapshot {
  std::vector<double> bounds;        ///< Upper bounds, ascending.
  std::vector<std::uint64_t> counts; ///< bounds.size() + 1 (last = overflow).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Meaningless when count == 0.
  double max = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  [[nodiscard]] double quantile(double q) const noexcept;
  /// Samples above the last bound. Exported separately in JSONL/CSV so a
  /// saturated top bucket (e.g. pathological staleness under chaos) is
  /// distinguishable from an empty one.
  [[nodiscard]] std::uint64_t overflow() const noexcept {
    return counts.empty() ? 0 : counts.back();
  }
};

/// Fixed-bucket histogram. Bucket i holds values in (bounds[i-1], bounds[i]]
/// (the first bucket is (-inf, bounds[0]]); values above the last bound land
/// in an overflow bucket. record() is a handful of relaxed atomic ops.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double value) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 cells
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// ---- snapshot / export ------------------------------------------------------

/// Compact summary carried in core::RunResult next to the scalar means.
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

[[nodiscard]] HistogramSummary summarize(const HistogramSnapshot& hist);

/// Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Lookup by name; nullptr when the instrument was never registered.
  [[nodiscard]] const std::uint64_t* find_counter(
      const std::string& name) const noexcept;
  /// find_counter with a 0 default for never-registered counters.
  [[nodiscard]] std::uint64_t counter_value(
      const std::string& name) const noexcept;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      const std::string& name) const noexcept;
  [[nodiscard]] HistogramSummary summary_of(const std::string& name) const;

  /// One JSON object per line; `run` (when non-empty) tags every line so
  /// appended snapshots from a sweep stay distinguishable.
  void write_jsonl(std::ostream& os, const std::string& run = "") const;
  void write_csv(std::ostream& os, bool header = true) const;
  bool append_jsonl(const std::string& path, const std::string& run = "") const;
};

/// Named-instrument registry. counter()/gauge()/histogram() create on first
/// use (under a mutex) and return a reference that stays valid for the
/// registry's lifetime — instrumented sites resolve once and cache the
/// pointer. snapshot() merges the striped state without stopping writers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `bounds` is consulted only on first registration of `name`.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every instrument; references handed out earlier stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dgs::obs
