#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace dgs::obs {

namespace {

/// JSON-safe number rendering: shortest round-trip double, with NaN and
/// infinities (not representable in JSON) clamped to 0 / +-1e308.
std::string jnum(double v) {
  if (std::isnan(v)) v = 0.0;
  if (std::isinf(v)) v = v > 0 ? 1e308 : -1e308;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<double> linear_bounds(double start, double width, std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    bounds.push_back(start + width * static_cast<double>(i));
  return bounds;
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double bound = start;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

namespace detail {
std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}
}  // namespace detail

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: empty bucket bounds");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  // Buckets first: a record() racing the snapshot can at worst make the
  // aggregate fields slightly ahead of the bucket counts, never behind.
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  snap.count = 0;
  for (std::uint64_t c : snap.counts) snap.count += c;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  return snap;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cum + counts[i]) >= rank) {
      // Interpolate inside bucket i; the open ends (first bucket's lower
      // edge, overflow bucket's upper edge) use the observed min/max.
      double lo = i == 0 ? min : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi < lo) hi = lo;
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    cum += counts[i];
  }
  return max;
}

HistogramSummary summarize(const HistogramSnapshot& hist) {
  HistogramSummary summary;
  summary.count = hist.count;
  summary.mean = hist.mean();
  summary.p50 = hist.quantile(0.50);
  summary.p95 = hist.quantile(0.95);
  summary.max = hist.max;
  return summary;
}

// ---- MetricsSnapshot --------------------------------------------------------

const std::uint64_t* MetricsSnapshot::find_counter(
    const std::string& name) const noexcept {
  for (const auto& [counter_name, value] : counters)
    if (counter_name == name) return &value;
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(
    const std::string& name) const noexcept {
  const std::uint64_t* value = find_counter(name);
  return value != nullptr ? *value : 0;
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    const std::string& name) const noexcept {
  for (const auto& [hist_name, hist] : histograms)
    if (hist_name == name) return &hist;
  return nullptr;
}

HistogramSummary MetricsSnapshot::summary_of(const std::string& name) const {
  const HistogramSnapshot* hist = find_histogram(name);
  return hist != nullptr ? summarize(*hist) : HistogramSummary{};
}

void MetricsSnapshot::write_jsonl(std::ostream& os,
                                  const std::string& run) const {
  const std::string run_field =
      run.empty() ? std::string() : "\"run\":\"" + run + "\",";
  for (const auto& [name, value] : counters)
    os << "{" << run_field << "\"type\":\"counter\",\"name\":\"" << name
       << "\",\"value\":" << value << "}\n";
  for (const auto& [name, value] : gauges)
    os << "{" << run_field << "\"type\":\"gauge\",\"name\":\"" << name
       << "\",\"value\":" << jnum(value) << "}\n";
  for (const auto& [name, hist] : histograms) {
    os << "{" << run_field << "\"type\":\"histogram\",\"name\":\"" << name
       << "\",\"count\":" << hist.count << ",\"sum\":" << jnum(hist.sum)
       << ",\"min\":" << jnum(hist.min) << ",\"max\":" << jnum(hist.max)
       << ",\"mean\":" << jnum(hist.mean())
       << ",\"p50\":" << jnum(hist.quantile(0.50))
       << ",\"p95\":" << jnum(hist.quantile(0.95))
       << ",\"p99\":" << jnum(hist.quantile(0.99))
       << ",\"overflow\":" << hist.overflow() << ",\"bounds\":[";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i)
      os << (i ? "," : "") << jnum(hist.bounds[i]);
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i)
      os << (i ? "," : "") << hist.counts[i];
    os << "]}\n";
  }
}

void MetricsSnapshot::write_csv(std::ostream& os, bool header) const {
  if (header) os << "name,type,value,count,mean,p50,p95,max,overflow\n";
  for (const auto& [name, value] : counters)
    os << name << ",counter," << value << ",,,,,,\n";
  for (const auto& [name, value] : gauges)
    os << name << ",gauge," << jnum(value) << ",,,,,,\n";
  for (const auto& [name, hist] : histograms)
    os << name << ",histogram," << jnum(hist.sum) << "," << hist.count << ","
       << jnum(hist.mean()) << "," << jnum(hist.quantile(0.50)) << ","
       << jnum(hist.quantile(0.95)) << "," << jnum(hist.max) << ","
       << hist.overflow() << "\n";
}

bool MetricsSnapshot::append_jsonl(const std::string& path,
                                   const std::string& run) const {
  std::ofstream os(path, std::ios::app);
  if (!os) return false;
  write_jsonl(os, run);
  return static_cast<bool>(os);
}

// ---- MetricsRegistry --------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snap.counters.emplace_back(name, counter->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.emplace_back(name, gauge->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_)
    snap.histograms.emplace_back(name, hist->snapshot());
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace dgs::obs
