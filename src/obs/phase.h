// Phase-attribution profiler: low-overhead per-step accumulators that answer
// "where did the step go" without reading a Chrome trace.
//
// The training pipeline is split into seven phases (DESIGN.md §15):
//
//   worker side   kForwardBackward  batch fill + forward + backward
//                 kSparsifySelect   gradient -> g_{k,t} (select/compact)
//                 kEncode           wire-encode of the push payload
//                 kWire             transport time the worker observes
//                                   (send block + reply wait; modeled-time
//                                   transports record their bookkeeping cost)
//                 kDecodeApply      reply decode + theta_k += G
//   server side   kServerApply      push decode/validate + apply to M
//                 kReplyEncode      G = M - v_k build, lossy transform and
//                                   reply wire-encode
//
// Accumulation is per (worker, phase): one relaxed atomic nanosecond total
// and count each, cache-line padded per worker so the recording threads
// (worker k's thread, and whichever server-pool thread is handling worker
// k's push — serialized by the one-in-flight-push-per-worker protocol
// invariant) never false-share. Server-side phases are attributed to the
// *pushing* worker.
//
// Warm-up: the first `warmup_steps` steps of each worker are excluded from
// every accumulator (cold caches, lazy allocation and first-touch page
// faults would otherwise dominate short runs), so phase totals, the step
// histogram and the attribution identity below all describe the same warm
// steady state.
//
// Attribution identity: the five worker-side phases tile the worker's step
// path in every engine, so per worker
//
//   fwd_bwd + sparsify_select + encode + wire + decode_apply  ~=  step time
//
// within the glue the timers do not cover (budget claim, tally updates,
// message header bookkeeping). PhaseBreakdown::attributed_fraction() reports
// the ratio; the bench gate requires >= 0.95. The server-side phases overlap
// the worker's kWire wait (the worker blocks while the server works), so
// they are reported separately and never summed into the identity.
//
// Clock: all timestamps come from Tracer::now_us() — the same
// std::chrono::steady_clock behind the Chrome tracer and util::Stopwatch —
// so phase totals, step times and trace spans are directly comparable.
//
// Compile gate: the profiler shares the DGS_TRACE gate (CMake option
// DGS_TRACE, default ON). With DGS_TRACE=OFF, PhaseTimer is an empty type,
// PhaseProfiler holds no state and allocates nothing, and every record call
// is a no-op — pinned by sizeof/static and operator-new-counter checks in
// tests/test_obs.cpp. At runtime, a null PhaseProfiler* makes PhaseTimer
// skip even the clock read.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dgs::obs {

enum class Phase : std::uint8_t {
  kForwardBackward = 0,
  kSparsifySelect,
  kEncode,
  kWire,
  kServerApply,
  kReplyEncode,
  kDecodeApply,
};

inline constexpr std::size_t kNumPhases = 7;

/// Stable short name ("fwd_bwd", "wire", ...) used by the ledger JSON and
/// the per-phase trace span names.
[[nodiscard]] const char* phase_name(Phase phase) noexcept;
/// Static "phase/<name>" string for trace spans (outlives the tracer).
[[nodiscard]] const char* phase_span_name(Phase phase) noexcept;

/// Aggregated snapshot of a PhaseProfiler (all figures warm-only).
struct PhaseBreakdown {
  struct PhaseTotal {
    double total_us = 0.0;
    std::uint64_t count = 0;
  };
  struct WorkerRow {
    std::array<double, kNumPhases> phase_us{};
    double step_us = 0.0;      ///< Sum of warm step times.
    std::uint64_t steps = 0;   ///< Warm steps recorded.
  };

  std::array<PhaseTotal, kNumPhases> phases{};  ///< Summed over workers.
  std::vector<WorkerRow> workers;
  HistogramSnapshot step_us_hist;  ///< Warm step-time distribution (us).
  std::uint64_t warmup_steps_skipped = 0;

  /// Worker-path phase time over recorded step time (see the attribution
  /// identity above); 0 when no warm step was recorded.
  [[nodiscard]] double attributed_fraction() const noexcept;
};

class PhaseProfiler {
 public:
  static constexpr std::size_t kDefaultWarmupSteps = 5;

  explicit PhaseProfiler(std::size_t num_workers,
                         std::size_t warmup_steps = kDefaultWarmupSteps);
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

#if DGS_TRACE_COMPILED
  /// Accumulate `us` microseconds of `phase` for `worker`. Dropped while the
  /// worker is still inside its warm-up window. Lock- and allocation-free.
  void add(std::size_t worker, Phase phase, double us) noexcept {
    WorkerSlot& slot = slots_[worker];
    if (slot.steps.load(std::memory_order_relaxed) < warmup_) return;
    const auto phase_index = static_cast<std::size_t>(phase);
    slot.phase_ns[phase_index].fetch_add(to_ns(us), std::memory_order_relaxed);
    slot.phase_count[phase_index].fetch_add(1, std::memory_order_relaxed);
  }

  /// Record one completed step of `worker` taking `us` microseconds. The
  /// first warmup_steps calls per worker only advance the warm-up counter.
  void record_step(std::size_t worker, double us) noexcept {
    WorkerSlot& slot = slots_[worker];
    if (slot.steps.fetch_add(1, std::memory_order_relaxed) < warmup_) return;
    slot.step_ns.fetch_add(to_ns(us), std::memory_order_relaxed);
    slot.warm_steps.fetch_add(1, std::memory_order_relaxed);
    step_us_.record(us);
  }

  [[nodiscard]] std::size_t num_workers() const noexcept {
    return slots_.size();
  }
#else
  void add(std::size_t, Phase, double) noexcept {}
  void record_step(std::size_t, double) noexcept {}
  [[nodiscard]] std::size_t num_workers() const noexcept { return 0; }
#endif

  /// Same steady clock as the tracer and util::Stopwatch, so attribution
  /// sums are directly comparable with every other timing in the repo.
  [[nodiscard]] static double now_us() noexcept { return Tracer::now_us(); }

  [[nodiscard]] PhaseBreakdown breakdown() const;

#if DGS_TRACE_COMPILED
 private:
  [[nodiscard]] static std::int64_t to_ns(double us) noexcept {
    return static_cast<std::int64_t>(us * 1e3 + 0.5);
  }

  /// One writer at a time per cell (see the header comment); padded so
  /// adjacent workers' cells never share a cache line.
  struct alignas(64) WorkerSlot {
    std::array<std::atomic<std::int64_t>, kNumPhases> phase_ns{};
    std::array<std::atomic<std::uint64_t>, kNumPhases> phase_count{};
    std::atomic<std::uint64_t> steps{0};      ///< All steps seen (warm-up gate).
    std::atomic<std::int64_t> step_ns{0};     ///< Warm step-time total.
    std::atomic<std::uint64_t> warm_steps{0};
  };

  std::vector<WorkerSlot> slots_;
  std::size_t warmup_;
  Histogram step_us_;
#endif
};

/// RAII phase timer: accumulates into the profiler and, when the tracer is
/// recording, emits a "phase/<name>" span on the calling thread's track (so
/// check_trace.py can verify phases nest inside their step/handler spans).
/// A null profiler makes construction and stop() free — not even a clock
/// read. With DGS_TRACE=OFF the whole type is an empty shell.
class PhaseTimer {
 public:
#if DGS_TRACE_COMPILED
  PhaseTimer(PhaseProfiler* profiler, std::size_t worker,
             Phase phase) noexcept {
    if (profiler != nullptr) {
      profiler_ = profiler;
      worker_ = worker;
      phase_ = phase;
      begin_us_ = Tracer::now_us();
    }
  }
  ~PhaseTimer() { stop(); }

  /// End the phase early (idempotent; the destructor is then a no-op).
  void stop() noexcept {
    if (profiler_ == nullptr) return;
    const double end_us = Tracer::now_us();
    profiler_->add(worker_, phase_, end_us - begin_us_);
    Tracer& tracer = Tracer::instance();
    if (tracer.enabled())
      tracer.record_complete(phase_span_name(phase_), "phase", begin_us_,
                             end_us - begin_us_);
    profiler_ = nullptr;
  }
#else
  PhaseTimer(PhaseProfiler*, std::size_t, Phase) noexcept {}
  void stop() noexcept {}
#endif

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

#if DGS_TRACE_COMPILED
 private:
  PhaseProfiler* profiler_ = nullptr;
  std::size_t worker_ = 0;
  Phase phase_ = Phase::kForwardBackward;
  double begin_us_ = 0.0;
#endif
};

#if !DGS_TRACE_COMPILED
static_assert(sizeof(PhaseTimer) == 1,
              "PhaseTimer must be an empty shell with DGS_TRACE=OFF");
static_assert(sizeof(PhaseProfiler) == 1,
              "PhaseProfiler must hold no state with DGS_TRACE=OFF");
#endif

}  // namespace dgs::obs
