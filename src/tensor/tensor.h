// A small dense float32 tensor used throughout the repository.
//
// Design: a Tensor is a shape plus a contiguous std::vector<float>. All
// heavy math goes through util::math_kernels; Tensor adds shape checking,
// views and initializers. There is no broadcasting and no strides — layers
// that need reshaped access use flat spans, which is all the optimizers and
// sparsifiers ever touch.
//
// Allocation behaviour: construction and destruction go through a
// thread-local buffer pool — a destroyed Tensor's storage is retired to
// the pool and the next construction of a fitting size reuses it, and
// Shape stores its dims inline (no heap). A training step builds the same
// tensor shapes every iteration, so once the pool has warmed up the whole
// forward/backward path performs zero heap allocations (enforced by the
// operator-new counter tests in tests/test_nn.cpp). Pooling is per
// thread: tensors may migrate between threads freely (the pool is only an
// allocation cache), and each thread's pool is bounded at kPoolEntries
// buffers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dgs::tensor {

/// Shape of a tensor; up to 4 dimensions (N, C, H, W) is all we need.
/// Dims are stored inline (no heap) so building a Shape never allocates.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims);
  explicit Shape(std::span<const std::size_t> dims);

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] std::size_t operator[](std::size_t i) const;
  [[nodiscard]] std::size_t numel() const noexcept {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return rank_ == 0 ? 0 : n;
  }
  [[nodiscard]] std::span<const std::size_t> dims() const noexcept {
    return {dims_.data(), rank_};
  }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    // Unused trailing dims are always zero, so whole-array compare works.
    return a.rank_ == b.rank_ && a.dims_ == b.dims_;
  }

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

class Tensor {
 public:
  /// Retired buffers kept per thread; the oldest is dropped beyond this.
  static constexpr std::size_t kPoolEntries = 64;

  Tensor() = default;
  explicit Tensor(Shape shape, float fill_value = 0.0f);
  Tensor(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(const Tensor& other);
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  /// Bytes currently retired in the calling thread's buffer pool (tests).
  [[nodiscard]] static std::size_t pool_bytes() noexcept;

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  [[nodiscard]] static Tensor from(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t numel() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> flat() const noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  float& operator[](std::size_t i) { return data_.at(i); }
  float operator[](std::size_t i) const { return data_.at(i); }

  /// Index helpers for 2D / 4D tensors (row-major).
  float& at2(std::size_t i, std::size_t j);
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] float at2(std::size_t i, std::size_t j) const;
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) const;

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// Reinterpret with a new shape of equal numel.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Initializers. fan_in/fan_out follow the usual conventions.
  void init_uniform(util::Rng& rng, float lo, float hi);
  void init_normal(util::Rng& rng, float mean, float stddev);
  void init_he(util::Rng& rng, std::size_t fan_in);
  void init_xavier(util::Rng& rng, std::size_t fan_in, std::size_t fan_out);

  [[nodiscard]] std::string str(std::size_t max_items = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// im2col for 2D convolution (NCHW, row-major).
/// Input: one image [C, H, W]; output columns [C*kh*kw, out_h*out_w].
void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel_h, std::size_t kernel_w,
            std::size_t stride, std::size_t pad, float* columns);

/// col2im: scatter-add the columns back into an image-shaped gradient.
void col2im(const float* columns, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel_h, std::size_t kernel_w,
            std::size_t stride, std::size_t pad, float* image);

/// Output spatial size of a convolution/pool along one axis.
[[nodiscard]] constexpr std::size_t conv_out_size(std::size_t in, std::size_t kernel,
                                                  std::size_t stride,
                                                  std::size_t pad) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace dgs::tensor
