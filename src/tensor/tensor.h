// A small dense float32 tensor used throughout the repository.
//
// Design: a Tensor is a shape plus a contiguous std::vector<float>. All
// heavy math goes through util::math_kernels; Tensor adds shape checking,
// views and initializers. There is no broadcasting and no strides — layers
// that need reshaped access use flat spans, which is all the optimizers and
// sparsifiers ever touch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dgs::tensor {

/// Shape of a tensor; up to 4 dimensions (N, C, H, W) is all we need.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  [[nodiscard]] std::size_t rank() const noexcept { return dims_.size(); }
  [[nodiscard]] std::size_t operator[](std::size_t i) const { return dims_.at(i); }
  [[nodiscard]] std::size_t numel() const noexcept {
    std::size_t n = 1;
    for (std::size_t d : dims_) n *= d;
    return dims_.empty() ? 0 : n;
  }
  [[nodiscard]] const std::vector<std::size_t>& dims() const noexcept {
    return dims_;
  }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Shape& a, const Shape& b) noexcept {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<std::size_t> dims_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill_value = 0.0f);

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  [[nodiscard]] static Tensor from(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t numel() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> flat() const noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  float& operator[](std::size_t i) { return data_.at(i); }
  float operator[](std::size_t i) const { return data_.at(i); }

  /// Index helpers for 2D / 4D tensors (row-major).
  float& at2(std::size_t i, std::size_t j);
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] float at2(std::size_t i, std::size_t j) const;
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) const;

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// Reinterpret with a new shape of equal numel.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Initializers. fan_in/fan_out follow the usual conventions.
  void init_uniform(util::Rng& rng, float lo, float hi);
  void init_normal(util::Rng& rng, float mean, float stddev);
  void init_he(util::Rng& rng, std::size_t fan_in);
  void init_xavier(util::Rng& rng, std::size_t fan_in, std::size_t fan_out);

  [[nodiscard]] std::string str(std::size_t max_items = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// im2col for 2D convolution (NCHW, row-major).
/// Input: one image [C, H, W]; output columns [C*kh*kw, out_h*out_w].
void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel_h, std::size_t kernel_w,
            std::size_t stride, std::size_t pad, float* columns);

/// col2im: scatter-add the columns back into an image-shaped gradient.
void col2im(const float* columns, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel_h, std::size_t kernel_w,
            std::size_t stride, std::size_t pad, float* image);

/// Output spatial size of a convolution/pool along one axis.
[[nodiscard]] constexpr std::size_t conv_out_size(std::size_t in, std::size_t kernel,
                                                  std::size_t stride,
                                                  std::size_t pad) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace dgs::tensor
