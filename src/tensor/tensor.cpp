#include "tensor/tensor.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/math_kernels.h"

namespace dgs::tensor {

namespace {

// Thread-local allocation cache for Tensor storage. Destroyed tensors
// retire their vector here (LIFO); constructions scan from the back for
// the first retired buffer whose capacity fits. `g_pool_alive` guards the
// teardown race at thread exit: once the pool's destructor has run,
// later-destroyed tensors (e.g. statics) free normally.
thread_local bool g_pool_alive = false;

struct BufferPool {
  std::vector<std::vector<float>> retired;

  BufferPool() { g_pool_alive = true; }
  ~BufferPool() { g_pool_alive = false; }

  std::vector<float> acquire(std::size_t n) {
    for (std::size_t i = retired.size(); i-- > 0;) {
      if (retired[i].capacity() >= n) {
        std::vector<float> buf = std::move(retired[i]);
        retired.erase(retired.begin() + static_cast<std::ptrdiff_t>(i));
        return buf;
      }
    }
    if (!retired.empty()) {
      // Nothing fits: grow the most recently retired buffer instead of
      // allocating a fresh one, so capacities warm toward the high-water
      // mark instead of accumulating undersized entries.
      std::vector<float> buf = std::move(retired.back());
      retired.pop_back();
      return buf;
    }
    return {};
  }

  void recycle(std::vector<float>&& buf) {
    if (buf.capacity() == 0) return;
    if (retired.size() >= Tensor::kPoolEntries)
      retired.erase(retired.begin());
    retired.push_back(std::move(buf));
  }

  std::size_t bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& buf : retired) total += buf.capacity() * sizeof(float);
    return total;
  }
};

BufferPool& buffer_pool() {
  thread_local BufferPool pool;
  return pool;
}

std::vector<float> acquire_buffer(std::size_t n) {
  return buffer_pool().acquire(n);
}

void release_buffer(std::vector<float>&& buf) noexcept {
  if (g_pool_alive) buffer_pool().recycle(std::move(buf));
}

}  // namespace

Shape::Shape(std::initializer_list<std::size_t> dims) {
  if (dims.size() > kMaxRank)
    throw std::invalid_argument("Shape: rank > 4 unsupported");
  for (std::size_t d : dims) dims_[rank_++] = d;
}

Shape::Shape(std::span<const std::size_t> dims) {
  if (dims.size() > kMaxRank)
    throw std::invalid_argument("Shape: rank > 4 unsupported");
  for (std::size_t d : dims) dims_[rank_++] = d;
}

std::size_t Shape::operator[](std::size_t i) const {
  if (i >= rank_) throw std::out_of_range("Shape: dim index out of range");
  return dims_[i];
}

std::string Shape::str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < rank_; ++i) os << (i ? "x" : "") << dims_[i];
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape, float fill_value)
    : shape_(shape), data_(acquire_buffer(shape.numel())) {
  data_.assign(shape_.numel(), fill_value);
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(acquire_buffer(other.data_.size())) {
  data_.assign(other.data_.begin(), other.data_.end());
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_), data_(std::move(other.data_)) {
  other.shape_ = Shape();
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this != &other) {
    shape_ = other.shape_;
    data_.assign(other.data_.begin(), other.data_.end());
  }
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    shape_ = other.shape_;
    // Swap rather than move-assign: our old storage rides along in
    // `other` and is retired to the pool when it dies.
    data_.swap(other.data_);
    other.shape_ = Shape();
  }
  return *this;
}

Tensor::~Tensor() { release_buffer(std::move(data_)); }

std::size_t Tensor::pool_bytes() noexcept { return buffer_pool().bytes(); }

Tensor Tensor::from(Shape shape, std::vector<float> values) {
  if (shape.numel() != values.size())
    throw std::invalid_argument("Tensor::from: size mismatch " + shape.str());
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

float& Tensor::at2(std::size_t i, std::size_t j) {
  assert(shape_.rank() == 2);
  return data_[i * shape_[1] + j];
}

float Tensor::at2(std::size_t i, std::size_t j) const {
  assert(shape_.rank() == 2);
  return data_[i * shape_[1] + j];
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  assert(shape_.rank() == 4);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h,
                  std::size_t w) const {
  assert(shape_.rank() == 4);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void Tensor::fill(float value) noexcept { util::fill(value, flat()); }

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel())
    throw std::invalid_argument("reshape numel mismatch: " + shape_.str() +
                                " -> " + new_shape.str());
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::init_uniform(util::Rng& rng, float lo, float hi) {
  for (auto& v : data_) v = rng.uniform(lo, hi);
}

void Tensor::init_normal(util::Rng& rng, float mean, float stddev) {
  for (auto& v : data_) v = rng.normal(mean, stddev);
}

void Tensor::init_he(util::Rng& rng, std::size_t fan_in) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in ? fan_in : 1));
  init_normal(rng, 0.0f, stddev);
}

void Tensor::init_xavier(util::Rng& rng, std::size_t fan_in, std::size_t fan_out) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out ? fan_in + fan_out : 1));
  init_uniform(rng, -limit, limit);
}

std::string Tensor::str(std::size_t max_items) const {
  std::ostringstream os;
  os << shape_.str() << " {";
  const std::size_t n = std::min(max_items, data_.size());
  for (std::size_t i = 0; i < n; ++i) os << (i ? ", " : "") << data_[i];
  if (data_.size() > n) os << ", ...";
  os << "}";
  return os.str();
}

void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel_h, std::size_t kernel_w,
            std::size_t stride, std::size_t pad, float* columns) {
  const std::size_t out_h = conv_out_size(height, kernel_h, stride, pad);
  const std::size_t out_w = conv_out_size(width, kernel_w, stride, pad);
  const std::size_t cols = out_h * out_w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    const float* img = image + c * height * width;
    for (std::size_t kh = 0; kh < kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < kernel_w; ++kw, ++row) {
        float* out = columns + row * cols;
        for (std::size_t oh = 0; oh < out_h; ++oh) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh * stride + kh) -
              static_cast<std::ptrdiff_t>(pad);
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(height)) {
            std::memset(out + oh * out_w, 0, out_w * sizeof(float));
            continue;
          }
          const float* src = img + static_cast<std::size_t>(ih) * width;
          for (std::size_t ow = 0; ow < out_w; ++ow) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * stride + kw) -
                static_cast<std::ptrdiff_t>(pad);
            out[oh * out_w + ow] =
                (iw < 0 || iw >= static_cast<std::ptrdiff_t>(width))
                    ? 0.0f
                    : src[static_cast<std::size_t>(iw)];
          }
        }
      }
    }
  }
}

void col2im(const float* columns, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel_h, std::size_t kernel_w,
            std::size_t stride, std::size_t pad, float* image) {
  const std::size_t out_h = conv_out_size(height, kernel_h, stride, pad);
  const std::size_t out_w = conv_out_size(width, kernel_w, stride, pad);
  const std::size_t cols = out_h * out_w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    float* img = image + c * height * width;
    for (std::size_t kh = 0; kh < kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < kernel_w; ++kw, ++row) {
        const float* in = columns + row * cols;
        for (std::size_t oh = 0; oh < out_h; ++oh) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh * stride + kh) -
              static_cast<std::ptrdiff_t>(pad);
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(height)) continue;
          float* dst = img + static_cast<std::size_t>(ih) * width;
          for (std::size_t ow = 0; ow < out_w; ++ow) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow * stride + kw) -
                static_cast<std::ptrdiff_t>(pad);
            if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(width)) continue;
            dst[static_cast<std::size_t>(iw)] += in[oh * out_w + ow];
          }
        }
      }
    }
  }
}

}  // namespace dgs::tensor
