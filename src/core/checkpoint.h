// Model checkpointing: save / load a parameter snapshot (plus metadata) to
// a binary file, so long training jobs can resume and the best evaluated
// model can be kept. Format:
//   u32 magic 'DGSC' | u32 version | u64 step | f64 accuracy |
//   u32 num_layers | per layer: u32 dense_size | dense_size * f32
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dgs::core {

struct Checkpoint {
  std::uint64_t step = 0;     ///< Server step (or epoch) at save time.
  double accuracy = 0.0;      ///< Evaluation metric at save time.
  std::vector<std::vector<float>> layers;

  /// Flattened view of all layers (layer order).
  [[nodiscard]] std::vector<float> flat() const;

  /// Split a flat parameter vector by layer sizes.
  [[nodiscard]] static Checkpoint from_flat(const std::vector<float>& theta,
                                            const std::vector<std::size_t>& sizes,
                                            std::uint64_t step = 0,
                                            double accuracy = 0.0);
};

/// Write a checkpoint; throws std::runtime_error on I/O failure.
void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);

/// Read a checkpoint; throws std::runtime_error on I/O or format errors.
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path);

}  // namespace dgs::core
