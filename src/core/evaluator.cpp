#include "core/evaluator.h"

#include <algorithm>
#include <numeric>

#include "nn/loss.h"

namespace dgs::core {

Evaluator::Evaluator(const nn::ModelSpec& spec,
                     std::shared_ptr<const data::Dataset> test_data,
                     std::size_t eval_batch)
    : spec_(spec),
      data_(std::move(test_data)),
      eval_batch_(eval_batch),
      model_(spec.build()),
      params_(model_->parameters()) {}

EvalResult Evaluator::evaluate(const std::vector<float>& theta_flat) {
  nn::param_scatter_values(theta_flat, params_);

  const std::size_t n = data_->size();
  const std::size_t dim = data_->feature_dim();
  std::vector<std::size_t> indices(eval_batch_);
  std::vector<float> features(eval_batch_ * dim);
  std::vector<std::int32_t> labels(eval_batch_);

  std::size_t correct = 0;
  double loss_sum = 0.0;
  for (std::size_t start = 0; start < n; start += eval_batch_) {
    const std::size_t count = std::min(eval_batch_, n - start);
    indices.resize(count);
    std::iota(indices.begin(), indices.end(), start);
    labels.resize(count);
    data_->fill_batch(indices, features.data(), labels.data());
    nn::Tensor input = nn::Tensor::from(
        spec_.input_shape(count),
        std::vector<float>(features.begin(),
                           features.begin() + static_cast<std::ptrdiff_t>(count * dim)));
    nn::Tensor logits = model_->forward(input, /*train=*/false);
    correct += nn::count_correct(logits, labels);
    loss_sum += nn::softmax_loss_only(logits, labels) * static_cast<double>(count);
  }
  EvalResult result;
  result.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  result.loss = loss_sum / static_cast<double>(n);
  return result;
}

}  // namespace dgs::core
