// Top-level public API: configure a training job, run it, get metrics.
//
// Quickstart:
//   auto data = dgs::data::make_synthetic(dgs::data::SyntheticSpec::synth_cifar());
//   dgs::core::TrainConfig cfg;
//   cfg.method = dgs::core::Method::kDGS;
//   cfg.num_workers = 4;
//   auto spec = dgs::nn::ModelSpec::mlp(64, {128, 64}, 10);
//   auto result = dgs::core::TrainingSession(spec, data.train, data.test, cfg).run();
#pragma once

#include <memory>

#include "core/config.h"
#include "core/engine_process.h"
#include "core/engine_sim.h"
#include "core/engine_sync.h"
#include "core/engine_thread.h"
#include "core/metrics.h"

namespace dgs::core {

enum class EngineKind : std::uint8_t {
  kSimulated,    ///< Deterministic discrete-event simulation (default).
  kThreaded,     ///< Real std::thread asynchrony, wall-clock timing.
  kSynchronous,  ///< Barrier-per-round SSGD (see engine_sync.h).
  kProcess,      ///< Wire-only protocol; workers as threads or real OS
                 ///< processes per TrainConfig::transport (engine_process.h).
};

class TrainingSession {
 public:
  TrainingSession(nn::ModelSpec spec, std::shared_ptr<const data::Dataset> train,
                  std::shared_ptr<const data::Dataset> test, TrainConfig config,
                  EngineKind engine = EngineKind::kSimulated)
      : spec_(std::move(spec)),
        train_(std::move(train)),
        test_(std::move(test)),
        config_(std::move(config)),
        engine_(engine) {}

  [[nodiscard]] RunResult run() {
    if (engine_ == EngineKind::kThreaded)
      return ThreadEngine(spec_, train_, test_, config_).run();
    if (engine_ == EngineKind::kSynchronous)
      return SyncEngine(spec_, train_, test_, config_).run();
    if (engine_ == EngineKind::kProcess)
      return ProcessEngine(spec_, train_, test_, config_).run();
    return SimEngine(spec_, train_, test_, config_).run();
  }

  [[nodiscard]] const TrainConfig& config() const noexcept { return config_; }

 private:
  nn::ModelSpec spec_;
  std::shared_ptr<const data::Dataset> train_;
  std::shared_ptr<const data::Dataset> test_;
  TrainConfig config_;
  EngineKind engine_;
};

}  // namespace dgs::core
