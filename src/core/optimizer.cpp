#include "core/optimizer.h"

#include "core/adaptive.h"
#include "core/optimizer_ext.h"

#include <cmath>
#include <stdexcept>

#include "util/math_kernels.h"

namespace dgs::core {

namespace {

void check_grads(const GradViews& grads, const LayeredVec& state) {
  if (grads.size() != state.size())
    throw std::invalid_argument("optimizer: layer count mismatch");
  for (std::size_t j = 0; j < grads.size(); ++j)
    if (grads[j].size() != state[j].size())
      throw std::invalid_argument("optimizer: layer size mismatch");
}

void check_grads(const GradViews& grads, const std::vector<std::size_t>& sizes) {
  if (grads.size() != sizes.size())
    throw std::invalid_argument("optimizer: layer count mismatch");
  for (std::size_t j = 0; j < grads.size(); ++j)
    if (grads[j].size() != sizes[j])
      throw std::invalid_argument("optimizer: layer size mismatch");
}

/// Fill `chunk` with an entire layer densely (idx = 0..n-1, val = values),
/// reusing its buffers.
void fill_full_chunk(std::uint32_t layer, std::span<const float> values,
                     sparse::LayerChunk& chunk) {
  chunk.layer = layer;
  chunk.dense_size = static_cast<std::uint32_t>(values.size());
  chunk.idx.resize(values.size());
  chunk.val.assign(values.begin(), values.end());
  for (std::size_t i = 0; i < values.size(); ++i)
    chunk.idx[i] = static_cast<std::uint32_t>(i);
}

}  // namespace

// ------------------------------------------------------------------ DenseSgd

DenseSgd::DenseSgd(const std::vector<std::size_t>& layer_sizes)
    : WorkerAlgorithm(Method::kASGD, sparse::Codec::kDense),
      sizes_(layer_sizes) {}

sparse::SparseUpdate DenseSgd::step(const GradViews& grads, float lr,
                                    std::size_t /*epoch*/) {
  check_grads(grads, sizes_);
  sparse::SparseUpdate update = workspace_.acquire_update(grads.size());
  for (std::size_t j = 0; j < grads.size(); ++j) {
    auto& chunk = update.layers[j];
    // g = lr * grad, staged directly in the (recycled) chunk values.
    fill_full_chunk(static_cast<std::uint32_t>(j), grads[j], chunk);
    util::scale(lr, {chunk.val.data(), chunk.val.size()});
  }
  return update;
}

// -------------------------------------------------------------- DenseMomentum

DenseMomentum::DenseMomentum(const std::vector<std::size_t>& layer_sizes,
                             float momentum)
    : WorkerAlgorithm(Method::kMSGD, sparse::Codec::kDense),
      m_(momentum),
      u_(make_layered(layer_sizes)) {}

sparse::SparseUpdate DenseMomentum::step(const GradViews& grads, float lr,
                                         std::size_t /*epoch*/) {
  check_grads(grads, u_);
  sparse::SparseUpdate update = workspace_.acquire_update(grads.size());
  for (std::size_t j = 0; j < grads.size(); ++j) {
    auto& u = u_[j];
    // u = m*u + lr*grad (Eq. 8 with eta folded in)
    util::axpby(lr, grads[j], m_, {u.data(), u.size()});
    fill_full_chunk(static_cast<std::uint32_t>(j), {u.data(), u.size()},
                    update.layers[j]);
  }
  return update;
}

std::size_t DenseMomentum::state_bytes() const noexcept {
  return layered_numel(u_) * sizeof(float);
}

// ----------------------------------------------------------- GradientDropping

GradientDropping::GradientDropping(const std::vector<std::size_t>& layer_sizes,
                                   CompressionConfig compression)
    : WorkerAlgorithm(Method::kGDAsync),
      compression_(compression),
      r_(make_layered(layer_sizes)) {}

sparse::SparseUpdate GradientDropping::step(const GradViews& grads, float lr,
                                            std::size_t epoch) {
  check_grads(grads, r_);
  sparse::SparseUpdate update = workspace_.acquire_update(grads.size());
  for (std::size_t j = 0; j < grads.size(); ++j) {
    auto& r = r_[j];
    std::span<float> rs{r.data(), r.size()};
    // r = r + lr*grad (Algorithm 1 line 6)
    util::axpy(lr, grads[j], rs);
    // thr <- R% of |r|; send top entries, keep the rest as residual
    // (fused select + compact + zero, one read pass over r).
    workspace_.sparsify_zero(static_cast<std::uint32_t>(j), rs,
                             compression_.layer_ratio(r.size(), epoch),
                             update.layers[j]);
  }
  return update;
}

std::size_t GradientDropping::state_bytes() const noexcept {
  return layered_numel(r_) * sizeof(float);
}

// ---------------------------------------------------- DeepGradientCompression

DeepGradientCompression::DeepGradientCompression(
    const std::vector<std::size_t>& layer_sizes, CompressionConfig compression,
    float momentum)
    : WorkerAlgorithm(Method::kDGCAsync),
      compression_(compression),
      m_(momentum),
      u_(make_layered(layer_sizes)),
      v_(make_layered(layer_sizes)) {}

sparse::SparseUpdate DeepGradientCompression::step(const GradViews& grads,
                                                   float lr, std::size_t epoch) {
  check_grads(grads, u_);
  // Optional gradient clipping by global L2 norm (a DGC training trick).
  float scale = 1.0f;
  const auto clip = static_cast<float>(compression_.clip_norm);
  if (clip > 0.0f) {
    double sq = 0.0;
    for (const auto& g : grads) sq += util::dot(g, g);
    const auto norm = static_cast<float>(std::sqrt(sq));
    if (norm > clip) scale = clip / norm;
  }

  sparse::SparseUpdate update = workspace_.acquire_update(grads.size());
  for (std::size_t j = 0; j < grads.size(); ++j) {
    auto& u = u_[j];
    auto& v = v_[j];
    // Momentum correction: u = m*u + lr*grad; v = v + u  (Lin et al. Eq. 4)
    util::axpby(lr * scale, grads[j], m_, {u.data(), u.size()});
    util::axpy(1.0f, {u.data(), u.size()}, {v.data(), v.size()});
    // Send top entries of the corrected velocity (fused select + compact +
    // zero); factor masking zeroes the velocity where sent so stale
    // momentum does not double-fire.
    auto& chunk = update.layers[j];
    workspace_.sparsify_zero(static_cast<std::uint32_t>(j),
                             {v.data(), v.size()},
                             compression_.layer_ratio(v.size(), epoch), chunk);
    for (std::uint32_t idx : chunk.idx) u[idx] = 0.0f;
  }
  return update;
}

std::size_t DeepGradientCompression::state_bytes() const noexcept {
  return (layered_numel(u_) + layered_numel(v_)) * sizeof(float);
}

// ---------------------------------------------------------------- SAMomentum

SAMomentum::SAMomentum(const std::vector<std::size_t>& layer_sizes,
                       CompressionConfig compression, float momentum)
    : WorkerAlgorithm(Method::kDGS),
      compression_(compression),
      m_(momentum),
      u_(make_layered(layer_sizes)) {
  if (!(momentum > 0.0f && momentum < 1.0f))
    throw std::invalid_argument("SAMomentum requires 0 < m < 1");
}

sparse::SparseUpdate SAMomentum::step(const GradViews& grads, float lr,
                                      std::size_t epoch) {
  check_grads(grads, u_);
  sparse::SparseUpdate update = workspace_.acquire_update(grads.size());
  const float rescale = 1.0f / m_;
  for (std::size_t j = 0; j < grads.size(); ++j) {
    auto& u = u_[j];
    std::span<float> us{u.data(), u.size()};
    // u = m*u + lr*grad (Alg. 3 line 6)
    util::axpby(lr, grads[j], m_, us);
    // thr <- R% of |u|; g = top entries, which stay resident in u, while
    // unsent entries are scaled by 1/m: u += (1/m - 1) * u .* !Mask
    // (Alg. 3 line 11) so the eventual send telescopes to m*u_c +
    // lr*sum(grad). One fused pass does select + compact + rescale.
    workspace_.sparsify_rescale(static_cast<std::uint32_t>(j), us,
                                compression_.layer_ratio(u.size(), epoch),
                                rescale, update.layers[j]);
  }
  return update;
}

std::size_t SAMomentum::state_bytes() const noexcept {
  return layered_numel(u_) * sizeof(float);
}

// ------------------------------------------------------------------- factory

std::unique_ptr<WorkerAlgorithm> make_worker_algorithm(
    Method method, const std::vector<std::size_t>& layer_sizes,
    const TrainConfig& config, std::uint64_t rng_seed) {
  const auto momentum = static_cast<float>(config.momentum);
  switch (method) {
    case Method::kMSGD:
      return std::make_unique<DenseMomentum>(layer_sizes, momentum);
    case Method::kASGD:
      return std::make_unique<DenseSgd>(layer_sizes);
    case Method::kGDAsync:
      return std::make_unique<GradientDropping>(layer_sizes, config.compression);
    case Method::kDGCAsync:
      return std::make_unique<DeepGradientCompression>(
          layer_sizes, config.compression, momentum);
    case Method::kDGS:
      return std::make_unique<SAMomentum>(layer_sizes, config.compression,
                                          momentum);
    case Method::kTernGrad:
      return std::make_unique<TernGradAsync>(layer_sizes, rng_seed);
    case Method::kRandomDrop:
      return std::make_unique<RandomDropping>(layer_sizes, config.compression,
                                              rng_seed);
    case Method::kDgsTernary:
      return std::make_unique<DgsTernary>(layer_sizes, config.compression,
                                          momentum, rng_seed);
    case Method::kDGSAdaptive:
      return std::make_unique<AdaptiveSAMomentum>(layer_sizes,
                                                  config.compression, momentum);
  }
  throw std::logic_error("make_worker_algorithm: unknown method");
}

}  // namespace dgs::core
