// Decoding and applying wire payloads onto layered state. Shared by the
// parameter server (async engines) and the synchronous SSGD engine.
#pragma once

#include "core/layered.h"
#include "sparse/codec.h"

namespace dgs::core {

/// Apply an encoded update payload (COO sparse, dense, ternary or
/// sparse-ternary) onto layered state: target[layer] += scale * update.
/// Throws on shape mismatch or unknown format.
void apply_update_payload(const sparse::Bytes& payload, LayeredVec& target,
                          float scale);

}  // namespace dgs::core
