// Decoding and applying wire payloads onto layered state. Shared by the
// parameter server (async engines) and the synchronous SSGD engine.
//
// Decoding dispatches through the versioned wire-format registry in
// sparse/compressor.h (decode_any), so every format a Compressor stage can
// emit — including the quantized and SBC downward formats — decodes here,
// on the push path, the retransmit path and the kFullModel rejoin flow
// alike. The sharded server decodes each payload exactly once
// (decode_update) and then dispatches per-layer segments to shards;
// apply_update_payload is the one-shot convenience combining decode + apply
// for the unsharded paths.
#pragma once

#include <vector>

#include "core/layered.h"
#include "sparse/codec.h"
#include "sparse/compressor.h"

namespace dgs::core {

/// Normalized per-layer segments of a decoded payload (see
/// sparse/compressor.h — the registry owns the definition).
using DecodedLayer = sparse::DecodedLayer;
using DecodedUpdate = sparse::DecodedUpdate;

/// Decode an encoded update payload (any registered wire format) into
/// per-layer segments. Throws on unknown format or malformed payload.
[[nodiscard]] DecodedUpdate decode_update(const sparse::Bytes& payload);

/// Apply one decoded segment: target[layer] += scale * segment.
/// Throws on shape mismatch.
void apply_decoded_layer(const DecodedLayer& segment, LayeredVec& target,
                         float scale);

/// Apply an encoded update payload onto layered state:
/// target[layer] += scale * update. Throws on shape mismatch or unknown
/// format. Equivalent to decode_update + apply_decoded_layer per segment.
void apply_update_payload(const sparse::Bytes& payload, LayeredVec& target,
                          float scale);

/// Flatten a dense-encoded payload (e.g. a kFullModel warm-start snapshot)
/// into one contiguous float vector in layer order. Throws if the payload
/// is not the dense wire format.
[[nodiscard]] std::vector<float> flatten_dense_payload(
    const sparse::Bytes& payload);

}  // namespace dgs::core
