// Decoding and applying wire payloads onto layered state. Shared by the
// parameter server (async engines) and the synchronous SSGD engine.
//
// The sharded server decodes each payload exactly once (decode_update) and
// then dispatches per-layer segments to shards; apply_update_payload is the
// one-shot convenience combining decode + apply for the unsharded paths.
#pragma once

#include <vector>

#include "core/layered.h"
#include "sparse/codec.h"

namespace dgs::core {

/// One decoded per-layer segment of an update payload, normalized across
/// all wire formats. Sparse formats (COO, sparse-ternary) keep their
/// index/value chunk; dense formats (dense, ternary) are dequantized into
/// `dense`. `chunk.layer` / `chunk.dense_size` describe the segment in both
/// cases.
struct DecodedLayer {
  bool sparse = true;
  sparse::LayerChunk chunk;  ///< Sparse content; layer/dense_size always set.
  std::vector<float> dense;  ///< Dense values when !sparse.

  [[nodiscard]] std::uint32_t layer() const noexcept { return chunk.layer; }
  [[nodiscard]] std::uint32_t dense_size() const noexcept {
    return chunk.dense_size;
  }
};

using DecodedUpdate = std::vector<DecodedLayer>;

/// Decode an encoded update payload (COO sparse, dense, ternary or
/// sparse-ternary) into per-layer segments. Throws on unknown format.
[[nodiscard]] DecodedUpdate decode_update(const sparse::Bytes& payload);

/// Apply one decoded segment: target[layer] += scale * segment.
/// Throws on shape mismatch.
void apply_decoded_layer(const DecodedLayer& segment, LayeredVec& target,
                         float scale);

/// Apply an encoded update payload onto layered state:
/// target[layer] += scale * update. Throws on shape mismatch or unknown
/// format. Equivalent to decode_update + apply_decoded_layer per segment.
void apply_update_payload(const sparse::Bytes& payload, LayeredVec& target,
                          float scale);

/// Flatten a dense-encoded payload (e.g. a kFullModel warm-start snapshot)
/// into one contiguous float vector in layer order. Throws if the payload
/// is not the dense wire format.
[[nodiscard]] std::vector<float> flatten_dense_payload(
    const sparse::Bytes& payload);

}  // namespace dgs::core
