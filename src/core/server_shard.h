// One shard of the DGS parameter server: a contiguous partition of layers
// of M_t plus every worker's v_k slice for those layers, guarded by a
// single mutex.
//
// The ParameterServer façade decodes a push once and walks the shards in
// ascending layer order; each shard atomically (under its own lock) applies
// the push's segments to its slice of M and builds its slice of the
// model-difference reply. Pushes from different workers therefore proceed
// concurrently except where they touch the same shard, and — because every
// reply segment is computed and charged to v_k under the same critical
// section that reads M — the Eq. 5 bookkeeping (v_k advances by exactly
// what was sent) holds per shard regardless of interleaving.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "core/layered.h"
#include "core/payload.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "sparse/coo.h"
#include "sparse/select.h"

namespace dgs::core {

/// Secondary-compression knobs a shard needs when building reply segments
/// (mirrors the fields of ServerOptions; kept separate so the shard does
/// not depend on the façade's header).
struct ShardReplyPolicy {
  bool secondary_compression = false;
  double secondary_ratio_percent = 1.0;
  std::size_t min_sparsify_size = 0;
  /// Optional lossy downward codec stage (q8/q4/sbc). The shard runs
  /// `reply_stage->transform(chunk)` on each reply chunk *before* charging
  /// it to v_k, so v_k advances by exactly what the decoder will
  /// reconstruct (Eq. 6b) and the quantization error stays inside the
  /// outstanding difference M - v_k. Null = lossless reply.
  const sparse::Compressor* reply_stage = nullptr;
};

class ServerShard {
 public:
  /// Shard `index` owning layers [first_layer, first_layer + sizes.size()).
  /// When `metrics` is non-null the shard records lock wait / hold time
  /// histograms ("server.shard.lock_wait_us" / "lock_hold_us"), and its
  /// critical section shows up as a span on a "shard/<index>" trace track
  /// when tracing is enabled at construction. When `phases` is non-null,
  /// apply_and_reply splits its critical section into apply-to-M time
  /// (Phase::kServerApply) and reply-build time (Phase::kReplyEncode),
  /// charged to the pushing worker.
  ServerShard(std::size_t index, std::size_t first_layer,
              std::vector<std::size_t> sizes, std::size_t num_workers,
              obs::MetricsRegistry* metrics = nullptr,
              obs::PhaseProfiler* phases = nullptr);

  struct ReplySegment {
    /// Reply chunks for this shard's layers, in ascending global layer
    /// order (one per layer — a layer with nothing to send yields an empty
    /// chunk, exactly as the serial server produced).
    std::vector<sparse::LayerChunk> layers;
    std::uint64_t nnz = 0;
  };

  /// Algorithm 2 body restricted to this shard, as one critical section:
  /// apply the push's segments (indexed by global layer; entries outside
  /// this shard or null are ignored) to M with the given scale, then build
  /// the reply G = M - v_k per layer (optionally secondarily compressed)
  /// and advance v_k by exactly what is being sent (Eq. 6b).
  [[nodiscard]] ReplySegment apply_and_reply(
      std::size_t worker, std::span<const DecodedLayer* const> segments,
      float scale, const ShardReplyPolicy& policy);

  /// Add this shard's slice of M into a flat model vector;
  /// `layer_offsets[j]` is the flat offset of global layer j. Locks the
  /// shard, so concurrent pushes never produce torn floats.
  void accumulate_model(std::span<float> flat,
                        std::span<const std::size_t> layer_offsets) const;

  /// Copy this shard's layers of M into `out` (global layer indexing).
  void snapshot_m(LayeredVec& out) const;
  /// Copy this shard's layers of v_k into `out` (global layer indexing).
  void snapshot_v(std::size_t worker, LayeredVec& out) const;

  /// Zero this shard's slice of v_k (lease reclaim: the server forgets what
  /// it believes the worker has).
  void reset_v(std::size_t worker);
  /// Full-model resync, atomically per shard: copy this shard's slice of M
  /// into `out_m` (global layer indexing) AND set v_k := M under the same
  /// lock, so the snapshot the worker receives is exactly what v_k records
  /// as sent — the Eq. 5 bookkeeping restarts from a consistent pair even
  /// while other workers keep pushing.
  void adopt_v_from_m(std::size_t worker, LayeredVec& out_m);

  [[nodiscard]] std::size_t first_layer() const noexcept {
    return first_layer_;
  }
  [[nodiscard]] std::size_t num_layers() const noexcept { return m_.size(); }
  [[nodiscard]] std::size_t numel() const noexcept { return numel_; }

 private:
  mutable std::mutex mutex_;
  std::size_t first_layer_;
  std::size_t numel_ = 0;
  LayeredVec m_;                ///< This shard's slice of M_t.
  std::vector<LayeredVec> v_;  ///< [worker][local layer] slice of v_k.

  // Reply-construction scratch, guarded by mutex_ like the state it serves:
  // the G = M - v_k staging buffer and the fused selection workspace, both
  // reused across pushes so steady-state reply building does not reallocate
  // per layer.
  std::vector<float> diff_;
  sparse::SparsifyWorkspace workspace_;

  // Observability (see obs/): optional, resolved once at construction.
  obs::Histogram* lock_wait_us_ = nullptr;
  obs::Histogram* lock_hold_us_ = nullptr;
  obs::PhaseProfiler* phases_ = nullptr;  ///< Optional, not owned.
  std::uint32_t trace_track_ = 0;  ///< Virtual "shard/N" track (0 = none).
};

/// Contiguous layer partition balanced by element count: returns the first
/// global layer index of each shard (size = effective shard count, which is
/// num_shards clamped to [1, sizes.size()]). Boundaries are chosen so each
/// shard's cumulative numel tracks total/shards as closely as a contiguous
/// split allows, while every shard keeps at least one layer.
[[nodiscard]] std::vector<std::size_t> shard_partition(
    const std::vector<std::size_t>& sizes, std::size_t num_shards);

}  // namespace dgs::core
