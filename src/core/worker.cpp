#include "core/worker.h"

#include <stdexcept>

#include "core/payload.h"
#include "nn/loss.h"
#include "util/math_kernels.h"

namespace dgs::core {

Worker::Worker(std::size_t id, const nn::ModelSpec& spec,
               std::shared_ptr<const data::Dataset> train_data,
               const TrainConfig& config, const std::vector<float>& theta0_flat)
    : id_(id),
      spec_(spec),
      data_(std::move(train_data)),
      config_(config),
      model_(spec.build()),
      params_(model_->parameters()),
      sampler_(data_->size(), id, config.num_workers, config.batch_size,
               config.seed * 0x9E3779B9ULL + id + 1) {
  nn::param_scatter_values(theta0_flat, params_);
  algorithm_ = make_worker_algorithm(config.method,
                                     nn::param_layer_sizes(params_), config,
                                     config.seed * 0x2545F491ULL + id * 31 + 17);
  batch_features_.resize(config.batch_size * data_->feature_dim());
  batch_labels_.resize(config.batch_size);
  for (std::size_t n : nn::param_layer_sizes(params_)) model_numel_ += n;
  if (data_->feature_dim() != spec.feature_dim())
    throw std::invalid_argument("worker: dataset/model feature dim mismatch");
}

IterationResult Worker::compute_and_pack(float lr,
                                         std::size_t schedule_epoch) {
  IterationResult result;
  // Phase attribution (obs/phase.h): batch fill + forward + backward are
  // the compute phase; the method's step() is sparsify+select; wire
  // encoding (plus buffer recycling, part of the same steady-state loop)
  // is encode. The timers tile this function with no gaps.
  obs::PhaseTimer fwd_timer(profiler_, id_, obs::Phase::kForwardBackward);
  result.epoch = sampler_.next_batch(batch_indices_);
  result.batch = batch_indices_.size();
  data_->fill_batch(batch_indices_, batch_features_.data(), batch_labels_.data());

  // Forward/backward against the *local* model theta_{k,prev(k)}.
  nn::Tensor input = nn::Tensor::from(spec_.input_shape(result.batch),
                                      batch_features_);
  nn::param_zero_grads(params_);
  nn::Tensor logits = model_->forward(input, /*train=*/true);
  nn::LossResult loss = nn::softmax_cross_entropy(logits, batch_labels_);
  (void)model_->backward(loss.grad);
  result.loss = loss.loss;
  fwd_timer.stop();

  // Method-specific transformation of the gradient into g_{k,t}.
  obs::PhaseTimer select_timer(profiler_, id_, obs::Phase::kSparsifySelect);
  GradViews views;
  views.reserve(params_.size());
  for (nn::Parameter* p : params_) views.push_back(p->grad.flat());
  sparse::SparseUpdate update = algorithm_->step(views, lr, schedule_epoch);
  select_timer.stop();

  obs::PhaseTimer encode_timer(profiler_, id_, obs::Phase::kEncode);
  result.push.kind = comm::MessageKind::kGradientPush;
  result.push.worker_id = static_cast<std::int32_t>(id_);
  result.push.worker_step = step_;
  result.push.server_step = known_server_step_;
  result.update_density = update.density();
  result.push.payload = algorithm_->encode_update(update);
  // Return the consumed update's buffers to the algorithm's pool: the
  // steady-state step -> encode -> recycle loop then reuses all selection
  // and chunk capacity instead of reallocating it every iteration.
  algorithm_->recycle(std::move(update));
  encode_timer.stop();
  ++step_;
  return result;
}

void Worker::apply_model_diff(const comm::Message& reply) {
  if (reply.kind != comm::MessageKind::kModelDiff)
    throw std::invalid_argument("worker: expected model diff");
  obs::PhaseTimer decode_timer(profiler_, id_, obs::Phase::kDecodeApply);
  // Staleness from the worker's own vantage point: how many server steps
  // this reply advanced past prev(k). Computed before prev(k) moves.
  const std::uint64_t staleness =
      reply.server_step > known_server_step_
          ? reply.server_step - known_server_step_
          : 0;
  known_server_step_ = reply.server_step;
  std::size_t reply_nnz = 0;

  // theta_{k} += G (Eq. 4/5; SGD() in Algorithm 1/3 applies the decoded
  // difference directly — the learning rate is already inside G).
  if (sparse::is_sparse_payload(reply.payload)) {
    // Fast path for the dominant reply format: plain COO chunks straight
    // off the decode.
    const sparse::SparseUpdate g = sparse::decode(reply.payload);
    for (const auto& chunk : g.layers) {
      if (chunk.layer >= params_.size())
        throw std::runtime_error("worker: reply layer out of range");
      auto values = params_[chunk.layer]->value.flat();
      sparse::scatter_add(chunk, 1.0f, values);
      reply_nnz += chunk.nnz();
    }
  } else {
    // Everything else — dense, quantized COO, SBC — dispatches through the
    // versioned wire-format registry.
    for (const DecodedLayer& segment : decode_update(reply.payload)) {
      if (segment.layer() >= params_.size())
        throw std::runtime_error("worker: reply layer out of range");
      auto values = params_[segment.layer()]->value.flat();
      if (segment.dense_size() != values.size())
        throw std::runtime_error("worker: reply layer shape mismatch");
      if (segment.sparse) {
        sparse::scatter_add(segment.chunk, 1.0f, values);
        reply_nnz += segment.chunk.nnz();
      } else {
        util::axpy(1.0f, {segment.dense.data(), segment.dense.size()}, values);
        reply_nnz += segment.dense.size();
      }
    }
  }
  algorithm_->observe_reply(
      {static_cast<double>(staleness),
       model_numel_ > 0 ? static_cast<double>(reply_nnz) /
                              static_cast<double>(model_numel_)
                        : 0.0});
}

}  // namespace dgs::core
