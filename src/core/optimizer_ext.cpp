#include "core/optimizer_ext.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "sparse/quantize.h"
#include "sparse/topk.h"
#include "util/math_kernels.h"

namespace dgs::core {

namespace {

void check_sizes(const GradViews& grads, const std::vector<std::size_t>& sizes) {
  if (grads.size() != sizes.size())
    throw std::invalid_argument("optimizer_ext: layer count mismatch");
  for (std::size_t j = 0; j < grads.size(); ++j)
    if (grads[j].size() != sizes[j])
      throw std::invalid_argument("optimizer_ext: layer size mismatch");
}

sparse::LayerChunk nonzero_chunk(std::uint32_t layer,
                                 std::span<const float> values) {
  sparse::LayerChunk chunk;
  chunk.layer = layer;
  chunk.dense_size = static_cast<std::uint32_t>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] != 0.0f) {
      chunk.idx.push_back(static_cast<std::uint32_t>(i));
      chunk.val.push_back(values[i]);
    }
  return chunk;
}

}  // namespace

// --------------------------------------------------------------- TernGrad

TernGradAsync::TernGradAsync(const std::vector<std::size_t>& layer_sizes,
                             std::uint64_t rng_seed)
    : WorkerAlgorithm(Method::kTernGrad, sparse::Codec::kTernary),
      sizes_(layer_sizes),
      rng_(rng_seed) {}

sparse::SparseUpdate TernGradAsync::step(const GradViews& grads, float lr,
                                         std::size_t /*epoch*/) {
  check_sizes(grads, sizes_);
  sparse::SparseUpdate update;
  std::vector<float> scaled;
  for (std::size_t j = 0; j < grads.size(); ++j) {
    scaled.assign(grads[j].begin(), grads[j].end());
    util::scale(lr, {scaled.data(), scaled.size()});
    const sparse::TernaryLayer quantized = sparse::ternary_quantize(
        static_cast<std::uint32_t>(j), {scaled.data(), scaled.size()}, rng_);
    // The server applies exactly what crosses the wire, so the returned
    // update is the dequantized view of the ternary payload — values are
    // exactly ±scale, which is what lets the kTernary stage re-pack the
    // chunk into the DGST format losslessly at encode time.
    const std::vector<float> applied = sparse::ternary_dequantize(quantized);
    update.layers.push_back(nonzero_chunk(static_cast<std::uint32_t>(j),
                                          {applied.data(), applied.size()}));
  }
  return update;
}

// ---------------------------------------------------------- RandomDropping

RandomDropping::RandomDropping(const std::vector<std::size_t>& layer_sizes,
                               CompressionConfig compression,
                               std::uint64_t rng_seed)
    : WorkerAlgorithm(Method::kRandomDrop),
      sizes_(layer_sizes),
      compression_(compression),
      rng_(rng_seed) {}

sparse::SparseUpdate RandomDropping::step(const GradViews& grads, float lr,
                                          std::size_t epoch) {
  check_sizes(grads, sizes_);
  sparse::SparseUpdate update;
  std::vector<float> scaled;
  for (std::size_t j = 0; j < grads.size(); ++j) {
    scaled.assign(grads[j].begin(), grads[j].end());
    util::scale(lr, {scaled.data(), scaled.size()});
    const double keep =
        compression_.layer_ratio(scaled.size(), epoch) / 100.0;
    update.layers.push_back(sparse::random_drop(
        static_cast<std::uint32_t>(j), {scaled.data(), scaled.size()},
        std::min(keep, 1.0), rng_));
  }
  return update;
}

// -------------------------------------------------------------- DgsTernary

DgsTernary::DgsTernary(const std::vector<std::size_t>& layer_sizes,
                       CompressionConfig compression, float momentum,
                       std::uint64_t rng_seed)
    : WorkerAlgorithm(Method::kDgsTernary, sparse::Codec::kSparseTernary),
      compression_(compression),
      m_(momentum),
      u_(make_layered(layer_sizes)),
      rng_(rng_seed) {
  if (!(momentum > 0.0f && momentum < 1.0f))
    throw std::invalid_argument("DgsTernary requires 0 < m < 1");
}

sparse::SparseUpdate DgsTernary::step(const GradViews& grads, float lr,
                                      std::size_t epoch) {
  if (grads.size() != u_.size())
    throw std::invalid_argument("DgsTernary: layer count mismatch");
  sparse::SparseUpdate update;
  const float rescale = 1.0f / m_;
  for (std::size_t j = 0; j < grads.size(); ++j) {
    auto& u = u_[j];
    std::span<float> us{u.data(), u.size()};
    // SAMomentum step: u = m*u + lr*grad (Alg. 3 line 6).
    util::axpby(lr, grads[j], m_, us);
    // Fused select + compact + 1/m rescale of unsent entries; candidates_
    // is workspace-reused scratch, not part of the update.
    workspace_.sparsify_rescale(static_cast<std::uint32_t>(j), us,
                                compression_.layer_ratio(u.size(), epoch),
                                rescale, candidates_);
    const sparse::LayerChunk& candidates = candidates_;
    // Quantize the sent values to {-s, +s}; entries rounded to zero drop
    // out of the update entirely.
    sparse::LayerChunk quantized = sparse::ternary_quantize_chunk(candidates, rng_);
    // Candidates that quantization zeroed behave as unsent: rescale them.
    // Candidates that shipped keep the candidate plus the signed
    // quantization error (cheap error feedback, discounted by m next step).
    std::unordered_map<std::uint32_t, float> applied;
    applied.reserve(quantized.nnz());
    for (std::size_t i = 0; i < quantized.nnz(); ++i)
      applied.emplace(quantized.idx[i], quantized.val[i]);
    for (std::size_t i = 0; i < candidates.nnz(); ++i) {
      const std::uint32_t idx = candidates.idx[i];
      const auto it = applied.find(idx);
      if (it == applied.end())
        u[idx] *= rescale;
      else
        u[idx] += candidates.val[i] - it->second;
    }
    update.layers.push_back(std::move(quantized));
  }
  return update;
}

std::size_t DgsTernary::state_bytes() const noexcept {
  return layered_numel(u_) * sizeof(float);
}

}  // namespace dgs::core
