// Multi-process training engine: workers as real OS processes over a
// socket transport (or as threads over the same protocol, for apples-to-
// apples comparison and the cross-transport determinism pin).
//
// Where ThreadEngine shares memory between workers and server (atomic
// sample claims, a shared epoch atomic, in-place tallies), ProcessEngine
// shares NOTHING at runtime: every coordination signal crosses the wire.
//   * budget   — the server counts accepted samples and broadcasts
//                kShutdown when the budget is spent (workers never see a
//                claim counter);
//   * epoch    — piggybacked on every reply (Message::epoch), driving the
//                worker-side LR/warmup schedule;
//   * loss and update density — piggybacked on every push, aggregated
//                into the per-worker tallies server-side.
// The kThread transport runs this same wire-only protocol over Channel
// queues, so the only difference between `thread`, `uds` and `tcp` runs is
// the byte path — which is what makes the determinism pin meaningful.
//
// Process model (kUds/kTcp): the parent builds the full EngineContext,
// binds the listening socket, then forks one child per worker (plus one
// standby if a kill is scheduled) while still single-threaded; children
// inherit a copy-on-write snapshot of the model/dataset and run the worker
// loop against a blocking SocketClientTransport. Only after the last fork
// does the parent start the epoll thread and its server pool. A scheduled
// fault kill is a literal SIGKILL of the worker's process; the pre-forked
// standby then wakes, waits out the rejoin delay, connects, and resumes
// that worker from a kFullModel snapshot (see DESIGN.md §16).
#pragma once

#include <memory>

#include "core/config.h"
#include "core/metrics.h"
#include "data/dataset.h"
#include "nn/model.h"

namespace dgs::core {

class ProcessEngine {
 public:
  ProcessEngine(nn::ModelSpec spec, std::shared_ptr<const data::Dataset> train,
                std::shared_ptr<const data::Dataset> test, TrainConfig config);

  /// Run to completion. One-shot, like the other engines.
  [[nodiscard]] RunResult run();

 private:
  nn::ModelSpec spec_;
  std::shared_ptr<const data::Dataset> train_;
  std::shared_ptr<const data::Dataset> test_;
  TrainConfig config_;
  bool used_ = false;
};

}  // namespace dgs::core
