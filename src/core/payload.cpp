#include "core/payload.h"

#include <stdexcept>
#include <string>

#include "util/math_kernels.h"

namespace dgs::core {

namespace {

void check_layer(std::size_t layer, std::size_t dense, const LayeredVec& target) {
  if (layer >= target.size() || dense != target[layer].size())
    throw std::runtime_error("apply_update_payload: layer shape mismatch");
}

}  // namespace

DecodedUpdate decode_update(const sparse::Bytes& payload) {
  return sparse::decode_any(payload);
}

void apply_decoded_layer(const DecodedLayer& segment, LayeredVec& target,
                         float scale) {
  check_layer(segment.layer(), segment.dense_size(), target);
  auto& layer = target[segment.layer()];
  if (segment.sparse) {
    sparse::scatter_add(segment.chunk, scale, {layer.data(), layer.size()});
  } else {
    util::axpy(scale, {segment.dense.data(), segment.dense.size()},
               {layer.data(), layer.size()});
  }
}

void apply_update_payload(const sparse::Bytes& payload, LayeredVec& target,
                          float scale) {
  // Fast path for the dominant wire format: apply plain COO chunks straight
  // off the decode, without staging them as DecodedLayer segments (which
  // the sharded server needs for dispatch, but a one-shot apply does not).
  if (sparse::is_sparse_payload(payload)) {
    const sparse::SparseUpdate update = sparse::decode(payload);
    for (const auto& chunk : update.layers) {
      check_layer(chunk.layer, chunk.dense_size, target);
      auto& layer = target[chunk.layer];
      sparse::scatter_add(chunk, scale, {layer.data(), layer.size()});
    }
    return;
  }
  for (const DecodedLayer& segment : decode_update(payload))
    apply_decoded_layer(segment, target, scale);
}

std::vector<float> flatten_dense_payload(const sparse::Bytes& payload) {
  if (!sparse::is_dense_payload(payload)) {
    const char* format = sparse::payload_format_name(payload);
    throw std::runtime_error(
        std::string("flatten_dense_payload: payload is not dense (format: ") +
        (format != nullptr ? format : "unknown") + ")");
  }
  const sparse::DenseUpdate dense = sparse::decode_dense(payload);
  std::vector<float> flat;
  flat.reserve(dense.total_dense());
  for (const auto& layer : dense.layers)
    flat.insert(flat.end(), layer.values.begin(), layer.values.end());
  return flat;
}

}  // namespace dgs::core
