#include "core/payload.h"

#include <stdexcept>

#include "sparse/quantize.h"
#include "util/math_kernels.h"

namespace dgs::core {

namespace {

void check_layer(std::size_t layer, std::size_t dense, const LayeredVec& target) {
  if (layer >= target.size() || dense != target[layer].size())
    throw std::runtime_error("apply_update_payload: layer shape mismatch");
}

}  // namespace

void apply_update_payload(const sparse::Bytes& payload, LayeredVec& target,
                          float scale) {
  if (sparse::is_ternary_payload(payload)) {
    const sparse::TernaryUpdate update = sparse::decode_ternary(payload);
    for (const auto& tl : update.layers) {
      check_layer(tl.layer, tl.dense_size, target);
      const std::vector<float> dense = sparse::ternary_dequantize(tl);
      auto& layer = target[tl.layer];
      util::axpy(scale, {dense.data(), dense.size()},
                 {layer.data(), layer.size()});
    }
    return;
  }
  if (sparse::is_sparse_ternary_payload(payload)) {
    const sparse::SparseUpdate update = sparse::decode_sparse_ternary(payload);
    for (const auto& chunk : update.layers) {
      check_layer(chunk.layer, chunk.dense_size, target);
      auto& layer = target[chunk.layer];
      sparse::scatter_add(chunk, scale, {layer.data(), layer.size()});
    }
    return;
  }
  if (sparse::is_sparse_payload(payload)) {
    const sparse::SparseUpdate update = sparse::decode(payload);
    for (const auto& chunk : update.layers) {
      check_layer(chunk.layer, chunk.dense_size, target);
      auto& layer = target[chunk.layer];
      sparse::scatter_add(chunk, scale, {layer.data(), layer.size()});
    }
    return;
  }
  const sparse::DenseUpdate update = sparse::decode_dense(payload);
  for (const auto& l : update.layers) {
    check_layer(l.layer, l.values.size(), target);
    auto& layer = target[l.layer];
    util::axpy(scale, {l.values.data(), l.values.size()},
               {layer.data(), layer.size()});
  }
}

}  // namespace dgs::core
