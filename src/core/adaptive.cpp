#include "core/adaptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sparse/topk.h"
#include "util/math_kernels.h"

namespace dgs::core {

namespace {

/// EMA update with the newest observation weighted `alpha`; the first
/// observation initializes the state directly so early decisions aren't
/// biased toward a zero prior.
double ema(double state, double value, double alpha, bool seeded) noexcept {
  return seeded ? (1.0 - alpha) * state + alpha * value : value;
}

}  // namespace

SparsityController::SparsityController(
    const std::vector<std::size_t>& layer_sizes,
    const CompressionConfig& compression)
    : sizes_(layer_sizes),
      adaptive_(layer_sizes.size(), false),
      floor_(layer_sizes.size(), 0),
      cap_(layer_sizes.size(), 0),
      keep_(layer_sizes.size(), 0),
      candidate_(layer_sizes.size(), 0),
      weights_(layer_sizes.size(), 0.0),
      mass_ema_(layer_sizes.size(), 0.0) {
  const AdaptiveConfig& knobs = compression.adaptive;
  base_ratio_ = compression.ratio_percent;
  // The floor may never exceed the base ratio: floors are per-layer lower
  // bounds inside a budget of keep_count(n, base) per layer, so a floor
  // above base would make the budget infeasible by construction.
  min_ratio_ = std::min(knobs.min_ratio_percent, base_ratio_);
  if (!(min_ratio_ > 0.0)) min_ratio_ = 0.0;
  max_ratio_ = knobs.max_ratio_percent > 0.0
                   ? std::max(knobs.max_ratio_percent, base_ratio_)
                   : std::min(100.0, 4.0 * base_ratio_);
  interval_ = std::max<std::size_t>(1, knobs.interval_steps);
  hysteresis_ = std::max(0.0, knobs.hysteresis);
  alpha_ = std::clamp(knobs.ema_alpha, 1e-3, 1.0);
  staleness_scale_ = std::max(1e-9, knobs.staleness_scale);
  density_weight_ = std::clamp(knobs.density_weight, 0.0, 1.0);

  for (std::size_t l = 0; l < sizes_.size(); ++l) {
    const std::size_t n = sizes_[l];
    if (n == 0 || n < compression.min_sparsify_size) {
      keep_[l] = n;  // exempt: ships dense, outside the adaptive budget
      continue;
    }
    adaptive_[l] = true;
    adaptive_layers_.push_back(l);
    adaptive_numel_ += n;
    floor_[l] = sparse::keep_count(n, min_ratio_);
    cap_[l] = sparse::keep_count(n, max_ratio_);
    keep_[l] = sparse::keep_count(n, base_ratio_);
    budget_ += keep_[l];
  }
}

double SparsityController::ratio_percent(std::size_t layer) const noexcept {
  if (!adaptive_[layer] || sizes_[layer] == 0) return 100.0;
  return 100.0 * static_cast<double>(keep_[layer]) /
         static_cast<double>(sizes_[layer]);
}

double SparsityController::mean_ratio_percent() const noexcept {
  if (adaptive_numel_ == 0) return 0.0;
  std::uint64_t kept = 0;
  for (std::size_t l : adaptive_layers_) kept += keep_[l];
  return 100.0 * static_cast<double>(kept) /
         static_cast<double>(adaptive_numel_);
}

void SparsityController::observe_push(std::span<const double> layer_mass) {
  for (std::size_t l : adaptive_layers_) {
    const double mass = l < layer_mass.size() ? layer_mass[l] : 0.0;
    mass_ema_[l] = ema(mass_ema_[l], std::isfinite(mass) ? mass : 0.0, alpha_,
                       observed_mass_);
  }
  observed_mass_ = true;
  ++pushes_;
  if (pushes_ % interval_ == 0) decide();
}

void SparsityController::observe_reply(double staleness,
                                       double reply_density) {
  if (!std::isfinite(staleness) || staleness < 0.0) staleness = 0.0;
  reply_density = std::clamp(
      std::isfinite(reply_density) ? reply_density : 0.0, 0.0, 1.0);
  const bool seeded = replies_seen_;
  staleness_ema_ = ema(staleness_ema_, staleness, alpha_, seeded);
  density_ema_ = ema(density_ema_, reply_density, alpha_, seeded);
  replies_seen_ = true;
}

void SparsityController::waterfill(const std::vector<std::size_t>& layers,
                                   std::uint64_t budget) {
  // Iterative proportional allocation with per-layer [floor, cap] clamps:
  // violated layers are pinned at their bound, removed, and the rest split
  // the remaining budget by weight. Terminates in <= |layers| rounds.
  std::vector<std::size_t> free = layers;
  std::vector<double> desired(sizes_.size(), 0.0);
  auto remaining = static_cast<std::int64_t>(budget);
  for (std::size_t round = 0; round <= layers.size() && !free.empty();
       ++round) {
    double wsum = 0.0;
    for (std::size_t l : free) wsum += weights_[l];
    const double share = remaining > 0 ? static_cast<double>(remaining) : 0.0;
    for (std::size_t l : free)
      desired[l] = wsum > 0.0
                       ? share * (weights_[l] / wsum)
                       : share / static_cast<double>(free.size());
    std::vector<std::size_t> next;
    bool clamped = false;
    for (std::size_t l : free) {
      if (desired[l] < static_cast<double>(floor_[l])) {
        candidate_[l] = floor_[l];
        remaining -= static_cast<std::int64_t>(floor_[l]);
        clamped = true;
      } else if (desired[l] > static_cast<double>(cap_[l])) {
        candidate_[l] = cap_[l];
        remaining -= static_cast<std::int64_t>(cap_[l]);
        clamped = true;
      } else {
        next.push_back(l);
      }
    }
    free.swap(next);
    if (!clamped) break;
  }
  // Integerize the survivors by largest remainder, spending the exact
  // integer budget left (ties break toward the lower layer index).
  std::int64_t leftover = remaining;
  for (std::size_t l : free) {
    const auto k = static_cast<std::size_t>(
        std::max(desired[l], static_cast<double>(floor_[l])));
    candidate_[l] = std::min(k, cap_[l]);
    leftover -= static_cast<std::int64_t>(candidate_[l]);
  }
  while (leftover > 0) {
    std::size_t best = sizes_.size();
    double best_frac = -1.0;
    for (std::size_t l : free) {
      if (candidate_[l] >= cap_[l]) continue;
      const double frac = desired[l] - static_cast<double>(candidate_[l]);
      if (frac > best_frac) {
        best_frac = frac;
        best = l;
      }
    }
    if (best == sizes_.size()) break;  // everything at cap
    ++candidate_[best];
    --leftover;
  }
  // Hard budget enforcement: whatever rounding or clamping did above, the
  // committed total over `layers` never exceeds `budget` (floors permitting;
  // callers guarantee sum(floors) <= budget). Shrink the largest
  // above-floor allocation first; deterministic tie-break on lower index.
  std::uint64_t total = 0;
  for (std::size_t l : layers) total += candidate_[l];
  while (total > budget) {
    std::size_t best = sizes_.size();
    std::size_t best_margin = 0;
    for (std::size_t l : layers) {
      const std::size_t margin = candidate_[l] - floor_[l];
      if (margin > best_margin) {
        best_margin = margin;
        best = l;
      }
    }
    if (best == sizes_.size()) break;  // all at floor
    const std::uint64_t cut =
        std::min<std::uint64_t>(best_margin, total - budget);
    candidate_[best] -= cut;
    total -= cut;
  }
}

void SparsityController::decide() {
  if (adaptive_layers_.empty()) return;

  // Adaptivity in [0, 1]: 1 = pure mass-proportional allocation, 0 = the
  // uniform fixed-R baseline. High observed staleness or near-dense replies
  // mean the local view lags the server, where skewed allocations are the
  // least safe (Deng et al.): blend back toward uniform.
  const double stale_damp =
      staleness_scale_ / (staleness_scale_ + staleness_ema_);
  const double adaptivity =
      stale_damp * (1.0 - density_weight_ * density_ema_);

  double mass_total = 0.0;
  for (std::size_t l : adaptive_layers_) mass_total += mass_ema_[l];
  for (std::size_t l : adaptive_layers_) {
    const double size_share = static_cast<double>(sizes_[l]) /
                              static_cast<double>(adaptive_numel_);
    const double mass_share =
        mass_total > 0.0 ? mass_ema_[l] / mass_total : size_share;
    weights_[l] = adaptivity * mass_share + (1.0 - adaptivity) * size_share;
  }
  waterfill(adaptive_layers_, budget_);

  if (decisions_ > 0 && hysteresis_ > 0.0) {
    // Hysteresis: hold any layer whose candidate is within the dead-band of
    // its committed value, then re-fill only the moving layers with the
    // budget the held ones leave. Mixing old and new allocations naively
    // could overshoot the budget; re-filling the movers cannot.
    std::vector<std::size_t> moving;
    std::uint64_t held = 0;
    std::uint64_t moving_floors = 0;
    for (std::size_t l : adaptive_layers_) {
      const auto committed = static_cast<double>(keep_[l]);
      const auto cand = static_cast<double>(candidate_[l]);
      if (std::fabs(cand - committed) <= hysteresis_ * committed) {
        candidate_[l] = keep_[l];
        held += keep_[l];
      } else {
        moving.push_back(l);
        moving_floors += floor_[l];
      }
    }
    // Degenerate case: the held layers alone leave less budget than the
    // movers' floors need — drop the holds and take the full candidate.
    if (!moving.empty() && held + moving_floors <= budget_)
      waterfill(moving, budget_ - held);
    else if (!moving.empty())
      waterfill(adaptive_layers_, budget_);
  }

  for (std::size_t l : adaptive_layers_) keep_[l] = candidate_[l];
  ++decisions_;

  if ((decisions_ - 1) % trajectory_stride_ == 0) {
    TrajectoryPoint point;
    point.step = pushes_;
    point.ratios.reserve(sizes_.size());
    for (std::size_t l = 0; l < sizes_.size(); ++l)
      point.ratios.push_back(ratio_percent(l));
    trajectory_.push_back(std::move(point));
    if (trajectory_.size() > kMaxTrajectoryPoints) {
      // Deterministic decimation: keep every other point and double the
      // recording stride, preserving the schedule's shape with bounded
      // memory on arbitrarily long runs.
      std::vector<TrajectoryPoint> kept;
      kept.reserve(trajectory_.size() / 2 + 1);
      for (std::size_t i = 0; i < trajectory_.size(); i += 2)
        kept.push_back(std::move(trajectory_[i]));
      trajectory_.swap(kept);
      trajectory_stride_ *= 2;
    }
  }
}

// --------------------------------------------------------- AdaptiveSAMomentum

AdaptiveSAMomentum::AdaptiveSAMomentum(
    const std::vector<std::size_t>& layer_sizes, CompressionConfig compression,
    float momentum)
    : WorkerAlgorithm(Method::kDGSAdaptive),
      compression_(compression),
      m_(momentum),
      u_(make_layered(layer_sizes)),
      controller_(layer_sizes, compression),
      mass_(layer_sizes.size(), 0.0) {
  if (!(momentum > 0.0f && momentum < 1.0f))
    throw std::invalid_argument("AdaptiveSAMomentum requires 0 < m < 1");
}

sparse::SparseUpdate AdaptiveSAMomentum::step(const GradViews& grads, float lr,
                                              std::size_t epoch) {
  if (grads.size() != u_.size())
    throw std::invalid_argument("optimizer: layer count mismatch");
  sparse::SparseUpdate update = workspace_.acquire_update(grads.size());
  const float rescale = 1.0f / m_;

  // Velocity update plus the controller's mass signal in the same sweep:
  // L1 mass of the post-momentum velocity is exactly the magnitude pool the
  // top-k selection draws from, so allocation follows where the budget buys
  // the most retained update mass.
  for (std::size_t j = 0; j < grads.size(); ++j) {
    if (grads[j].size() != u_[j].size())
      throw std::invalid_argument("optimizer: layer size mismatch");
    auto& u = u_[j];
    util::axpby(lr, grads[j], m_, {u.data(), u.size()});
    double mass = 0.0;
    if (controller_.is_adaptive(j)) {
      const float* __restrict v = u.data();
      for (std::size_t i = 0; i < u.size(); ++i)
        mass += std::fabs(static_cast<double>(v[i]));
    }
    mass_[j] = mass;
  }
  controller_.observe_push(mass_);

  // During sparsity warmup the uniform schedule is deliberately lax; the
  // controller keeps observing but the warmup ratio wins (it is always
  // >= base, so this is the conservative choice).
  const bool warmup =
      compression_.ratio_at_epoch(epoch) > compression_.ratio_percent;

  for (std::size_t j = 0; j < grads.size(); ++j) {
    auto& u = u_[j];
    std::span<float> us{u.data(), u.size()};
    if (warmup || !controller_.is_adaptive(j)) {
      workspace_.sparsify_rescale(static_cast<std::uint32_t>(j), us,
                                  compression_.layer_ratio(u.size(), epoch),
                                  rescale, update.layers[j]);
    } else {
      workspace_.sparsify_rescale_k(static_cast<std::uint32_t>(j), us,
                                    controller_.keep(j), rescale,
                                    update.layers[j]);
    }
  }
  return update;
}

std::size_t AdaptiveSAMomentum::state_bytes() const noexcept {
  // Velocity plus the controller's per-layer bookkeeping (keeps, bounds,
  // EMA mass) — the adaptive method's honest §5.6.2 footprint.
  return layered_numel(u_) * sizeof(float) +
         mass_.size() * sizeof(double) +
         controller_.num_layers() *
             (3 * sizeof(std::size_t) + 2 * sizeof(double));
}

void AdaptiveSAMomentum::observe_reply(const ReplyObservation& obs) noexcept {
  controller_.observe_reply(obs.staleness, obs.reply_density);
}

}  // namespace dgs::core
