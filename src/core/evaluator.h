// Held-out evaluation of a parameter snapshot (the server's global model).
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"

namespace dgs::core {

struct EvalResult {
  double accuracy = 0.0;
  double loss = 0.0;
};

class Evaluator {
 public:
  Evaluator(const nn::ModelSpec& spec,
            std::shared_ptr<const data::Dataset> test_data,
            std::size_t eval_batch = 256);

  /// Evaluate the model defined by the flattened parameter vector.
  [[nodiscard]] EvalResult evaluate(const std::vector<float>& theta_flat);

 private:
  nn::ModelSpec spec_;
  std::shared_ptr<const data::Dataset> data_;
  std::size_t eval_batch_;
  nn::ModulePtr model_;
  std::vector<nn::Parameter*> params_;
};

}  // namespace dgs::core
