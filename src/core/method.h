// The five training methods of the paper's evaluation (§5, Table 5) and
// their technique traits.
#pragma once

#include <cstdint>
#include <string>

namespace dgs::core {

enum class Method : std::uint8_t {
  kMSGD,      ///< Single-node SGD with vanilla momentum (the baseline).
  kASGD,      ///< Dense asynchronous SGD (no sparsification, no momentum).
  kGDAsync,   ///< Gradient Dropping + model-difference downward compression.
  kDGCAsync,  ///< Deep Gradient Compression (momentum correction + factor
              ///< masking), made async via model-difference compression.
  kDGS,       ///< This paper: dual-way sparsification + SAMomentum.

  // Extensions from the paper's future-work section (§6): combinations of
  // DGS-style training with other compression families.
  kTernGrad,    ///< TernGrad-async: ternary-quantized dense gradients.
  kRandomDrop,  ///< Random coordinate dropping (unbiased 1/p rescaling).
  kDgsTernary,  ///< DGS + ternary quantization of the sent sparse values.
  kDGSAdaptive,  ///< DGS with the runtime per-layer sparsity controller
                 ///< (core/adaptive.h): per-layer keep counts reallocated
                 ///< from observed mass/staleness/density at fixed bytes.
};

/// Technique matrix exactly as laid out in Table 5 of the paper.
struct MethodTraits {
  const char* name;
  const char* sparsification;  ///< Upward gradient sparsification scheme.
  const char* momentum;        ///< Momentum variant, or "N".
  bool momentum_correction;    ///< DGC-style velocity accumulation.
  bool residual_accumulation;  ///< Keeps unsent gradients in a residual.
};

[[nodiscard]] const MethodTraits& method_traits(Method method) noexcept;

[[nodiscard]] inline const char* method_name(Method method) noexcept {
  return method_traits(method).name;
}

/// Parse "msgd" | "asgd" | "gd" | "dgc" | "dgs" (case-insensitive).
[[nodiscard]] Method parse_method(const std::string& text);

/// True for methods that sparsify the upward direction.
[[nodiscard]] bool method_sparsifies(Method method) noexcept;

/// Downward (server -> worker) codec selection for the model-difference
/// reply, Algorithm 2's secondary compression. kAuto keeps the historical
/// heuristic (COO, densified when the reply is near-dense); the rest force
/// a codec stage from sparse/compressor.h.
enum class DownCompress : std::uint8_t {
  kAuto,   ///< COO / dense by density heuristic (no lossy stage).
  kCoo,    ///< Always plain COO.
  kDense,  ///< Always densified f32.
  kQ8,     ///< Fused 8-bit quantized COO (DGSQ).
  kQ4,     ///< Fused 4-bit quantized COO (DGSQ).
  kSbc,    ///< Sparse binary compression: ±mu signs + Rice-coded gaps (DGSB).
};

[[nodiscard]] const char* down_compress_name(DownCompress mode) noexcept;

/// Parse "auto" | "coo" | "dense" | "q8" | "q4" | "sbc" (case-insensitive).
[[nodiscard]] DownCompress parse_down_compress(const std::string& text);

}  // namespace dgs::core
