// Worker-side update algorithms: the per-iteration transformation from a
// fresh stochastic gradient to the (possibly sparse) update g_{k,t} pushed
// to the server. One subclass per method of the paper's evaluation.
//
// Sign convention: the server applies M_{t+1} = M_t - g (Eq. 1), i.e. g is
// a *descent step* already scaled by the learning rate (and momentum where
// applicable).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/layered.h"
#include "core/method.h"
#include "sparse/codec.h"
#include "sparse/compressor.h"
#include "sparse/coo.h"
#include "sparse/select.h"

namespace dgs::core {

/// Per-layer gradient views handed to the algorithm each iteration.
using GradViews = std::vector<std::span<const float>>;

class SparsityController;

/// What the worker learned from one server reply, offered to algorithms
/// that adapt to the training dynamics (core/adaptive.h). `staleness` is
/// how many server steps the reply advanced past the worker's previous
/// view; `reply_density` is the decoded reply nnz over the model size.
struct ReplyObservation {
  double staleness = 0.0;
  double reply_density = 0.0;
};

class WorkerAlgorithm {
 public:
  virtual ~WorkerAlgorithm() = default;
  WorkerAlgorithm(const WorkerAlgorithm&) = delete;
  WorkerAlgorithm& operator=(const WorkerAlgorithm&) = delete;

  /// Consume this iteration's gradients and produce the update to push.
  /// `lr` is the learning rate in effect for this iteration; `epoch` is the
  /// worker-local epoch (used by sparsity-warmup schedules).
  [[nodiscard]] virtual sparse::SparseUpdate step(const GradViews& grads,
                                                  float lr,
                                                  std::size_t epoch = 0) = 0;

  /// Bytes of optimizer state resident at the worker (velocity/residual),
  /// for the §5.6.2 memory-usage accounting.
  [[nodiscard]] virtual std::size_t state_bytes() const noexcept = 0;

  /// The upward wire codec this algorithm's updates are packed with: each
  /// subclass names its Codec at construction and the shared stage from
  /// sparse/compressor.h does the packing (COO for the sparsifiers, dense
  /// for ASGD/MSGD, bit-packed ternary formats for the quantizers).
  [[nodiscard]] sparse::Codec up_codec() const noexcept { return up_codec_; }

  /// Wire-encode the update produced by step() with the up_codec() stage.
  [[nodiscard]] sparse::Bytes encode_update(
      const sparse::SparseUpdate& update) const {
    return sparse::compressor_for(up_codec_).encode(update);
  }

  /// Hand a consumed update back for buffer reuse: the workspace pools it
  /// so the next step() reuses the chunk capacity. With the caller
  /// recycling every update, the steady-state sparsify path performs zero
  /// heap allocations (property-tested). Discarding an update instead of
  /// recycling it is always safe — the pool just re-warms.
  void recycle(sparse::SparseUpdate&& update) noexcept {
    workspace_.recycle(std::move(update));
  }

  /// Feedback from the downward direction: the worker calls this once per
  /// applied server reply. Default is a no-op; Method::kDGSAdaptive routes
  /// it into its SparsityController.
  virtual void observe_reply(const ReplyObservation& /*obs*/) noexcept {}

  /// The runtime sparsity controller, when this algorithm has one
  /// (Method::kDGSAdaptive); nullptr otherwise. Exposed so engines can
  /// export the committed ratio schedule into metrics and the run ledger.
  [[nodiscard]] virtual const SparsityController* sparsity_controller()
      const noexcept {
    return nullptr;
  }

  [[nodiscard]] Method method() const noexcept { return method_; }

 protected:
  explicit WorkerAlgorithm(Method method,
                           sparse::Codec up_codec = sparse::Codec::kCoo)
      : method_(method), up_codec_(up_codec) {}

  /// Selection + compaction scratch shared by the sparsifying subclasses.
  sparse::SparsifyWorkspace workspace_;

 private:
  Method method_;
  sparse::Codec up_codec_;
};

/// Factory: builds the worker algorithm for `method` with per-layer sizes.
/// `rng_seed` seeds stochastic algorithms (quantizers, random dropping).
[[nodiscard]] std::unique_ptr<WorkerAlgorithm> make_worker_algorithm(
    Method method, const std::vector<std::size_t>& layer_sizes,
    const TrainConfig& config, std::uint64_t rng_seed = 0);

// ---------------------------------------------------------------------------
// Concrete algorithms (exposed for unit tests).
// ---------------------------------------------------------------------------

/// Dense SGD push: g = lr * grad. Used by ASGD.
class DenseSgd final : public WorkerAlgorithm {
 public:
  explicit DenseSgd(const std::vector<std::size_t>& layer_sizes);
  sparse::SparseUpdate step(const GradViews& grads, float lr,
                            std::size_t epoch) override;
  [[nodiscard]] std::size_t state_bytes() const noexcept override { return 0; }

 private:
  std::vector<std::size_t> sizes_;
};

/// Dense momentum push: u = m*u + lr*grad; g = u. Used by single-node MSGD.
class DenseMomentum final : public WorkerAlgorithm {
 public:
  DenseMomentum(const std::vector<std::size_t>& layer_sizes, float momentum);
  sparse::SparseUpdate step(const GradViews& grads, float lr,
                            std::size_t epoch) override;
  [[nodiscard]] std::size_t state_bytes() const noexcept override;

  [[nodiscard]] const LayeredVec& velocity() const noexcept { return u_; }

 private:
  float m_;
  LayeredVec u_;
};

/// Gradient Dropping (Algorithm 1): residual accumulation + top-R% push.
class GradientDropping final : public WorkerAlgorithm {
 public:
  GradientDropping(const std::vector<std::size_t>& layer_sizes,
                   CompressionConfig compression);
  sparse::SparseUpdate step(const GradViews& grads, float lr,
                            std::size_t epoch) override;
  [[nodiscard]] std::size_t state_bytes() const noexcept override;

  [[nodiscard]] const LayeredVec& residual() const noexcept { return r_; }

 private:
  CompressionConfig compression_;
  LayeredVec r_;
};

/// Deep Gradient Compression: momentum correction (velocity accumulated into
/// the residual) and momentum factor masking (velocity zeroed where sent).
class DeepGradientCompression final : public WorkerAlgorithm {
 public:
  DeepGradientCompression(const std::vector<std::size_t>& layer_sizes,
                          CompressionConfig compression, float momentum);
  sparse::SparseUpdate step(const GradViews& grads, float lr,
                            std::size_t epoch) override;
  [[nodiscard]] std::size_t state_bytes() const noexcept override;

  [[nodiscard]] const LayeredVec& velocity() const noexcept { return u_; }
  [[nodiscard]] const LayeredVec& residual() const noexcept { return v_; }

 private:
  CompressionConfig compression_;
  float m_;
  LayeredVec u_;  // velocity
  LayeredVec v_;  // accumulated (corrected) velocity / residual
};

/// DGS with SAMomentum (Algorithm 3 / Eq. 14-15): a single velocity buffer;
/// entries above the threshold are sent and kept, entries below are scaled
/// by 1/m so momentum never disappears (Eq. 16).
class SAMomentum final : public WorkerAlgorithm {
 public:
  SAMomentum(const std::vector<std::size_t>& layer_sizes,
             CompressionConfig compression, float momentum);
  sparse::SparseUpdate step(const GradViews& grads, float lr,
                            std::size_t epoch) override;
  [[nodiscard]] std::size_t state_bytes() const noexcept override;

  [[nodiscard]] const LayeredVec& velocity() const noexcept { return u_; }

 private:
  CompressionConfig compression_;
  float m_;
  LayeredVec u_;
};

}  // namespace dgs::core
