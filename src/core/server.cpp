#include "core/server.h"

#include <stdexcept>

#include "core/payload.h"
#include "sparse/topk.h"
#include "util/math_kernels.h"

namespace dgs::core {

ParameterServer::ParameterServer(std::vector<std::size_t> layer_sizes,
                                 std::vector<float> theta0_flat,
                                 ServerOptions options)
    : layer_sizes_(std::move(layer_sizes)),
      theta0_(std::move(theta0_flat)),
      m_(make_layered(layer_sizes_)),
      options_(options) {
  if (options_.num_workers == 0)
    throw std::invalid_argument("server: num_workers == 0");
  std::size_t total = 0;
  for (std::size_t s : layer_sizes_) total += s;
  if (theta0_.size() != total)
    throw std::invalid_argument("server: theta0 size mismatch");
  v_.reserve(options_.num_workers);
  for (std::size_t k = 0; k < options_.num_workers; ++k)
    v_.push_back(make_layered(layer_sizes_));
  prev_.assign(options_.num_workers, 0);
}

void ParameterServer::apply_update_to_m(const sparse::Bytes& payload) {
  // M_{t+1} = M_t - g (Eq. 1; g is a descent step, see optimizer.h).
  apply_update_payload(payload, m_, -1.0f);
}

comm::Message ParameterServer::build_reply(std::size_t worker) {
  auto& vk = v_[worker];

  // G_{k,t+1} = M_{t+1} - v_k, per layer (Eq. 3 / 6a).
  sparse::SparseUpdate g;
  g.layers.resize(layer_sizes_.size());
  std::vector<float> diff;
  std::size_t sparse_nnz = 0;
  for (std::size_t j = 0; j < layer_sizes_.size(); ++j) {
    diff.resize(layer_sizes_[j]);
    util::sub({m_[j].data(), m_[j].size()}, {vk[j].data(), vk[j].size()},
              {diff.data(), diff.size()});
    std::span<float> ds{diff.data(), diff.size()};

    float thr = 0.0f;  // keep everything by default
    if (options_.secondary_compression &&
        layer_sizes_[j] >= options_.min_sparsify_size)
      thr = sparse::topk_threshold({diff.data(), diff.size()},
                                   options_.secondary_ratio_percent);
    // Entries kept in G are *removed from the outstanding difference*;
    // extract_and_zero leaves the residual (entries below thr) in `diff`,
    // which stays implicitly accumulated at the server because v_k is only
    // advanced by what was actually sent (Eq. 6b).
    g.layers[j] = sparse::extract_and_zero(static_cast<std::uint32_t>(j), ds, thr);
    sparse_nnz += g.layers[j].nnz();

    // v_{k,t+1} = v_{k,prev} + G (Eq. 6b): add exactly what is being sent.
    auto& vl = vk[j];
    sparse::scatter_add(g.layers[j], 1.0f, {vl.data(), vl.size()});
  }

  total_reply_nnz_ += sparse_nnz;
  total_reply_dense_ += layered_numel(m_);

  comm::Message reply;
  reply.kind = comm::MessageKind::kModelDiff;
  reply.worker_id = static_cast<std::int32_t>(worker);
  reply.server_step = step_;

  // Wire-format choice: COO costs 8 bytes/entry, dense 4 bytes/entry, so a
  // model difference that is more than half dense (as it is for ASGD, which
  // effectively downloads the whole model) ships dense — exactly the
  // downward bottleneck the paper describes.
  const std::size_t total = layered_numel(m_);
  if (sparse_nnz * 2 >= total && !options_.secondary_compression) {
    sparse::DenseUpdate dense;
    dense.layers.resize(g.layers.size());
    for (std::size_t j = 0; j < g.layers.size(); ++j) {
      dense.layers[j].layer = static_cast<std::uint32_t>(j);
      dense.layers[j].values = sparse::densify(g.layers[j]);
    }
    reply.payload = sparse::encode(dense);
  } else {
    reply.payload = sparse::encode(g);
  }
  return reply;
}

comm::Message ParameterServer::handle_push(const comm::Message& push) {
  if (push.kind != comm::MessageKind::kGradientPush)
    throw std::invalid_argument("server: expected gradient push");
  const auto worker = static_cast<std::size_t>(push.worker_id);
  if (worker >= options_.num_workers)
    throw std::invalid_argument("server: bad worker id");

  apply_update_to_m(push.payload);
  ++step_;
  last_staleness_ = step_ - 1 - prev_[worker];

  comm::Message reply = build_reply(worker);
  prev_[worker] = step_;
  reply.worker_step = push.worker_step;
  return reply;
}

std::vector<float> ParameterServer::global_model_flat() const {
  std::vector<float> theta = theta0_;
  std::size_t at = 0;
  for (const auto& layer : m_) {
    util::axpy(1.0f, {layer.data(), layer.size()}, {theta.data() + at, layer.size()});
    at += layer.size();
  }
  return theta;
}

std::size_t ParameterServer::state_bytes() const noexcept {
  const std::size_t model = layered_numel(m_) * sizeof(float);
  return model /* M */ + options_.num_workers * model /* v_k */ +
         theta0_.size() * sizeof(float) /* theta_0 */;
}

}  // namespace dgs::core
