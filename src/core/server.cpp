#include "core/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.h"
#include "core/payload.h"
#include "obs/trace.h"

namespace dgs::core {

ParameterServer::ParameterServer(std::vector<std::size_t> layer_sizes,
                                 std::vector<float> theta0_flat,
                                 ServerOptions options)
    : layer_sizes_(std::move(layer_sizes)),
      theta0_(std::move(theta0_flat)),
      options_(options),
      prev_(options.num_workers),
      last_seq_(options.num_workers),
      lease_last_(options.num_workers),
      lease_active_(options.num_workers) {
  // Every worker starts with an active lease stamped at time 0; a worker
  // that never makes contact is reclaimed once the timeout elapses, same as
  // one that goes silent mid-run.
  for (std::size_t k = 0; k < options.num_workers; ++k) {
    lease_last_[k].store(0.0, std::memory_order_relaxed);
    lease_active_[k].store(true, std::memory_order_relaxed);
  }
  if (options_.num_workers == 0)
    throw std::invalid_argument("server: num_workers == 0");
  layer_offsets_.reserve(layer_sizes_.size());
  for (std::size_t s : layer_sizes_) {
    layer_offsets_.push_back(total_numel_);
    total_numel_ += s;
  }
  if (theta0_.size() != total_numel_)
    throw std::invalid_argument("server: theta0 size mismatch");

  reply_policy_.secondary_compression = options_.secondary_compression;
  reply_policy_.secondary_ratio_percent = options_.secondary_ratio_percent;
  reply_policy_.min_sparsify_size = options_.min_sparsify_size;
  // Lossy downward modes install the codec stage the shards run on each
  // reply chunk before charging it to v_k; lossless modes leave it null.
  switch (options_.down_compress) {
    case DownCompress::kQ8:
      reply_policy_.reply_stage = &sparse::compressor_for(sparse::Codec::kQcoo8);
      break;
    case DownCompress::kQ4:
      reply_policy_.reply_stage = &sparse::compressor_for(sparse::Codec::kQcoo4);
      break;
    case DownCompress::kSbc:
      reply_policy_.reply_stage = &sparse::compressor_for(sparse::Codec::kSbc);
      break;
    default:
      break;
  }

  const std::vector<std::size_t> firsts =
      shard_partition(layer_sizes_, options_.num_shards);
  shards_.reserve(firsts.size());
  for (std::size_t s = 0; s < firsts.size(); ++s) {
    const std::size_t first = firsts[s];
    const std::size_t end =
        s + 1 < firsts.size() ? firsts[s + 1] : layer_sizes_.size();
    shards_.push_back(std::make_unique<ServerShard>(
        s, first,
        std::vector<std::size_t>(layer_sizes_.begin() +
                                     static_cast<std::ptrdiff_t>(first),
                                 layer_sizes_.begin() +
                                     static_cast<std::ptrdiff_t>(end)),
        options_.num_workers, options_.metrics, options_.phases));
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    // Staleness is a small-integer distribution (bounded by in-flight
    // pushes); densities live in [0, 1]; reply sizes span bytes..GBs.
    instruments_.staleness =
        &m.histogram("server.push.staleness",
                     {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128,
                      192, 256, 384, 512, 768, 1024});
    instruments_.push_layer_density = &m.histogram(
        "server.push.layer_density", obs::linear_bounds(0.05, 0.05, 20));
    instruments_.reply_density = &m.histogram(
        "server.reply.density", obs::linear_bounds(0.05, 0.05, 20));
    instruments_.reply_layer_density = &m.histogram(
        "server.reply.layer_density", obs::linear_bounds(0.05, 0.05, 20));
    instruments_.reply_bytes = &m.histogram(
        "server.reply.bytes", obs::exponential_bounds(64.0, 2.0, 26));
    // Codec accounting for the dual-way pipeline: payload bytes per sent
    // element (the fig. 5 bandwidth metric; 8 = plain COO, 4 = dense f32,
    // ~1 = SBC), codec times, and the upward push sizes.
    instruments_.reply_bytes_per_element = &m.histogram(
        "server.reply.bytes_per_element", obs::linear_bounds(0.5, 0.5, 24));
    instruments_.reply_encode_us = &m.histogram(
        "server.reply.encode_us", obs::exponential_bounds(0.5, 2.0, 23));
    instruments_.push_bytes = &m.histogram(
        "server.push.bytes", obs::exponential_bounds(64.0, 2.0, 26));
    instruments_.push_decode_us = &m.histogram(
        "server.push.decode_us", obs::exponential_bounds(0.5, 2.0, 23));
    instruments_.pushes = &m.counter("server.pushes");
    instruments_.leases_reclaimed = &m.counter("server.leases_reclaimed");
    instruments_.duplicate_pushes = &m.counter("server.duplicate_pushes");
    instruments_.rejoins = &m.counter("server.rejoins");
    instruments_.full_model_resyncs = &m.counter("server.full_model_resyncs");
  }
}

comm::Message ParameterServer::handle_push(const comm::Message& push,
                                           std::uint64_t* staleness_out,
                                           bool* duplicate_out) {
  DGS_TRACE_SCOPE("handle_push", "server");
  if (push.kind != comm::MessageKind::kGradientPush)
    throw std::invalid_argument("server: expected gradient push");
  const auto worker = static_cast<std::size_t>(push.worker_id);
  if (push.worker_id < 0 || worker >= options_.num_workers)
    throw std::invalid_argument("server: bad worker id");
  if (staleness_out != nullptr) *staleness_out = 0;
  if (duplicate_out != nullptr) *duplicate_out = false;

  // Lease-reclaimed worker calling in: its v_k was reset, so a diff reply
  // would replay the whole of M as "never sent". Discard the (arbitrarily
  // stale) gradient and resync with a full-model snapshot instead; the
  // adopt below reactivates a consistent (theta, v_k) pair. This also
  // self-heals lease false positives — a slow-but-alive worker just gets a
  // warm restart.
  if (!lease_active_[worker].load(std::memory_order_acquire)) {
    if (duplicate_out != nullptr) *duplicate_out = true;  // no sample applied
    full_model_resyncs_.fetch_add(1, std::memory_order_relaxed);
    if (instruments_.full_model_resyncs != nullptr)
      instruments_.full_model_resyncs->add();
    comm::Message reply = build_full_model_reply(worker);
    reply.seq = push.seq;
    reply.attempt = push.attempt;
    lease_active_[worker].store(true, std::memory_order_release);
    return reply;
  }

  // Sequence-number dedup: only a push strictly newer than the watermark is
  // applied. The CAS loop means two concurrently delivered copies of the
  // same push (dup fault, or an original racing its own retransmit) cannot
  // both pass — exactly one applies the gradient.
  if (push.seq != 0) {
    std::uint64_t last = last_seq_[worker].load(std::memory_order_relaxed);
    bool won = false;
    while (push.seq > last && !won) {
      won = last_seq_[worker].compare_exchange_weak(
          last, push.seq, std::memory_order_acq_rel,
          std::memory_order_relaxed);
    }
    if (!won) {
      // Duplicate: do not re-apply the gradient or advance t, but answer
      // with a fresh G = M - v_k (charged to v_k as every sent reply must
      // be, so whichever copy the worker applies stays consistent).
      duplicate_pushes_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_.duplicate_pushes != nullptr)
        instruments_.duplicate_pushes->add();
      if (duplicate_out != nullptr) *duplicate_out = true;

      const std::vector<const DecodedLayer*> no_segments(layer_sizes_.size(),
                                                         nullptr);
      sparse::SparseUpdate g;
      g.layers.reserve(layer_sizes_.size());
      std::uint64_t sparse_nnz = 0;
      for (const auto& shard : shards_) {
        ServerShard::ReplySegment segment =
            shard->apply_and_reply(worker, no_segments, -1.0f, reply_policy_);
        sparse_nnz += segment.nnz;
        for (auto& chunk : segment.layers)
          g.layers.push_back(std::move(chunk));
      }
      total_reply_nnz_.fetch_add(sparse_nnz, std::memory_order_relaxed);
      total_reply_dense_.fetch_add(total_numel_, std::memory_order_relaxed);

      comm::Message reply;
      reply.kind = comm::MessageKind::kModelDiff;
      reply.worker_id = static_cast<std::int32_t>(worker);
      reply.server_step = step_.load(std::memory_order_relaxed);
      reply.worker_step = push.worker_step;
      reply.seq = push.seq;
      reply.attempt = push.attempt;
      reply.payload = encode_reply_payload(g, sparse_nnz);
      return reply;
    }
  }

  // Decode once and validate every segment before any shard is touched, so
  // a malformed push never leaves M partially updated.
  DecodedUpdate decoded;
  std::vector<const DecodedLayer*> by_layer(layer_sizes_.size(), nullptr);
  {
    DGS_TRACE_SCOPE("decode+validate", "server");
    obs::PhaseTimer apply_timer(options_.phases, worker,
                                obs::Phase::kServerApply);
    const bool timed = instruments_.push_decode_us != nullptr;
    const double decode_begin = timed ? obs::Tracer::now_us() : 0.0;
    decoded = decode_update(push.payload);
    if (timed) {
      instruments_.push_decode_us->record(obs::Tracer::now_us() - decode_begin);
      instruments_.push_bytes->record(static_cast<double>(push.payload.size()));
    }
    for (const DecodedLayer& segment : decoded) {
      if (segment.layer() >= layer_sizes_.size() ||
          segment.dense_size() != layer_sizes_[segment.layer()])
        throw std::runtime_error("server: push layer shape mismatch");
      by_layer[segment.layer()] = &segment;
    }
  }

  if (instruments_.push_layer_density != nullptr) {
    for (const DecodedLayer& segment : decoded)
      instruments_.push_layer_density->record(
          segment.sparse && segment.dense_size() > 0
              ? static_cast<double>(segment.chunk.nnz()) /
                    static_cast<double>(segment.dense_size())
              : 1.0);
  }

  // Advance the server timestamp t and compute this push's staleness
  // exactly as the serial server did: staleness = t_after - 1 - prev(k).
  const std::uint64_t t_after =
      step_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t staleness =
      t_after - 1 - prev_[worker].load(std::memory_order_relaxed);

  // Walk shards in ascending layer order: each shard applies the push's
  // segments to its slice of M and builds its slice of the reply under its
  // own lock (M_{t+1} = M_t - g, Eq. 1; g is a descent step, see
  // optimizer.h).
  sparse::SparseUpdate g;
  g.layers.reserve(layer_sizes_.size());
  std::uint64_t sparse_nnz = 0;
  {
    DGS_TRACE_SCOPE("apply+build_reply", "server");
    for (const auto& shard : shards_) {
      ServerShard::ReplySegment segment =
          shard->apply_and_reply(worker, by_layer, -1.0f, reply_policy_);
      sparse_nnz += segment.nnz;
      for (auto& chunk : segment.layers) g.layers.push_back(std::move(chunk));
    }
  }

  total_reply_nnz_.fetch_add(sparse_nnz, std::memory_order_relaxed);
  total_reply_dense_.fetch_add(total_numel_, std::memory_order_relaxed);

  comm::Message reply;
  reply.kind = comm::MessageKind::kModelDiff;
  reply.worker_id = static_cast<std::int32_t>(worker);
  reply.server_step = t_after;
  reply.worker_step = push.worker_step;
  reply.seq = push.seq;
  reply.attempt = push.attempt;

  {
    DGS_TRACE_SCOPE("encode_reply", "server");
    obs::PhaseTimer encode_timer(options_.phases, worker,
                                 obs::Phase::kReplyEncode);
    const bool timed = instruments_.reply_encode_us != nullptr;
    const double encode_begin = timed ? obs::Tracer::now_us() : 0.0;
    reply.payload = encode_reply_payload(g, sparse_nnz);
    if (timed)
      instruments_.reply_encode_us->record(obs::Tracer::now_us() - encode_begin);
  }

  if (instruments_.staleness != nullptr) {
    instruments_.pushes->add(1);
    instruments_.staleness->record(static_cast<double>(staleness));
    instruments_.reply_density->record(
        total_numel_ > 0
            ? static_cast<double>(sparse_nnz) / static_cast<double>(total_numel_)
            : 0.0);
    instruments_.reply_bytes->record(static_cast<double>(reply.wire_size()));
    if (sparse_nnz > 0)
      instruments_.reply_bytes_per_element->record(
          static_cast<double>(reply.payload.size()) /
          static_cast<double>(sparse_nnz));
    for (const auto& chunk : g.layers)
      if (chunk.dense_size > 0)
        instruments_.reply_layer_density->record(
            static_cast<double>(chunk.nnz()) /
            static_cast<double>(chunk.dense_size));
  }
  DGS_TRACE_INSTANT("staleness", "server", staleness);

  prev_[worker].store(t_after, std::memory_order_relaxed);
  last_staleness_.store(staleness, std::memory_order_relaxed);
  if (staleness_out != nullptr) *staleness_out = staleness;
  return reply;
}

sparse::Bytes ParameterServer::encode_reply_payload(
    const sparse::SparseUpdate& g, std::uint64_t sparse_nnz) const {
  switch (options_.down_compress) {
    case DownCompress::kCoo:
      return sparse::encode(g);
    case DownCompress::kDense:
      return sparse::compressor_for(sparse::Codec::kDense).encode(g);
    case DownCompress::kQ8:
      return sparse::compressor_for(sparse::Codec::kQcoo8).encode(g);
    case DownCompress::kQ4:
      return sparse::compressor_for(sparse::Codec::kQcoo4).encode(g);
    case DownCompress::kSbc:
      return sparse::compressor_for(sparse::Codec::kSbc).encode(g);
    case DownCompress::kAuto:
      break;
  }
  // kAuto wire-format choice: COO costs 8 bytes/entry, dense 4
  // bytes/entry, so a model difference that is more than half dense (as it
  // is for ASGD, which effectively downloads the whole model) ships dense —
  // exactly the downward bottleneck the paper describes.
  if (sparse_nnz * 2 >= total_numel_ && !options_.secondary_compression)
    return sparse::compressor_for(sparse::Codec::kDense).encode(g);
  return sparse::encode(g);
}

void ParameterServer::touch_lease(std::size_t worker, double now) {
  lease_last_.at(worker).store(now, std::memory_order_relaxed);
  lease_active_[worker].store(true, std::memory_order_release);
}

std::size_t ParameterServer::reclaim_expired_leases(double now) {
  if (options_.lease_timeout_s <= 0.0) return 0;
  std::lock_guard lock(lease_mutex_);
  std::size_t reclaimed = 0;
  for (std::size_t k = 0; k < options_.num_workers; ++k) {
    if (!lease_active_[k].load(std::memory_order_acquire)) continue;
    if (now - lease_last_[k].load(std::memory_order_relaxed) <=
        options_.lease_timeout_s)
      continue;
    // Deactivate first: a push racing the reclaim either sees an active
    // lease (applies against the old v_k before reset_v's shard locks — a
    // normal stale push) or an inactive one (gets resynced).
    lease_active_[k].store(false, std::memory_order_release);
    for (const auto& shard : shards_) shard->reset_v(k);
    ++reclaimed;
  }
  if (reclaimed > 0) {
    leases_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
    if (instruments_.leases_reclaimed != nullptr)
      instruments_.leases_reclaimed->add(reclaimed);
  }
  return reclaimed;
}

comm::Message ParameterServer::handle_rejoin(const comm::Message& request,
                                             double now) {
  if (request.kind != comm::MessageKind::kRejoinRequest)
    throw std::invalid_argument("server: expected rejoin request");
  const auto worker = static_cast<std::size_t>(request.worker_id);
  if (request.worker_id < 0 || worker >= options_.num_workers)
    throw std::invalid_argument("server: bad worker id");

  rejoins_.fetch_add(1, std::memory_order_relaxed);
  if (instruments_.rejoins != nullptr) instruments_.rejoins->add();
  comm::Message reply = build_full_model_reply(worker);
  // The reply's seq is the dedup floor the rejoined worker must resume
  // above. An in-process revive keeps its monotonic counter (request.seq
  // already past the watermark); a rejoined *process* starts from scratch
  // and needs the server's watermark, or its fresh 1,2,3... pushes would
  // all dedup as duplicates.
  reply.seq =
      std::max(request.seq, last_seq_[worker].load(std::memory_order_acquire));
  touch_lease(worker, now);
  return reply;
}

comm::Message ParameterServer::build_full_model_reply(std::size_t worker) {
  DGS_TRACE_SCOPE("full_model_reply", "server");
  // Adopt v_k := M per shard (each under its own lock), collecting the same
  // M values the adoption saw — so the snapshot the worker installs is
  // byte-identical to what v_k now says was sent, and Eq. 5 bookkeeping
  // restarts from a consistent pair even mid-traffic.
  LayeredVec m = make_layered(layer_sizes_);
  for (const auto& shard : shards_) shard->adopt_v_from_m(worker, m);

  std::vector<float> theta = theta0_;
  for (std::size_t j = 0; j < m.size(); ++j) {
    float* dst = theta.data() + layer_offsets_[j];
    for (std::size_t i = 0; i < m[j].size(); ++i) dst[i] += m[j][i];
  }

  // Route through the Checkpoint machinery: the warm-start payload is the
  // same layered snapshot a checkpoint file would hold.
  const Checkpoint snapshot = Checkpoint::from_flat(
      theta, layer_sizes_, step_.load(std::memory_order_relaxed));
  sparse::DenseUpdate dense;
  dense.layers.resize(snapshot.layers.size());
  for (std::size_t j = 0; j < snapshot.layers.size(); ++j) {
    dense.layers[j].layer = static_cast<std::uint32_t>(j);
    dense.layers[j].values = snapshot.layers[j];
  }

  comm::Message reply;
  reply.kind = comm::MessageKind::kFullModel;
  reply.worker_id = static_cast<std::int32_t>(worker);
  reply.server_step = snapshot.step;
  reply.payload = sparse::encode(dense);
  total_reply_dense_.fetch_add(total_numel_, std::memory_order_relaxed);
  total_reply_nnz_.fetch_add(total_numel_, std::memory_order_relaxed);
  return reply;
}

std::vector<float> ParameterServer::global_model_flat() const {
  std::vector<float> theta = theta0_;
  for (const auto& shard : shards_)
    shard->accumulate_model({theta.data(), theta.size()}, layer_offsets_);
  return theta;
}

LayeredVec ParameterServer::accumulated_updates() const {
  LayeredVec m = make_layered(layer_sizes_);
  for (const auto& shard : shards_) shard->snapshot_m(m);
  return m;
}

LayeredVec ParameterServer::sent_accumulator(std::size_t worker) const {
  LayeredVec v = make_layered(layer_sizes_);
  for (const auto& shard : shards_) shard->snapshot_v(worker, v);
  return v;
}

std::size_t ParameterServer::state_bytes() const noexcept {
  const std::size_t model = total_numel_ * sizeof(float);
  return model /* M */ + options_.num_workers * model /* v_k */ +
         theta0_.size() * sizeof(float) /* theta_0 */;
}

}  // namespace dgs::core
