#include "core/engine_process.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/fault.h"
#include "comm/process.h"
#include "comm/socket_transport.h"
#include "comm/transport.h"
#include "core/engine_context.h"
#include "core/payload.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace dgs::core {

namespace {

[[nodiscard]] std::chrono::microseconds to_us(double seconds) {
  return std::chrono::microseconds(
      static_cast<std::chrono::microseconds::rep>(seconds * 1e6));
}

// ---- transport adapters ----------------------------------------------------
// The worker loop and the server loop are written once against these two
// interfaces; the `thread` transport binds them to comm::Channel queues and
// the `uds`/`tcp` transports to real sockets. Everything protocol-level
// (seq, retransmits, piggybacked loss/epoch, rejoin) is identical across
// the three — deliberately, so the cross-transport determinism pin compares
// byte paths and nothing else.

class ClientLink {
 public:
  virtual ~ClientLink() = default;
  virtual bool send(comm::Message msg) = 0;
  virtual bool receive(comm::Message& out) = 0;
  virtual comm::ChannelStatus receive_for(comm::Message& out,
                                          std::chrono::microseconds timeout) = 0;
};

class ThreadClientLink final : public ClientLink {
 public:
  ThreadClientLink(comm::ThreadTransport& transport, std::size_t worker)
      : transport_(transport), worker_(worker) {}
  bool send(comm::Message msg) override {
    return transport_.send_push(std::move(msg));
  }
  bool receive(comm::Message& out) override {
    auto reply = transport_.receive_reply(worker_);
    if (!reply) return false;
    out = std::move(*reply);
    return true;
  }
  comm::ChannelStatus receive_for(comm::Message& out,
                                  std::chrono::microseconds timeout) override {
    return transport_.receive_reply_for(worker_, out, timeout);
  }

 private:
  comm::ThreadTransport& transport_;
  std::size_t worker_;
};

class SocketClientLink final : public ClientLink {
 public:
  explicit SocketClientLink(comm::SocketClientTransport& client)
      : client_(client) {}
  bool send(comm::Message msg) override { return client_.send_push(msg); }
  bool receive(comm::Message& out) override {
    return client_.receive_reply(out);
  }
  comm::ChannelStatus receive_for(comm::Message& out,
                                  std::chrono::microseconds timeout) override {
    return client_.receive_reply_for(out, timeout);
  }

 private:
  comm::SocketClientTransport& client_;
};

class ServerLink {
 public:
  virtual ~ServerLink() = default;
  virtual std::optional<comm::Message> receive_push() = 0;
  virtual bool send_reply(std::size_t worker, comm::Message msg) = 0;
  virtual void shutdown() = 0;
  [[nodiscard]] virtual comm::ByteCounter bytes() const = 0;
};

class ThreadServerLink final : public ServerLink {
 public:
  explicit ThreadServerLink(comm::ThreadTransport& transport)
      : transport_(transport) {}
  std::optional<comm::Message> receive_push() override {
    return transport_.receive_push();
  }
  bool send_reply(std::size_t worker, comm::Message msg) override {
    return transport_.send_reply(worker, std::move(msg));
  }
  void shutdown() override { transport_.shutdown(); }
  [[nodiscard]] comm::ByteCounter bytes() const override {
    return transport_.bytes();
  }

 private:
  comm::ThreadTransport& transport_;
};

class SocketServerLink final : public ServerLink {
 public:
  explicit SocketServerLink(comm::SocketServerTransport& transport)
      : transport_(transport) {}
  std::optional<comm::Message> receive_push() override {
    return transport_.receive_push();
  }
  bool send_reply(std::size_t worker, comm::Message msg) override {
    return transport_.send_reply(worker, std::move(msg));
  }
  void shutdown() override { transport_.shutdown(); }
  [[nodiscard]] comm::ByteCounter bytes() const override {
    return transport_.bytes();
  }

 private:
  comm::SocketServerTransport& transport_;
};

// ---- push-direction fault injection ---------------------------------------
// In socket mode the classification runs inside the worker *process*; the
// decisions are a pure hash of (direction, worker, seq, attempt) under the
// shared seed, so child and parent agree about which messages were doomed
// without exchanging a word. (Child-side fault counters die with the child;
// the parent-visible fault.* metrics count reply-direction injections and
// kills, both classified in the parent.)
bool send_with_faults(ClientLink& link, comm::FaultPlan* plan,
                      std::size_t worker, comm::Message msg) {
  if (plan == nullptr || !plan->config().faults_on_pushes ||
      comm::is_control_message(msg))
    return link.send(std::move(msg));
  const auto action = plan->classify(comm::FaultDirection::kPush, worker,
                                     msg.seq, msg.attempt);
  switch (action) {
    case comm::FaultAction::kDrop:
      return true;  // vanished on the wire; the reply timeout heals it
    case comm::FaultAction::kDuplicate: {
      comm::Message copy = msg;
      if (!link.send(std::move(copy))) return false;
      return link.send(std::move(msg));
    }
    case comm::FaultAction::kDelay:
    case comm::FaultAction::kReorder:
      std::this_thread::sleep_for(std::chrono::duration<double>(
          plan->hold_seconds(action, worker, msg.seq, msg.attempt)));
      return link.send(std::move(msg));
    case comm::FaultAction::kDeliver:
      break;
  }
  return link.send(std::move(msg));
}

// ---- the worker loop -------------------------------------------------------
// Runs on a std::thread (kThread) or as the body of a forked child
// (kUds/kTcp). All coordination arrives over the link: the LR schedule
// epoch rides on replies, kShutdown (or a closed connection) ends the run,
// and a kFullModel reply at any point warm-restarts the local replica.
void run_worker_loop(EngineContext& context, const TrainConfig& config,
                     std::size_t k, std::size_t intra_op, bool rejoin_first,
                     ClientLink& link, comm::FaultPlan* plan) {
  util::set_intra_op_threads(intra_op);
  Worker* w = &context.worker(k);
  std::uint64_t next_seq = 0;
  std::uint32_t epoch = 0;

  const auto install_full_model = [&](const comm::Message& reply) {
    w = &context.revive_worker(k, flatten_dense_payload(reply.payload));
    // reply.seq is the server's dedup watermark: resume above it (a fresh
    // process would otherwise push seq 1, 2, ... into the duplicate filter).
    next_seq = std::max(next_seq, reply.seq);
    epoch = reply.epoch;
  };

  // Crash/partition recovery: wait out the downtime, re-register, install
  // the warm-start snapshot. False when the run is over instead.
  const auto rejoin = [&]() -> bool {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config.fault.rejoin_delay_s));
    comm::Message request;
    request.kind = comm::MessageKind::kRejoinRequest;
    request.worker_id = static_cast<std::int32_t>(k);
    request.seq = next_seq;
    if (!link.send(std::move(request))) return false;
    while (true) {
      comm::Message reply;
      if (!link.receive(reply) || reply.kind == comm::MessageKind::kShutdown)
        return false;
      if (reply.kind == comm::MessageKind::kFullModel) {
        install_full_model(reply);
        DGS_LOG(kInfo) << "worker " << k << " rejoined at server step "
                       << reply.server_step;
        return true;
      }
      // Stale diff addressed to the pre-crash incarnation: discard.
    }
  };

  if (rejoin_first && !rejoin()) return;

  const bool retry_armed = plan != nullptr && config.fault.message_faults();

  while (true) {
    IterationResult iter = w->compute_and_pack(
        static_cast<float>(config.lr_at_epoch(epoch)), epoch);
    comm::Message push = std::move(iter.push);
    push.seq = ++next_seq;
    push.loss = static_cast<float>(iter.loss);
    push.density = static_cast<float>(iter.update_density);

    if (!retry_armed) {
      if (!link.send(std::move(push))) return;
      comm::Message reply;
      if (!link.receive(reply) || reply.kind == comm::MessageKind::kShutdown)
        return;
      if (reply.kind == comm::MessageKind::kFullModel) {
        install_full_model(reply);
        continue;
      }
      w->apply_model_diff(reply);
      epoch = reply.epoch;
      continue;
    }

    // Lossy wire: wait with a deadline; a silent deadline retransmits the
    // same push (same seq, next attempt), and after max_retransmits the
    // worker declares itself partitioned and rejoins.
    comm::Message inflight = push;
    if (!send_with_faults(link, plan, k, std::move(push))) return;
    std::uint32_t attempt = 0;
    bool resolved = false;
    while (!resolved) {
      comm::Message reply;
      const auto status =
          link.receive_for(reply, to_us(config.fault.retransmit_timeout_s));
      switch (status) {
        case comm::ChannelStatus::kClosed:
          return;
        case comm::ChannelStatus::kTimedOut: {
          if (attempt >= config.fault.max_retransmits) {
            DGS_LOG(kWarn) << "worker " << k << " gave up on push seq "
                           << inflight.seq << " after " << attempt
                           << " retransmits; rejoining";
            if (!rejoin()) return;
            resolved = true;  // push abandoned; rejoin resynced us
            break;
          }
          ++attempt;
          plan->count_retransmit();
          inflight.attempt = attempt;
          if (!send_with_faults(link, plan, k, comm::Message(inflight)))
            return;
          break;
        }
        case comm::ChannelStatus::kOk: {
          if (reply.kind == comm::MessageKind::kShutdown) return;
          if (reply.kind == comm::MessageKind::kFullModel) {
            install_full_model(reply);
            resolved = true;
            break;
          }
          if (reply.seq != inflight.seq) break;  // stale/duplicate reply
          w->apply_model_diff(reply);
          epoch = reply.epoch;
          resolved = true;
          break;
        }
      }
    }
  }
}

[[nodiscard]] std::string default_uds_path() {
  static std::atomic<std::uint64_t> counter{0};
  return "/tmp/dgs_engine_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

}  // namespace

ProcessEngine::ProcessEngine(nn::ModelSpec spec,
                             std::shared_ptr<const data::Dataset> train,
                             std::shared_ptr<const data::Dataset> test,
                             TrainConfig config)
    : spec_(std::move(spec)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(std::move(config)) {
  validate_engine_config("ProcessEngine", config_);
  if (config_.deterministic_service && config_.fault.enabled())
    throw std::invalid_argument(
        "ProcessEngine: deterministic_service requires a fault-free config "
        "(strict round-robin service cannot tolerate lost turns)");
  if (config_.fault.kill_worker >= 0 &&
      config_.transport == TransportKind::kThread)
    throw std::invalid_argument(
        "ProcessEngine: a scheduled kill needs a process transport "
        "(uds/tcp) — there is no process to SIGKILL in thread mode");
}

RunResult ProcessEngine::run() {
  if (used_) throw std::logic_error("ProcessEngine::run: already run");
  used_ = true;

  EngineContext context("ProcessEngine", spec_, train_, test_, config_);
  ParameterServer server = context.make_server();
  const std::size_t intra_op = effective_threads_per_worker(config_);
  const std::size_t num_workers = config_.num_workers;

  std::unique_ptr<comm::FaultPlan> plan;
  if (config_.fault.enabled())
    plan =
        std::make_unique<comm::FaultPlan>(config_.fault, &context.metrics());

  const std::uint64_t sample_budget = context.sample_budget();
  const std::size_t train_size = context.train_size();
  std::atomic<std::uint64_t> samples_at_server{0};
  std::atomic<bool> kill_fired{false};

  RunResult result;
  auto epochs = context.make_epoch_tracker(/*eval_final_epoch=*/false);
  std::mutex epoch_mutex;  // guards `epochs` + result.curve
  std::mutex merge_mutex;  // guards result.staleness
  const auto server_model = [&server] { return server.global_model_flat(); };

  // ---- server-side message processing (shared by both service modes) ------
  // `kill_hook` is non-null only in socket mode with a scheduled kill: it
  // SIGKILLs the worker's process and wakes the standby.
  std::function<void(std::size_t)> kill_hook;

  // The serve loop is parameterized over the link at the call sites below.
  const auto make_process_one = [&](ServerLink& link) {
    return [&, &link = link](comm::Message& push,
                             StalenessStats& stripe) -> bool {
      const double now = context.wall_seconds();
      const auto worker = static_cast<std::size_t>(push.worker_id);

      const auto deliver_reply = [&](comm::Message reply) {
        if (plan == nullptr || !config_.fault.faults_on_replies ||
            comm::is_control_message(reply)) {
          (void)link.send_reply(worker, std::move(reply));
          return;
        }
        const auto action = plan->classify(comm::FaultDirection::kReply,
                                           worker, reply.seq, reply.attempt);
        switch (action) {
          case comm::FaultAction::kDrop:
            return;  // worker's reply timeout retransmits; dedup resends G
          case comm::FaultAction::kDuplicate: {
            comm::Message copy = reply;
            (void)link.send_reply(worker, std::move(copy));
            (void)link.send_reply(worker, std::move(reply));
            return;
          }
          case comm::FaultAction::kDelay:
          case comm::FaultAction::kReorder:
            // Held in the sending thread, like FaultyThreadTransport: a
            // slow link back-pressures its sender.
            std::this_thread::sleep_for(std::chrono::duration<double>(
                plan->hold_seconds(action, worker, reply.seq,
                                   reply.attempt)));
            [[fallthrough]];
          case comm::FaultAction::kDeliver:
            (void)link.send_reply(worker, std::move(reply));
            return;
        }
      };

      if (push.kind == comm::MessageKind::kRejoinRequest) {
        comm::Message reply = server.handle_rejoin(push, now);
        reply.epoch = static_cast<std::uint32_t>(
            samples_at_server.load(std::memory_order_relaxed) / train_size);
        deliver_reply(std::move(reply));
        return true;
      }

      // Scheduled kill: fires once, on the victim's push at the configured
      // local step — a literal SIGKILL while the worker blocks on this
      // push's reply, i.e. mid-push. The push dies with the process (the
      // in-process engines lose that step's gradient the same way).
      if (kill_hook != nullptr && plan != nullptr &&
          !kill_fired.load(std::memory_order_acquire) &&
          plan->wants_kill(worker, push.worker_step)) {
        kill_fired.store(true, std::memory_order_release);
        plan->count_kill();
        DGS_LOG(kWarn) << "killing worker process " << worker
                       << " at local step " << push.worker_step;
        kill_hook(worker);
        return true;
      }

      if (config_.fault.lease_timeout_s > 0.0)
        server.reclaim_expired_leases(now);

      std::uint64_t staleness = 0;
      bool duplicate = false;
      comm::Message reply = server.handle_push(push, &staleness, &duplicate);
      server.touch_lease(worker, now);

      std::uint64_t total;
      if (duplicate) {
        total = samples_at_server.load(std::memory_order_relaxed);
      } else {
        total = samples_at_server.fetch_add(config_.batch_size,
                                            std::memory_order_relaxed) +
                config_.batch_size;
        // Piggybacked tallies: the loss/density the worker measured ride on
        // the push (workers may live in another process). One in-flight
        // push per worker + seq dedup serialize writes to each tally.
        EngineContext::WorkerTally& tally = context.tally(worker);
        tally.loss_sum += push.loss;
        ++tally.loss_count;
        tally.samples += config_.batch_size;
        tally.update_density_sum += push.density;
      }
      reply.epoch = static_cast<std::uint32_t>(total / train_size);
      deliver_reply(std::move(reply));
      if (duplicate) return true;  // retransmit or dup copy: no new samples

      stripe.record(staleness);
      {
        std::lock_guard lock(epoch_mutex);
        epochs.add_loss(push.loss);
        epochs.advance(result, total, context.wall_seconds(), server_model);
      }
      if (total >= sample_budget) {
        link.shutdown();
        return false;
      }
      return true;
    };
  };

  // Inbox-order service (mirrors ThreadEngine's pool).
  const auto serve_pool = [&](ServerLink& link, std::size_t pool_size) {
    auto process_one = make_process_one(link);
    auto serve = [&] {
      StalenessStats stripe;
      while (true) {
        auto push = link.receive_push();
        if (!push) break;
        if (!process_one(*push, stripe)) break;
      }
      std::lock_guard lock(merge_mutex);
      result.staleness.merge(stripe);
    };
    std::vector<std::thread> pool;
    pool.reserve(pool_size > 0 ? pool_size - 1 : 0);
    for (std::size_t t = 1; t < pool_size; ++t) pool.emplace_back(serve);
    serve();  // this thread is pool member 0
    for (auto& t : pool) t.join();
  };

  // Strict round-robin service: one thread, per-worker pending queues,
  // worker k served only on turn k. With a fault-free wire and one
  // in-flight push per worker this fixes the exact global order pushes are
  // applied in — the trained model becomes a pure function of (config,
  // seed), independent of transport. Control messages are handled on
  // arrival (they do not consume a turn).
  const auto serve_round_robin = [&](ServerLink& link) {
    auto process_one = make_process_one(link);
    StalenessStats stripe;
    std::vector<std::deque<comm::Message>> pending(num_workers);
    std::size_t turn = 0;
    bool running = true;
    while (running) {
      while (running && pending[turn].empty()) {
        auto push = link.receive_push();
        if (!push) {
          running = false;
          break;
        }
        const auto w = static_cast<std::size_t>(push->worker_id);
        if (push->kind != comm::MessageKind::kGradientPush ||
            w >= num_workers) {
          if (!process_one(*push, stripe)) running = false;
          continue;
        }
        pending[w].push_back(std::move(*push));
      }
      if (!running) break;
      comm::Message push = std::move(pending[turn].front());
      pending[turn].pop_front();
      if (!process_one(push, stripe)) break;
      turn = (turn + 1) % num_workers;
    }
    std::lock_guard lock(merge_mutex);
    result.staleness.merge(stripe);
  };

  const std::size_t pool_size =
      config_.deterministic_service
          ? 1
          : (config_.server_threads > 0 ? config_.server_threads : 1);

  comm::ByteCounter wire_bytes;

  if (config_.transport == TransportKind::kThread) {
    // ---- in-process: worker std::threads over Channel queues ---------------
    comm::SendRetryPolicy send_retry;
    if (config_.fault.enabled()) send_retry.attempts = 4;
    comm::ThreadTransport transport(num_workers, config_.server_inbox_capacity,
                                    &context.metrics(), send_retry,
                                    &context.phases());
    ThreadServerLink slink(transport);

    std::vector<std::thread> workers;
    workers.reserve(num_workers);
    for (std::size_t k = 0; k < num_workers; ++k) {
      workers.emplace_back([&, k] {
        ThreadClientLink link(transport, k);
        run_worker_loop(context, config_, k, intra_op,
                        /*rejoin_first=*/false, link, plan.get());
      });
    }
    if (config_.deterministic_service)
      serve_round_robin(slink);
    else
      serve_pool(slink, pool_size);
    transport.shutdown();  // idempotent; releases any worker still blocked
    for (auto& t : workers) t.join();
    wire_bytes = slink.bytes();
  } else {
    // ---- out-of-process: forked children over sockets ----------------------
    comm::SocketAddress address =
        config_.transport == TransportKind::kUds
            ? comm::SocketAddress::uds(config_.uds_path.empty()
                                           ? default_uds_path()
                                           : config_.uds_path)
            : comm::SocketAddress::tcp("127.0.0.1", 0);
    comm::SocketServerTransport transport(address, num_workers,
                                          &context.metrics());
    const comm::SocketAddress bound = transport.bound_address();

    // Fork everything BEFORE the epoll thread (or any service thread)
    // exists: fork() in a multithreaded process is only safe with exec,
    // which we deliberately avoid so children inherit the built context.
    std::vector<comm::ProcessHandle> children;
    children.reserve(num_workers);
    for (std::size_t k = 0; k < num_workers; ++k) {
      children.push_back(comm::ProcessHandle::spawn([&, k]() -> int {
        comm::SocketClientTransport client(bound,
                                           static_cast<std::int32_t>(k));
        SocketClientLink link(client);
        std::unique_ptr<comm::FaultPlan> child_plan;
        if (config_.fault.enabled())
          child_plan = std::make_unique<comm::FaultPlan>(config_.fault);
        run_worker_loop(context, config_, k, intra_op,
                        /*rejoin_first=*/false, link, child_plan.get());
        return 0;
      }));
    }

    // Standby for the scheduled kill: forked now (single-threaded parent),
    // woken by a pipe byte after the SIGKILL, replaces the victim via the
    // rejoin protocol. EOF on the pipe (run ended, no kill) = exit quietly.
    int kill_pipe[2] = {-1, -1};
    std::optional<comm::ProcessHandle> standby;
    if (plan != nullptr && config_.fault.kill_worker >= 0) {
      if (::pipe2(kill_pipe, O_CLOEXEC) != 0)
        throw std::runtime_error(std::string("pipe2: ") +
                                 std::strerror(errno));
      const auto victim =
          static_cast<std::size_t>(config_.fault.kill_worker);
      standby = comm::ProcessHandle::spawn([&, victim]() -> int {
        ::close(kill_pipe[1]);
        char byte = 0;
        ssize_t n;
        do {
          n = ::read(kill_pipe[0], &byte, 1);
        } while (n < 0 && errno == EINTR);
        ::close(kill_pipe[0]);
        if (n <= 0) return 0;  // run finished without the kill
        comm::SocketClientTransport client(
            bound, static_cast<std::int32_t>(victim));
        SocketClientLink link(client);
        std::unique_ptr<comm::FaultPlan> child_plan =
            std::make_unique<comm::FaultPlan>(config_.fault);
        run_worker_loop(context, config_, victim, intra_op,
                        /*rejoin_first=*/true, link, child_plan.get());
        return 0;
      });
      ::close(kill_pipe[0]);
      kill_pipe[0] = -1;
      kill_hook = [&children, &kill_pipe](std::size_t worker) {
        children[worker].signal(SIGKILL);
        (void)children[worker].wait();  // reap; kernel closes its socket
        const char go = 'k';
        ssize_t n;
        do {
          n = ::write(kill_pipe[1], &go, 1);
        } while (n < 0 && errno == EINTR);
      };
    }

    transport.start();  // all forks done; threads may exist from here on
    SocketServerLink slink(transport);
    if (config_.deterministic_service)
      serve_round_robin(slink);
    else
      serve_pool(slink, pool_size);
    transport.shutdown();  // closes every worker fd: children see EOF
    for (auto& child : children) (void)child.wait();
    if (kill_pipe[1] >= 0) ::close(kill_pipe[1]);  // EOF wakes unused standby
    if (standby.has_value()) (void)standby->wait();
    wire_bytes = slink.bytes();
  }

  // ---- final metrics --------------------------------------------------------
  result.bytes = wire_bytes;
  result.samples_processed = context.total_tally_samples();
  if (result.bytes.upward_messages > 0) {
    double density_sum = 0.0;
    for (std::size_t k = 0; k < num_workers; ++k)
      density_sum += context.tally(k).update_density_sum;
    result.mean_upward_density =
        density_sum / static_cast<double>(result.bytes.upward_messages);
  }
  if (server.total_reply_dense() > 0)
    result.mean_downward_density =
        static_cast<double>(server.total_reply_nnz()) /
        static_cast<double>(server.total_reply_dense());
  result.reply_elements = server.total_reply_nnz();
  result.server_steps = server.step();
  result.server_state_bytes = server.state_bytes();
  result.threads_per_worker = intra_op;
  context.finalize(result, epochs, server.global_model_flat(),
                   context.wall_seconds(), context.mean_tally_loss(),
                   /*always_append=*/true);
  result.sim_seconds = result.wall_seconds;
  return result;
}

}  // namespace dgs::core
