// Run results: learning curves, byte accounting, timing and staleness.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/stats.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/phase.h"

namespace dgs::core {

/// One evaluation point on the learning curve.
struct EpochPoint {
  std::size_t epoch = 0;       ///< Global epoch just completed (1-based).
  double sim_seconds = 0.0;    ///< Simulated (or wall) time at evaluation.
  double train_loss = 0.0;     ///< Mean training batch loss over the epoch.
  double test_accuracy = 0.0;  ///< Top-1 on the held-out set.
  double test_loss = 0.0;
};

/// Sum + count accumulation (the incremental running-mean form loses
/// precision and pays a divide per record); the mean is derived on read.
struct StalenessStats {
  std::uint64_t count = 0;
  std::uint64_t max = 0;
  double sum = 0.0;

  void record(std::uint64_t staleness) noexcept {
    sum += static_cast<double>(staleness);
    ++count;
    if (staleness > max) max = staleness;
  }

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  /// Fold another accumulator in (used to merge the per-server-thread
  /// stripes of the concurrent ThreadEngine).
  void merge(const StalenessStats& other) noexcept {
    sum += other.sum;
    count += other.count;
    if (other.max > max) max = other.max;
  }
};

struct RunResult {
  std::vector<EpochPoint> curve;
  /// Final global model (flattened, layer order) — checkpointable via
  /// core/checkpoint.h.
  std::vector<float> final_model;
  double final_test_accuracy = 0.0;
  double final_train_loss = 0.0;
  double sim_seconds = 0.0;          ///< Simulated completion time (DES).
  double wall_seconds = 0.0;         ///< Real time the run took to execute.
  std::uint64_t server_steps = 0;    ///< Total updates applied at the server.
  std::uint64_t samples_processed = 0;
  comm::ByteCounter bytes;
  StalenessStats staleness;
  std::size_t server_state_bytes = 0;
  std::size_t worker_state_bytes = 0;  ///< Max optimizer state over workers.
  /// Effective intra-op thread budget each worker's kernels ran with
  /// (config value clamped against oversubscription; see
  /// core::effective_threads_per_worker). Bitwise-invariant: changes
  /// wall-clock only, never the trained model.
  std::size_t threads_per_worker = 1;
  double mean_upward_density = 0.0;    ///< Mean nnz/dense of pushed updates.
  double mean_downward_density = 0.0;  ///< Mean nnz/dense of model-diff replies.

  /// Fault-injection scalars (see comm/fault.h and DESIGN.md §11), lifted
  /// from the metrics snapshot. All zero on fault-free runs.
  std::uint64_t faults_injected = 0;   ///< Messages dropped/dup'd/delayed/...
  std::uint64_t leases_reclaimed = 0;  ///< v_k resets from expired leases.
  std::uint64_t worker_rejoins = 0;    ///< Crash-recovery re-registrations.

  /// Distribution summaries (count/mean/p50/p95/max) alongside the scalar
  /// means above, filled from the run's metrics registry (see obs/metrics.h
  /// and DESIGN.md §10). Zero when the engine recorded no samples (e.g. the
  /// SSGD engine has no per-push staleness).
  obs::HistogramSummary staleness_hist;
  obs::HistogramSummary downward_density_hist;
  obs::HistogramSummary reply_bytes_hist;
  /// Downward codec accounting (dual-way pipeline, DESIGN.md §14): payload
  /// bytes per sent element (8 = plain COO, ~1 = SBC), reply encode time,
  /// and the upward push payload sizes.
  obs::HistogramSummary reply_bytes_per_element_hist;
  obs::HistogramSummary reply_encode_us_hist;
  obs::HistogramSummary push_bytes_hist;
  /// Upward codec cost: server-side decode+validate time per push, the
  /// mirror of reply_encode_us_hist.
  obs::HistogramSummary push_decode_us_hist;
  /// Committed per-layer keep-ratios (percent) across every adaptive
  /// controller decision of the run (Method::kDGSAdaptive, core/adaptive.h);
  /// zero-count for every other method.
  obs::HistogramSummary adaptive_ratio_hist;
  /// Total reply elements (nnz) shipped downward over the run — the
  /// denominator behind mean_downward_density.
  std::uint64_t reply_elements = 0;

  /// Full snapshot of every counter/gauge/histogram the run recorded;
  /// exportable via MetricsSnapshot::write_jsonl / write_csv.
  obs::MetricsSnapshot metrics;

  /// Per-worker phase-attribution breakdown (warm steps only; see
  /// obs/phase.h). Empty-ish when the profiler was compiled out.
  obs::PhaseBreakdown phases;

  /// Versioned run record for the committed perf trajectory (see
  /// obs/ledger.h). The engine fills every field except run/bench, which
  /// the bench harness stamps before export.
  obs::RunLedger ledger;

  /// Training throughput in samples per simulated second.
  [[nodiscard]] double samples_per_second() const noexcept {
    return sim_seconds > 0.0
               ? static_cast<double>(samples_processed) / sim_seconds
               : 0.0;
  }
};

}  // namespace dgs::core
