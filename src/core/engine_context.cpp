#include "core/engine_context.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace dgs::core {

std::vector<float> initial_parameters(const nn::ModelSpec& spec,
                                      std::uint64_t seed) {
  nn::ModulePtr model = spec.build();
  util::Rng rng(seed);
  model->init(rng);
  return nn::param_gather_values(model->parameters());
}

void validate_engine_config(const char* engine_name,
                            const TrainConfig& config) {
  if (config.method == Method::kMSGD && config.num_workers != 1)
    throw std::invalid_argument("MSGD is the single-node baseline (workers=1)");
  if (config.num_workers == 0)
    throw std::invalid_argument(std::string(engine_name) +
                                ": num_workers == 0");
  if (config.threads_per_worker == 0)
    throw std::invalid_argument(std::string(engine_name) +
                                ": threads_per_worker == 0 (use 1 for serial)");
}

std::size_t effective_threads_per_worker(const TrainConfig& config) noexcept {
  const std::size_t hw = std::thread::hardware_concurrency();
  // Unknown hardware concurrency (0) -> trust the caller's request.
  if (hw == 0) return config.threads_per_worker == 0
                          ? 1
                          : config.threads_per_worker;
  std::size_t fair = hw / (config.num_workers == 0 ? 1 : config.num_workers);
  if (fair == 0) fair = 1;
  return std::clamp<std::size_t>(config.threads_per_worker, 1, fair);
}

EngineContext::EngineContext(const char* engine_name,
                             const nn::ModelSpec& spec,
                             std::shared_ptr<const data::Dataset> train,
                             std::shared_ptr<const data::Dataset> test,
                             const TrainConfig& config)
    : spec_(spec),
      config_(config),
      train_(std::move(train)),
      test_(std::move(test)),
      theta0_(config.warm_start.empty()
                  ? initial_parameters(spec, config.seed)
                  : config.warm_start),
      evaluator_(spec, test_, config.eval_batch),
      tallies_(config.num_workers),
      train_size_(train_->size()),
      sample_budget_(static_cast<std::uint64_t>(config.epochs) *
                     train_->size()) {
  validate_engine_config(engine_name, config_);

  {
    nn::ModulePtr probe = spec.build();
    layer_sizes_ = nn::param_layer_sizes(probe->parameters());
  }

  workers_.reserve(config_.num_workers);
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    workers_.push_back(
        std::make_unique<Worker>(k, spec, train_, config_, theta0_));

  // Compute-time jitter streams, one fork per worker (deterministic).
  util::Rng root(config_.seed ^ 0xD15C0DE5ULL);
  jitter_rng_.reserve(config_.num_workers);
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    jitter_rng_.push_back(root.fork(k));

#if DGS_TRACE_COMPILED
  // Runtime tracing opt-in: the tracer is process-wide (see obs/trace.h),
  // so a traced run enables it here and the bench exports after run().
  if (config_.trace) obs::Tracer::instance().enable();
#endif
}

ParameterServer EngineContext::make_server() {
  ServerOptions options;
  options.num_workers = config_.num_workers;
  options.num_shards = config_.server_shards;
  options.secondary_compression = config_.compression.secondary;
  options.secondary_ratio_percent = config_.compression.secondary_ratio_percent;
  options.min_sparsify_size = config_.compression.min_sparsify_size;
  options.down_compress = config_.compression.down_compress;
  options.lease_timeout_s = config_.fault.lease_timeout_s;
  options.metrics = &metrics_;
  return ParameterServer(layer_sizes_, theta0_, options);
}

Worker& EngineContext::revive_worker(std::size_t k,
                                     const std::vector<float>& theta_flat) {
  workers_.at(k) =
      std::make_unique<Worker>(k, spec_, train_, config_, theta_flat);
  return *workers_[k];
}

double EngineContext::compute_seconds(std::size_t k) {
  const double jitter =
      config_.compute.jitter_frac * (2.0 * jitter_rng_.at(k).uniform() - 1.0);
  return config_.compute.base_seconds * config_.compute.speed_of(k) *
         (1.0 + jitter);
}

double EngineContext::mean_tally_loss() const noexcept {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const WorkerTally& tally : tallies_) {
    sum += tally.loss_sum;
    count += tally.loss_count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::uint64_t EngineContext::total_tally_samples() const noexcept {
  std::uint64_t samples = 0;
  for (const WorkerTally& tally : tallies_) samples += tally.samples;
  return samples;
}

void EngineContext::EpochTracker::advance(
    RunResult& result, std::uint64_t samples, double time,
    const std::function<std::vector<float>()>& model) {
  const TrainConfig& config = context_.config_;
  while (samples >= static_cast<std::uint64_t>(context_.train_size_) *
                        (completed_ + 1)) {
    ++completed_;
    last_epoch_loss_ =
        loss_count_ > 0 ? loss_sum_ / static_cast<double>(loss_count_) : 0.0;
    loss_sum_ = 0.0;
    loss_count_ = 0;
    const bool want_eval =
        config.record_curve && config.eval_every_epochs > 0 &&
        (completed_ % config.eval_every_epochs == 0 ||
         (eval_final_epoch_ && completed_ == config.epochs));
    if (want_eval) {
      const EvalResult eval = context_.evaluator_.evaluate(model());
      result.curve.push_back(EpochPoint{completed_, time, last_epoch_loss_,
                                        eval.accuracy, eval.loss});
    }
  }
}

void EngineContext::finalize(RunResult& result, EpochTracker& epochs,
                             std::vector<float> final_model,
                             double sim_seconds, double terminal_loss,
                             bool always_append) {
  const EvalResult final_eval = evaluator_.evaluate(final_model);
  if (always_append || result.curve.empty() ||
      result.curve.back().epoch != epochs.completed()) {
    // Guarantee a terminal point even when curve recording is off or the
    // sample count did not land exactly on an epoch boundary.
    result.curve.push_back(EpochPoint{epochs.completed(), sim_seconds,
                                      terminal_loss, final_eval.accuracy,
                                      final_eval.loss});
  }
  result.final_model = std::move(final_model);
  result.final_test_accuracy = final_eval.accuracy;
  result.final_train_loss = result.curve.back().train_loss;
  result.sim_seconds = sim_seconds;
  for (const auto& worker : workers_)
    result.worker_state_bytes =
        std::max(result.worker_state_bytes, worker->optimizer_state_bytes());

  // Observability tail: snapshot this run's registry into the result and
  // lift the headline distributions into fixed summary slots (see
  // core/metrics.h). Engines that never touched an instrument (e.g. SSGD
  // has no per-push staleness) just get zero-count summaries.
  result.metrics = metrics_.snapshot();
  result.faults_injected = result.metrics.counter_value("fault.injected");
  result.leases_reclaimed =
      result.metrics.counter_value("server.leases_reclaimed");
  result.worker_rejoins = result.metrics.counter_value("server.rejoins");
  result.staleness_hist = result.metrics.summary_of("server.push.staleness");
  result.downward_density_hist =
      result.metrics.summary_of("server.reply.density");
  result.reply_bytes_hist = result.metrics.summary_of("server.reply.bytes");
  result.reply_bytes_per_element_hist =
      result.metrics.summary_of("server.reply.bytes_per_element");
  result.reply_encode_us_hist =
      result.metrics.summary_of("server.reply.encode_us");
  result.push_bytes_hist = result.metrics.summary_of("server.push.bytes");

  result.wall_seconds = wall_.seconds();
}

}  // namespace dgs::core
