#include "core/engine_context.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "core/adaptive.h"
#include "core/method.h"
#include "obs/trace.h"
#include "util/simd.h"

namespace dgs::core {

std::vector<float> initial_parameters(const nn::ModelSpec& spec,
                                      std::uint64_t seed) {
  nn::ModulePtr model = spec.build();
  util::Rng rng(seed);
  model->init(rng);
  return nn::param_gather_values(model->parameters());
}

void validate_engine_config(const char* engine_name,
                            const TrainConfig& config) {
  if (config.method == Method::kMSGD && config.num_workers != 1)
    throw std::invalid_argument("MSGD is the single-node baseline (workers=1)");
  if (config.num_workers == 0)
    throw std::invalid_argument(std::string(engine_name) +
                                ": num_workers == 0");
  if (config.threads_per_worker == 0)
    throw std::invalid_argument(std::string(engine_name) +
                                ": threads_per_worker == 0 (use 1 for serial)");
}

std::size_t effective_threads_per_worker(const TrainConfig& config) noexcept {
  const std::size_t hw = std::thread::hardware_concurrency();
  // Unknown hardware concurrency (0) -> trust the caller's request.
  if (hw == 0) return config.threads_per_worker == 0
                          ? 1
                          : config.threads_per_worker;
  std::size_t fair = hw / (config.num_workers == 0 ? 1 : config.num_workers);
  if (fair == 0) fair = 1;
  return std::clamp<std::size_t>(config.threads_per_worker, 1, fair);
}

EngineContext::EngineContext(const char* engine_name,
                             const nn::ModelSpec& spec,
                             std::shared_ptr<const data::Dataset> train,
                             std::shared_ptr<const data::Dataset> test,
                             const TrainConfig& config)
    : engine_name_(engine_name),
      spec_(spec),
      config_(config),
      train_(std::move(train)),
      test_(std::move(test)),
      phases_(config.num_workers),
      theta0_(config.warm_start.empty()
                  ? initial_parameters(spec, config.seed)
                  : config.warm_start),
      evaluator_(spec, test_, config.eval_batch),
      tallies_(config.num_workers),
      train_size_(train_->size()),
      sample_budget_(static_cast<std::uint64_t>(config.epochs) *
                     train_->size()) {
  validate_engine_config(engine_name, config_);

  {
    nn::ModulePtr probe = spec.build();
    layer_sizes_ = nn::param_layer_sizes(probe->parameters());
  }

  workers_.reserve(config_.num_workers);
  for (std::size_t k = 0; k < config_.num_workers; ++k) {
    workers_.push_back(
        std::make_unique<Worker>(k, spec, train_, config_, theta0_));
    workers_.back()->bind_profiler(&phases_);
  }

  // Compute-time jitter streams, one fork per worker (deterministic).
  util::Rng root(config_.seed ^ 0xD15C0DE5ULL);
  jitter_rng_.reserve(config_.num_workers);
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    jitter_rng_.push_back(root.fork(k));

#if DGS_TRACE_COMPILED
  // Runtime tracing opt-in: the tracer is process-wide (see obs/trace.h),
  // so a traced run enables it here and the bench exports after run().
  if (config_.trace) obs::Tracer::instance().enable();
#endif
}

ParameterServer EngineContext::make_server() {
  ServerOptions options;
  options.num_workers = config_.num_workers;
  options.num_shards = config_.server_shards;
  options.secondary_compression = config_.compression.secondary;
  options.secondary_ratio_percent = config_.compression.secondary_ratio_percent;
  options.min_sparsify_size = config_.compression.min_sparsify_size;
  options.down_compress = config_.compression.down_compress;
  options.lease_timeout_s = config_.fault.lease_timeout_s;
  options.metrics = &metrics_;
  options.phases = &phases_;
  return ParameterServer(layer_sizes_, theta0_, options);
}

Worker& EngineContext::revive_worker(std::size_t k,
                                     const std::vector<float>& theta_flat) {
  workers_.at(k) =
      std::make_unique<Worker>(k, spec_, train_, config_, theta_flat);
  workers_[k]->bind_profiler(&phases_);
  return *workers_[k];
}

double EngineContext::compute_seconds(std::size_t k) {
  const double jitter =
      config_.compute.jitter_frac * (2.0 * jitter_rng_.at(k).uniform() - 1.0);
  return config_.compute.base_seconds * config_.compute.speed_of(k) *
         (1.0 + jitter);
}

double EngineContext::mean_tally_loss() const noexcept {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const WorkerTally& tally : tallies_) {
    sum += tally.loss_sum;
    count += tally.loss_count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::uint64_t EngineContext::total_tally_samples() const noexcept {
  std::uint64_t samples = 0;
  for (const WorkerTally& tally : tallies_) samples += tally.samples;
  return samples;
}

void EngineContext::EpochTracker::advance(
    RunResult& result, std::uint64_t samples, double time,
    const std::function<std::vector<float>()>& model) {
  const TrainConfig& config = context_.config_;
  while (samples >= static_cast<std::uint64_t>(context_.train_size_) *
                        (completed_ + 1)) {
    ++completed_;
    last_epoch_loss_ =
        loss_count_ > 0 ? loss_sum_ / static_cast<double>(loss_count_) : 0.0;
    loss_sum_ = 0.0;
    loss_count_ = 0;
    const bool want_eval =
        config.record_curve && config.eval_every_epochs > 0 &&
        (completed_ % config.eval_every_epochs == 0 ||
         (eval_final_epoch_ && completed_ == config.epochs));
    if (want_eval) {
      const EvalResult eval = context_.evaluator_.evaluate(model());
      result.curve.push_back(EpochPoint{completed_, time, last_epoch_loss_,
                                        eval.accuracy, eval.loss});
    }
  }
}

void EngineContext::finalize(RunResult& result, EpochTracker& epochs,
                             std::vector<float> final_model,
                             double sim_seconds, double terminal_loss,
                             bool always_append) {
  const EvalResult final_eval = evaluator_.evaluate(final_model);
  if (always_append || result.curve.empty() ||
      result.curve.back().epoch != epochs.completed()) {
    // Guarantee a terminal point even when curve recording is off or the
    // sample count did not land exactly on an epoch boundary.
    result.curve.push_back(EpochPoint{epochs.completed(), sim_seconds,
                                      terminal_loss, final_eval.accuracy,
                                      final_eval.loss});
  }
  result.final_model = std::move(final_model);
  result.final_test_accuracy = final_eval.accuracy;
  result.final_train_loss = result.curve.back().train_loss;
  result.sim_seconds = sim_seconds;
  for (const auto& worker : workers_)
    result.worker_state_bytes =
        std::max(result.worker_state_bytes, worker->optimizer_state_bytes());

  // Adaptive-controller export (Method::kDGSAdaptive): fold every committed
  // per-layer ratio from every worker's trajectory into one histogram plus a
  // decision counter, *before* the snapshot below captures the registry.
  // Forked-process transports leave parent-side workers unstepped, so their
  // controllers report zero decisions and this records nothing.
  for (const auto& worker : workers_) {
    const SparsityController* controller = worker->sparsity_controller();
    if (controller == nullptr || controller->decisions() == 0) continue;
    metrics_.counter("worker.adaptive.decisions").add(controller->decisions());
    obs::Histogram& ratio_hist = metrics_.histogram(
        "worker.adaptive.ratio_percent", obs::linear_bounds(2.0, 2.0, 50));
    for (const auto& point : controller->trajectory())
      for (std::size_t l = 0; l < point.ratios.size(); ++l)
        if (controller->is_adaptive(l)) ratio_hist.record(point.ratios[l]);
  }

  // Observability tail: snapshot this run's registry into the result and
  // lift the headline distributions into fixed summary slots (see
  // core/metrics.h). Engines that never touched an instrument (e.g. SSGD
  // has no per-push staleness) just get zero-count summaries.
  result.metrics = metrics_.snapshot();
  result.faults_injected = result.metrics.counter_value("fault.injected");
  result.leases_reclaimed =
      result.metrics.counter_value("server.leases_reclaimed");
  result.worker_rejoins = result.metrics.counter_value("server.rejoins");
  result.staleness_hist = result.metrics.summary_of("server.push.staleness");
  result.downward_density_hist =
      result.metrics.summary_of("server.reply.density");
  result.reply_bytes_hist = result.metrics.summary_of("server.reply.bytes");
  result.reply_bytes_per_element_hist =
      result.metrics.summary_of("server.reply.bytes_per_element");
  result.reply_encode_us_hist =
      result.metrics.summary_of("server.reply.encode_us");
  result.push_bytes_hist = result.metrics.summary_of("server.push.bytes");
  result.push_decode_us_hist =
      result.metrics.summary_of("server.push.decode_us");
  result.adaptive_ratio_hist =
      result.metrics.summary_of("worker.adaptive.ratio_percent");

  result.wall_seconds = wall_.seconds();

  // Phase attribution + run ledger (DESIGN.md §15). The engine filled
  // bytes/steps/samples/densities before calling finalize, so everything the
  // ledger needs is already on `result`; bench_common stamps run/bench.
  result.phases = phases_.breakdown();
  obs::RunLedger& ledger = result.ledger;
  ledger.engine = engine_name_;
  ledger.method = method_name(config_.method);
  ledger.simd_isa = util::isa_name(util::active_isa());
  ledger.workers = config_.num_workers;
  ledger.batch_size = config_.batch_size;
  ledger.epochs_configured = config_.epochs;
  ledger.epochs_completed = epochs.completed();
  ledger.final_test_accuracy = result.final_test_accuracy;
  ledger.final_train_loss = result.final_train_loss;
  ledger.sim_seconds = result.sim_seconds;
  ledger.wall_seconds = result.wall_seconds;
  if (epochs.completed() > 0) {
    const auto completed = static_cast<double>(epochs.completed());
    ledger.epoch_sim_seconds = result.sim_seconds / completed;
    ledger.epoch_wall_seconds = result.wall_seconds / completed;
  }
  ledger.server_steps = result.server_steps;
  ledger.samples = result.samples_processed;
  ledger.bytes_up = result.bytes.upward_bytes;
  ledger.bytes_down = result.bytes.downward_bytes;
  // Upward elements shipped = mean push density * pushes * dense model size
  // (exact: the mean is sum-of-densities / pushes and every push shares the
  // same dense denominator). Downward elements come straight off the server.
  std::size_t total_numel = 0;
  for (std::size_t size : layer_sizes_) total_numel += size;
  const double up_elements = result.mean_upward_density *
                             static_cast<double>(result.bytes.upward_messages) *
                             static_cast<double>(total_numel);
  if (up_elements > 0.0)
    ledger.up_bytes_per_element =
        static_cast<double>(result.bytes.upward_bytes) / up_elements;
  if (result.reply_elements > 0)
    ledger.down_bytes_per_element =
        static_cast<double>(result.bytes.downward_bytes) /
        static_cast<double>(result.reply_elements);
  ledger.staleness.count = result.staleness_hist.count;
  ledger.staleness.mean = result.staleness_hist.mean;
  ledger.staleness.p50 = result.staleness_hist.p50;
  ledger.staleness.p95 = result.staleness_hist.p95;
  ledger.staleness.max = result.staleness_hist.max;
  ledger.faults_injected = result.faults_injected;
  ledger.leases_reclaimed = result.leases_reclaimed;
  ledger.worker_rejoins = result.worker_rejoins;

  const obs::HistogramSummary step_summary =
      obs::summarize(result.phases.step_us_hist);
  ledger.warm_steps = step_summary.count;
  ledger.step_us_mean = step_summary.mean;
  ledger.step_us_p50 = step_summary.p50;
  ledger.step_us_p95 = step_summary.p95;
  ledger.step_us_p99 = result.phases.step_us_hist.quantile(0.99);
  ledger.attributed_fraction = result.phases.attributed_fraction();
  ledger.phases.clear();
  ledger.phases.reserve(obs::kNumPhases);
  for (std::size_t i = 0; i < obs::kNumPhases; ++i) {
    obs::RunLedger::PhaseEntry entry;
    entry.name = obs::phase_name(static_cast<obs::Phase>(i));
    entry.total_us = result.phases.phases[i].total_us;
    entry.count = result.phases.phases[i].count;
    ledger.phases.push_back(std::move(entry));
  }

  // Time-to-accuracy milestones: first curve point reaching frac * final
  // accuracy, in engine time (sim seconds for the modeled engines, wall for
  // the thread engine — the same axis the curve itself uses).
  ledger.milestones.clear();
  for (double frac : {0.5, 0.8, 0.9}) {
    obs::RunLedger::Milestone milestone;
    milestone.frac = frac;
    const double target = frac * result.final_test_accuracy;
    for (const EpochPoint& point : result.curve) {
      if (point.test_accuracy >= target) {
        milestone.reached = true;
        milestone.epoch = point.epoch;
        milestone.time_s = point.sim_seconds;
        milestone.accuracy = point.test_accuracy;
        break;
      }
    }
    ledger.milestones.push_back(milestone);
  }

  // Adaptive-controller ledger block (schema v2): summary over all workers,
  // trajectory from the first worker that made decisions (worker schedules
  // only differ through their observed streams; one representative schedule
  // is what the trajectory plot wants). Stays all-defaults for non-adaptive
  // methods and for forked-process transports.
  for (const auto& worker : workers_) {
    const SparsityController* controller = worker->sparsity_controller();
    if (controller == nullptr || controller->decisions() == 0) continue;
    ledger.adaptive.decisions += controller->decisions();
    if (ledger.adaptive.trajectory.empty()) {
      ledger.adaptive.base_ratio_percent = controller->base_ratio_percent();
      ledger.adaptive.min_ratio_percent = controller->min_ratio_percent();
      ledger.adaptive.mean_ratio_percent = controller->mean_ratio_percent();
      ledger.adaptive.keep_budget = controller->keep_budget();
      for (const auto& point : controller->trajectory()) {
        obs::RunLedger::Adaptive::Point p;
        p.step = point.step;
        p.ratios = point.ratios;
        ledger.adaptive.trajectory.push_back(std::move(p));
      }
    }
  }
}

}  // namespace dgs::core
