// Shared plumbing for the three training engines (DES, real-thread,
// synchronous SSGD). Each engine is a *scheduling policy*: it decides when
// compute happens, when messages move and in what order the server sees
// them. Everything that is not scheduling — worker construction, the
// theta0 / warm-start choice, the parameter server's options, the
// evaluator, the compute-time jitter model, per-worker accumulators,
// epoch-boundary evaluation and final-metrics assembly — lives here, so a
// new engine (or a new metric) is written once instead of three times.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/evaluator.h"
#include "core/metrics.h"
#include "core/server.h"
#include "core/worker.h"
#include "data/dataset.h"
#include "nn/model.h"
#include "obs/phase.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace dgs::core {

/// Seed-derived initial parameters for a model spec (flattened).
[[nodiscard]] std::vector<float> initial_parameters(const nn::ModelSpec& spec,
                                                    std::uint64_t seed);

/// Constructor-time validation shared by the engines; throws
/// std::invalid_argument with the engine's name on bad configs.
void validate_engine_config(const char* engine_name, const TrainConfig& config);

/// Intra-op thread budget each engine actually grants its workers:
/// threads_per_worker clamped to hardware_concurrency / num_workers
/// (floored at 1) so worker- and op-level parallelism never oversubscribe.
/// Recorded in RunResult::threads_per_worker.
[[nodiscard]] std::size_t effective_threads_per_worker(
    const TrainConfig& config) noexcept;

class EngineContext {
 public:
  EngineContext(const char* engine_name, const nn::ModelSpec& spec,
                std::shared_ptr<const data::Dataset> train,
                std::shared_ptr<const data::Dataset> test,
                const TrainConfig& config);

  // ---- construction products ----------------------------------------------
  [[nodiscard]] const TrainConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<float>& theta0() const noexcept {
    return theta0_;
  }
  [[nodiscard]] const std::vector<std::size_t>& layer_sizes() const noexcept {
    return layer_sizes_;
  }
  [[nodiscard]] Worker& worker(std::size_t k) { return *workers_.at(k); }
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return workers_.size();
  }

  /// Crash recovery: replace worker k with a fresh Worker warm-started from
  /// `theta_flat` (a server kFullModel snapshot). Local optimizer state and
  /// the sampler position are lost — that is what a crash costs. Returns the
  /// revived worker. Not safe to call while the old worker is in use.
  Worker& revive_worker(std::size_t k, const std::vector<float>& theta_flat);
  [[nodiscard]] Evaluator& evaluator() noexcept { return evaluator_; }

  /// Parameter server configured from the TrainConfig (compression knobs,
  /// shard count, this context's metrics registry). Used by the async
  /// engines; the SSGD engine aggregates in-place instead.
  [[nodiscard]] ParameterServer make_server();

  /// This run's private metrics registry (see obs/metrics.h). The server,
  /// transports and engines record into it; finalize() snapshots it into
  /// RunResult::metrics and the histogram summaries.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// This run's phase-attribution profiler (see obs/phase.h). Bound to
  /// every Worker at construction (and re-bound on revive); engines pass it
  /// to their transport and server, and call record_step per completed
  /// worker step. finalize() folds its breakdown into RunResult::phases and
  /// the ledger.
  [[nodiscard]] obs::PhaseProfiler& phases() noexcept { return phases_; }

  // ---- schedule / budget ---------------------------------------------------
  [[nodiscard]] std::size_t train_size() const noexcept { return train_size_; }
  /// Global sample budget: the job collectively consumes epochs * |train|
  /// samples; faster workers contribute more iterations.
  [[nodiscard]] std::uint64_t sample_budget() const noexcept {
    return sample_budget_;
  }
  /// Modeled per-iteration compute time for worker k: base seconds scaled
  /// by the worker's speed with multiplicative uniform jitter (used by the
  /// modeled-time engines; real threads take however long they take).
  [[nodiscard]] double compute_seconds(std::size_t k);

  /// Wall-clock seconds since this context was constructed.
  [[nodiscard]] double wall_seconds() const noexcept { return wall_.seconds(); }

  // ---- per-worker accumulators ---------------------------------------------
  /// Each tally is written by exactly one worker (thread); padded so
  /// neighboring workers don't false-share a cache line.
  struct alignas(64) WorkerTally {
    double loss_sum = 0.0;
    std::uint64_t loss_count = 0;
    std::uint64_t samples = 0;
    double update_density_sum = 0.0;  ///< Sum of per-push nnz/dense ratios.
  };
  [[nodiscard]] WorkerTally& tally(std::size_t k) { return tallies_.at(k); }
  [[nodiscard]] double mean_tally_loss() const noexcept;
  [[nodiscard]] std::uint64_t total_tally_samples() const noexcept;

  // ---- epoch-boundary bookkeeping ------------------------------------------
  /// Tracks completed global epochs and runs the evaluation cadence: every
  /// engine advances it with the server-side sample count and a callback
  /// producing the current global model. Not thread-safe on its own; the
  /// concurrent engine serializes calls with its own mutex.
  class EpochTracker {
   public:
    EpochTracker(EngineContext& context, bool eval_final_epoch)
        : context_(context), eval_final_epoch_(eval_final_epoch) {}

    /// Accumulate one iteration's training loss into the current epoch.
    void add_loss(double loss) noexcept {
      loss_sum_ += loss;
      ++loss_count_;
    }

    /// Advance past every epoch boundary `samples` has crossed; at the
    /// configured cadence, evaluates model() and appends a curve point at
    /// `time`.
    void advance(RunResult& result, std::uint64_t samples, double time,
                 const std::function<std::vector<float>()>& model);

    [[nodiscard]] std::size_t completed() const noexcept { return completed_; }
    /// Mean training loss over the epoch currently in progress (0 when no
    /// iterations have been recorded since the last boundary).
    [[nodiscard]] double epoch_mean_loss() const noexcept {
      return loss_count_ > 0
                 ? loss_sum_ / static_cast<double>(loss_count_)
                 : last_epoch_loss_;
    }

   private:
    EngineContext& context_;
    bool eval_final_epoch_;
    std::size_t completed_ = 0;
    double loss_sum_ = 0.0;
    std::uint64_t loss_count_ = 0;
    double last_epoch_loss_ = 0.0;
  };

  [[nodiscard]] EpochTracker make_epoch_tracker(bool eval_final_epoch) {
    return EpochTracker(*this, eval_final_epoch);
  }

  // ---- final metrics -------------------------------------------------------
  /// Common tail of every run: evaluate the final model, guarantee a
  /// terminal curve point (always when `always_append`, otherwise only if
  /// the curve doesn't already end at the completed epoch), and fill the
  /// fields every engine reports the same way (final model / accuracy /
  /// train loss, sim and wall seconds, max worker optimizer state).
  void finalize(RunResult& result, EpochTracker& epochs,
                std::vector<float> final_model, double sim_seconds,
                double terminal_loss, bool always_append);

 private:
  const char* engine_name_;  ///< Static engine name (for the ledger).
  nn::ModelSpec spec_;       ///< Kept for revive_worker.
  TrainConfig config_;
  std::shared_ptr<const data::Dataset> train_;
  std::shared_ptr<const data::Dataset> test_;
  obs::MetricsRegistry metrics_;
  obs::PhaseProfiler phases_;
  util::Stopwatch wall_;
  std::vector<float> theta0_;
  std::vector<std::size_t> layer_sizes_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Evaluator evaluator_;
  std::vector<WorkerTally> tallies_;
  std::vector<util::Rng> jitter_rng_;
  std::size_t train_size_ = 0;
  std::uint64_t sample_budget_ = 0;
};

}  // namespace dgs::core
