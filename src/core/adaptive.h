// Runtime per-layer sparsity control (DESIGN.md §17).
//
// The paper fixes the keep-ratio R globally; its own Table 2 shows accuracy
// degrading as R gets aggressive. The literature recovers that accuracy at
// the same byte budget by spending the budget where the gradient mass is:
// layer-wise adaptive sparsification with a convergence-safe floor (Shi et
// al., "Layer-wise Adaptive Gradient Sparsification") and staleness-aware
// conservatism (Deng et al., arXiv:2112.04088). `SparsityController`
// implements both on top of the signals the obs layer already measures —
// per-layer update mass, downward reply density, and push staleness — and
// `AdaptiveSAMomentum` (Method::kDGSAdaptive) feeds its per-layer keep
// counts into the PR-4 SparsifyWorkspace select.
//
// Determinism contract: the controller is a pure function of its observed
// state. observe_push/observe_reply streams are produced by the worker's own
// deterministic step/reply sequence, decisions happen at a fixed push
// cadence, and every arithmetic path is a fixed-order double computation —
// no RNG, no wall clock. Engines therefore keep exactly the reproducibility
// they had: the DES engine is bit-identical run-to-run, and the ratio
// schedule it produces is part of that guarantee (pinned in
// tests/test_adaptive.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/layered.h"
#include "core/optimizer.h"

namespace dgs::core {

/// Picks an integer keep count k_l per layer every `interval_steps` pushes,
/// subject to the invariants (property-tested):
///   * floor:  k_l >= keep_count(n_l, min_ratio_percent) for every adaptive
///     layer (layers below min_sparsify_size stay dense and are exempt);
///   * budget: sum of k_l over adaptive layers <= keep_budget(), the total
///     fixed-R DGS would send at base ratio_percent — adaptivity never costs
///     wire bytes;
///   * hysteresis: a layer's k only moves when the candidate differs from
///     the committed value by more than `hysteresis` relative, so the
///     schedule doesn't thrash between near-equal allocations.
class SparsityController {
 public:
  /// One committed decision: the push count it fired at and the per-layer
  /// keep-ratios (percent; exempt layers report 100). Trajectories are
  /// decimated deterministically to <= kMaxTrajectoryPoints by doubling the
  /// recording stride, so long runs stay bounded without losing shape.
  struct TrajectoryPoint {
    std::uint64_t step = 0;
    std::vector<double> ratios;
  };
  static constexpr std::size_t kMaxTrajectoryPoints = 64;

  SparsityController(const std::vector<std::size_t>& layer_sizes,
                     const CompressionConfig& compression);

  /// Per-push observation of this worker's own update stream: `layer_mass`
  /// is the L1 mass of the post-momentum velocity per layer (the quantity
  /// top-k actually selects over). Runs the decision cadence: every
  /// `interval_steps` calls the allocation is re-decided.
  void observe_push(std::span<const double> layer_mass);

  /// Per-reply observation: `staleness` is how many server steps the reply
  /// advanced past prev(k) (the worker-side mirror of the
  /// server.push.staleness histogram), `reply_density` the decoded reply's
  /// nnz over the dense model size (mirror of server.reply.density). High
  /// values of either damp adaptivity toward the uniform fixed-R baseline.
  void observe_reply(double staleness, double reply_density);

  /// Committed keep count for one layer (n_l for exempt layers).
  [[nodiscard]] std::size_t keep(std::size_t layer) const noexcept {
    return keep_[layer];
  }
  /// Committed keep-ratio for one layer, percent (100 for exempt layers).
  [[nodiscard]] double ratio_percent(std::size_t layer) const noexcept;
  /// True when the layer participates in adaptive allocation.
  [[nodiscard]] bool is_adaptive(std::size_t layer) const noexcept {
    return adaptive_[layer];
  }

  /// Global per-push keep budget over adaptive layers: what fixed-R DGS
  /// sends at the base ratio.
  [[nodiscard]] std::uint64_t keep_budget() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }
  [[nodiscard]] std::uint64_t pushes_observed() const noexcept {
    return pushes_;
  }
  [[nodiscard]] double base_ratio_percent() const noexcept {
    return base_ratio_;
  }
  [[nodiscard]] double min_ratio_percent() const noexcept {
    return min_ratio_;
  }
  /// Budget-weighted mean committed ratio over adaptive layers, percent.
  [[nodiscard]] double mean_ratio_percent() const noexcept;
  [[nodiscard]] const std::vector<TrajectoryPoint>& trajectory()
      const noexcept {
    return trajectory_;
  }
  [[nodiscard]] std::size_t num_layers() const noexcept {
    return sizes_.size();
  }

 private:
  void decide();
  /// Largest-remainder waterfill of `budget` keeps over the layers in
  /// `layers` proportional to weights_, clamped per layer to
  /// [floor_[l], cap_[l]]. Writes candidate_[l]; deterministic.
  void waterfill(const std::vector<std::size_t>& layers, std::uint64_t budget);

  std::vector<std::size_t> sizes_;
  std::vector<bool> adaptive_;          ///< n_l >= min_sparsify_size.
  std::vector<std::size_t> adaptive_layers_;  ///< Indices, ascending.
  std::vector<std::size_t> floor_;      ///< keep_count(n_l, min_ratio).
  std::vector<std::size_t> cap_;        ///< keep_count(n_l, max_ratio).
  std::vector<std::size_t> keep_;       ///< Committed allocation.
  std::vector<std::size_t> candidate_;  ///< decide() scratch.
  std::vector<double> weights_;         ///< decide() scratch.
  std::vector<double> mass_ema_;        ///< Per-layer velocity-mass EMA.

  double base_ratio_ = 0.0;
  double min_ratio_ = 0.0;
  double max_ratio_ = 0.0;
  std::size_t interval_ = 1;
  double hysteresis_ = 0.0;
  double alpha_ = 0.25;            ///< EMA weight of the newest observation.
  double staleness_scale_ = 8.0;   ///< Staleness EMA that halves adaptivity.
  double density_weight_ = 0.5;    ///< Reply-density damping strength.

  std::uint64_t budget_ = 0;       ///< Sum of keep_count(n_l, base) adaptive.
  std::size_t adaptive_numel_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t decisions_ = 0;
  double staleness_ema_ = 0.0;
  double density_ema_ = 0.0;
  bool observed_mass_ = false;     ///< Any observe_push seen since start.
  bool replies_seen_ = false;      ///< Any observe_reply seen since start.

  std::vector<TrajectoryPoint> trajectory_;
  std::uint64_t trajectory_stride_ = 1;
};

/// DGS with SAMomentum and controller-driven per-layer keep counts
/// (Method::kDGSAdaptive). Identical to SAMomentum — single velocity
/// buffer, sent entries stay resident, unsent entries rescale by 1/m —
/// except that the top-k threshold per layer comes from the controller's
/// allocation instead of the uniform ratio. During DGC-style warmup epochs
/// the uniform warmup schedule wins (convergence-safe), and the controller
/// only observes.
class AdaptiveSAMomentum final : public WorkerAlgorithm {
 public:
  AdaptiveSAMomentum(const std::vector<std::size_t>& layer_sizes,
                     CompressionConfig compression, float momentum);
  sparse::SparseUpdate step(const GradViews& grads, float lr,
                            std::size_t epoch) override;
  [[nodiscard]] std::size_t state_bytes() const noexcept override;
  void observe_reply(const ReplyObservation& obs) noexcept override;
  [[nodiscard]] const SparsityController* sparsity_controller()
      const noexcept override {
    return &controller_;
  }

  [[nodiscard]] const LayeredVec& velocity() const noexcept { return u_; }

 private:
  CompressionConfig compression_;
  float m_;
  LayeredVec u_;
  SparsityController controller_;
  std::vector<double> mass_;  ///< Per-step |u| mass scratch, one per layer.
};

}  // namespace dgs::core
