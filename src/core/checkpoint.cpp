#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace dgs::core {

namespace {

constexpr std::uint32_t kMagic = 0x44475343;  // 'DGSC'
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_raw(std::FILE* f, const void* p, std::size_t n, const std::string& path) {
  if (std::fwrite(p, 1, n, f) != n)
    throw std::runtime_error("checkpoint: write failed: " + path);
}

void read_raw(std::FILE* f, void* p, std::size_t n, const std::string& path) {
  if (std::fread(p, 1, n, f) != n)
    throw std::runtime_error("checkpoint: truncated file: " + path);
}

}  // namespace

std::vector<float> Checkpoint::flat() const {
  std::vector<float> out;
  for (const auto& layer : layers) out.insert(out.end(), layer.begin(), layer.end());
  return out;
}

Checkpoint Checkpoint::from_flat(const std::vector<float>& theta,
                                 const std::vector<std::size_t>& sizes,
                                 std::uint64_t step, double accuracy) {
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  if (theta.size() != total)
    throw std::invalid_argument("checkpoint: flat size mismatch");
  Checkpoint checkpoint;
  checkpoint.step = step;
  checkpoint.accuracy = accuracy;
  std::size_t at = 0;
  for (std::size_t s : sizes) {
    checkpoint.layers.emplace_back(theta.begin() + static_cast<std::ptrdiff_t>(at),
                                   theta.begin() + static_cast<std::ptrdiff_t>(at + s));
    at += s;
  }
  return checkpoint;
}

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("checkpoint: cannot open for write: " + path);
  write_raw(f.get(), &kMagic, 4, path);
  write_raw(f.get(), &kVersion, 4, path);
  write_raw(f.get(), &checkpoint.step, 8, path);
  write_raw(f.get(), &checkpoint.accuracy, 8, path);
  const auto num_layers = static_cast<std::uint32_t>(checkpoint.layers.size());
  write_raw(f.get(), &num_layers, 4, path);
  for (const auto& layer : checkpoint.layers) {
    const auto size = static_cast<std::uint32_t>(layer.size());
    write_raw(f.get(), &size, 4, path);
    write_raw(f.get(), layer.data(), layer.size() * sizeof(float), path);
  }
  if (std::fflush(f.get()) != 0)
    throw std::runtime_error("checkpoint: flush failed: " + path);
}

Checkpoint load_checkpoint(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("checkpoint: cannot open: " + path);
  std::uint32_t magic = 0, version = 0;
  read_raw(f.get(), &magic, 4, path);
  if (magic != kMagic) throw std::runtime_error("checkpoint: bad magic: " + path);
  read_raw(f.get(), &version, 4, path);
  if (version != kVersion)
    throw std::runtime_error("checkpoint: unsupported version: " + path);
  Checkpoint checkpoint;
  read_raw(f.get(), &checkpoint.step, 8, path);
  read_raw(f.get(), &checkpoint.accuracy, 8, path);
  std::uint32_t num_layers = 0;
  read_raw(f.get(), &num_layers, 4, path);
  checkpoint.layers.resize(num_layers);
  for (auto& layer : checkpoint.layers) {
    std::uint32_t size = 0;
    read_raw(f.get(), &size, 4, path);
    layer.resize(size);
    read_raw(f.get(), layer.data(), size * sizeof(float), path);
  }
  // Reject trailing garbage.
  char extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1)
    throw std::runtime_error("checkpoint: trailing bytes: " + path);
  return checkpoint;
}

}  // namespace dgs::core
