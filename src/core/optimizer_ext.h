// Extension worker algorithms from the paper's future-work section (§6):
// combining asynchronous model-difference training with other compression
// families — TernGrad quantization, random coordinate dropping, and the
// DGS + ternary hybrid.
//
// Each algorithm still pushes a descent step g (the server applies
// M_{t+1} = M_t - g), but the upward codec is one of the bit-packed ternary
// stages from sparse/compressor.h. To keep the server math identical to
// what crossed the wire, step() returns the *dequantized* values — exactly
// ±scale per layer — which is what lets the stateless stage re-pack them
// losslessly at encode time.
#pragma once

#include "core/optimizer.h"
#include "sparse/quantize.h"
#include "util/rng.h"

namespace dgs::core {

/// TernGrad-async: g = dequantize(ternary_quantize(lr * grad)).
/// Wire cost: ~2 bits/element + one f32 scale per layer (vs 32 bits dense).
class TernGradAsync final : public WorkerAlgorithm {
 public:
  TernGradAsync(const std::vector<std::size_t>& layer_sizes,
                std::uint64_t rng_seed);

  sparse::SparseUpdate step(const GradViews& grads, float lr,
                            std::size_t epoch) override;
  [[nodiscard]] std::size_t state_bytes() const noexcept override { return 0; }

 private:
  std::vector<std::size_t> sizes_;
  util::Rng rng_;
};

/// Random coordinate dropping (Wangni et al. 2018): keep each coordinate of
/// lr*grad with probability p = R/100 and rescale kept values by 1/p
/// (unbiased; no residual state).
class RandomDropping final : public WorkerAlgorithm {
 public:
  RandomDropping(const std::vector<std::size_t>& layer_sizes,
                 CompressionConfig compression, std::uint64_t rng_seed);

  sparse::SparseUpdate step(const GradViews& grads, float lr,
                            std::size_t epoch) override;
  [[nodiscard]] std::size_t state_bytes() const noexcept override { return 0; }

 private:
  std::vector<std::size_t> sizes_;
  CompressionConfig compression_;
  util::Rng rng_;
};

/// DGS + TernGrad hybrid: the SAMomentum top-k update's *values* are
/// ternary-quantized, shipping at ~4.1 bytes/entry instead of COO's 8.
/// The quantization error on sent entries is fed back into the velocity so
/// no update mass is lost (error feedback).
class DgsTernary final : public WorkerAlgorithm {
 public:
  DgsTernary(const std::vector<std::size_t>& layer_sizes,
             CompressionConfig compression, float momentum,
             std::uint64_t rng_seed);

  sparse::SparseUpdate step(const GradViews& grads, float lr,
                            std::size_t epoch) override;
  [[nodiscard]] std::size_t state_bytes() const noexcept override;

  [[nodiscard]] const LayeredVec& velocity() const noexcept { return u_; }

 private:
  CompressionConfig compression_;
  float m_;
  LayeredVec u_;
  util::Rng rng_;
  sparse::LayerChunk candidates_;  ///< Reused pre-quantization scratch.
};

}  // namespace dgs::core
