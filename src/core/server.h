// The DGS parameter server: Model Difference Tracking (§4.2.1, Eq. 1-6) and
// the server side of dual-way sparsification (Algorithm 2).
//
// The server does not store the global model theta directly; it stores the
// accumulation of updates M_t (theta_t = theta_0 + M_t, Eq. 2) plus one
// vector v_k per worker recording what that worker has already been sent.
// On every push it returns the model difference G_k = M_{t+1} - v_k,
// optionally secondarily compressed (Eq. 6a/6b).
//
// Note on paper errata (see DESIGN.md §7): Algorithm 2 line 14 prints
// "v <- v - G" but Eq. 3/6b require "v <- v + G"; we implement "+", which is
// what makes the Eq. 5 identity (worker model == server model) hold.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/message.h"
#include "core/config.h"
#include "core/layered.h"
#include "sparse/codec.h"

namespace dgs::core {

struct ServerOptions {
  std::size_t num_workers = 1;
  bool secondary_compression = false;
  double secondary_ratio_percent = 1.0;
  /// Layers smaller than this are exempt from secondary compression,
  /// mirroring CompressionConfig::min_sparsify_size on the worker side.
  std::size_t min_sparsify_size = 0;
};

class ParameterServer {
 public:
  ParameterServer(std::vector<std::size_t> layer_sizes,
                  std::vector<float> theta0_flat, ServerOptions options);

  /// Process one gradient push (Algorithm 2 body): applies the update to M,
  /// computes and returns the encoded model-difference reply for the pushing
  /// worker, and advances the server timestamp.
  [[nodiscard]] comm::Message handle_push(const comm::Message& push);

  /// Server timestamp t (number of updates applied).
  [[nodiscard]] std::uint64_t step() const noexcept { return step_; }

  /// theta_t = theta_0 + M_t, flattened (for evaluation snapshots).
  [[nodiscard]] std::vector<float> global_model_flat() const;

  /// Accumulated update M_t (per layer), for tests.
  [[nodiscard]] const LayeredVec& accumulated_updates() const noexcept {
    return m_;
  }
  /// v_k for worker k, for tests.
  [[nodiscard]] const LayeredVec& sent_accumulator(std::size_t worker) const {
    return v_.at(worker);
  }

  /// Resident state in bytes: M plus N per-worker trackers (the §5.6.2
  /// "NumOfWorkers x ParameterMemOfModel" cost).
  [[nodiscard]] std::size_t state_bytes() const noexcept;

  /// Staleness of the last processed push: t_now - prev(k) at arrival.
  [[nodiscard]] std::uint64_t last_staleness() const noexcept {
    return last_staleness_;
  }

  /// Cumulative nnz and dense element counts over all replies built, for
  /// downward-density accounting.
  [[nodiscard]] std::uint64_t total_reply_nnz() const noexcept {
    return total_reply_nnz_;
  }
  [[nodiscard]] std::uint64_t total_reply_dense() const noexcept {
    return total_reply_dense_;
  }

  [[nodiscard]] const std::vector<std::size_t>& layer_sizes() const noexcept {
    return layer_sizes_;
  }

 private:
  void apply_update_to_m(const sparse::Bytes& payload);
  [[nodiscard]] comm::Message build_reply(std::size_t worker);

  std::vector<std::size_t> layer_sizes_;
  std::vector<float> theta0_;
  LayeredVec m_;                     ///< M_t, accumulation of updates.
  std::vector<LayeredVec> v_;        ///< v_k per worker.
  std::vector<std::uint64_t> prev_;  ///< prev(k): last server step sent to k.
  ServerOptions options_;
  std::uint64_t step_ = 0;
  std::uint64_t last_staleness_ = 0;
  std::uint64_t total_reply_nnz_ = 0;
  std::uint64_t total_reply_dense_ = 0;
};

}  // namespace dgs::core
