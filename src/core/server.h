// The DGS parameter server: Model Difference Tracking (§4.2.1, Eq. 1-6) and
// the server side of dual-way sparsification (Algorithm 2).
//
// The server does not store the global model theta directly; it stores the
// accumulation of updates M_t (theta_t = theta_0 + M_t, Eq. 2) plus one
// vector v_k per worker recording what that worker has already been sent.
// On every push it returns the model difference G_k = M_{t+1} - v_k,
// optionally secondarily compressed (Eq. 6a/6b).
//
// Concurrency: the server is a thin façade over ServerShard objects (see
// server_shard.h), each owning a contiguous partition of layers of M_t, the
// per-worker v_k slices for those layers, and its own mutex. handle_push
// decodes the payload once, dispatches per-layer segments to shards, and
// assembles the reply, so pushes from *different* workers proceed
// concurrently except where they touch the same shard. The server
// timestamp t, prev(k) and the reply-density counters are atomics. The
// protocol invariant that makes this safe is one in-flight push per worker
// (workers block for their reply), which both engines guarantee.
//
// Note on paper errata (see DESIGN.md §7): Algorithm 2 line 14 prints
// "v <- v - G" but Eq. 3/6b require "v <- v + G"; we implement "+", which is
// what makes the Eq. 5 identity (worker model == server global model) hold.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/message.h"
#include "core/config.h"
#include "core/layered.h"
#include "core/server_shard.h"
#include "obs/metrics.h"
#include "sparse/codec.h"

namespace dgs::core {

struct ServerOptions {
  std::size_t num_workers = 1;
  /// Contiguous layer partitions with independent locks; clamped to the
  /// layer count. 1 = the classic serial layout.
  std::size_t num_shards = 1;
  bool secondary_compression = false;
  double secondary_ratio_percent = 1.0;
  /// Layers smaller than this are exempt from secondary compression,
  /// mirroring CompressionConfig::min_sparsify_size on the worker side.
  std::size_t min_sparsify_size = 0;
  /// Optional metrics sink (not owned; must outlive the server). When set,
  /// handle_push records staleness, per-layer and per-reply densities and
  /// reply bytes, and the shards record lock wait/hold times. Null keeps
  /// the hot path free of any accounting beyond the existing atomics.
  obs::MetricsRegistry* metrics = nullptr;
};

class ParameterServer {
 public:
  ParameterServer(std::vector<std::size_t> layer_sizes,
                  std::vector<float> theta0_flat, ServerOptions options);

  /// Process one gradient push (Algorithm 2 body): applies the update to M,
  /// computes and returns the encoded model-difference reply for the pushing
  /// worker, and advances the server timestamp. Safe to call concurrently
  /// for different workers; `staleness_out`, when non-null, receives the
  /// push's staleness (t_now - prev(k)) without touching shared counters.
  [[nodiscard]] comm::Message handle_push(const comm::Message& push,
                                          std::uint64_t* staleness_out = nullptr);

  /// Server timestamp t (number of updates applied).
  [[nodiscard]] std::uint64_t step() const noexcept {
    return step_.load(std::memory_order_relaxed);
  }

  /// theta_t = theta_0 + M_t, flattened (for evaluation snapshots). Locks
  /// each shard in turn, so values are never torn under concurrent pushes;
  /// the snapshot is per-shard consistent (exact when quiescent).
  [[nodiscard]] std::vector<float> global_model_flat() const;

  /// Snapshot of the accumulated update M_t (per layer), for tests.
  [[nodiscard]] LayeredVec accumulated_updates() const;
  /// Snapshot of v_k for worker k, for tests.
  [[nodiscard]] LayeredVec sent_accumulator(std::size_t worker) const;

  /// Resident state in bytes: M plus N per-worker trackers (the §5.6.2
  /// "NumOfWorkers x ParameterMemOfModel" cost).
  [[nodiscard]] std::size_t state_bytes() const noexcept;

  /// Staleness of the last processed push: t_now - prev(k) at arrival.
  /// Under concurrent pushes "last" is whichever push stored most recently;
  /// concurrent callers should use handle_push's staleness_out instead.
  [[nodiscard]] std::uint64_t last_staleness() const noexcept {
    return last_staleness_.load(std::memory_order_relaxed);
  }

  /// Cumulative nnz and dense element counts over all replies built, for
  /// downward-density accounting.
  [[nodiscard]] std::uint64_t total_reply_nnz() const noexcept {
    return total_reply_nnz_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_reply_dense() const noexcept {
    return total_reply_dense_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::size_t>& layer_sizes() const noexcept {
    return layer_sizes_;
  }

  /// Effective shard count (num_shards clamped to the layer count).
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }

 private:
  std::vector<std::size_t> layer_sizes_;
  std::vector<std::size_t> layer_offsets_;  ///< Flat offset of each layer.
  std::size_t total_numel_ = 0;
  std::vector<float> theta0_;
  std::vector<std::unique_ptr<ServerShard>> shards_;
  ServerOptions options_;
  ShardReplyPolicy reply_policy_;

  std::atomic<std::uint64_t> step_{0};
  std::vector<std::atomic<std::uint64_t>> prev_;  ///< prev(k) per worker.
  std::atomic<std::uint64_t> last_staleness_{0};
  std::atomic<std::uint64_t> total_reply_nnz_{0};
  std::atomic<std::uint64_t> total_reply_dense_{0};

  // Observability (see obs/): instrument pointers resolved once in the
  // constructor, all null when options.metrics is null.
  struct {
    obs::Histogram* staleness = nullptr;
    obs::Histogram* push_layer_density = nullptr;
    obs::Histogram* reply_density = nullptr;
    obs::Histogram* reply_layer_density = nullptr;
    obs::Histogram* reply_bytes = nullptr;
    obs::Counter* pushes = nullptr;
  } instruments_;
};

}  // namespace dgs::core
