// The DGS parameter server: Model Difference Tracking (§4.2.1, Eq. 1-6) and
// the server side of dual-way sparsification (Algorithm 2).
//
// The server does not store the global model theta directly; it stores the
// accumulation of updates M_t (theta_t = theta_0 + M_t, Eq. 2) plus one
// vector v_k per worker recording what that worker has already been sent.
// On every push it returns the model difference G_k = M_{t+1} - v_k,
// optionally secondarily compressed (Eq. 6a/6b).
//
// Concurrency: the server is a thin façade over ServerShard objects (see
// server_shard.h), each owning a contiguous partition of layers of M_t, the
// per-worker v_k slices for those layers, and its own mutex. handle_push
// decodes the payload once, dispatches per-layer segments to shards, and
// assembles the reply, so pushes from *different* workers proceed
// concurrently except where they touch the same shard. The server
// timestamp t, prev(k) and the reply-density counters are atomics. The
// protocol invariant that makes this safe is one in-flight push per worker
// (workers block for their reply), which both engines guarantee.
//
// Note on paper errata (see DESIGN.md §7): Algorithm 2 line 14 prints
// "v <- v - G" but Eq. 3/6b require "v <- v + G"; we implement "+", which is
// what makes the Eq. 5 identity (worker model == server global model) hold.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/message.h"
#include "core/config.h"
#include "core/layered.h"
#include "core/server_shard.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "sparse/codec.h"

namespace dgs::core {

struct ServerOptions {
  std::size_t num_workers = 1;
  /// Contiguous layer partitions with independent locks; clamped to the
  /// layer count. 1 = the classic serial layout.
  std::size_t num_shards = 1;
  bool secondary_compression = false;
  double secondary_ratio_percent = 1.0;
  /// Layers smaller than this are exempt from secondary compression,
  /// mirroring CompressionConfig::min_sparsify_size on the worker side.
  std::size_t min_sparsify_size = 0;
  /// Downward reply codec (see CompressionConfig::down_compress). Lossy
  /// modes install a Compressor stage on the shard reply policy, applied
  /// before v_k is charged; kFullModel resyncs stay lossless dense.
  DownCompress down_compress = DownCompress::kAuto;
  /// Worker-lease timeout in seconds (engine time: modeled for the DES,
  /// wall-clock for threads). A worker silent for longer has its v_k
  /// reclaimed by reclaim_expired_leases() and is resynced with a full
  /// model snapshot on next contact. 0 disables leases.
  double lease_timeout_s = 0.0;
  /// Optional metrics sink (not owned; must outlive the server). When set,
  /// handle_push records staleness, per-layer and per-reply densities and
  /// reply bytes, and the shards record lock wait/hold times. Null keeps
  /// the hot path free of any accounting beyond the existing atomics.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional phase profiler (not owned; see obs/phase.h). When set,
  /// handle_push attributes decode+apply time to Phase::kServerApply and
  /// reply build+encode time to Phase::kReplyEncode, charged to the pushing
  /// worker. Null skips all phase accounting.
  obs::PhaseProfiler* phases = nullptr;
};

class ParameterServer {
 public:
  ParameterServer(std::vector<std::size_t> layer_sizes,
                  std::vector<float> theta0_flat, ServerOptions options);

  /// Process one gradient push (Algorithm 2 body): applies the update to M,
  /// computes and returns the encoded model-difference reply for the pushing
  /// worker, and advances the server timestamp. Safe to call concurrently
  /// for different workers; `staleness_out`, when non-null, receives the
  /// push's staleness (t_now - prev(k)) without touching shared counters.
  ///
  /// Fault handling (see DESIGN.md §11): a push whose seq is not newer than
  /// the worker's last accepted seq is a duplicate (dup fault or
  /// retransmit) — its gradient is NOT re-applied and the server step does
  /// not advance, but a fresh G = M - v_k reply is still built and charged
  /// to v_k, so whichever copy the worker applies the bookkeeping matches.
  /// `duplicate_out` (when non-null) reports that case so engines can skip
  /// sample accounting. A push from a worker whose lease was reclaimed gets
  /// a kFullModel resync reply instead of a diff (its v_k was reset; a diff
  /// would replay the entire model as if never sent).
  [[nodiscard]] comm::Message handle_push(const comm::Message& push,
                                          std::uint64_t* staleness_out = nullptr,
                                          bool* duplicate_out = nullptr);

  /// Record liveness for `worker` at engine time `now` and (re)activate its
  /// lease. Engines call this for every push that reaches the server.
  void touch_lease(std::size_t worker, double now);

  /// Reclaim every active lease older than options.lease_timeout_s at
  /// engine time `now`: the worker's v_k is zeroed on all shards and the
  /// worker is marked inactive until its next contact (which resyncs it).
  /// Returns the number of leases reclaimed; 0 when leases are disabled.
  std::size_t reclaim_expired_leases(double now);

  /// Re-register a crashed worker (kRejoinRequest): reactivates its lease
  /// at `now` and returns a kFullModel warm-start reply built through the
  /// Checkpoint machinery — a dense snapshot of theta_t with v_k := M_t
  /// adopted atomically per shard, so the rejoined worker's first reply is
  /// a full model, never a stale diff.
  [[nodiscard]] comm::Message handle_rejoin(const comm::Message& request,
                                            double now);

  /// Fault/recovery accounting (plain atomics, usable without a registry).
  [[nodiscard]] std::uint64_t leases_reclaimed() const noexcept {
    return leases_reclaimed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t duplicate_pushes() const noexcept {
    return duplicate_pushes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejoins() const noexcept {
    return rejoins_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t full_model_resyncs() const noexcept {
    return full_model_resyncs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool lease_active(std::size_t worker) const {
    return lease_active_.at(worker).load(std::memory_order_acquire);
  }

  /// Server timestamp t (number of updates applied).
  [[nodiscard]] std::uint64_t step() const noexcept {
    return step_.load(std::memory_order_relaxed);
  }

  /// theta_t = theta_0 + M_t, flattened (for evaluation snapshots). Locks
  /// each shard in turn, so values are never torn under concurrent pushes;
  /// the snapshot is per-shard consistent (exact when quiescent).
  [[nodiscard]] std::vector<float> global_model_flat() const;

  /// Snapshot of the accumulated update M_t (per layer), for tests.
  [[nodiscard]] LayeredVec accumulated_updates() const;
  /// Snapshot of v_k for worker k, for tests.
  [[nodiscard]] LayeredVec sent_accumulator(std::size_t worker) const;

  /// Resident state in bytes: M plus N per-worker trackers (the §5.6.2
  /// "NumOfWorkers x ParameterMemOfModel" cost).
  [[nodiscard]] std::size_t state_bytes() const noexcept;

  /// Staleness of the last processed push: t_now - prev(k) at arrival.
  /// Under concurrent pushes "last" is whichever push stored most recently;
  /// concurrent callers should use handle_push's staleness_out instead.
  [[nodiscard]] std::uint64_t last_staleness() const noexcept {
    return last_staleness_.load(std::memory_order_relaxed);
  }

  /// Cumulative nnz and dense element counts over all replies built, for
  /// downward-density accounting.
  [[nodiscard]] std::uint64_t total_reply_nnz() const noexcept {
    return total_reply_nnz_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_reply_dense() const noexcept {
    return total_reply_dense_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::size_t>& layer_sizes() const noexcept {
    return layer_sizes_;
  }

  /// Effective shard count (num_shards clamped to the layer count).
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }

 private:
  std::vector<std::size_t> layer_sizes_;
  std::vector<std::size_t> layer_offsets_;  ///< Flat offset of each layer.
  std::size_t total_numel_ = 0;
  std::vector<float> theta0_;
  std::vector<std::unique_ptr<ServerShard>> shards_;
  ServerOptions options_;
  ShardReplyPolicy reply_policy_;

  /// Wire-encode the reply diff per options.down_compress (kAuto keeps the
  /// density heuristic). Shared by the normal and duplicate push paths so a
  /// retransmitted reply uses the same format as the original.
  [[nodiscard]] sparse::Bytes encode_reply_payload(
      const sparse::SparseUpdate& g, std::uint64_t sparse_nnz) const;

  /// Dense theta_t snapshot with v_k := M_t adopted per shard, wrapped as a
  /// kFullModel message (shared by handle_rejoin and the resync path).
  [[nodiscard]] comm::Message build_full_model_reply(std::size_t worker);

  std::atomic<std::uint64_t> step_{0};
  std::vector<std::atomic<std::uint64_t>> prev_;  ///< prev(k) per worker.
  std::atomic<std::uint64_t> last_staleness_{0};
  std::atomic<std::uint64_t> total_reply_nnz_{0};
  std::atomic<std::uint64_t> total_reply_dense_{0};

  // Fault/recovery state (see DESIGN.md §11). last_seq_ is the dedup
  // watermark: highest accepted push seq per worker, advanced by CAS so
  // concurrently delivered duplicates cannot both win. Lease state is
  // per-worker atomics; the mutex only serializes reclaim scans against
  // each other.
  std::vector<std::atomic<std::uint64_t>> last_seq_;
  std::vector<std::atomic<double>> lease_last_;
  std::vector<std::atomic<bool>> lease_active_;
  std::mutex lease_mutex_;
  std::atomic<std::uint64_t> leases_reclaimed_{0};
  std::atomic<std::uint64_t> duplicate_pushes_{0};
  std::atomic<std::uint64_t> rejoins_{0};
  std::atomic<std::uint64_t> full_model_resyncs_{0};

  // Observability (see obs/): instrument pointers resolved once in the
  // constructor, all null when options.metrics is null.
  struct {
    obs::Histogram* staleness = nullptr;
    obs::Histogram* push_layer_density = nullptr;
    obs::Histogram* reply_density = nullptr;
    obs::Histogram* reply_layer_density = nullptr;
    obs::Histogram* reply_bytes = nullptr;
    obs::Histogram* reply_bytes_per_element = nullptr;
    obs::Histogram* reply_encode_us = nullptr;
    obs::Histogram* push_bytes = nullptr;
    obs::Histogram* push_decode_us = nullptr;
    obs::Counter* pushes = nullptr;
    obs::Counter* leases_reclaimed = nullptr;
    obs::Counter* duplicate_pushes = nullptr;
    obs::Counter* rejoins = nullptr;
    obs::Counter* full_model_resyncs = nullptr;
  } instruments_;
};

}  // namespace dgs::core
