// Worker-side training context: local model replica, data shard, and the
// per-method update algorithm. Used identically by the discrete-event and
// real-thread engines; the engines only decide *when* each step happens.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/message.h"
#include "core/config.h"
#include "core/optimizer.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "nn/model.h"
#include "obs/phase.h"

namespace dgs::core {

struct IterationResult {
  comm::Message push;     ///< Encoded g_{k,t} ready for the server.
  double loss = 0.0;      ///< Mean batch loss before the update.
  std::size_t batch = 0;  ///< Samples consumed.
  std::size_t epoch = 0;  ///< Worker-local epoch the batch came from.
  double update_density = 0.0;  ///< nnz/dense of the pushed update.
};

class Worker {
 public:
  Worker(std::size_t id, const nn::ModelSpec& spec,
         std::shared_ptr<const data::Dataset> train_data,
         const TrainConfig& config, const std::vector<float>& theta0_flat);

  /// One training iteration (Algorithm 1/3 lines 4-13): sample a batch,
  /// forward/backward on the *local* (possibly stale) model, run the method's
  /// update algorithm and pack the push message. `lr` and `schedule_epoch`
  /// come from the engine's global schedule (the server-side epoch), so that
  /// heterogeneous workers advancing at different speeds still share one
  /// learning-rate and warmup schedule.
  [[nodiscard]] IterationResult compute_and_pack(float lr,
                                                 std::size_t schedule_epoch);

  /// Convenience overload using the worker-local epoch for the schedule
  /// (unit tests and single-worker flows).
  [[nodiscard]] IterationResult compute_and_pack() {
    const std::size_t epoch = sampler_.epoch();
    return compute_and_pack(static_cast<float>(config_.lr_at_epoch(epoch)),
                            epoch);
  }

  /// Apply a model-difference reply (Algorithm 1/3 lines 14-15):
  /// theta_k += G.
  void apply_model_diff(const comm::Message& reply);

  [[nodiscard]] std::size_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t local_step() const noexcept { return step_; }
  /// Worker-local epoch (how often this worker's shard has been consumed).
  [[nodiscard]] std::size_t epoch() const noexcept { return sampler_.epoch(); }
  [[nodiscard]] std::size_t batches_per_epoch() const noexcept {
    return sampler_.batches_per_epoch();
  }
  /// Server step of the last received reply (prev(k) from the paper).
  [[nodiscard]] std::uint64_t known_server_step() const noexcept {
    return known_server_step_;
  }

  /// Worker-resident optimizer state (for §5.6.2 memory accounting).
  [[nodiscard]] std::size_t optimizer_state_bytes() const noexcept {
    return algorithm_->state_bytes();
  }

  /// The algorithm's runtime sparsity controller (Method::kDGSAdaptive),
  /// or nullptr. Engines use this to export the committed ratio schedule
  /// into metrics and the run ledger.
  [[nodiscard]] const SparsityController* sparsity_controller()
      const noexcept {
    return algorithm_->sparsity_controller();
  }

  /// Local model parameters, flattened (tests verify Eq. 5 with this).
  [[nodiscard]] std::vector<float> model_flat() const {
    return nn::param_gather_values(params_);
  }

  /// Overwrite the local model (used by the synchronous engine, which
  /// broadcasts the aggregated global model every round).
  void set_model(const std::vector<float>& theta_flat) {
    nn::param_scatter_values(theta_flat, params_);
  }

  /// Attach the run's phase-attribution profiler (see obs/phase.h): the
  /// worker then times forward/backward, sparsify+select, encode and
  /// decode+apply per step. Null (the default, and what direct unit-test
  /// construction gets) keeps every timer a no-op. Not owned; must outlive
  /// the worker.
  void bind_profiler(obs::PhaseProfiler* profiler) noexcept {
    profiler_ = profiler;
  }

 private:
  std::size_t id_;
  nn::ModelSpec spec_;
  std::shared_ptr<const data::Dataset> data_;
  TrainConfig config_;

  nn::ModulePtr model_;
  std::vector<nn::Parameter*> params_;
  std::unique_ptr<WorkerAlgorithm> algorithm_;
  data::ShardSampler sampler_;

  std::vector<std::size_t> batch_indices_;
  std::vector<float> batch_features_;
  std::vector<std::int32_t> batch_labels_;

  std::uint64_t step_ = 0;
  std::uint64_t known_server_step_ = 0;
  std::size_t model_numel_ = 0;  ///< Dense model size, for reply density.
  obs::PhaseProfiler* profiler_ = nullptr;  ///< Optional, not owned.
};

}  // namespace dgs::core
