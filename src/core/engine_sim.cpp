#include "core/engine_sim.h"

#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "comm/fault.h"
#include "comm/transport.h"
#include "core/engine_context.h"
#include "core/payload.h"
#include "util/parallel_for.h"

namespace dgs::core {

namespace {

enum class EventKind : std::uint8_t {
  kComputeDone,   ///< Worker finished a forward/backward pass.
  kPushArrived,   ///< Gradient push (or rejoin request) reached the server.
  kReplyArrived,  ///< Model-difference reply reached the worker.
  kRetryTimeout,  ///< Worker's reply deadline for an in-flight push expired.
  kWorkerWake,    ///< Crashed worker's downtime is over; send the rejoin.
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< Tie-breaker: deterministic FIFO for equal times.
  EventKind kind = EventKind::kComputeDone;
  std::size_t worker = 0;
  comm::Message msg;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Per-worker fault-recovery state. `next_seq` is engine-owned (not the
/// worker's local step) so the sequence stream survives a crash/revive and
/// the server's dedup watermark stays monotonic across the worker's lives.
struct SimWorkerState {
  bool alive = true;
  bool killed_once = false;        ///< The scheduled kill fires at most once.
  std::uint64_t next_seq = 0;
  std::uint64_t awaiting_seq = 0;  ///< In-flight push (0 = none).
  std::size_t attempts = 0;        ///< Retransmits used for the in-flight push.
  comm::Message last_push;         ///< Kept for retransmission.
};

}  // namespace

SimEngine::SimEngine(nn::ModelSpec spec,
                     std::shared_ptr<const data::Dataset> train,
                     std::shared_ptr<const data::Dataset> test,
                     TrainConfig config)
    : spec_(std::move(spec)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(std::move(config)) {
  validate_engine_config("SimEngine", config_);
}

RunResult SimEngine::run() {
  if (used_) throw std::logic_error("SimEngine::run: already run");
  used_ = true;

  EngineContext context("SimEngine", spec_, train_, test_, config_);
  // All compute runs on this thread, so it gets the whole per-worker
  // budget for the duration of the run (restored on exit). Kernel results
  // are bitwise thread-count-invariant, so the DES schedule is unaffected.
  const std::size_t intra_op = effective_threads_per_worker(config_);
  util::IntraOpBudgetScope intra_op_scope(intra_op);
  ParameterServer server = context.make_server();
  comm::SimTransport transport(config_.network, &context.metrics(),
                               &context.phases());

  // Fault plumbing (see comm/fault.h). plan == nullptr keeps every path on
  // the legacy single-delivery schedule: the decorator passes through, no
  // retry deadlines are armed, and the event sequence is bit-identical to
  // the pre-fault engine.
  std::unique_ptr<comm::FaultPlan> plan;
  if (config_.fault.enabled())
    plan = std::make_unique<comm::FaultPlan>(config_.fault,
                                             &context.metrics());
  comm::FaultySimTransport faulty(transport, plan.get());
  const bool retry_armed = plan != nullptr && config_.fault.message_faults();

  auto epochs = context.make_epoch_tracker(/*eval_final_epoch=*/true);
  const auto server_model = [&server] { return server.global_model_flat(); };

  // --- event queue ---------------------------------------------------------
  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::uint64_t seq = 0;
  auto push_event = [&](double time, EventKind kind, std::size_t worker,
                        comm::Message msg = {}) {
    queue.push(Event{time, seq++, kind, worker, std::move(msg)});
  };
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    push_event(context.compute_seconds(k), EventKind::kComputeDone, k);

  std::vector<SimWorkerState> state(config_.num_workers);

  // Phase attribution (obs/phase.h): a DES worker step spans two events —
  // kComputeDone (compute + pack + send) and the matching kReplyArrived
  // (decode + apply). The compute half is parked here until the reply
  // closes the step; interrupted steps (crash, resync) just discard it.
  std::vector<double> step_partial_us(config_.num_workers, 0.0);

  // --- main loop ------------------------------------------------------------
  RunResult result;
  result.threads_per_worker = intra_op;
  double up_density_sum = 0.0;
  std::uint64_t samples_scheduled = 0;
  std::uint64_t samples_at_server = 0;
  double now = 0.0;

  // Deliver one message on every modeled arrival the (possibly faulty)
  // transport reports: none for a drop, two for a duplication.
  const auto deliver = [&](const std::vector<double>& arrivals,
                           EventKind kind, std::size_t worker,
                           const comm::Message& msg) {
    for (double at : arrivals) push_event(at, kind, worker, msg);
  };

  while (!queue.empty()) {
    Event event = std::move(const_cast<Event&>(queue.top()));
    queue.pop();
    now = event.time;
    SimWorkerState& ws = state[event.worker];

    switch (event.kind) {
      case EventKind::kComputeDone: {
        Worker& w = context.worker(event.worker);
        if (plan != nullptr && !ws.killed_once &&
            plan->wants_kill(event.worker, w.local_step())) {
          // Crash before this step: the worker's local model, optimizer
          // state and in-progress batch are gone. After the modeled
          // downtime it wakes up and re-registers.
          ws.killed_once = true;
          ws.alive = false;
          plan->count_kill();
          step_partial_us[event.worker] = 0.0;  // in-progress step is lost
          push_event(now + config_.fault.rejoin_delay_s,
                     EventKind::kWorkerWake, event.worker);
          break;
        }
        const std::size_t schedule_epoch =
            static_cast<std::size_t>(samples_at_server / context.train_size());
        const double step_begin = obs::Tracer::now_us();
        {
          DGS_TRACE_SCOPE("compute", "worker");
          IterationResult iter = w.compute_and_pack(
              static_cast<float>(config_.lr_at_epoch(schedule_epoch)),
              schedule_epoch);
          epochs.add_loss(iter.loss);
          up_density_sum += iter.update_density;
          iter.push.seq = ++ws.next_seq;
          ws.awaiting_seq = iter.push.seq;
          ws.attempts = 0;
          if (retry_armed) {
            ws.last_push = iter.push;
            comm::Message deadline;
            deadline.seq = iter.push.seq;
            push_event(now + config_.fault.retransmit_timeout_s,
                       EventKind::kRetryTimeout, event.worker,
                       std::move(deadline));
          }
          deliver(faulty.send_push(now, iter.push), EventKind::kPushArrived,
                  event.worker, iter.push);
          samples_at_server += iter.batch;  // accounted on compute completion
          samples_scheduled += iter.batch;
        }
        step_partial_us[event.worker] += obs::Tracer::now_us() - step_begin;
        break;
      }
      case EventKind::kPushArrived: {
        if (event.msg.kind == comm::MessageKind::kRejoinRequest) {
          comm::Message reply = server.handle_rejoin(event.msg, now);
          // Control messages pass through the fault decorator untouched,
          // so the rejoin handshake is reliable by construction.
          deliver(faulty.send_reply(now, reply), EventKind::kReplyArrived,
                  event.worker, reply);
          break;
        }
        if (config_.fault.lease_timeout_s > 0.0)
          server.reclaim_expired_leases(now);
        std::uint64_t staleness = 0;
        bool duplicate = false;
        comm::Message reply =
            server.handle_push(event.msg, &staleness, &duplicate);
        if (!duplicate) result.staleness.record(staleness);
        server.touch_lease(event.worker, now);
        deliver(faulty.send_reply(now, reply), EventKind::kReplyArrived,
                event.worker, reply);
        epochs.advance(result, samples_at_server, now, server_model);
        break;
      }
      case EventKind::kReplyArrived: {
        if (event.msg.kind == comm::MessageKind::kFullModel) {
          // Warm start (rejoin or lease-resync): install the server
          // snapshot as a fresh worker and resume the compute loop.
          context.revive_worker(event.worker,
                                flatten_dense_payload(event.msg.payload));
          ws.alive = true;
          ws.awaiting_seq = 0;
          step_partial_us[event.worker] = 0.0;  // resync, not a normal step
          if (samples_scheduled < context.sample_budget())
            push_event(now + context.compute_seconds(event.worker),
                       EventKind::kComputeDone, event.worker);
          break;
        }
        if (!ws.alive) break;  // reply outran the crash; worker is gone
        if (event.msg.seq != ws.awaiting_seq) break;  // stale or duplicate
        ws.awaiting_seq = 0;
        {
          const double apply_begin = obs::Tracer::now_us();
          {
            DGS_TRACE_SCOPE("apply_diff", "worker");
            context.worker(event.worker).apply_model_diff(event.msg);
          }
          context.phases().record_step(
              event.worker, step_partial_us[event.worker] +
                                (obs::Tracer::now_us() - apply_begin));
          step_partial_us[event.worker] = 0.0;
        }
        if (samples_scheduled < context.sample_budget())
          push_event(now + context.compute_seconds(event.worker),
                     EventKind::kComputeDone, event.worker);
        break;
      }
      case EventKind::kRetryTimeout: {
        if (!ws.alive || event.msg.seq != ws.awaiting_seq) break;  // answered
        if (ws.attempts >= config_.fault.max_retransmits) {
          // Too many silent deadlines: the worker declares itself
          // partitioned, abandons the push, and goes through rejoin.
          ws.alive = false;
          ws.awaiting_seq = 0;
          push_event(now + config_.fault.rejoin_delay_s,
                     EventKind::kWorkerWake, event.worker);
          break;
        }
        ++ws.attempts;
        plan->count_retransmit();
        comm::Message again = ws.last_push;
        again.attempt = static_cast<std::uint32_t>(ws.attempts);
        comm::Message deadline;
        deadline.seq = ws.awaiting_seq;
        push_event(now + config_.fault.retransmit_timeout_s,
                   EventKind::kRetryTimeout, event.worker,
                   std::move(deadline));
        deliver(faulty.send_push(now, again), EventKind::kPushArrived,
                event.worker, again);
        break;
      }
      case EventKind::kWorkerWake: {
        comm::Message rejoin;
        rejoin.kind = comm::MessageKind::kRejoinRequest;
        rejoin.worker_id = static_cast<std::int32_t>(event.worker);
        deliver(faulty.send_push(now, rejoin), EventKind::kPushArrived,
                event.worker, rejoin);
        break;
      }
    }
  }

  // --- final metrics ---------------------------------------------------------
  result.bytes = transport.bytes();
  if (result.bytes.upward_messages > 0)
    result.mean_upward_density =
        up_density_sum / static_cast<double>(result.bytes.upward_messages);
  if (server.total_reply_dense() > 0)
    result.mean_downward_density =
        static_cast<double>(server.total_reply_nnz()) /
        static_cast<double>(server.total_reply_dense());
  result.reply_elements = server.total_reply_nnz();
  result.server_steps = server.step();
  result.samples_processed = samples_at_server;
  result.server_state_bytes = server.state_bytes();
  context.finalize(result, epochs, server.global_model_flat(), now,
                   epochs.epoch_mean_loss(), /*always_append=*/false);
  return result;
}

}  // namespace dgs::core
