#include "core/engine_sim.h"

#include <queue>
#include <stdexcept>
#include <vector>

#include "core/evaluator.h"
#include "core/server.h"
#include "core/worker.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace dgs::core {

std::vector<float> initial_parameters(const nn::ModelSpec& spec,
                                      std::uint64_t seed) {
  nn::ModulePtr model = spec.build();
  util::Rng rng(seed);
  model->init(rng);
  return nn::param_gather_values(model->parameters());
}

namespace {

std::vector<std::size_t> model_layer_sizes(const nn::ModelSpec& spec) {
  nn::ModulePtr model = spec.build();
  return nn::param_layer_sizes(model->parameters());
}

enum class EventKind : std::uint8_t {
  kComputeDone,   ///< Worker finished a forward/backward pass.
  kPushArrived,   ///< Gradient push reached the server.
  kReplyArrived,  ///< Model-difference reply reached the worker.
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< Tie-breaker: deterministic FIFO for equal times.
  EventKind kind = EventKind::kComputeDone;
  std::size_t worker = 0;
  comm::Message msg;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

SimEngine::SimEngine(nn::ModelSpec spec,
                     std::shared_ptr<const data::Dataset> train,
                     std::shared_ptr<const data::Dataset> test,
                     TrainConfig config)
    : spec_(std::move(spec)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(std::move(config)) {
  if (config_.method == Method::kMSGD && config_.num_workers != 1)
    throw std::invalid_argument("MSGD is the single-node baseline (workers=1)");
  if (config_.num_workers == 0)
    throw std::invalid_argument("SimEngine: num_workers == 0");
}

RunResult SimEngine::run() {
  if (used_) throw std::logic_error("SimEngine::run: already run");
  used_ = true;
  util::Stopwatch wall;

  const std::vector<float> theta0 = config_.warm_start.empty()
                                        ? initial_parameters(spec_, config_.seed)
                                        : config_.warm_start;

  // --- server, workers, evaluator ----------------------------------------
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(config_.num_workers);
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    workers.push_back(std::make_unique<Worker>(k, spec_, train_, config_, theta0));

  ServerOptions server_options;
  server_options.num_workers = config_.num_workers;
  server_options.secondary_compression = config_.compression.secondary;
  server_options.secondary_ratio_percent =
      config_.compression.secondary_ratio_percent;
  server_options.min_sparsify_size = config_.compression.min_sparsify_size;
  ParameterServer server(model_layer_sizes(spec_), theta0, server_options);

  Evaluator evaluator(spec_, test_, config_.eval_batch);

  // --- global sample budget and compute-time jitter ------------------------
  // The job processes epochs * |train| samples in total; faster workers
  // contribute more iterations (as on a real heterogeneous cluster), so a
  // straggler does not gate the makespan the way a synchronous barrier does.
  const std::uint64_t sample_budget =
      static_cast<std::uint64_t>(config_.epochs) * train_->size();
  std::uint64_t samples_scheduled = 0;
  std::vector<util::Rng> jitter_rng;
  jitter_rng.reserve(config_.num_workers);
  util::Rng root(config_.seed ^ 0xD15C0DE5ULL);
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    jitter_rng.push_back(root.fork(k));

  auto compute_seconds = [&](std::size_t k) {
    const double jitter =
        config_.compute.jitter_frac *
        (2.0 * jitter_rng[k].uniform() - 1.0);
    return config_.compute.base_seconds * config_.compute.speed_of(k) *
           (1.0 + jitter);
  };

  // --- event queue ---------------------------------------------------------
  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::uint64_t seq = 0;
  auto push_event = [&](double time, EventKind kind, std::size_t worker,
                        comm::Message msg = {}) {
    queue.push(Event{time, seq++, kind, worker, std::move(msg)});
  };
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    push_event(compute_seconds(k), EventKind::kComputeDone, k);

  comm::SharedLink up_link;    // all pushes share the server NIC (ingress)
  comm::SharedLink down_link;  // all replies share the server NIC (egress)

  // --- epoch bookkeeping ---------------------------------------------------
  RunResult result;
  double up_density_sum = 0.0;
  const std::size_t train_size = train_->size();
  std::uint64_t samples_at_server = 0;
  std::size_t completed_epochs = 0;
  double epoch_loss_sum = 0.0;
  std::uint64_t epoch_loss_count = 0;
  double last_epoch_loss = 0.0;
  double now = 0.0;

  auto maybe_eval_epoch = [&](double time) {
    while (samples_at_server >=
           static_cast<std::uint64_t>(train_size) * (completed_epochs + 1)) {
      ++completed_epochs;
      last_epoch_loss =
          epoch_loss_count > 0
              ? epoch_loss_sum / static_cast<double>(epoch_loss_count)
              : 0.0;
      epoch_loss_sum = 0.0;
      epoch_loss_count = 0;
      const bool want_eval =
          config_.record_curve && config_.eval_every_epochs > 0 &&
          (completed_epochs % config_.eval_every_epochs == 0 ||
           completed_epochs == config_.epochs);
      if (want_eval) {
        const EvalResult eval = evaluator.evaluate(server.global_model_flat());
        result.curve.push_back(EpochPoint{completed_epochs, time,
                                          last_epoch_loss, eval.accuracy,
                                          eval.loss});
      }
    }
  };

  // --- main loop ------------------------------------------------------------
  while (!queue.empty()) {
    Event event = std::move(const_cast<Event&>(queue.top()));
    queue.pop();
    now = event.time;

    switch (event.kind) {
      case EventKind::kComputeDone: {
        Worker& w = *workers[event.worker];
        const std::size_t schedule_epoch =
            static_cast<std::size_t>(samples_at_server / train_size);
        IterationResult iter = w.compute_and_pack(
            static_cast<float>(config_.lr_at_epoch(schedule_epoch)),
            schedule_epoch);
        epoch_loss_sum += iter.loss;
        ++epoch_loss_count;
        up_density_sum += iter.update_density;
        result.bytes.count_up(iter.push.wire_size());
        const double arrive =
            up_link.begin(now, config_.network.serialization_seconds(
                                   iter.push.wire_size())) +
            config_.network.latency_s;
        push_event(arrive, EventKind::kPushArrived, event.worker,
                   std::move(iter.push));
        samples_at_server += iter.batch;  // accounted on compute completion
        samples_scheduled += iter.batch;
        break;
      }
      case EventKind::kPushArrived: {
        comm::Message reply = server.handle_push(event.msg);
        result.staleness.record(server.last_staleness());
        result.bytes.count_down(reply.wire_size());
        const double arrive =
            down_link.begin(now, config_.network.serialization_seconds(
                                     reply.wire_size())) +
            config_.network.latency_s;
        push_event(arrive, EventKind::kReplyArrived, event.worker,
                   std::move(reply));
        maybe_eval_epoch(now);
        break;
      }
      case EventKind::kReplyArrived: {
        Worker& w = *workers[event.worker];
        w.apply_model_diff(event.msg);
        if (samples_scheduled < sample_budget)
          push_event(now + compute_seconds(event.worker),
                     EventKind::kComputeDone, event.worker);
        break;
      }
    }
  }

  // --- final metrics ---------------------------------------------------------
  const EvalResult final_eval = evaluator.evaluate(server.global_model_flat());
  if (result.curve.empty() || result.curve.back().epoch != completed_epochs ||
      !config_.record_curve) {
    // Guarantee a terminal point even when curve recording is off or the
    // sample count did not land exactly on an epoch boundary.
    result.curve.push_back(EpochPoint{completed_epochs, now,
                                      epoch_loss_count > 0
                                          ? epoch_loss_sum /
                                                static_cast<double>(epoch_loss_count)
                                          : last_epoch_loss,
                                      final_eval.accuracy, final_eval.loss});
  }
  result.final_model = server.global_model_flat();
  if (result.bytes.upward_messages > 0)
    result.mean_upward_density =
        up_density_sum / static_cast<double>(result.bytes.upward_messages);
  if (server.total_reply_dense() > 0)
    result.mean_downward_density =
        static_cast<double>(server.total_reply_nnz()) /
        static_cast<double>(server.total_reply_dense());
  result.final_test_accuracy = final_eval.accuracy;
  result.final_train_loss = result.curve.back().train_loss;
  result.sim_seconds = now;
  result.server_steps = server.step();
  result.samples_processed = samples_at_server;
  result.server_state_bytes = server.state_bytes();
  for (const auto& w : workers)
    result.worker_state_bytes =
        std::max(result.worker_state_bytes, w->optimizer_state_bytes());
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace dgs::core
