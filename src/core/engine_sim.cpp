#include "core/engine_sim.h"

#include <queue>
#include <stdexcept>
#include <vector>

#include "comm/transport.h"
#include "core/engine_context.h"

namespace dgs::core {

namespace {

enum class EventKind : std::uint8_t {
  kComputeDone,   ///< Worker finished a forward/backward pass.
  kPushArrived,   ///< Gradient push reached the server.
  kReplyArrived,  ///< Model-difference reply reached the worker.
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< Tie-breaker: deterministic FIFO for equal times.
  EventKind kind = EventKind::kComputeDone;
  std::size_t worker = 0;
  comm::Message msg;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace

SimEngine::SimEngine(nn::ModelSpec spec,
                     std::shared_ptr<const data::Dataset> train,
                     std::shared_ptr<const data::Dataset> test,
                     TrainConfig config)
    : spec_(std::move(spec)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(std::move(config)) {
  validate_engine_config("SimEngine", config_);
}

RunResult SimEngine::run() {
  if (used_) throw std::logic_error("SimEngine::run: already run");
  used_ = true;

  EngineContext context("SimEngine", spec_, train_, test_, config_);
  ParameterServer server = context.make_server();
  comm::SimTransport transport(config_.network, &context.metrics());
  auto epochs = context.make_epoch_tracker(/*eval_final_epoch=*/true);
  const auto server_model = [&server] { return server.global_model_flat(); };

  // --- event queue ---------------------------------------------------------
  std::priority_queue<Event, std::vector<Event>, EventLater> queue;
  std::uint64_t seq = 0;
  auto push_event = [&](double time, EventKind kind, std::size_t worker,
                        comm::Message msg = {}) {
    queue.push(Event{time, seq++, kind, worker, std::move(msg)});
  };
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    push_event(context.compute_seconds(k), EventKind::kComputeDone, k);

  // --- main loop ------------------------------------------------------------
  RunResult result;
  double up_density_sum = 0.0;
  std::uint64_t samples_scheduled = 0;
  std::uint64_t samples_at_server = 0;
  double now = 0.0;

  while (!queue.empty()) {
    Event event = std::move(const_cast<Event&>(queue.top()));
    queue.pop();
    now = event.time;

    switch (event.kind) {
      case EventKind::kComputeDone: {
        Worker& w = context.worker(event.worker);
        const std::size_t schedule_epoch =
            static_cast<std::size_t>(samples_at_server / context.train_size());
        IterationResult iter = w.compute_and_pack(
            static_cast<float>(config_.lr_at_epoch(schedule_epoch)),
            schedule_epoch);
        epochs.add_loss(iter.loss);
        up_density_sum += iter.update_density;
        const double arrive = transport.send_push(now, iter.push);
        push_event(arrive, EventKind::kPushArrived, event.worker,
                   std::move(iter.push));
        samples_at_server += iter.batch;  // accounted on compute completion
        samples_scheduled += iter.batch;
        break;
      }
      case EventKind::kPushArrived: {
        std::uint64_t staleness = 0;
        comm::Message reply = server.handle_push(event.msg, &staleness);
        result.staleness.record(staleness);
        const double arrive = transport.send_reply(now, reply);
        push_event(arrive, EventKind::kReplyArrived, event.worker,
                   std::move(reply));
        epochs.advance(result, samples_at_server, now, server_model);
        break;
      }
      case EventKind::kReplyArrived: {
        context.worker(event.worker).apply_model_diff(event.msg);
        if (samples_scheduled < context.sample_budget())
          push_event(now + context.compute_seconds(event.worker),
                     EventKind::kComputeDone, event.worker);
        break;
      }
    }
  }

  // --- final metrics ---------------------------------------------------------
  result.bytes = transport.bytes();
  if (result.bytes.upward_messages > 0)
    result.mean_upward_density =
        up_density_sum / static_cast<double>(result.bytes.upward_messages);
  if (server.total_reply_dense() > 0)
    result.mean_downward_density =
        static_cast<double>(server.total_reply_nnz()) /
        static_cast<double>(server.total_reply_dense());
  result.server_steps = server.step();
  result.samples_processed = samples_at_server;
  result.server_state_bytes = server.state_bytes();
  context.finalize(result, epochs, server.global_model_flat(), now,
                   epochs.epoch_mean_loss(), /*always_append=*/false);
  return result;
}

}  // namespace dgs::core
