// Discrete-event simulation engine.
//
// Replays the asynchronous PS protocol on a simulated clock: workers take
// compute_model time per forward/backward, messages occupy the server's
// shared up/down links for latency + bytes/bandwidth seconds (FIFO), and the
// server processes pushes strictly in simulated arrival order. All training
// math is executed for real at event time, so staleness, sparsification and
// convergence are genuine — only *time* is modeled. Deterministic given the
// config seed.
//
// This is the engine behind every accuracy table and both of the paper's
// wall-clock figures (Fig. 5, Fig. 6): byte counts come from the real
// encoded message sizes crossing the codec.
#pragma once

#include <memory>

#include "core/config.h"
#include "core/engine_context.h"  // IWYU pragma: export — initial_parameters
#include "core/metrics.h"
#include "data/synthetic.h"
#include "nn/model.h"

namespace dgs::core {

class SimEngine {
 public:
  SimEngine(nn::ModelSpec spec, std::shared_ptr<const data::Dataset> train,
            std::shared_ptr<const data::Dataset> test, TrainConfig config);

  /// Run the full training job and return metrics. Callable once.
  [[nodiscard]] RunResult run();

 private:
  nn::ModelSpec spec_;
  std::shared_ptr<const data::Dataset> train_;
  std::shared_ptr<const data::Dataset> test_;
  TrainConfig config_;
  bool used_ = false;
};

}  // namespace dgs::core
