// Experiment configuration shared by both engines and all benches.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/fault.h"
#include "comm/network.h"
#include "core/method.h"

namespace dgs::core {

/// Knobs for the runtime per-layer sparsity controller (core/adaptive.h,
/// Method::kDGSAdaptive). All defaults are safe: the controller always
/// spends at most the fixed-R byte budget and never drops a layer below the
/// convergence floor, so these only shape *where* the budget goes.
struct AdaptiveConfig {
  /// Convergence-safe floor R_min: no adaptive layer's ratio goes below
  /// this (clamped to <= ratio_percent at construction).
  double min_ratio_percent = 0.25;
  /// Per-layer ratio ceiling; <= 0 picks min(100, 4 * ratio_percent).
  double max_ratio_percent = 0.0;
  /// Pushes between allocation decisions.
  std::size_t interval_steps = 8;
  /// Relative dead-band: a layer's keep count only moves when the candidate
  /// differs from the committed value by more than this fraction.
  double hysteresis = 0.10;
  /// EMA weight of the newest mass/staleness/density observation.
  double ema_alpha = 0.25;
  /// Staleness EMA (in server steps) at which adaptivity is halved.
  double staleness_scale = 8.0;
  /// How strongly near-dense replies damp adaptivity, in [0, 1].
  double density_weight = 0.5;
};

/// Sparsification knobs. `ratio_percent` is R in the paper's notation:
/// R = 1 keeps the top 1% of magnitudes per layer (99% sparsity).
struct CompressionConfig {
  double ratio_percent = 1.0;
  bool secondary = false;  ///< Server-side secondary compression (Alg. 2 l.5-11).
  double secondary_ratio_percent = 1.0;
  /// Sparsity warmup (a DGC training trick): during the first N epochs the
  /// keep-ratio decays 25% -> 6.25% -> 1.56% -> ... per epoch until it
  /// reaches ratio_percent. 0 disables warmup.
  std::size_t warmup_epochs = 0;
  /// Gradient clipping by global L2 norm (another DGC trick); 0 disables.
  double clip_norm = 0.0;
  /// Layers with fewer elements than this are always sent densely (the
  /// common practice of exempting biases and BatchNorm parameters from
  /// sparsification -- top-1%% of a 128-element gamma would deliver huge,
  /// badly delayed multiplicative lumps). 0 sparsifies everything.
  std::size_t min_sparsify_size = 0;
  /// Downward (server -> worker) reply codec. Lossy modes (q8/q4/sbc)
  /// install a Compressor stage that the shard applies to each reply chunk
  /// *before* charging it to v_k, so bookkeeping matches the wire exactly
  /// (Eq. 6b) and the quantization error stays in M - v_k.
  DownCompress down_compress = DownCompress::kAuto;
  /// Runtime per-layer controller knobs, consumed only by
  /// Method::kDGSAdaptive (core/adaptive.h).
  AdaptiveConfig adaptive;

  /// Keep-ratio in effect during the given worker epoch.
  [[nodiscard]] double ratio_at_epoch(std::size_t epoch) const noexcept {
    if (epoch >= warmup_epochs) return ratio_percent;
    double r = 25.0;
    for (std::size_t e = 0; e < epoch; ++e) r *= 0.25;
    return r > ratio_percent ? r : ratio_percent;
  }

  /// Keep-ratio for one layer: small layers are exempt from sparsification.
  [[nodiscard]] double layer_ratio(std::size_t layer_size,
                                   std::size_t epoch) const noexcept {
    if (layer_size < min_sparsify_size) return 100.0;
    return ratio_at_epoch(epoch);
  }
};

/// Per-iteration compute time model for the discrete-event engine. The paper
/// trained on V100 GPUs; we model a forward-backward pass as base_seconds
/// (scaled per worker for heterogeneity) with multiplicative uniform jitter,
/// which is what creates realistic staleness distributions.
struct ComputeModel {
  double base_seconds = 5e-3;
  double jitter_frac = 0.10;                ///< time *= 1 + U(-j, +j)
  std::vector<double> worker_speed;         ///< Optional multipliers, size N.

  [[nodiscard]] double speed_of(std::size_t worker) const noexcept {
    return worker < worker_speed.size() ? worker_speed[worker] : 1.0;
  }
};

/// How ProcessEngine moves bytes between workers and the server (see
/// core/engine_process.h). kThread keeps everything in-process over
/// comm::Channel queues; kUds/kTcp fork the workers into real OS processes
/// talking to the server over a socket (comm/socket_transport.h).
enum class TransportKind : std::uint8_t {
  kThread,  ///< In-process, Channel-backed (no sockets, no forks).
  kUds,     ///< Unix-domain socket, forked worker processes.
  kTcp,     ///< TCP over loopback (with TCP_NODELAY), forked workers.
};

[[nodiscard]] constexpr const char* transport_name(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kUds: return "uds";
    case TransportKind::kTcp: return "tcp";
    case TransportKind::kThread: break;
  }
  return "thread";
}

/// Parse "thread" | "uds" | "tcp". Throws std::invalid_argument.
[[nodiscard]] inline TransportKind parse_transport_kind(const std::string& text) {
  if (text == "thread") return TransportKind::kThread;
  if (text == "uds") return TransportKind::kUds;
  if (text == "tcp") return TransportKind::kTcp;
  throw std::invalid_argument("unknown transport '" + text +
                              "' (expected thread|uds|tcp)");
}

struct TrainConfig {
  Method method = Method::kDGS;
  std::size_t num_workers = 4;
  std::size_t batch_size = 32;   ///< Per-worker batch size.
  std::size_t epochs = 10;       ///< Global epochs over the training set.
  double lr = 0.1;
  double momentum = 0.7;
  /// LR decays by lr_decay_factor at these fractions of total epochs
  /// (the paper decays at 30/50 & 40/50 for Cifar10, 30/90 & 60/90 for
  /// ImageNet).
  std::vector<double> lr_decay_at = {0.6, 0.8};
  double lr_decay_factor = 0.1;

  CompressionConfig compression;
  comm::NetworkModel network = comm::NetworkModel::ten_gbps();
  ComputeModel compute;

  std::uint64_t seed = 123;
  /// Optional warm start: when non-empty, training begins from these
  /// flattened parameters (e.g. a loaded Checkpoint) instead of a fresh
  /// seed-derived initialization.
  std::vector<float> warm_start;
  bool record_curve = true;
  /// Evaluate on the test set every this many epochs (0 = final only).
  std::size_t eval_every_epochs = 1;
  std::size_t eval_batch = 256;

  /// Parameter-server shards: the server's layer state is partitioned into
  /// this many contiguous, independently locked layer ranges, so pushes
  /// from different workers proceed concurrently except where they touch
  /// the same shard. Clamped to the model's layer count; 1 = unsharded.
  std::size_t server_shards = 1;
  /// ThreadEngine only: number of server threads draining the push inbox
  /// concurrently. 1 reproduces the classic single-loop server; values > 1
  /// only pay off together with server_shards > 1.
  std::size_t server_threads = 1;
  /// ThreadEngine only: bound on the server inbox (0 = unbounded). With a
  /// bound, workers block in send when the server pool falls behind
  /// (backpressure) instead of growing an arbitrarily deep queue.
  std::size_t server_inbox_capacity = 0;

  /// Intra-op compute threads granted to each worker's kernels (the packed
  /// GEMM layer, see util/gemm.h). Worker-level parallelism owns the
  /// threads: engines clamp the effective value to
  /// hardware_concurrency / num_workers (floored at 1) so the two levels
  /// never oversubscribe the machine, and record the effective value in
  /// RunResult::threads_per_worker. Kernel results are bitwise identical
  /// for any value (see the determinism contract in util/gemm.h), so this
  /// knob changes wall-clock only, never the trained model. Must be >= 1.
  std::size_t threads_per_worker = 1;

  /// Enable the runtime event tracer for this run (see obs/trace.h): worker,
  /// server-pool and shard spans are recorded and can be exported as Chrome
  /// trace JSON. No-op when the build compiled tracing out (DGS_TRACE=OFF).
  bool trace = false;

  /// Fault injection and recovery (see comm/fault.h and DESIGN.md §11):
  /// seeded message drop/dup/delay/reorder on the transport, a scheduled
  /// worker kill with rejoin, server-side worker leases and the worker
  /// retransmit policy. Default-constructed = disabled, zero overhead.
  comm::FaultConfig fault;

  /// ProcessEngine only (see core/engine_process.h): wire between workers
  /// and server. kUds/kTcp run each worker as a forked OS process.
  TransportKind transport = TransportKind::kThread;
  /// ProcessEngine only: serve pushes in strict worker round-robin order
  /// (single service thread, per-worker pending queues) so the trained
  /// model is bit-identical across thread/uds/tcp transports. Fault-free
  /// runs only — validated against the fault config.
  bool deterministic_service = false;
  /// kUds only: socket path; empty picks a unique path under /tmp.
  std::string uds_path;

  /// Learning rate in effect during the given (0-based) global epoch.
  [[nodiscard]] double lr_at_epoch(std::size_t epoch) const noexcept {
    double rate = lr;
    for (double frac : lr_decay_at)
      if (static_cast<double>(epoch) >=
          frac * static_cast<double>(epochs) - 1e-9)
        rate *= lr_decay_factor;
    return rate;
  }
};

}  // namespace dgs::core
