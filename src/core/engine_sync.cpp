#include "core/engine_sync.h"

#include <algorithm>
#include <stdexcept>

#include "comm/transport.h"
#include "core/engine_context.h"
#include "core/payload.h"
#include "util/math_kernels.h"
#include "util/parallel_for.h"

namespace dgs::core {

SyncEngine::SyncEngine(nn::ModelSpec spec,
                       std::shared_ptr<const data::Dataset> train,
                       std::shared_ptr<const data::Dataset> test,
                       TrainConfig config)
    : spec_(std::move(spec)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(std::move(config)) {
  validate_engine_config("SyncEngine", config_);
}

RunResult SyncEngine::run() {
  if (used_) throw std::logic_error("SyncEngine::run: already run");
  used_ = true;

  EngineContext context("SyncEngine", spec_, train_, test_, config_);
  // Single compute thread: grant it the whole per-worker budget (restored
  // on exit); results are bitwise identical for any value.
  const std::size_t intra_op = effective_threads_per_worker(config_);
  util::IntraOpBudgetScope intra_op_scope(intra_op);
  comm::SimTransport transport(config_.network, &context.metrics(),
                               &context.phases());
  auto epochs = context.make_epoch_tracker(/*eval_final_epoch=*/false);

  // Global model as theta0 + layered accumulation (mirrors the PS, but the
  // SSGD server is a plain averaging aggregator — no per-worker v_k state).
  const std::vector<float>& theta0 = context.theta0();
  LayeredVec accumulated = make_layered(context.layer_sizes());
  std::vector<float> theta = theta0;
  auto refresh_theta = [&] {
    theta = theta0;
    std::size_t at = 0;
    for (const auto& layer : accumulated) {
      util::axpy(1.0f, {layer.data(), layer.size()},
                 {theta.data() + at, layer.size()});
      at += layer.size();
    }
  };

  RunResult result;
  result.threads_per_worker = intra_op;
  const std::uint64_t sample_budget = context.sample_budget();
  const float inv_n = 1.0f / static_cast<float>(config_.num_workers);

  double now = 0.0;
  std::uint64_t samples = 0;

  // Phase attribution (obs/phase.h): a synchronous step is this round's
  // compute+send (per worker) plus the model install after the broadcast;
  // the server-side averaging is excluded, mirroring how the async engines
  // keep server work out of the worker-path identity.
  std::vector<double> step_us(context.num_workers(), 0.0);

  while (samples < sample_budget) {
    // 1. All workers compute on the identical global model; the barrier
    //    waits for the slowest upload.
    double round_end = now;
    const std::size_t schedule_epoch =
        static_cast<std::size_t>(samples / context.train_size());
    for (std::size_t k = 0; k < context.num_workers(); ++k) {
      Worker& worker = context.worker(k);
      const double step_begin = obs::Tracer::now_us();
      IterationResult iter;
      {
        DGS_TRACE_SCOPE("compute", "worker");
        iter = worker.compute_and_pack(
            static_cast<float>(config_.lr_at_epoch(schedule_epoch)),
            schedule_epoch);
        epochs.add_loss(iter.loss);
        samples += iter.batch;
        const double compute_done = now + context.compute_seconds(k);
        round_end = std::max(round_end, transport.send_push(compute_done,
                                                            iter.push));
      }
      step_us[k] = obs::Tracer::now_us() - step_begin;
      // 2. Server accumulates the average update: M -= (1/N) g_k.
      apply_update_payload(iter.push.payload, accumulated, -inv_n);
    }

    // 3. Broadcast the new model (dense, as SSGD implementations do).
    refresh_theta();
    const std::size_t broadcast_bytes =
        theta.size() * sizeof(float) + comm::kMessageHeaderBytes;
    double broadcast_end = round_end;
    for (std::size_t k = 0; k < context.num_workers(); ++k) {
      broadcast_end = std::max(
          broadcast_end, transport.send_reply_bytes(round_end,
                                                    broadcast_bytes));
      const double apply_begin = obs::Tracer::now_us();
      {
        DGS_TRACE_SCOPE("apply_diff", "worker");
        context.worker(k).set_model(theta);
      }
      // The broadcast install is the SSGD analogue of decode+apply; it is
      // not routed through Worker::apply_model_diff, so charge it manually.
      const double apply_us = obs::Tracer::now_us() - apply_begin;
      context.phases().add(k, obs::Phase::kDecodeApply, apply_us);
      context.phases().record_step(k, step_us[k] + apply_us);
    }
    now = broadcast_end;
    ++result.server_steps;

    // Epoch bookkeeping on the same sample-counting rule as the async
    // engines.
    epochs.advance(result, samples, now, [&] { return theta; });
  }

  refresh_theta();
  result.bytes = transport.bytes();
  result.samples_processed = samples;
  result.server_state_bytes = theta0.size() * sizeof(float) * 2;
  context.finalize(result, epochs, theta, now, /*terminal_loss=*/0.0,
                   /*always_append=*/false);
  return result;
}

}  // namespace dgs::core
