#include "core/engine_sync.h"

#include <algorithm>
#include <stdexcept>

#include "core/engine_sim.h"
#include "core/evaluator.h"
#include "core/payload.h"
#include "core/worker.h"
#include "util/math_kernels.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace dgs::core {

namespace {

std::vector<std::size_t> model_layer_sizes(const nn::ModelSpec& spec) {
  nn::ModulePtr model = spec.build();
  return nn::param_layer_sizes(model->parameters());
}

}  // namespace

SyncEngine::SyncEngine(nn::ModelSpec spec,
                       std::shared_ptr<const data::Dataset> train,
                       std::shared_ptr<const data::Dataset> test,
                       TrainConfig config)
    : spec_(std::move(spec)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(std::move(config)) {
  if (config_.num_workers == 0)
    throw std::invalid_argument("SyncEngine: num_workers == 0");
  if (config_.method == Method::kMSGD && config_.num_workers != 1)
    throw std::invalid_argument("MSGD is the single-node baseline (workers=1)");
}

RunResult SyncEngine::run() {
  if (used_) throw std::logic_error("SyncEngine::run: already run");
  used_ = true;
  util::Stopwatch wall;

  const std::vector<float> theta0 = config_.warm_start.empty()
                                        ? initial_parameters(spec_, config_.seed)
                                        : config_.warm_start;
  const std::vector<std::size_t> sizes = model_layer_sizes(spec_);

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(config_.num_workers);
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    workers.push_back(std::make_unique<Worker>(k, spec_, train_, config_, theta0));

  Evaluator evaluator(spec_, test_, config_.eval_batch);

  // Global model as theta0 + layered accumulation (mirrors the PS).
  LayeredVec accumulated = make_layered(sizes);
  std::vector<float> theta = theta0;
  auto refresh_theta = [&] {
    theta = theta0;
    std::size_t at = 0;
    for (const auto& layer : accumulated) {
      util::axpy(1.0f, {layer.data(), layer.size()},
                 {theta.data() + at, layer.size()});
      at += layer.size();
    }
  };

  // Compute-time jitter, identical model to the DES engine.
  util::Rng root(config_.seed ^ 0xD15C0DE5ULL);
  std::vector<util::Rng> jitter_rng;
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    jitter_rng.push_back(root.fork(k));
  auto compute_seconds = [&](std::size_t k) {
    const double jitter =
        config_.compute.jitter_frac * (2.0 * jitter_rng[k].uniform() - 1.0);
    return config_.compute.base_seconds * config_.compute.speed_of(k) *
           (1.0 + jitter);
  };

  RunResult result;
  const std::size_t train_size = train_->size();
  const std::uint64_t sample_budget =
      static_cast<std::uint64_t>(config_.epochs) * train_size;
  const float inv_n = 1.0f / static_cast<float>(config_.num_workers);

  comm::SharedLink up_link, down_link;
  double now = 0.0;
  std::uint64_t samples = 0;
  std::size_t completed_epochs = 0;
  double epoch_loss_sum = 0.0;
  std::uint64_t epoch_loss_count = 0;

  while (samples < sample_budget) {
    // 1. All workers compute on the identical global model; the barrier
    //    waits for the slowest upload.
    double round_end = now;
    const std::size_t schedule_epoch =
        static_cast<std::size_t>(samples / train_size);
    for (auto& worker : workers) {
      IterationResult iter = worker->compute_and_pack(
          static_cast<float>(config_.lr_at_epoch(schedule_epoch)),
          schedule_epoch);
      epoch_loss_sum += iter.loss;
      ++epoch_loss_count;
      samples += iter.batch;
      result.bytes.count_up(iter.push.wire_size());
      const double compute_done = now + compute_seconds(worker->id());
      const double arrived =
          up_link.begin(compute_done, config_.network.serialization_seconds(
                                          iter.push.wire_size())) +
          config_.network.latency_s;
      round_end = std::max(round_end, arrived);
      // 2. Server accumulates the average update: M -= (1/N) g_k.
      apply_update_payload(iter.push.payload, accumulated, -inv_n);
    }

    // 3. Broadcast the new model (dense, as SSGD implementations do).
    refresh_theta();
    const std::size_t broadcast_bytes =
        theta.size() * sizeof(float) + comm::kMessageHeaderBytes;
    double broadcast_end = round_end;
    for (auto& worker : workers) {
      const double arrived =
          down_link.begin(round_end, config_.network.serialization_seconds(
                                         broadcast_bytes)) +
          config_.network.latency_s;
      result.bytes.count_down(broadcast_bytes);
      broadcast_end = std::max(broadcast_end, arrived);
      worker->set_model(theta);
    }
    now = broadcast_end;
    ++result.server_steps;

    // Epoch bookkeeping on the same sample-counting rule as the async
    // engines.
    while (samples >=
           static_cast<std::uint64_t>(train_size) * (completed_epochs + 1)) {
      ++completed_epochs;
      const double loss =
          epoch_loss_count > 0
              ? epoch_loss_sum / static_cast<double>(epoch_loss_count)
              : 0.0;
      epoch_loss_sum = 0.0;
      epoch_loss_count = 0;
      if (config_.record_curve && config_.eval_every_epochs > 0 &&
          completed_epochs % config_.eval_every_epochs == 0) {
        const EvalResult eval = evaluator.evaluate(theta);
        result.curve.push_back(
            EpochPoint{completed_epochs, now, loss, eval.accuracy, eval.loss});
      }
    }
  }

  refresh_theta();
  const EvalResult final_eval = evaluator.evaluate(theta);
  if (result.curve.empty() || result.curve.back().epoch != completed_epochs)
    result.curve.push_back(EpochPoint{completed_epochs, now, 0.0,
                                      final_eval.accuracy, final_eval.loss});
  result.final_model = theta;
  result.final_test_accuracy = final_eval.accuracy;
  result.final_train_loss = result.curve.back().train_loss;
  result.sim_seconds = now;
  result.samples_processed = samples;
  for (const auto& worker : workers)
    result.worker_state_bytes =
        std::max(result.worker_state_bytes, worker->optimizer_state_bytes());
  result.server_state_bytes = theta0.size() * sizeof(float) * 2;
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace dgs::core
