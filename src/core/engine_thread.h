// Real-thread engine: one std::thread per worker plus a server thread,
// connected by comm::Channel queues.
//
// This engine provides genuine OS-scheduled asynchrony (no modeled clock):
// workers race, the server applies pushes in true arrival order, and all
// state crosses the same codec boundary as in the simulation engine. It is
// used for thread-safety validation, wall-clock throughput measurements and
// the cluster examples; the DES engine is used when deterministic curves or
// modeled bandwidth are needed.
#pragma once

#include <memory>

#include "core/config.h"
#include "core/metrics.h"
#include "data/dataset.h"
#include "nn/model.h"

namespace dgs::core {

class ThreadEngine {
 public:
  ThreadEngine(nn::ModelSpec spec, std::shared_ptr<const data::Dataset> train,
               std::shared_ptr<const data::Dataset> test, TrainConfig config);

  /// Run the full training job on real threads; blocks until completion.
  [[nodiscard]] RunResult run();

 private:
  nn::ModelSpec spec_;
  std::shared_ptr<const data::Dataset> train_;
  std::shared_ptr<const data::Dataset> test_;
  TrainConfig config_;
  bool used_ = false;
};

}  // namespace dgs::core
