// Per-layer float state ("layered vectors") shared by the server and the
// worker-side optimizers. Layer j corresponds to parameter j of the model,
// matching the per-layer loop of Algorithms 1-3.
#pragma once

#include <span>
#include <vector>

namespace dgs::core {

using LayeredVec = std::vector<std::vector<float>>;

/// Zero-initialized layered vector with the given per-layer sizes.
[[nodiscard]] inline LayeredVec make_layered(const std::vector<std::size_t>& sizes) {
  LayeredVec v;
  v.reserve(sizes.size());
  for (std::size_t s : sizes) v.emplace_back(s, 0.0f);
  return v;
}

[[nodiscard]] inline std::size_t layered_numel(const LayeredVec& v) noexcept {
  std::size_t n = 0;
  for (const auto& layer : v) n += layer.size();
  return n;
}

/// Concatenate into one flat vector (layer order).
[[nodiscard]] inline std::vector<float> layered_flatten(const LayeredVec& v) {
  std::vector<float> flat;
  flat.reserve(layered_numel(v));
  for (const auto& layer : v) flat.insert(flat.end(), layer.begin(), layer.end());
  return flat;
}

/// Split a flat vector by per-layer sizes.
[[nodiscard]] inline LayeredVec layered_split(std::span<const float> flat,
                                              const std::vector<std::size_t>& sizes) {
  LayeredVec v;
  v.reserve(sizes.size());
  std::size_t at = 0;
  for (std::size_t s : sizes) {
    v.emplace_back(flat.begin() + static_cast<std::ptrdiff_t>(at),
                   flat.begin() + static_cast<std::ptrdiff_t>(at + s));
    at += s;
  }
  return v;
}

}  // namespace dgs::core
