#include "core/server_shard.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"
#include "util/math_kernels.h"

namespace dgs::core {

ServerShard::ServerShard(std::size_t index, std::size_t first_layer,
                         std::vector<std::size_t> sizes,
                         std::size_t num_workers,
                         obs::MetricsRegistry* metrics,
                         obs::PhaseProfiler* phases)
    : first_layer_(first_layer), m_(make_layered(sizes)), phases_(phases) {
  for (std::size_t s : sizes) numel_ += s;
  v_.reserve(num_workers);
  for (std::size_t k = 0; k < num_workers; ++k)
    v_.push_back(make_layered(sizes));

  if (metrics != nullptr) {
    // Both timings share log-spaced microsecond buckets (~0.5us .. ~4s).
    lock_wait_us_ = &metrics->histogram("server.shard.lock_wait_us",
                                        obs::exponential_bounds(0.5, 2.0, 23));
    lock_hold_us_ = &metrics->histogram("server.shard.lock_hold_us",
                                        obs::exponential_bounds(0.5, 2.0, 23));
  }
#if DGS_TRACE_COMPILED
  // Register a resource track only when a tracing run is already underway;
  // otherwise long-lived processes creating many servers would bloat the
  // track table with shards that never record.
  if (obs::Tracer::instance().enabled())
    trace_track_ = obs::Tracer::instance().register_track(
        "shard/" + std::to_string(index));
#else
  (void)index;
#endif
}

ServerShard::ReplySegment ServerShard::apply_and_reply(
    std::size_t worker, std::span<const DecodedLayer* const> segments,
    float scale, const ShardReplyPolicy& policy) {
  ReplySegment reply;
  reply.layers.reserve(m_.size());

  const bool timed = lock_wait_us_ != nullptr;
  const double wait_begin = timed ? obs::Tracer::now_us() : 0.0;
  std::unique_lock lock(mutex_);
  const double hold_begin = timed ? obs::Tracer::now_us() : 0.0;
  if (timed) lock_wait_us_->record(hold_begin - wait_begin);
  DGS_TRACE_SCOPE_TRACK("apply+reply", "shard", trace_track_);
  LayeredVec& vk = v_[worker];
#if DGS_TRACE_COMPILED
  // Phase attribution: split each layer's critical-section time at the
  // apply-to-M / build-reply boundary, accumulated locally and charged to
  // the pushing worker once at the end (two profiler calls per push, not
  // per layer). No trace spans here: the shard-track span above already
  // covers this region, and phase spans must nest on the *caller's* track.
  double apply_us = 0.0;
  double reply_us = 0.0;
  double phase_mark = phases_ != nullptr ? obs::Tracer::now_us() : 0.0;
#endif
  for (std::size_t j = 0; j < m_.size(); ++j) {
    const std::size_t global = first_layer_ + j;
    auto& ml = m_[j];

    // M += scale * g for this layer, if the push carried it (Eq. 1).
    if (global < segments.size() && segments[global] != nullptr) {
      const DecodedLayer& segment = *segments[global];
      if (segment.sparse) {
        sparse::scatter_add(segment.chunk, scale, {ml.data(), ml.size()});
      } else {
        util::axpy(scale, {segment.dense.data(), segment.dense.size()},
                   {ml.data(), ml.size()});
      }
    }
#if DGS_TRACE_COMPILED
    if (phases_ != nullptr) {
      const double now = obs::Tracer::now_us();
      apply_us += now - phase_mark;
      phase_mark = now;
    }
#endif

    // G = M - v_k for this layer (Eq. 3 / 6a), staged in the shard-owned
    // diff_ buffer (capacity reused across pushes).
    diff_.resize(ml.size());
    std::span<float> diff{diff_.data(), diff_.size()};
    util::sub({ml.data(), ml.size()}, {vk[j].data(), vk[j].size()}, diff);

    // Keep everything (ratio 100, no selection pass) unless the policy
    // asks for secondary compression of this layer.
    const double ratio =
        policy.secondary_compression && ml.size() >= policy.min_sparsify_size
            ? policy.secondary_ratio_percent
            : 100.0;
    // Entries kept in G are *removed from the outstanding difference*;
    // the fused compact_zero leaves the residual (entries below thr) in
    // `diff`, which stays implicitly accumulated at the server because v_k
    // is only advanced by what was actually sent (Eq. 6b).
    sparse::LayerChunk chunk;
    workspace_.sparsify_zero(static_cast<std::uint32_t>(global), diff, ratio,
                             chunk);

    // Lossy downward stage (Alg. 2 secondary compression): rewrite the
    // chunk to exactly what the decoder will reconstruct *before* v_k is
    // advanced, so wire and bookkeeping stay bit-identical and the
    // quantization error remains in M - v_k (residual error feedback).
    if (policy.reply_stage != nullptr) policy.reply_stage->transform(chunk);
    reply.nnz += chunk.nnz();

    // v_{k,t+1} = v_{k,prev} + G (Eq. 6b): add exactly what is being sent.
    sparse::scatter_add(chunk, 1.0f, {vk[j].data(), vk[j].size()});
    reply.layers.push_back(std::move(chunk));
#if DGS_TRACE_COMPILED
    if (phases_ != nullptr) {
      const double now = obs::Tracer::now_us();
      reply_us += now - phase_mark;
      phase_mark = now;
    }
#endif
  }
#if DGS_TRACE_COMPILED
  if (phases_ != nullptr) {
    phases_->add(worker, obs::Phase::kServerApply, apply_us);
    phases_->add(worker, obs::Phase::kReplyEncode, reply_us);
  }
#endif
  if (timed) lock_hold_us_->record(obs::Tracer::now_us() - hold_begin);
  return reply;
}

void ServerShard::accumulate_model(
    std::span<float> flat, std::span<const std::size_t> layer_offsets) const {
  std::lock_guard lock(mutex_);
  for (std::size_t j = 0; j < m_.size(); ++j) {
    const auto& layer = m_[j];
    util::axpy(1.0f, {layer.data(), layer.size()},
               {flat.data() + layer_offsets[first_layer_ + j], layer.size()});
  }
}

void ServerShard::snapshot_m(LayeredVec& out) const {
  std::lock_guard lock(mutex_);
  for (std::size_t j = 0; j < m_.size(); ++j) out[first_layer_ + j] = m_[j];
}

void ServerShard::snapshot_v(std::size_t worker, LayeredVec& out) const {
  std::lock_guard lock(mutex_);
  const LayeredVec& vk = v_.at(worker);
  for (std::size_t j = 0; j < vk.size(); ++j) out[first_layer_ + j] = vk[j];
}

void ServerShard::reset_v(std::size_t worker) {
  std::lock_guard lock(mutex_);
  for (auto& layer : v_.at(worker)) std::fill(layer.begin(), layer.end(), 0.0f);
}

void ServerShard::adopt_v_from_m(std::size_t worker, LayeredVec& out_m) {
  std::lock_guard lock(mutex_);
  LayeredVec& vk = v_.at(worker);
  for (std::size_t j = 0; j < m_.size(); ++j) {
    out_m[first_layer_ + j] = m_[j];
    vk[j] = m_[j];
  }
}

std::vector<std::size_t> shard_partition(const std::vector<std::size_t>& sizes,
                                         std::size_t num_shards) {
  if (sizes.empty()) return {};
  const std::size_t shards = std::clamp<std::size_t>(num_shards, 1, sizes.size());
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;

  std::vector<std::size_t> firsts;
  firsts.reserve(shards);
  std::size_t layer = 0;
  std::size_t cumulative = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    firsts.push_back(layer);
    // Advance past this shard: take layers until the cumulative numel
    // reaches the s+1-th fraction of the total, but always take at least
    // one layer and leave at least one per remaining shard.
    const std::size_t remaining_shards = shards - s - 1;
    const std::size_t target = total * (s + 1) / shards;
    do {
      cumulative += sizes[layer];
      ++layer;
    } while (layer < sizes.size() - remaining_shards && cumulative < target);
  }
  return firsts;
}

}  // namespace dgs::core
