// Synchronous SSGD engine (the setting Gradient Dropping and DGC were
// originally designed for, §3.1 of the paper).
//
// Each round every worker computes a gradient on the SAME global model,
// runs its per-method compression (residuals stay worker-local), and the
// server applies the AVERAGE of the N updates before broadcasting the new
// model to everyone. The simulated round time is the synchronization
// barrier: max over workers of (compute + upload through the shared server
// NIC) plus the broadcast — which is exactly why stragglers hurt SSGD and
// motivate the asynchronous training DGS targets.
#pragma once

#include <memory>

#include "core/config.h"
#include "core/metrics.h"
#include "data/dataset.h"
#include "nn/model.h"

namespace dgs::core {

class SyncEngine {
 public:
  SyncEngine(nn::ModelSpec spec, std::shared_ptr<const data::Dataset> train,
             std::shared_ptr<const data::Dataset> test, TrainConfig config);

  /// Run the full training job and return metrics. Callable once.
  [[nodiscard]] RunResult run();

 private:
  nn::ModelSpec spec_;
  std::shared_ptr<const data::Dataset> train_;
  std::shared_ptr<const data::Dataset> test_;
  TrainConfig config_;
  bool used_ = false;
};

}  // namespace dgs::core
