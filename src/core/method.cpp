#include "core/method.h"

#include <algorithm>
#include <stdexcept>

namespace dgs::core {

const MethodTraits& method_traits(Method method) noexcept {
  static const MethodTraits kTraits[] = {
      {"MSGD", "N", "vanilla momentum", false, false},
      {"ASGD", "N", "N", false, false},
      {"GD-async", "model-difference dual-way top-k", "N", false, true},
      {"DGC-async", "model-difference dual-way top-k", "vanilla momentum", true,
       true},
      {"DGS", "model-difference dual-way top-k", "SAMomentum", false, false},
      {"TernGrad-async", "ternary quantization", "N", false, false},
      {"RandomDrop-async", "random coordinate dropping", "N", false, false},
      {"DGS+Tern", "dual-way top-k + ternary values", "SAMomentum", false,
       false},
      {"DGS-Adaptive", "adaptive per-layer dual-way top-k", "SAMomentum",
       false, false},
  };
  return kTraits[static_cast<std::size_t>(method)];
}

Method parse_method(const std::string& text) {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (t == "msgd") return Method::kMSGD;
  if (t == "asgd") return Method::kASGD;
  if (t == "gd" || t == "gd-async" || t == "gdasync") return Method::kGDAsync;
  if (t == "dgc" || t == "dgc-async" || t == "dgcasync") return Method::kDGCAsync;
  if (t == "dgs") return Method::kDGS;
  if (t == "terngrad" || t == "tern") return Method::kTernGrad;
  if (t == "randomdrop" || t == "rdrop") return Method::kRandomDrop;
  if (t == "dgs+tern" || t == "dgstern") return Method::kDgsTernary;
  if (t == "dgs-adaptive" || t == "dgsadaptive" || t == "adaptive")
    return Method::kDGSAdaptive;
  throw std::invalid_argument("unknown method: " + text);
}

bool method_sparsifies(Method method) noexcept {
  return method == Method::kGDAsync || method == Method::kDGCAsync ||
         method == Method::kDGS || method == Method::kRandomDrop ||
         method == Method::kDgsTernary || method == Method::kDGSAdaptive;
}

const char* down_compress_name(DownCompress mode) noexcept {
  switch (mode) {
    case DownCompress::kAuto: return "auto";
    case DownCompress::kCoo: return "coo";
    case DownCompress::kDense: return "dense";
    case DownCompress::kQ8: return "q8";
    case DownCompress::kQ4: return "q4";
    case DownCompress::kSbc: return "sbc";
  }
  return "?";
}

DownCompress parse_down_compress(const std::string& text) {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (t == "auto") return DownCompress::kAuto;
  if (t == "coo") return DownCompress::kCoo;
  if (t == "dense") return DownCompress::kDense;
  if (t == "q8" || t == "qcoo8") return DownCompress::kQ8;
  if (t == "q4" || t == "qcoo4") return DownCompress::kQ4;
  if (t == "sbc") return DownCompress::kSbc;
  throw std::invalid_argument("unknown down-compress mode: " + text);
}

}  // namespace dgs::core
