#include "core/engine_thread.h"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "comm/channel.h"
#include "core/engine_sim.h"
#include "core/evaluator.h"
#include "core/server.h"
#include "core/worker.h"
#include "util/stopwatch.h"

namespace dgs::core {

namespace {

std::vector<std::size_t> model_layer_sizes(const nn::ModelSpec& spec) {
  nn::ModulePtr model = spec.build();
  return nn::param_layer_sizes(model->parameters());
}

}  // namespace

ThreadEngine::ThreadEngine(nn::ModelSpec spec,
                           std::shared_ptr<const data::Dataset> train,
                           std::shared_ptr<const data::Dataset> test,
                           TrainConfig config)
    : spec_(std::move(spec)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(std::move(config)) {
  if (config_.method == Method::kMSGD && config_.num_workers != 1)
    throw std::invalid_argument("MSGD is the single-node baseline (workers=1)");
  if (config_.num_workers == 0)
    throw std::invalid_argument("ThreadEngine: num_workers == 0");
}

RunResult ThreadEngine::run() {
  if (used_) throw std::logic_error("ThreadEngine::run: already run");
  used_ = true;
  util::Stopwatch wall;

  const std::vector<float> theta0 = config_.warm_start.empty()
                                        ? initial_parameters(spec_, config_.seed)
                                        : config_.warm_start;

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(config_.num_workers);
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    workers.push_back(std::make_unique<Worker>(k, spec_, train_, config_, theta0));

  ServerOptions server_options;
  server_options.num_workers = config_.num_workers;
  server_options.secondary_compression = config_.compression.secondary;
  server_options.secondary_ratio_percent =
      config_.compression.secondary_ratio_percent;
  server_options.min_sparsify_size = config_.compression.min_sparsify_size;
  ParameterServer server(model_layer_sizes(spec_), theta0, server_options);
  Evaluator evaluator(spec_, test_, config_.eval_batch);

  comm::Channel<comm::Message> server_inbox;
  std::vector<std::unique_ptr<comm::Channel<comm::Message>>> worker_inbox;
  for (std::size_t k = 0; k < config_.num_workers; ++k)
    worker_inbox.push_back(std::make_unique<comm::Channel<comm::Message>>());

  // Per-worker accumulators (each written by exactly one thread).
  std::vector<std::uint64_t> up_bytes(config_.num_workers, 0);
  std::vector<std::uint64_t> up_msgs(config_.num_workers, 0);
  std::vector<double> loss_sum(config_.num_workers, 0.0);
  std::vector<std::uint64_t> loss_count(config_.num_workers, 0);
  std::vector<std::uint64_t> samples(config_.num_workers, 0);

  // Global sample budget (see engine_sim.cpp): workers race until the
  // collective budget is consumed, so fast workers contribute more updates.
  const std::uint64_t sample_budget =
      static_cast<std::uint64_t>(config_.epochs) * train_->size();
  std::atomic<std::uint64_t> samples_claimed{0};
  std::atomic<std::size_t> global_epoch{0};

  // ---- worker threads ------------------------------------------------------
  std::vector<std::thread> threads;
  threads.reserve(config_.num_workers);
  for (std::size_t k = 0; k < config_.num_workers; ++k) {
    threads.emplace_back([&, k] {
      Worker& w = *workers[k];
      while (true) {
        // Claim a batch from the global budget before computing it.
        const std::uint64_t claimed = samples_claimed.fetch_add(
            config_.batch_size, std::memory_order_relaxed);
        if (claimed >= sample_budget) return;
        const std::size_t epoch =
            global_epoch.load(std::memory_order_relaxed);
        IterationResult iter = w.compute_and_pack(
            static_cast<float>(config_.lr_at_epoch(epoch)), epoch);
        loss_sum[k] += iter.loss;
        ++loss_count[k];
        samples[k] += iter.batch;
        up_bytes[k] += iter.push.wire_size();
        ++up_msgs[k];
        if (!server_inbox.send(std::move(iter.push))) return;
        auto reply = worker_inbox[k]->receive();
        if (!reply) return;  // server shut down
        w.apply_model_diff(*reply);
      }
    });
  }

  // ---- server loop (this thread) -------------------------------------------
  RunResult result;
  const std::size_t train_size = train_->size();
  std::uint64_t samples_at_server = 0;
  std::size_t completed_epochs = 0;

  while (samples_at_server < sample_budget) {
    auto push = server_inbox.receive();
    if (!push) break;
    samples_at_server += config_.batch_size;
    global_epoch.store(samples_at_server / train_size,
                       std::memory_order_relaxed);
    comm::Message reply = server.handle_push(*push);
    result.staleness.record(server.last_staleness());
    result.bytes.count_down(reply.wire_size());
    const auto worker = static_cast<std::size_t>(reply.worker_id);
    worker_inbox[worker]->send(std::move(reply));

    // Epoch-boundary evaluation mirrors the DES engine.
    while (samples_at_server >=
           static_cast<std::uint64_t>(train_size) * (completed_epochs + 1)) {
      ++completed_epochs;
      if (config_.record_curve && config_.eval_every_epochs > 0 &&
          completed_epochs % config_.eval_every_epochs == 0) {
        const EvalResult eval = evaluator.evaluate(server.global_model_flat());
        result.curve.push_back(EpochPoint{completed_epochs, wall.seconds(), 0.0,
                                          eval.accuracy, eval.loss});
      }
    }
  }

  server_inbox.close();
  for (auto& inbox : worker_inbox) inbox->close();
  for (auto& t : threads) t.join();

  // ---- final metrics ---------------------------------------------------------
  const EvalResult final_eval = evaluator.evaluate(server.global_model_flat());
  double total_loss = 0.0;
  std::uint64_t total_loss_count = 0;
  for (std::size_t k = 0; k < config_.num_workers; ++k) {
    result.bytes.upward_bytes += up_bytes[k];
    result.bytes.upward_messages += up_msgs[k];
    result.samples_processed += samples[k];
    total_loss += loss_sum[k];
    total_loss_count += loss_count[k];
    result.worker_state_bytes =
        std::max(result.worker_state_bytes, workers[k]->optimizer_state_bytes());
  }
  result.final_model = server.global_model_flat();
  result.final_test_accuracy = final_eval.accuracy;
  result.final_train_loss =
      total_loss_count > 0 ? total_loss / static_cast<double>(total_loss_count)
                           : 0.0;
  result.wall_seconds = wall.seconds();
  result.sim_seconds = result.wall_seconds;
  result.server_steps = server.step();
  result.server_state_bytes = server.state_bytes();
  result.curve.push_back(EpochPoint{completed_epochs, result.wall_seconds,
                                    result.final_train_loss,
                                    final_eval.accuracy, final_eval.loss});
  return result;
}

}  // namespace dgs::core
