#include "core/engine_thread.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.h"
#include "comm/transport.h"
#include "core/engine_context.h"
#include "core/payload.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace dgs::core {

namespace {

[[nodiscard]] std::chrono::microseconds to_us(double seconds) {
  return std::chrono::microseconds(
      static_cast<std::chrono::microseconds::rep>(seconds * 1e6));
}

}  // namespace

ThreadEngine::ThreadEngine(nn::ModelSpec spec,
                           std::shared_ptr<const data::Dataset> train,
                           std::shared_ptr<const data::Dataset> test,
                           TrainConfig config)
    : spec_(std::move(spec)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(std::move(config)) {
  validate_engine_config("ThreadEngine", config_);
}

RunResult ThreadEngine::run() {
  if (used_) throw std::logic_error("ThreadEngine::run: already run");
  used_ = true;

  EngineContext context("ThreadEngine", spec_, train_, test_, config_);
  ParameterServer server = context.make_server();
  // With faults armed, sends use bounded retry-with-backoff instead of one
  // indefinite block (see transport.h) — a worker stuck behind a struggling
  // server pool makes progress decisions instead of camping on the lock.
  comm::SendRetryPolicy send_retry;
  if (config_.fault.enabled()) send_retry.attempts = 4;
  comm::ThreadTransport transport(config_.num_workers,
                                  config_.server_inbox_capacity,
                                  &context.metrics(), send_retry,
                                  &context.phases());

  // Fault plumbing (see comm/fault.h): a null plan makes the decorator a
  // passthrough and keeps every loop below on its legacy blocking path.
  std::unique_ptr<comm::FaultPlan> plan;
  if (config_.fault.enabled())
    plan = std::make_unique<comm::FaultPlan>(config_.fault,
                                             &context.metrics());
  comm::FaultyThreadTransport faulty(transport, plan.get());
  const bool retry_armed = plan != nullptr && config_.fault.message_faults();

  // Worker-side compute vs. wait accounting: how long each iteration's
  // forward/backward took and how long the worker then stalled for its
  // reply (the wait side also lands in "transport.reply_wait_us").
  obs::Histogram& compute_us = context.metrics().histogram(
      "worker.compute_us", obs::exponential_bounds(1.0, 2.0, 24));
  obs::Histogram& wait_us = context.metrics().histogram(
      "worker.wait_us", obs::exponential_bounds(1.0, 2.0, 24));

  // Global sample budget (see engine_context.h): workers race until the
  // collective budget is consumed, so fast workers contribute more updates.
  const std::uint64_t sample_budget = context.sample_budget();
  const std::size_t train_size = context.train_size();
  std::atomic<std::uint64_t> samples_claimed{0};
  std::atomic<std::uint64_t> samples_at_server{0};
  std::atomic<std::size_t> global_epoch{0};

  // ---- worker threads ------------------------------------------------------
  // Each worker thread gets the clamped intra-op budget for its compute
  // kernels (set once at thread start; the budget and its pool are
  // thread-local, see util/parallel_for.h).
  const std::size_t intra_op = effective_threads_per_worker(config_);
  std::vector<std::thread> worker_threads;
  worker_threads.reserve(config_.num_workers);
  for (std::size_t k = 0; k < config_.num_workers; ++k) {
    worker_threads.emplace_back([&, k] {
      util::set_intra_op_threads(intra_op);
#if DGS_TRACE_COMPILED
      if (obs::Tracer::instance().enabled())
        obs::Tracer::instance().set_thread_name("worker/" + std::to_string(k));
#endif
      Worker* w = &context.worker(k);
      EngineContext::WorkerTally& tally = context.tally(k);
      std::uint64_t next_seq = 0;  // survives crash/revive (monotonic dedup)
      bool killed_once = false;

      // Crash recovery: wait out the downtime, re-register, install the
      // warm-start snapshot. Returns false when the run is over (transport
      // shut down) and the thread should exit instead.
      const auto rejoin = [&]() -> bool {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(config_.fault.rejoin_delay_s));
        comm::Message request;
        request.kind = comm::MessageKind::kRejoinRequest;
        request.worker_id = static_cast<std::int32_t>(k);
        if (!faulty.send_push(std::move(request))) return false;
        while (true) {
          const auto reply = faulty.receive_reply(k);
          if (!reply || reply->kind == comm::MessageKind::kShutdown)
            return false;
          if (reply->kind == comm::MessageKind::kFullModel) {
            w = &context.revive_worker(k, flatten_dense_payload(reply->payload));
            DGS_LOG(kInfo) << "worker " << k << " rejoined at server step "
                           << reply->server_step;
            return true;
          }
          // Stale diffs addressed to the pre-crash incarnation: discard.
        }
      };

      while (true) {
        if (plan != nullptr && !killed_once &&
            plan->wants_kill(k, w->local_step())) {
          // Scheduled crash: local model, optimizer state and sampler
          // position are lost; the rejoin path warm-starts a new worker.
          killed_once = true;
          plan->count_kill();
          DGS_LOG(kWarn) << "worker " << k << " crashed at local step "
                         << w->local_step();
          if (!rejoin()) return;
          continue;
        }

        // Claim a batch from the global budget before computing it.
        const std::uint64_t claimed = samples_claimed.fetch_add(
            config_.batch_size, std::memory_order_relaxed);
        if (claimed >= sample_budget) return;
        const std::size_t epoch = global_epoch.load(std::memory_order_relaxed);
        const double compute_begin = obs::Tracer::now_us();
        IterationResult iter;
        {
          DGS_TRACE_SCOPE("compute", "worker");
          iter = w->compute_and_pack(
              static_cast<float>(config_.lr_at_epoch(epoch)), epoch);
        }
        compute_us.record(obs::Tracer::now_us() - compute_begin);
        tally.loss_sum += iter.loss;
        ++tally.loss_count;
        tally.samples += iter.batch;
        iter.push.seq = ++next_seq;

        if (!retry_armed) {
          // Reliable transport: the legacy blocking protocol.
          if (!faulty.send_push(std::move(iter.push))) return;
          tally.update_density_sum += iter.update_density;
          const double wait_begin = obs::Tracer::now_us();
          const auto reply = faulty.receive_reply(k);
          wait_us.record(obs::Tracer::now_us() - wait_begin);
          if (!reply || reply->kind == comm::MessageKind::kShutdown)
            return;  // server exhausted the budget and broadcast the stop
          if (reply->kind == comm::MessageKind::kFullModel) {
            // Lease-resync after a false-positive reclaim: warm restart.
            w = &context.revive_worker(k,
                                       flatten_dense_payload(reply->payload));
            continue;
          }
          {
            DGS_TRACE_SCOPE("apply_diff", "worker");
            w->apply_model_diff(*reply);
          }
          // One full step closed: compute + send + reply wait + apply,
          // everything since the budget claim (obs/phase.h attribution).
          context.phases().record_step(k,
                                       obs::Tracer::now_us() - compute_begin);
          continue;
        }

        // Faulty transport: send, then wait with a deadline; a silent
        // deadline retransmits the same push (same seq, next attempt) so
        // dropped pushes and dropped replies both heal. After
        // max_retransmits the worker declares itself partitioned and goes
        // through the rejoin path.
        comm::Message push = iter.push;
        if (!faulty.send_push(comm::Message(push))) return;
        tally.update_density_sum += iter.update_density;
        std::uint32_t attempt = 0;
        bool resolved = false;
        while (!resolved) {
          comm::Message reply;
          const double wait_begin = obs::Tracer::now_us();
          const auto status = faulty.receive_reply_for(
              k, reply, to_us(config_.fault.retransmit_timeout_s));
          switch (status) {
            case comm::ChannelStatus::kClosed:
              return;
            case comm::ChannelStatus::kTimedOut: {
              if (attempt >= config_.fault.max_retransmits) {
                DGS_LOG(kWarn)
                    << "worker " << k << " gave up on push seq " << push.seq
                    << " after " << attempt << " retransmits; rejoining";
                if (!rejoin()) return;
                resolved = true;  // push abandoned; rejoin resynced us
                break;
              }
              ++attempt;
              plan->count_retransmit();
              push.attempt = attempt;
              if (!faulty.send_push(comm::Message(push))) return;
              break;
            }
            case comm::ChannelStatus::kOk: {
              wait_us.record(obs::Tracer::now_us() - wait_begin);
              if (reply.kind == comm::MessageKind::kShutdown) return;
              if (reply.kind == comm::MessageKind::kFullModel) {
                w = &context.revive_worker(
                    k, flatten_dense_payload(reply.payload));
                resolved = true;
                break;
              }
              if (reply.seq != push.seq) break;  // stale/duplicate reply
              {
                DGS_TRACE_SCOPE("apply_diff", "worker");
                w->apply_model_diff(reply);
              }
              context.phases().record_step(
                  k, obs::Tracer::now_us() - compute_begin);
              resolved = true;
              break;
            }
          }
        }
      }
    });
  }

  // ---- server thread pool --------------------------------------------------
  // `server_threads` threads drain the shared inbox concurrently; the
  // sharded server (see server.h) lets pushes overlap except where they
  // touch the same shard. Epoch bookkeeping and the learning curve are
  // serialized under one mutex; staleness is striped per thread and merged
  // at the end. The thread that crosses the sample budget broadcasts
  // kShutdown and closes the transport, which drains both the remaining
  // server threads (closed inbox) and any workers still blocked on a reply.
  RunResult result;
  auto epochs = context.make_epoch_tracker(/*eval_final_epoch=*/false);
  std::mutex epoch_mutex;   // guards `epochs` + result.curve
  std::mutex merge_mutex;   // guards result.staleness
  const auto server_model = [&server] { return server.global_model_flat(); };

  const std::size_t pool_size =
      config_.server_threads > 0 ? config_.server_threads : 1;
  auto serve = [&](std::size_t thread_index) {
#if DGS_TRACE_COMPILED
    if (obs::Tracer::instance().enabled())
      obs::Tracer::instance().set_thread_name("server/" +
                                              std::to_string(thread_index));
#else
    (void)thread_index;
#endif
    StalenessStats staleness_stripe;
    while (true) {
      auto push = transport.receive_push();
      if (!push) break;
      const double now = context.wall_seconds();

      if (push->kind == comm::MessageKind::kRejoinRequest) {
        comm::Message reply = server.handle_rejoin(*push, now);
        const auto worker = static_cast<std::size_t>(reply.worker_id);
        (void)faulty.send_reply(worker, std::move(reply));
        continue;
      }
      if (config_.fault.lease_timeout_s > 0.0)
        server.reclaim_expired_leases(now);

      std::uint64_t staleness = 0;
      bool duplicate = false;
      comm::Message reply = server.handle_push(*push, &staleness, &duplicate);
      server.touch_lease(static_cast<std::size_t>(push->worker_id), now);
      const auto worker = static_cast<std::size_t>(reply.worker_id);
      (void)faulty.send_reply(worker, std::move(reply));
      if (duplicate) continue;  // retransmit or dup copy: no new samples

      staleness_stripe.record(staleness);
      const std::uint64_t total =
          samples_at_server.fetch_add(config_.batch_size,
                                      std::memory_order_relaxed) +
          config_.batch_size;
      global_epoch.store(total / train_size, std::memory_order_relaxed);
      {
        // Epoch-boundary evaluation mirrors the DES engine. Evaluating
        // while other server threads keep applying pushes is safe: the
        // model snapshot locks each shard in turn.
        std::lock_guard lock(epoch_mutex);
        epochs.advance(result, total, context.wall_seconds(), server_model);
      }
      if (total >= sample_budget) {
        transport.shutdown();
        break;
      }
    }
    std::lock_guard lock(merge_mutex);
    result.staleness.merge(staleness_stripe);
  };

  std::vector<std::thread> server_pool;
  server_pool.reserve(pool_size);
  for (std::size_t t = 0; t < pool_size; ++t)
    server_pool.emplace_back([&serve, t] { serve(t); });

  // Join order matters under faults: dropped pushes mean samples_at_server
  // may never reach the budget, so the pool cannot be relied on to initiate
  // shutdown. Workers always terminate (the claim counter is exhausted or
  // the transport closes under them), so join them first, then close the
  // transport to drain the pool.
  for (auto& t : worker_threads) t.join();
  transport.shutdown();
  for (auto& t : server_pool) t.join();

  // ---- final metrics ---------------------------------------------------------
  result.bytes = transport.bytes();
  result.samples_processed = context.total_tally_samples();
  if (result.bytes.upward_messages > 0) {
    double density_sum = 0.0;
    for (std::size_t k = 0; k < config_.num_workers; ++k)
      density_sum += context.tally(k).update_density_sum;
    result.mean_upward_density =
        density_sum / static_cast<double>(result.bytes.upward_messages);
  }
  if (server.total_reply_dense() > 0)
    result.mean_downward_density =
        static_cast<double>(server.total_reply_nnz()) /
        static_cast<double>(server.total_reply_dense());
  result.reply_elements = server.total_reply_nnz();
  result.server_steps = server.step();
  result.server_state_bytes = server.state_bytes();
  result.threads_per_worker = intra_op;
  context.finalize(result, epochs, server.global_model_flat(),
                   context.wall_seconds(), context.mean_tally_loss(),
                   /*always_append=*/true);
  result.sim_seconds = result.wall_seconds;
  return result;
}

}  // namespace dgs::core
