// Figure 2: learning curves (top-1 accuracy and training loss) of ResNet-18
// on Cifar10 with 4 workers, for MSGD / ASGD / GD-async / DGC-async / DGS.
//
// Reproduced on the SynthCIFAR task (see DESIGN.md for substitutions).
// Expected shape: DGS tracks the single-node MSGD baseline most closely;
// DGC-async converges slightly slower but close; GD-async and ASGD trail.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 4, "asynchronous worker count"));
  if (benchkit::parse_harness_options(flags, options)) return 0;

  const benchkit::Task task = benchkit::make_cifar_task(
      options.epoch_scale(), options.seed ? options.seed : 42);
  const auto data = benchkit::load(task);

  const std::pair<Method, const char*> methods[] = {
      {Method::kMSGD, "MSGD"},         {Method::kASGD, "ASGD"},
      {Method::kGDAsync, "GD-async"},  {Method::kDGCAsync, "DGC-async"},
      {Method::kDGS, "DGS"},
  };

  std::printf("== Figure 2: ResNet-18 on Cifar10, %zu workers ==\n", workers);
  std::printf("   (SynthCIFAR substitute, %zu epochs%s)\n\n", task.config.epochs,
              options.full ? "" : "; use --full for the paper-length schedule");

  std::map<Method, core::RunResult> results;
  for (const auto& [method, name] : methods) {
    benchkit::RunSpec spec;
    spec.method = method;
    spec.workers = workers;
    spec.fault = options.fault;  // --fault-* flags: curves under chaos
    results[method] = benchkit::run_one(task, data, spec);
    std::fprintf(stderr, "%s done (final %.2f%%)\n", name,
                 100.0 * results[method].final_test_accuracy);
  }

  // All runs share the same epoch grid (epoch-boundary evaluation).
  util::CurveSet acc("epoch", {"MSGD", "ASGD", "GD-async", "DGC-async", "DGS"});
  util::CurveSet loss("epoch", {"MSGD", "ASGD", "GD-async", "DGC-async", "DGS"});
  const std::size_t epochs = task.config.epochs;
  for (std::size_t e = 1; e <= epochs; ++e) {
    std::vector<double> accs, losses;
    for (const auto& [method, name] : methods) {
      const auto& curve = results[method].curve;
      double a = std::nan(""), l = std::nan("");
      for (const auto& p : curve)
        if (p.epoch == e) {
          a = 100.0 * p.test_accuracy;
          l = p.train_loss;
        }
      accs.push_back(a);
      losses.push_back(l);
    }
    acc.add_point(static_cast<double>(e), accs);
    loss.add_point(static_cast<double>(e), losses);
  }

  std::printf("--- Top-1 accuracy (%%) vs epoch ---\n");
  acc.print(std::cout);
  acc.print_ascii_chart(std::cout);
  std::printf("\n--- Training loss vs epoch ---\n");
  loss.print(std::cout);
  loss.print_ascii_chart(std::cout, 72, 20, /*log_y=*/true);

  const std::string acc_csv = benchkit::csv_path(options, "fig2_accuracy");
  if (!acc_csv.empty()) {
    acc.write_csv(acc_csv);
    loss.write_csv(benchkit::csv_path(options, "fig2_loss"));
  }
  return 0;
}
