// Shared experiment kit for the per-table / per-figure benchmark harnesses.
//
// A Task bundles the synthetic dataset recipe, the model architecture and
// the training-config template used by the paper's evaluation section; the
// harnesses override method / worker count / batch / network per experiment.
// `epoch_scale` shrinks training for --quick runs (CI smoke) while keeping
// the schedule shape (LR decay points are fractions of total epochs).
#pragma once

#include <cstdint>
#include <string>

#include "core/session.h"
#include "data/synthetic.h"
#include "util/flags.h"

namespace dgs::benchkit {

struct Task {
  std::string name;
  data::SyntheticSpec data_spec;
  std::size_t model_width = 96;
  std::size_t model_blocks = 2;
  core::TrainConfig config;  ///< Template; method/workers set per run.
};

/// The paper's Cifar10 stand-in: 10 classes, moderate difficulty,
/// 50-epoch-style schedule with decay at 60%/80%.
[[nodiscard]] Task make_cifar_task(double epoch_scale = 1.0,
                                   std::uint64_t seed = 42);

/// The paper's ImageNet stand-in: 50 classes, higher dimension, harder
/// separation, 90-epoch-style schedule with decay at 33%/67%.
[[nodiscard]] Task make_imagenet_task(double epoch_scale = 1.0,
                                      std::uint64_t seed = 1337);

/// Build the model spec for a task given its generated dataset.
[[nodiscard]] nn::ModelSpec model_of(const Task& task,
                                     const data::SyntheticDataset& data);

/// Generate the task's dataset (deterministic).
[[nodiscard]] data::SyntheticDataset load(const Task& task);

/// Per-run overrides applied on top of the task's config template.
struct RunSpec {
  core::Method method = core::Method::kDGS;
  std::size_t workers = 4;
  std::size_t batch = 0;          ///< 0 = keep the task default.
  double momentum = -1.0;         ///< <0 = keep the task default.
  double lr = -1.0;               ///< <0 = keep the task default.
  double ratio = -1.0;            ///< Top-R%% kept; <0 = keep task default.
  bool secondary_compression = false;
  double secondary_ratio = 1.0;
  /// Downward reply wire codec (see core/method.h and DESIGN.md §14):
  /// kAuto keeps the historical COO/dense heuristic; q8/q4/sbc install a
  /// lossy stage whose quantization error stays in M - v_k.
  core::DownCompress down_compress = core::DownCompress::kAuto;
  comm::NetworkModel network{0.0, 0.0};  ///< ideal = keep the task default.
  bool record_curve = true;
  bool trace = false;             ///< Enable the runtime event tracer.
  std::uint64_t seed = 0;         ///< 0 = keep the task default.
  std::size_t epochs = 0;         ///< 0 = keep the task default.
  double compute_seconds = 0.0;   ///< <=0 = keep the task default. Used by the
                                  ///< network figures to match the paper's
                                  ///< transfer/compute ratio (ResNet-18 over
                                  ///< 1 Gbps is ~3.3x comm-bound).
  bool homogeneous = false;       ///< Equal-speed, jitter-free workers (used
                                  ///< by the throughput figure).
  std::ptrdiff_t min_sparsify = -1;  ///< Override min_sparsify_size; -1 keeps
                                     ///< the task default, 0 sparsifies all
                                     ///< layers (paper's Fig. 5/6 setting).
  comm::FaultConfig fault;  ///< Fault injection (see comm/fault.h); default
                            ///< disabled. Filled from the --fault-* flags.
  /// Execution engine: "sim" (default) runs the deterministic DES engine;
  /// "thread" | "uds" | "tcp" run the wire-only ProcessEngine over that
  /// transport instead — "uds"/"tcp" fork every worker as a real OS
  /// process. Socket runs are wall-clock: the DES network/compute model is
  /// ignored. Copy from HarnessOptions::transport (--transport).
  std::string transport = "sim";
  std::size_t threads_per_worker = 0;  ///< Intra-op kernel threads per worker
                                       ///< (see core/config.h); 0 = keep the
                                       ///< task default (serial).
};

/// Materialize the full TrainConfig for a run (applies method conventions:
/// MSGD forces workers=1; DGC-async enables sparsity warmup).
[[nodiscard]] core::TrainConfig resolve(const Task& task, const RunSpec& run);

/// Run one configuration on the deterministic simulation engine.
[[nodiscard]] core::RunResult run_one(const Task& task,
                                      const data::SyntheticDataset& data,
                                      const RunSpec& run);

/// Standard harness flags: --full (longer runs), --seed, --out-dir for CSVs,
/// --metrics-out / --trace-out for the observability exports (see obs/).
struct HarnessOptions {
  bool full = false;
  std::uint64_t seed = 0;   ///< 0 = task default.
  std::string out_dir;      ///< empty = no CSV output.
  std::string metrics_out;  ///< empty = no JSONL metrics export.
  std::string trace_out;    ///< empty = event tracing stays off.
  std::string ledger_out;   ///< empty = no run-ledger JSONL export.
  /// Fault injection from --fault-seed / --fault-drop-pct / --fault-dup-pct
  /// / --fault-kill-worker / --fault-kill-step / --fault-lease-s (see
  /// comm/fault.h). Copy into RunSpec::fault to arm a run.
  comm::FaultConfig fault;
  /// Intra-op kernel threads per worker from --threads-per-worker (0 keeps
  /// the task default). Copy into RunSpec::threads_per_worker; the engine
  /// clamps against oversubscription and RunResult records the effective
  /// value. Bitwise-invariant: affects wall-clock only.
  std::size_t threads_per_worker = 0;
  /// Downward reply codec from --down-compress (auto|coo|dense|q8|q4|sbc).
  /// Copy into RunSpec::down_compress.
  core::DownCompress down_compress = core::DownCompress::kAuto;
  /// Engine/transport from --transport (sim|thread|uds|tcp). Copy into
  /// RunSpec::transport; anything but "sim" routes run_one through the
  /// out-of-process ProcessEngine (core/engine_process.h).
  std::string transport = "sim";

  [[nodiscard]] double epoch_scale() const noexcept { return full ? 1.0 : 0.25; }
  /// Runs should enable the event tracer (set RunSpec::trace from this).
  [[nodiscard]] bool trace() const noexcept { return !trace_out.empty(); }
};

/// Parses the standard flags; returns true if --help was printed (caller
/// should exit 0).
bool parse_harness_options(util::Flags& flags, HarnessOptions& options);

/// "<out_dir>/<name>.csv" or empty when CSV output is disabled.
[[nodiscard]] std::string csv_path(const HarnessOptions& options,
                                   const std::string& name);

/// Append one run's metrics snapshot to --metrics-out as JSONL, tagged with
/// `run` so sweep rows stay distinguishable. No-op (returns false) when the
/// flag was not given.
bool export_metrics(const HarnessOptions& options,
                    const core::RunResult& result, const std::string& run);

/// Append one run's ledger (see obs/ledger.h) to --ledger-out as one JSON
/// line, stamped with `run` (series key, e.g. "w8/DGS") and `bench` (the
/// harness family, e.g. "table3_cifar_scalability"). These are the records
/// scripts/record_trajectory.py folds into the committed BENCH_*.json
/// trajectory. No-op (returns false) when the flag was not given.
bool export_ledger(const HarnessOptions& options,
                   const core::RunResult& result, const std::string& run,
                   const std::string& bench);

/// Write the process-wide trace buffer to --trace-out as Chrome trace JSON
/// (open in Perfetto / chrome://tracing). Call once, after the last traced
/// run. No-op (returns false) when the flag was not given.
bool export_trace(const HarnessOptions& options);

}  // namespace dgs::benchkit
