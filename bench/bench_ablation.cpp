// Ablation / calibration harness (not a paper table): sweeps one axis at a
// time — learning rate, momentum, sparsity ratio, straggler factor — and
// prints final accuracy per method. Used to pick the operating point where
// the substitute task reproduces the paper's method ordering, and to expose
// the sensitivity the paper discusses in §5.4 (momentum vs worker count).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace dgs;
using benchkit::RunSpec;
using core::Method;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const std::string axis =
      flags.str("axis", "lr", "sweep axis: lr | momentum | ratio | workers");
  const std::string task_name =
      flags.str("task", "cifar", "task: cifar | imagenet");
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 8, "worker count for non-worker sweeps"));
  if (benchkit::parse_harness_options(flags, options)) return 0;

  const benchkit::Task task =
      task_name == "imagenet"
          ? benchkit::make_imagenet_task(options.epoch_scale(), 1337)
          : benchkit::make_cifar_task(options.epoch_scale(), 42);
  const auto data = benchkit::load(task);

  const Method methods[] = {Method::kASGD, Method::kGDAsync, Method::kDGCAsync,
                            Method::kDGS, Method::kDGSAdaptive};

  util::Table table(
      {axis, "ASGD", "GD-async", "DGC-async", "DGS", "DGS-Adaptive"});
  auto run_row = [&](const std::string& label, auto mutate) {
    std::vector<std::string> row{label};
    for (Method m : methods) {
      RunSpec spec;
      spec.method = m;
      spec.workers = workers;
      spec.record_curve = false;
      mutate(spec);
      const auto r = benchkit::run_one(task, data, spec);
      row.push_back(util::Table::pct(100.0 * r.final_test_accuracy, 2, false));
      std::fprintf(stderr, ".");
    }
    table.add_row(row);
  };

  if (axis == "lr") {
    for (double lr : {0.01, 0.02, 0.05, 0.1, 0.2})
      run_row(util::Table::num(lr, 3), [&](RunSpec& s) { s.lr = lr; });
  } else if (axis == "momentum") {
    for (double m : {0.3, 0.45, 0.6, 0.7, 0.9})
      run_row(util::Table::num(m, 2), [&](RunSpec& s) { s.momentum = m; });
  } else if (axis == "ratio") {
    for (double r : {0.5, 1.0, 5.0, 10.0, 100.0})
      run_row(util::Table::num(r, 1), [&](RunSpec& s) { s.ratio = r; });
  } else if (axis == "workers") {
    for (std::size_t w : {2u, 4u, 8u, 16u, 32u})
      run_row(std::to_string(w), [&](RunSpec& s) { s.workers = w; });
  } else {
    std::fprintf(stderr, "unknown axis %s\n", axis.c_str());
    return 1;
  }

  std::fprintf(stderr, "\n");
  std::printf("== Ablation: %s sweep on %s (%zu workers unless swept) ==\n",
              axis.c_str(), task.name.c_str(), workers);
  table.print(std::cout);
  const std::string csv = benchkit::csv_path(options, "ablation_" + axis);
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
