// Figure 6: training speedup of ASGD and DGS on ImageNet-style work with
// 10 Gbps and 1 Gbps Ethernet, 1..16 workers.
//
// Speedup = samples/second relative to a single worker with no
// communication cost (the paper's single-GPU reference; data-IO excluded).
// Expected shape: DGS is near-linear at 10 Gbps and still ~12x at 16
// workers on 1 Gbps, while ASGD saturates the server NIC and flattens at
// ~1x on 1 Gbps. As in Fig. 5, compute time is calibrated to the paper's
// transfer/compute ratio, and the paper's R=1 (99%) sparsity is used.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "nn/model.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto worker_list =
      flags.i64_list("workers", {1, 2, 4, 8, 16}, "worker counts");
  const double ratio = flags.f64("ratio", 1.0, "top-R% kept (paper: 1)");
  if (benchkit::parse_harness_options(flags, options)) return 0;

  // Throughput does not need a long schedule: a couple of epochs reaches
  // steady state on the simulated cluster.
  benchkit::Task task = benchkit::make_imagenet_task(
      options.epoch_scale(), options.seed ? options.seed : 1337);
  const auto data = benchkit::load(task);

  const nn::ModelSpec spec = benchkit::model_of(task, data);
  nn::ModulePtr probe = spec.build();
  const std::size_t model_bytes =
      nn::param_numel(probe->parameters()) * sizeof(float);
  const double compute_seconds =
      (static_cast<double>(model_bytes) * 8.0 / 1e9) / 3.3;
  // Scale the per-message latency with compute as well: in the paper's
  // testbed latency (~50 us) is ~5e-4 of an iteration (~110 ms); keeping
  // that ratio stops fixed latency from dominating our scaled-down model.
  const double latency = compute_seconds * 5e-4;
  const comm::NetworkModel ten_g{10e9, latency};
  const comm::NetworkModel one_g{1e9, latency};

  auto throughput = [&](Method method, std::size_t workers,
                        comm::NetworkModel network) {
    benchkit::RunSpec run_spec;
    run_spec.method = method;
    run_spec.workers = workers;
    run_spec.ratio = ratio;
    run_spec.network = network;
    run_spec.compute_seconds = compute_seconds;
    run_spec.secondary_compression = method == Method::kDGS;
    run_spec.secondary_ratio = ratio;
    run_spec.min_sparsify = 0;  // sparsify every layer, as in the paper
    run_spec.homogeneous = true;  // clean speedup curve, equal-speed GPUs
    run_spec.record_curve = false;
    run_spec.epochs = options.full ? 4 : 2;
    const auto result = benchkit::run_one(task, data, run_spec);
    return result.samples_per_second();
  };

  // Single-GPU reference: one worker, free network (no PS communication).
  const double reference =
      throughput(Method::kASGD, 1, comm::NetworkModel{1e15, 0.0});

  std::printf("== Figure 6: speedup vs workers (reference: 1 comm-free GPU) ==\n");
  std::printf("   model %.1f KB, compute %.3f ms/iter, R=%.0f%%\n\n",
              model_bytes / 1e3, compute_seconds * 1e3, ratio);

  util::CurveSet speedups("workers", {"ASGD@10G", "DGS@10G", "ASGD@1G",
                                      "DGS@1G", "linear"});
  util::Table table({"Workers", "ASGD@10G", "DGS@10G", "ASGD@1G", "DGS@1G"});
  for (std::int64_t w : worker_list) {
    const auto workers = static_cast<std::size_t>(w);
    const double a10 = throughput(Method::kASGD, workers, ten_g) / reference;
    const double d10 = throughput(Method::kDGS, workers, ten_g) / reference;
    const double a1 = throughput(Method::kASGD, workers, one_g) / reference;
    const double d1 = throughput(Method::kDGS, workers, one_g) / reference;
    speedups.add_point(static_cast<double>(w),
                       {a10, d10, a1, d1, static_cast<double>(w)});
    table.add_row({std::to_string(w), util::Table::num(a10, 2),
                   util::Table::num(d10, 2), util::Table::num(a1, 2),
                   util::Table::num(d1, 2)});
    std::fprintf(stderr, "w=%lld done\n", static_cast<long long>(w));
  }

  table.print(std::cout);
  std::printf("\n");
  speedups.print_ascii_chart(std::cout);
  std::printf("\npaper reference: DGS ~linear @10G; @1G DGS 12.6x vs ASGD ~1x"
              " at 16 workers\n");

  const std::string csv = benchkit::csv_path(options, "fig6_speedup");
  if (!csv.empty()) speedups.write_csv(csv);
  return 0;
}
