// Table 2: final top-1 accuracy of ResNet-18 trained on Cifar10 and
// ImageNet with 4 workers (MSGD is the single-node baseline).
//
// Prints our measured accuracy next to the paper's reported numbers. The
// absolute values differ (synthetic tasks, shorter horizon); the claim under
// test is the ORDERING: MSGD >= DGS > DGC-async > {GD-async, ASGD}.
//
// The DGS-Adaptive row (not in the paper) is this repo's runtime per-layer
// sparsity controller (core/adaptive.h). --gate-out additionally runs the
// adaptive-vs-fixed comparison at an aggressive keep-ratio (--gate-ratio)
// and emits the accuracy/bytes series scripts/check_bench.py --table2 gates
// in CI: adaptive must hold accuracy within 0.5 pt of fixed-R DGS at <=
// 1.05x its bytes per element.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

namespace {

struct PaperRow {
  Method method;
  double cifar;     // paper top-1 %; <0 = not in the paper
  double imagenet;  // paper top-1 %; <0 = not in the paper
};

constexpr PaperRow kPaper[] = {
    {Method::kMSGD, 93.08, 69.40},    {Method::kASGD, 90.74, 66.68},
    {Method::kGDAsync, 92.01, 66.26}, {Method::kDGCAsync, 92.64, 68.37},
    {Method::kDGS, 92.91, 69.00},     {Method::kDGSAdaptive, -1.0, -1.0},
};

/// Upward payload bytes per shipped element (the COO cost the gate bounds).
double up_bytes_per_element(const core::RunResult& result) {
  return result.ledger.up_bytes_per_element;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 4, "asynchronous worker count"));
  const bool skip_imagenet =
      flags.boolean("cifar-only", false, "skip the (slower) ImageNet half");
  const std::string only_method = flags.str(
      "method", "", "run only this method (e.g. dgs-adaptive); empty = all");
  const std::string gate_out = flags.str(
      "gate-out", "",
      "write adaptive-vs-fixed gate metrics JSON here (empty = off)");
  const double gate_ratio = flags.f64(
      "gate-ratio", 2.0, "aggressive keep-ratio %% for the --gate-out runs");
  if (benchkit::parse_harness_options(flags, options)) return 0;

  util::Table table({"Dataset", "Training Method", "Workers", "Paper Top-1",
                     "Ours Top-1"});

  auto run_block = [&](const benchkit::Task& task, const char* dataset,
                       bool imagenet_column) {
    const auto data = benchkit::load(task);
    for (const PaperRow& row : kPaper) {
      if (!only_method.empty() &&
          core::parse_method(only_method) != row.method)
        continue;
      benchkit::RunSpec spec;
      spec.method = row.method;
      spec.workers = workers;
      spec.record_curve = false;
      spec.fault = options.fault;  // --fault-* flags: chaos-mode accuracy
      const auto result = benchkit::run_one(task, data, spec);
      const double paper = imagenet_column ? row.imagenet : row.cifar;
      table.add_row({dataset, core::method_name(row.method),
                     std::to_string(row.method == Method::kMSGD ? 1 : workers),
                     paper < 0.0 ? "--" : util::Table::pct(paper, 2, false),
                     util::Table::pct(100.0 * result.final_test_accuracy, 2,
                                      false)});
      benchkit::export_ledger(options, result,
                              std::string(dataset) + "/" +
                                  core::method_name(row.method),
                              "table2_accuracy");
      std::fprintf(stderr, "%s/%s done\n", dataset,
                   core::method_name(row.method));
    }
  };

  const benchkit::Task cifar = benchkit::make_cifar_task(
      options.epoch_scale(), options.seed ? options.seed : 42);
  run_block(cifar, "Cifar10", false);
  if (!skip_imagenet)
    run_block(benchkit::make_imagenet_task(options.epoch_scale(),
                                           options.seed ? options.seed : 1337),
              "ImageNet", true);

  std::printf("== Table 2: top-1 accuracy, %zu workers ==\n", workers);
  std::printf("   (Synth* substitutes; compare orderings, not absolutes)\n\n");
  table.print(std::cout);
  const std::string csv = benchkit::csv_path(options, "table2_accuracy");
  if (!csv.empty()) table.write_csv(csv);

  if (gate_out.empty()) return 0;

  // ---- adaptive-vs-fixed CI gate (check_bench.py --table2) ----------------
  // Both runs share the task, seed and the aggressive keep-ratio; the only
  // difference is the controller. Equal ratio means equal per-push budget,
  // so the bytes bound checks the budget invariant end to end and the
  // accuracy bound checks that reallocating it doesn't hurt convergence.
  struct GateRun {
    const char* name;
    Method method;
    core::RunResult result;
  };
  GateRun gate_runs[] = {
      {"DGS", Method::kDGS, {}},
      {"DGS-Adaptive", Method::kDGSAdaptive, {}},
  };
  const auto cifar_data = benchkit::load(cifar);
  for (GateRun& g : gate_runs) {
    benchkit::RunSpec spec;
    spec.method = g.method;
    spec.workers = workers;
    spec.ratio = gate_ratio;
    spec.record_curve = false;
    g.result = benchkit::run_one(cifar, cifar_data, spec);
    std::fprintf(stderr, "gate/%s done: acc %.4f, %.3f B/elt\n", g.name,
                 g.result.final_test_accuracy,
                 up_bytes_per_element(g.result));
  }

  std::ofstream out(gate_out);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", gate_out.c_str());
    return 1;
  }
  out << "{\n  \"series\": [\n";
  for (std::size_t i = 0; i < 2; ++i) {
    const GateRun& g = gate_runs[i];
    const auto pushes = g.result.bytes.upward_messages;
    out << "    {\"name\": \"" << g.name << "\""
        << ", \"ratio_percent\": " << gate_ratio
        << ", \"final_test_accuracy\": " << g.result.final_test_accuracy
        << ", \"bytes_up\": " << g.result.bytes.upward_bytes
        << ", \"pushes\": " << pushes
        << ", \"up_bytes_per_push\": "
        << (pushes > 0
                ? static_cast<double>(g.result.bytes.upward_bytes) /
                      static_cast<double>(pushes)
                : 0.0)
        << ", \"up_bytes_per_element\": " << up_bytes_per_element(g.result)
        << ", \"mean_update_density\": " << g.result.mean_upward_density
        << ", \"adaptive_decisions\": " << g.result.ledger.adaptive.decisions
        << ", \"adaptive_mean_ratio_percent\": "
        << g.result.ledger.adaptive.mean_ratio_percent << "}"
        << (i + 1 < 2 ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "gate metrics -> %s\n", gate_out.c_str());
  return 0;
}
