// Table 2: final top-1 accuracy of ResNet-18 trained on Cifar10 and
// ImageNet with 4 workers (MSGD is the single-node baseline).
//
// Prints our measured accuracy next to the paper's reported numbers. The
// absolute values differ (synthetic tasks, shorter horizon); the claim under
// test is the ORDERING: MSGD >= DGS > DGC-async > {GD-async, ASGD}.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

namespace {

struct PaperRow {
  Method method;
  double cifar;     // paper top-1 %
  double imagenet;  // paper top-1 %
};

constexpr PaperRow kPaper[] = {
    {Method::kMSGD, 93.08, 69.40},    {Method::kASGD, 90.74, 66.68},
    {Method::kGDAsync, 92.01, 66.26}, {Method::kDGCAsync, 92.64, 68.37},
    {Method::kDGS, 92.91, 69.00},
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 4, "asynchronous worker count"));
  const bool skip_imagenet =
      flags.boolean("cifar-only", false, "skip the (slower) ImageNet half");
  if (benchkit::parse_harness_options(flags, options)) return 0;

  util::Table table({"Dataset", "Training Method", "Workers", "Paper Top-1",
                     "Ours Top-1"});

  auto run_block = [&](const benchkit::Task& task, const char* dataset,
                       bool imagenet_column) {
    const auto data = benchkit::load(task);
    for (const PaperRow& row : kPaper) {
      benchkit::RunSpec spec;
      spec.method = row.method;
      spec.workers = workers;
      spec.record_curve = false;
      spec.fault = options.fault;  // --fault-* flags: chaos-mode accuracy
      const auto result = benchkit::run_one(task, data, spec);
      const double paper = imagenet_column ? row.imagenet : row.cifar;
      table.add_row({dataset, core::method_name(row.method),
                     std::to_string(row.method == Method::kMSGD ? 1 : workers),
                     util::Table::pct(paper, 2, false),
                     util::Table::pct(100.0 * result.final_test_accuracy, 2,
                                      false)});
      std::fprintf(stderr, "%s/%s done\n", dataset,
                   core::method_name(row.method));
    }
  };

  run_block(benchkit::make_cifar_task(options.epoch_scale(),
                                      options.seed ? options.seed : 42),
            "Cifar10", false);
  if (!skip_imagenet)
    run_block(benchkit::make_imagenet_task(options.epoch_scale(),
                                           options.seed ? options.seed : 1337),
              "ImageNet", true);

  std::printf("== Table 2: top-1 accuracy, %zu workers ==\n", workers);
  std::printf("   (Synth* substitutes; compare orderings, not absolutes)\n\n");
  table.print(std::cout);
  const std::string csv = benchkit::csv_path(options, "table2_accuracy");
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
