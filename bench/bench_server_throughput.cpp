// Parameter-server push throughput vs shard count and server threads.
//
// Isolates the server hot path (decode -> apply to M -> build G = M - v_k
// reply) from training: pre-encoded pushes are replayed by T caller threads
// against a ParameterServer with S shards, exactly the shape of the
// ThreadEngine's server pool. Two payload classes bracket the protocols:
//
//   * dgs    — sparse COO pushes (~0.1% density), the DGS uplink
//   * dense  — full dense pushes, the ASGD uplink (and the worst-case
//              reply: the whole M - v_k difference ships back dense)
//
// With one shard every push serializes on a single mutex, so threads cannot
// help; with multiple shards the per-layer work pipelines and dense-payload
// throughput should scale with the thread count.
//
// --transport=uds|tcp replaces the in-process replay with a cross-process
// one: every pusher is a forked OS process streaming framed pushes through
// a real socket (comm/socket_transport.h) while the parent serves replies —
// the end-to-end wire path of the ProcessEngine, measured in pushes/s and
// MB/s. --gate-out emits the measured series as JSON for
// scripts/check_bench.py --server (message conservation is the hard gate;
// throughput is band-checked against the committed baseline).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "comm/process.h"
#include "comm/socket_transport.h"
#include "comm/transport.h"
#include "core/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/codec.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"

using namespace dgs;
using dgs::comm::Message;
using dgs::comm::MessageKind;

namespace {

// Layer shape of a small conv-net-like model: a few big tensors plus bias
// vectors, so shard partitioning has real imbalance to deal with.
const std::vector<std::size_t> kSizes{36864, 128, 73728, 256, 32768, 10};

Message make_sparse_push(int worker, util::Rng& rng, double density) {
  sparse::SparseUpdate u;
  for (std::uint32_t j = 0; j < kSizes.size(); ++j) {
    sparse::LayerChunk c;
    c.layer = j;
    c.dense_size = static_cast<std::uint32_t>(kSizes[j]);
    const auto nnz =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     static_cast<double>(kSizes[j]) * density));
    for (std::size_t i = 0; i < nnz; ++i) {
      c.idx.push_back(static_cast<std::uint32_t>(rng.below(kSizes[j])));
      c.val.push_back(rng.normal(0, 0.01f));
    }
    u.layers.push_back(std::move(c));
  }
  Message m;
  m.kind = MessageKind::kGradientPush;
  m.worker_id = worker;
  m.payload = sparse::encode(u);
  return m;
}

Message make_dense_push(int worker, util::Rng& rng) {
  sparse::DenseUpdate u;
  for (std::uint32_t j = 0; j < kSizes.size(); ++j) {
    sparse::DenseUpdate::Layer l;
    l.layer = j;
    l.values.resize(kSizes[j]);
    for (auto& v : l.values) v = rng.normal(0, 0.01f);
    u.layers.push_back(std::move(l));
  }
  Message m;
  m.kind = MessageKind::kGradientPush;
  m.worker_id = worker;
  m.payload = sparse::encode(u);
  return m;
}

/// Replays `iters` pushes per thread against a fresh S-shard server; returns
/// pushes per second over the whole run.
double measure(const std::vector<Message>& pushes_per_worker,
               std::size_t threads, std::size_t shards, std::size_t iters) {
  std::size_t total = 0;
  for (std::size_t s : kSizes) total += s;
  core::ParameterServer server(
      kSizes, std::vector<float>(total, 0.0f),
      {.num_workers = threads, .num_shards = shards});

  std::vector<std::thread> pool;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < threads; ++k)
    pool.emplace_back([&, k] {
      const Message& push = pushes_per_worker[k];
      for (std::size_t i = 0; i < iters; ++i)
        (void)server.handle_push(push);
    });
  for (auto& t : pool) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(threads * iters) / seconds;
}

/// One fully observed replay for --metrics-out / --trace-out: distinct
/// worker threads push through a ThreadTransport into a server-thread pool,
/// exactly the ThreadEngine topology, so the trace shows "worker/k",
/// "server/t" and "shard/s" tracks and the registry fills the staleness /
/// density / lock / transport histograms. Kept separate from measure() so
/// the timed table stays free of any accounting.
void observed_run(const std::vector<Message>& pushes_per_worker,
                  std::size_t workers, std::size_t server_threads,
                  std::size_t shards, std::size_t iters,
                  const std::string& metrics_out,
                  const std::string& trace_out) {
  obs::Tracer& tracer = obs::Tracer::instance();
  if (!trace_out.empty()) tracer.enable();

  obs::MetricsRegistry registry;
  std::size_t total = 0;
  for (std::size_t s : kSizes) total += s;
  core::ParameterServer server(
      kSizes, std::vector<float>(total, 0.0f),
      {.num_workers = workers, .num_shards = shards, .metrics = &registry});
  comm::ThreadTransport transport(workers, /*inbox_capacity=*/2 * workers,
                                  &registry);

  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < server_threads; ++t)
    pool.emplace_back([&, t] {
      if (tracer.enabled())
        tracer.set_thread_name("server/" + std::to_string(t));
      while (auto push = transport.receive_push()) {
        Message reply = server.handle_push(*push);
        const auto worker = static_cast<std::size_t>(reply.worker_id);
        (void)transport.send_reply(worker, std::move(reply));
      }
    });

  std::vector<std::thread> senders;
  for (std::size_t k = 0; k < workers; ++k)
    senders.emplace_back([&, k] {
      if (tracer.enabled())
        tracer.set_thread_name("worker/" + std::to_string(k));
      for (std::size_t i = 0; i < iters; ++i) {
        if (!transport.send_push(pushes_per_worker[k])) return;
        const auto reply = transport.receive_reply(k);
        if (!reply || reply->kind == MessageKind::kShutdown) return;
      }
    });
  for (auto& t : senders) t.join();
  transport.shutdown();
  for (auto& t : pool) t.join();

  if (!metrics_out.empty()) {
    if (registry.snapshot().append_jsonl(metrics_out, "server_throughput"))
      std::fprintf(stderr, "metrics appended to %s\n", metrics_out.c_str());
    else
      std::fprintf(stderr, "warning: could not write %s\n",
                   metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    tracer.disable();
    if (tracer.export_json(trace_out))
      std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
    else
      std::fprintf(stderr, "warning: could not write %s\n", trace_out.c_str());
  }
}

/// One cross-process replay: `workers` forked sender processes stream
/// `iters` pushes each through a socket while this process serves
/// handle_push + reply. Returns the measured series for the gate JSON.
struct SocketSeries {
  std::string name;
  double pushes_per_s = 0.0;
  double mb_per_s = 0.0;        ///< Both directions, payload + frame headers.
  std::size_t messages = 0;     ///< Pushes the server actually serviced.
  std::size_t expected = 0;     ///< workers * iters (conservation gate).
};

SocketSeries socket_replay(const std::string& name,
                           const std::vector<Message>& pushes_per_worker,
                           std::size_t workers, std::size_t iters, bool tcp) {
  const comm::SocketAddress address =
      tcp ? comm::SocketAddress::tcp("127.0.0.1", 0)
          : comm::SocketAddress::uds("/tmp/dgs_bench_" +
                                     std::to_string(::getpid()) + "_" + name +
                                     ".sock");
  comm::SocketServerTransport transport(address, workers);

  // Fork all senders before start() spawns the event-loop thread, so no
  // thread ever crosses a fork (same discipline as the ProcessEngine).
  std::vector<comm::ProcessHandle> children;
  children.reserve(workers);
  for (std::size_t k = 0; k < workers; ++k)
    children.push_back(comm::ProcessHandle::spawn([&, k]() -> int {
      comm::SocketClientTransport client(transport.bound_address(),
                                         static_cast<std::int32_t>(k));
      Message push = pushes_per_worker[k];
      for (std::size_t i = 0; i < iters; ++i) {
        push.seq = i + 1;
        if (!client.send_push(push)) return 1;
        Message reply;
        if (!client.receive_reply(reply)) return 1;
        if (reply.kind == MessageKind::kShutdown) return 1;
      }
      return 0;
    }));
  transport.start();

  std::size_t total = 0;
  for (std::size_t s : kSizes) total += s;
  core::ParameterServer server(kSizes, std::vector<float>(total, 0.0f),
                               {.num_workers = workers});

  SocketSeries series;
  series.name = name;
  series.expected = workers * iters;
  const auto start = std::chrono::steady_clock::now();
  while (series.messages < series.expected) {
    auto push = transport.receive_push();
    if (!push) break;
    Message reply = server.handle_push(*push);
    const auto worker = static_cast<std::size_t>(reply.worker_id);
    (void)transport.send_reply(worker, std::move(reply));
    ++series.messages;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto bytes = transport.bytes();
  transport.shutdown();
  int status = 0;
  for (auto& child : children) status |= child.wait();
  if (status != 0)
    std::fprintf(stderr, "warning: a %s sender exited nonzero\n", name.c_str());

  series.pushes_per_s = static_cast<double>(series.messages) / seconds;
  series.mb_per_s = static_cast<double>(bytes.upward_bytes +
                                        bytes.downward_bytes) /
                    1e6 / seconds;
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto iters = static_cast<std::size_t>(
      flags.i64("iters", 200, "pushes per thread per configuration"));
  const auto thread_list =
      flags.i64_list("threads", {1, 2, 4}, "server thread counts");
  const auto shard_list =
      flags.i64_list("shards", {1, 2, 4, 8}, "shard counts");
  const double density = flags.f64("density", 0.001, "sparse push density");
  const std::string metrics_out = flags.str(
      "metrics-out", "", "append the observed run's metrics as JSONL");
  const std::string trace_out = flags.str(
      "trace-out", "", "write Chrome trace JSON of the observed run");
  const std::string transport = flags.str(
      "transport", "thread",
      "replay topology: thread (in-process) | uds | tcp (forked sender "
      "processes over a real socket)");
  const std::string gate_out = flags.str(
      "gate-out", "",
      "write the socket replay series as JSON for check_bench.py --server "
      "(requires --transport=uds|tcp)");
  const auto socket_workers = static_cast<std::size_t>(flags.i64(
      "workers", 4, "sender process count for --transport=uds|tcp"));
  if (flags.finish()) return 0;
  if (transport != "thread" && transport != "uds" && transport != "tcp") {
    std::fprintf(stderr, "unknown --transport '%s' (thread|uds|tcp)\n",
                 transport.c_str());
    return 2;
  }
  if (!gate_out.empty() && transport == "thread") {
    std::fprintf(stderr, "--gate-out requires --transport=uds|tcp\n");
    return 2;
  }

  const std::size_t max_threads = static_cast<std::size_t>(
      *std::max_element(thread_list.begin(), thread_list.end()));
  // The observability replay wants >= 2 workers so staleness is nonzero.
  const std::size_t obs_workers = std::max<std::size_t>(2, max_threads);
  util::Rng rng(17);
  std::vector<Message> sparse_pushes, dense_pushes;
  for (std::size_t k = 0; k < obs_workers; ++k) {
    sparse_pushes.push_back(
        make_sparse_push(static_cast<int>(k), rng, density));
    dense_pushes.push_back(make_dense_push(static_cast<int>(k), rng));
  }

  if (transport != "thread") {
    // Cross-process replay: one series per payload class, every sender a
    // real forked OS process on the other end of a socket.
    const bool tcp = transport == "tcp";
    std::vector<Message> socket_sparse, socket_dense;
    util::Rng socket_rng(17);
    for (std::size_t k = 0; k < socket_workers; ++k) {
      socket_sparse.push_back(
          make_sparse_push(static_cast<int>(k), socket_rng, density));
      socket_dense.push_back(make_dense_push(static_cast<int>(k), socket_rng));
    }
    std::printf("== server push throughput over %s (%zu sender processes, "
                "%zu pushes each) ==\n\n",
                transport.c_str(), socket_workers, iters);
    const SocketSeries sparse_series =
        socket_replay("sparse", socket_sparse, socket_workers, iters, tcp);
    const SocketSeries dense_series =
        socket_replay("dense", socket_dense, socket_workers, iters, tcp);
    util::Table socket_table(
        {"Payload", "Workers", "Pushes/s", "MB/s", "Messages"});
    for (const SocketSeries* series : {&sparse_series, &dense_series})
      socket_table.add_row(
          {series->name, std::to_string(socket_workers),
           util::Table::num(series->pushes_per_s, 0),
           util::Table::num(series->mb_per_s, 1),
           std::to_string(series->messages) + "/" +
               std::to_string(series->expected)});
    socket_table.print(std::cout);
    if (!gate_out.empty()) {
      std::ofstream out(gate_out);
      char buffer[256];
      out << "{\"bench\": \"server_throughput\", \"transport\": \""
          << transport << "\", \"workers\": " << socket_workers
          << ", \"iters\": " << iters << ", \"series\": [";
      bool first = true;
      for (const SocketSeries* series : {&sparse_series, &dense_series}) {
        std::snprintf(buffer, sizeof(buffer),
                      "%s{\"name\": \"%s\", \"pushes_per_s\": %.1f, "
                      "\"mb_per_s\": %.2f, \"messages\": %zu, "
                      "\"expected_messages\": %zu}",
                      first ? "" : ", ", series->name.c_str(),
                      series->pushes_per_s, series->mb_per_s, series->messages,
                      series->expected);
        out << buffer;
        first = false;
      }
      out << "]}\n";
      std::fprintf(stderr, "gate JSON written to %s\n", gate_out.c_str());
    }
    return 0;
  }

  std::size_t total = 0;
  for (std::size_t s : kSizes) total += s;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("== server push throughput (model = %zu params, %zu layers, "
              "%zu pushes/thread, %u hardware threads) ==\n\n",
              total, kSizes.size(), iters, cores);
  if (cores < 2)
    std::printf("NOTE: single-core host — thread counts > 1 time-slice one "
                "CPU, so no\nspeedup is observable here; the table then only "
                "shows that sharding adds\nno overhead. Run on a multi-core "
                "host to see the scaling.\n\n");

  util::Table table(
      {"Payload", "Shards", "Threads", "Pushes/s", "vs 1 thread"});
  for (const bool dense : {false, true}) {
    const auto& pushes = dense ? dense_pushes : sparse_pushes;
    for (const std::int64_t shards : shard_list) {
      double base = 0.0;
      for (const std::int64_t threads : thread_list) {
        const double rate =
            measure(pushes, static_cast<std::size_t>(threads),
                    static_cast<std::size_t>(shards), iters);
        if (base == 0.0) base = rate;
        table.add_row({dense ? "dense (ASGD)" : "sparse (DGS)",
                       std::to_string(shards), std::to_string(threads),
                       util::Table::num(rate, 0),
                       util::Table::num(rate / base, 2) + "x"});
      }
    }
  }
  if (!metrics_out.empty() || !trace_out.empty()) {
    // Observability replay at the sweep's largest configuration: distinct
    // worker threads + a server pool, so the trace carries worker/server/
    // shard tracks and the histograms have real contention in them.
    const std::size_t max_shards = static_cast<std::size_t>(
        *std::max_element(shard_list.begin(), shard_list.end()));
    observed_run(sparse_pushes, obs_workers, obs_workers, max_shards, iters,
                 metrics_out, trace_out);
  }

  table.print(std::cout);
  std::printf(
      "\nExpected shape (given enough cores): dense payloads with >= 2\n"
      "shards scale with the thread count; with 1 shard every configuration\n"
      "collapses to the single-mutex rate. Sparse DGS pushes are\n"
      "decode-dominated, so the parallel section is smaller and the scaling\n"
      "shallower.\n");
  return 0;
}
