// Table 4: ResNet-18 on ImageNet with 4 and 16 workers.
//
// Follows the paper's momentum protocol for ImageNet: m = 0.7 for the
// single-node baseline and 4 workers, m = 0.45 for 16 workers (§5.1).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

namespace {

struct PaperEntry {
  std::size_t workers;
  Method method;
  double top1;
};

constexpr PaperEntry kPaper[] = {
    {1, Method::kMSGD, 69.40},      {4, Method::kASGD, 66.68},
    {4, Method::kGDAsync, 66.26},   {4, Method::kDGCAsync, 68.37},
    {4, Method::kDGS, 69.00},       {16, Method::kASGD, 66.25},
    {16, Method::kGDAsync, 66.19},  {16, Method::kDGCAsync, 67.62},
    {16, Method::kDGS, 68.25},
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto worker_list =
      flags.i64_list("workers", {4, 16}, "worker counts to run");
  if (benchkit::parse_harness_options(flags, options)) return 0;

  const benchkit::Task task = benchkit::make_imagenet_task(
      options.epoch_scale(), options.seed ? options.seed : 1337);
  const auto data = benchkit::load(task);

  benchkit::RunSpec baseline;
  baseline.method = Method::kMSGD;
  baseline.workers = 1;
  baseline.momentum = 0.7;
  baseline.record_curve = false;
  const double msgd = benchkit::run_one(task, data, baseline).final_test_accuracy;
  std::fprintf(stderr, "MSGD baseline: %.2f%%\n", 100.0 * msgd);

  util::Table table({"Workers", "Method", "Paper Top-1", "Paper Delta",
                     "Ours Top-1", "Ours Delta"});
  table.add_row({"1", "MSGD", "69.40%", "-",
                 util::Table::pct(100.0 * msgd, 2, false), "-"});

  for (std::int64_t w : worker_list) {
    for (Method method : {Method::kASGD, Method::kGDAsync, Method::kDGCAsync,
                          Method::kDGS}) {
      benchkit::RunSpec spec;
      spec.method = method;
      spec.workers = static_cast<std::size_t>(w);
      spec.momentum = w >= 16 ? 0.45 : 0.7;  // paper's §5.1 protocol
      spec.record_curve = false;
      const auto result = benchkit::run_one(task, data, spec);
      double paper_top1 = 0.0;
      for (const auto& e : kPaper)
        if (e.workers == static_cast<std::size_t>(w) && e.method == method)
          paper_top1 = e.top1;
      const double ours = 100.0 * result.final_test_accuracy;
      table.add_row({std::to_string(w), core::method_name(method),
                     util::Table::pct(paper_top1, 2, false),
                     util::Table::pct(paper_top1 - 69.40, 2),
                     util::Table::pct(ours, 2, false),
                     util::Table::pct(ours - 100.0 * msgd, 2)});
      std::fprintf(stderr, "w=%lld %s done (%.2f%%)\n",
                   static_cast<long long>(w), core::method_name(method), ours);
    }
  }

  std::printf("== Table 4: ImageNet scalability ==\n");
  table.print(std::cout);
  const std::string csv = benchkit::csv_path(options, "table4_scalability");
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
