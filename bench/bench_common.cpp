#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/ledger.h"
#include "obs/trace.h"
#include "util/simd.h"

namespace dgs::benchkit {

namespace {

/// Heterogeneous compute model shared by both tasks: the paper's cluster had
/// half physical V100s and half "virtual GPUs", so odd-numbered workers run
/// 2.5x slower; jitter makes staleness bursty rather than lock-step.
core::ComputeModel heterogeneous_compute(std::size_t max_workers) {
  core::ComputeModel compute;
  compute.base_seconds = 5e-3;
  compute.jitter_frac = 0.3;
  compute.worker_speed.assign(max_workers, 1.0);
  for (std::size_t k = 1; k < max_workers; k += 2) compute.worker_speed[k] = 2.5;
  return compute;
}

}  // namespace

Task make_cifar_task(double epoch_scale, std::uint64_t seed) {
  Task task;
  task.name = "SynthCIFAR";
  task.data_spec = data::SyntheticSpec::synth_cifar(seed);
  // Harden the default recipe so the task does not saturate within the
  // training horizon (method differences stay visible, as on real CIFAR-10).
  task.data_spec.latent_jitter = 1.15f;
  task.data_spec.feature_noise = 0.32f;
  task.model_width = 96;
  task.model_blocks = 2;

  core::TrainConfig& config = task.config;
  config.epochs = std::max<std::size_t>(4, static_cast<std::size_t>(
                                               std::lround(30 * epoch_scale)));
  config.batch_size = 32;
  config.lr = 0.05;
  config.momentum = 0.7;
  config.lr_decay_at = {0.6, 0.8};  // paper: epochs 30 & 40 of 50
  config.lr_decay_factor = 0.1;
  // The paper runs 99% sparsity (R=1) over ~5k server iterations; our
  // horizon is ~10x shorter, so R=10 keeps the send-interval-to-horizon
  // ratio comparable (see DESIGN.md / EXPERIMENTS.md).
  config.compression.ratio_percent = 10.0;
  config.compression.min_sparsify_size = 512;  // biases/BN ship dense
  config.network = comm::NetworkModel::ten_gbps();
  config.compute = heterogeneous_compute(64);
  config.seed = seed * 1000003ULL + 7;
  return task;
}

Task make_imagenet_task(double epoch_scale, std::uint64_t seed) {
  Task task;
  task.name = "SynthImageNet";
  task.data_spec = data::SyntheticSpec::synth_imagenet(seed);
  task.model_width = 128;
  task.model_blocks = 2;

  core::TrainConfig& config = task.config;
  config.epochs = std::max<std::size_t>(4, static_cast<std::size_t>(
                                               std::lround(30 * epoch_scale)));
  config.batch_size = 32;
  config.lr = 0.05;
  config.momentum = 0.7;
  config.lr_decay_at = {1.0 / 3.0, 2.0 / 3.0};  // paper: epochs 30 & 60 of 90
  config.lr_decay_factor = 0.1;
  config.compression.ratio_percent = 10.0;  // horizon-scaled, see above
  config.compression.min_sparsify_size = 512;  // biases/BN ship dense
  config.network = comm::NetworkModel::ten_gbps();
  config.compute = heterogeneous_compute(64);
  config.seed = seed * 998244353ULL + 13;
  return task;
}

nn::ModelSpec model_of(const Task& task, const data::SyntheticDataset& data) {
  nn::ModelSpec spec =
      nn::ModelSpec::res_mlp(data.train->feature_dim(), task.model_width,
                             task.model_blocks, data.train->num_classes());
  spec.batch_norm = true;  // ResNet-style normalization (see DESIGN.md)
  return spec;
}

data::SyntheticDataset load(const Task& task) {
  return data::make_synthetic(task.data_spec);
}

core::TrainConfig resolve(const Task& task, const RunSpec& run) {
  core::TrainConfig config = task.config;
  config.method = run.method;
  config.num_workers = run.method == core::Method::kMSGD ? 1 : run.workers;
  if (run.batch > 0) config.batch_size = run.batch;
  if (run.momentum >= 0.0) config.momentum = run.momentum;
  if (run.lr >= 0.0) config.lr = run.lr;
  if (run.ratio >= 0.0) config.compression.ratio_percent = run.ratio;
  if (run.seed != 0) config.seed = run.seed;
  if (run.epochs > 0) config.epochs = run.epochs;
  if (run.compute_seconds > 0.0) config.compute.base_seconds = run.compute_seconds;
  if (run.homogeneous) {
    config.compute.worker_speed.clear();
    config.compute.jitter_frac = 0.0;
  }
  if (run.min_sparsify >= 0)
    config.compression.min_sparsify_size =
        static_cast<std::size_t>(run.min_sparsify);
  if (run.threads_per_worker > 0)
    config.threads_per_worker = run.threads_per_worker;
  if (!run.network.is_ideal()) config.network = run.network;
  config.record_curve = run.record_curve;
  config.trace = run.trace;
  config.fault = run.fault;
  if (run.transport != "sim")
    config.transport = core::parse_transport_kind(run.transport);
  config.compression.secondary = run.secondary_compression;
  config.compression.secondary_ratio_percent = run.secondary_ratio;
  config.compression.down_compress = run.down_compress;
  // The paper lets DGC keep its own training tricks (§5): sparsity warmup
  // over the first epochs; other methods run bare.
  config.compression.warmup_epochs =
      run.method == core::Method::kDGCAsync
          ? std::min<std::size_t>(4, config.epochs / 3)
          : 0;
  config.compute.worker_speed.resize(config.num_workers >
                                             config.compute.worker_speed.size()
                                         ? config.num_workers
                                         : config.compute.worker_speed.size(),
                                     1.0);
  return config;
}

core::RunResult run_one(const Task& task, const data::SyntheticDataset& data,
                        const RunSpec& run) {
  const core::TrainConfig config = resolve(task, run);
  const nn::ModelSpec spec = model_of(task, data);
  if (run.transport != "sim")
    return core::ProcessEngine(spec, data.train, data.test, config).run();
  return core::SimEngine(spec, data.train, data.test, config).run();
}

bool parse_harness_options(util::Flags& flags, HarnessOptions& options) {
  options.full = flags.boolean("full", false,
                               "run the full paper-scale schedule (slower)");
  options.seed = static_cast<std::uint64_t>(
      flags.i64("seed", 0, "experiment seed (0 = task default)"));
  options.out_dir = flags.str("out-dir", "", "directory for CSV output");
  options.metrics_out = flags.str(
      "metrics-out", "", "append per-run metrics as JSONL to this file");
  options.trace_out = flags.str(
      "trace-out", "", "write Chrome trace JSON (Perfetto) to this file");
  options.ledger_out = flags.str(
      "ledger-out", "",
      "append one run-ledger JSON line per run to this file (see obs/ledger.h "
      "and scripts/record_trajectory.py)");
  options.fault.seed = static_cast<std::uint64_t>(flags.i64(
      "fault-seed", 0, "fault-injection decision seed (see comm/fault.h)"));
  options.fault.drop_pct =
      flags.f64("fault-drop-pct", 0.0, "percent of messages silently dropped");
  options.fault.dup_pct =
      flags.f64("fault-dup-pct", 0.0, "percent of messages delivered twice");
  options.fault.kill_worker = static_cast<std::ptrdiff_t>(flags.i64(
      "fault-kill-worker", -1, "worker to crash mid-run (-1 = none)"));
  options.fault.kill_at_step = static_cast<std::uint64_t>(flags.i64(
      "fault-kill-step", 0, "local step at which the kill fires"));
  options.fault.lease_timeout_s = flags.f64(
      "fault-lease-s", 0.0, "server worker-lease timeout in seconds (0 = off)");
  options.threads_per_worker = static_cast<std::size_t>(flags.i64(
      "threads-per-worker", 0,
      "intra-op kernel threads per worker (0 = task default; clamped "
      "against worker-count oversubscription)"));
  const std::string down = flags.str(
      "down-compress", "auto",
      "downward reply codec: auto|coo|dense|q8|q4|sbc (DESIGN.md §14)");
  options.transport = flags.str(
      "transport", "sim",
      "execution engine: sim (deterministic DES) | thread | uds | tcp "
      "(wire-only ProcessEngine; uds/tcp fork real worker processes and "
      "run wall-clock, ignoring the DES network model)");
  const std::string force_isa = flags.str(
      "force-isa", "",
      "pin the SIMD kernel dispatch path: scalar|avx2|avx512 (clamped to "
      "host support; same vocabulary as the DGS_FORCE_ISA environment "
      "variable, util/simd.h). Empty = DGS_FORCE_ISA or auto-detect. The "
      "resolved path lands in the run ledger as simd_isa.");
  const bool help = flags.finish();
  if (!help) {
    options.down_compress = core::parse_down_compress(down);
    if (options.transport != "sim")
      (void)core::parse_transport_kind(options.transport);  // validate early
    if (!force_isa.empty()) {
      util::Isa isa;
      if (!util::parse_isa(force_isa, &isa))
        throw std::invalid_argument(
            "--force-isa: expected scalar|avx2|avx512, got '" + force_isa +
            "'");
      // Install now (before any kernel runs); set_forced_isa clamps to
      // host support with a warning and logs the resolved path.
      (void)util::set_forced_isa(isa);
    }
  }
  return help;
}

std::string csv_path(const HarnessOptions& options, const std::string& name) {
  if (options.out_dir.empty()) return {};
  return options.out_dir + "/" + name + ".csv";
}

bool export_metrics(const HarnessOptions& options,
                    const core::RunResult& result, const std::string& run) {
  if (options.metrics_out.empty()) return false;
  if (!result.metrics.append_jsonl(options.metrics_out, run)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 options.metrics_out.c_str());
    return false;
  }
  return true;
}

bool export_ledger(const HarnessOptions& options,
                   const core::RunResult& result, const std::string& run,
                   const std::string& bench) {
  if (options.ledger_out.empty()) return false;
  obs::RunLedger ledger = result.ledger;
  ledger.run = run;
  ledger.bench = bench;
  std::FILE* f = std::fopen(options.ledger_out.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 options.ledger_out.c_str());
    return false;
  }
  const std::string line = ledger.to_json();
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
  return true;
}

bool export_trace(const HarnessOptions& options) {
  if (options.trace_out.empty()) return false;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();
  if (!tracer.export_json(options.trace_out)) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 options.trace_out.c_str());
    return false;
  }
#if !DGS_TRACE_COMPILED
  std::fprintf(stderr,
               "note: built with DGS_TRACE=OFF — %s contains no events\n",
               options.trace_out.c_str());
#endif
  return true;
}

}  // namespace dgs::benchkit
