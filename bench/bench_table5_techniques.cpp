// Table 5: the technique matrix of all evaluated methods, printed from the
// method-traits registry (so the table cannot drift from the code).
#include <iostream>

#include "core/method.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

int main() {
  util::Table table({"Method", "Gradient Sparsification", "Momentum",
                     "Momentum Correction", "Remaining Gradients Accumulation"});
  for (Method method : {Method::kASGD, Method::kGDAsync, Method::kDGCAsync,
                        Method::kDGS, Method::kMSGD}) {
    const auto& traits = core::method_traits(method);
    table.add_row({traits.name, traits.sparsification, traits.momentum,
                   traits.momentum_correction ? "Y" : "N",
                   traits.residual_accumulation ? "Y" : "N"});
  }
  std::cout << "== Table 5: techniques in the evaluated methods ==\n\n";
  table.print(std::cout);
  return 0;
}
