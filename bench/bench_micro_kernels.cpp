// Micro-benchmarks (google-benchmark) for the kernels on the training hot
// path: top-k threshold selection (exact and sampled), COO extraction, the
// wire codec, scatter-add, and the GEMM kernels. Not a paper table; used to
// keep the substrate costs visible when tuning.
#include <benchmark/benchmark.h>

#include <vector>

#include "nn/layers.h"
#include "sparse/codec.h"
#include "sparse/compressor.h"
#include "sparse/coo.h"
#include "sparse/select.h"
#include "sparse/topk.h"
#include "tensor/tensor.h"
#include "util/math_kernels.h"
#include "util/rng.h"
#include "util/simd.h"

namespace {

using namespace dgs;

std::vector<float> random_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal(0, 1);
  return v;
}

void BM_TopkThresholdExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto v = random_values(n, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(sparse::topk_threshold(v, 1.0));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TopkThresholdExact)->Range(1 << 10, 1 << 20);

void BM_TopkThresholdSampled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto v = random_values(n, 2);
  util::Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(sparse::sampled_topk_threshold(v, 1.0, 4096, rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TopkThresholdSampled)->Range(1 << 14, 1 << 20);

void BM_ExtractCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto v = random_values(n, 4);
  const float thr = sparse::topk_threshold(v, 1.0);
  for (auto _ : state) {
    auto chunk = sparse::extract_copy(0, v, thr);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ExtractCopy)->Range(1 << 12, 1 << 20);

// The pre-kernel-layer worker sparsify path: heap-scratch nth_element
// threshold selection followed by a separate extraction pass. Kept (under
// sparse::reference) as the oracle for property tests and as the
// denominator of the bench gate's fused-vs-reference speedup ratio
// (scripts/check_bench.py requires Fused to beat this by >= 2x at 1M/R=1%).
void BM_SparsifyReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto v = random_values(n, 10);
  for (auto _ : state) {
    const float thr = sparse::reference::topk_threshold(v, 1.0);
    auto chunk = sparse::extract_copy(0, v, thr);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SparsifyReference)->Range(1 << 14, 1 << 20);

// The fused path those same call sites use now: exact radix select + single
// compaction pass through a reused SparsifyWorkspace (allocation-free once
// warm). Same work as BM_SparsifyReference, so times are comparable 1:1.
void BM_SparsifyFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto v = random_values(n, 10);
  sparse::SparsifyWorkspace ws;
  sparse::LayerChunk chunk;
  for (auto _ : state) {
    ws.sparsify_copy(0, v, 1.0, chunk);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SparsifyFused)->Range(1 << 14, 1 << 20);

// Threshold selection alone (exact O(n) radix select on magnitude keys),
// isolated from compaction so select/compact regressions are attributable.
void BM_RadixSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto v = random_values(n, 11);
  sparse::SparsifyWorkspace ws;
  for (auto _ : state) {
    auto sel = ws.select(v, 1.0);
    benchmark::DoNotOptimize(sel);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RadixSelect)->Range(1 << 14, 1 << 20);

// The server reply path's fused extract-and-zero (residual stays in place).
void BM_SparsifyZeroFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto v = random_values(n, 12);
  std::vector<float> work(n);
  sparse::SparsifyWorkspace ws;
  sparse::LayerChunk chunk;
  for (auto _ : state) {
    work = v;  // ~memcpy; dwarfed by the select+compact being measured.
    ws.sparsify_zero(0, work, 1.0, chunk);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SparsifyZeroFused)->Range(1 << 14, 1 << 20);

void BM_CodecEncodeDecode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto values = random_values(n, 5);
  const float thr = sparse::topk_threshold(values, 1.0);
  sparse::SparseUpdate update;
  update.layers.push_back(sparse::extract_copy(0, values, thr));
  for (auto _ : state) {
    const auto bytes = sparse::encode(update);
    auto decoded = sparse::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(sparse::encoded_size(update)));
}
BENCHMARK(BM_CodecEncodeDecode)->Range(1 << 12, 1 << 20);

// ---- dual-way codec stages (DESIGN.md §14) ---------------------------------
// Encode throughput of the lossy downward stages at the reply shape
// (R = 1% of a dense layer), through the pooled encode_into (steady-state
// allocation-free; enforced in tests/test_compressor.cpp). bytes/s is the
// *encoded* output rate, so it also tracks compression ratio drift.

void BM_StageEncode(benchmark::State& state, sparse::Codec codec) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto values = random_values(n, 5);
  const float thr = sparse::topk_threshold(values, 1.0);
  const sparse::Compressor& stage = sparse::compressor_for(codec);
  sparse::SparseUpdate update;
  update.layers.push_back(sparse::extract_copy(0, values, thr));
  stage.transform(update.layers[0]);  // values on the stage's grid
  sparse::Bytes bytes;
  std::int64_t encoded_bytes = 0;
  for (auto _ : state) {
    stage.encode_into(update, bytes);
    benchmark::DoNotOptimize(bytes.data());
    encoded_bytes += static_cast<std::int64_t>(bytes.size());
  }
  state.SetBytesProcessed(encoded_bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(update.layers[0].nnz()));
}
BENCHMARK_CAPTURE(BM_StageEncode, q8, sparse::Codec::kQcoo8)
    ->Range(1 << 14, 1 << 20);
BENCHMARK_CAPTURE(BM_StageEncode, q4, sparse::Codec::kQcoo4)
    ->Range(1 << 14, 1 << 20);
BENCHMARK_CAPTURE(BM_StageEncode, sbc, sparse::Codec::kSbc)
    ->Range(1 << 14, 1 << 20);

// Registry-dispatched decode of the same payloads (the worker-side cost of
// applying a compressed reply).
void BM_StageDecode(benchmark::State& state, sparse::Codec codec) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto values = random_values(n, 5);
  const float thr = sparse::topk_threshold(values, 1.0);
  const sparse::Compressor& stage = sparse::compressor_for(codec);
  sparse::SparseUpdate update;
  update.layers.push_back(sparse::extract_copy(0, values, thr));
  stage.transform(update.layers[0]);
  const sparse::Bytes bytes = stage.encode(update);
  for (auto _ : state) {
    auto decoded = sparse::decode_any(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(update.layers[0].nnz()));
}
BENCHMARK_CAPTURE(BM_StageDecode, q8, sparse::Codec::kQcoo8)
    ->Range(1 << 14, 1 << 20);
BENCHMARK_CAPTURE(BM_StageDecode, sbc, sparse::Codec::kSbc)
    ->Range(1 << 14, 1 << 20);

void BM_ScatterAdd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto values = random_values(n, 6);
  const float thr = sparse::topk_threshold(values, 1.0);
  const auto chunk = sparse::extract_copy(0, values, thr);
  std::vector<float> dst(n, 0.0f);
  for (auto _ : state) {
    sparse::scatter_add(chunk, 1.0f, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk.nnz()));
}
BENCHMARK(BM_ScatterAdd)->Range(1 << 12, 1 << 20);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_values(n * n, 7);
  const auto b = random_values(n * n, 8);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    util::gemm(n, n, n, a.data(), b.data(), c.data(), false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// ---- packed-GEMM gate pair (scripts/check_bench.py) -------------------------
// Shapes are the ResNet-18-on-CIFAR im2col GEMMs: M = out channels,
// K = in_c * 3 * 3, N = oh * ow. 64x576x1024 is the gate shape (the first
// 64-channel 3x3 conv on a 32x32 image); the packed kernel must beat the
// scalar reference by >= 2.5x in the same run.

void BM_GemmPacked(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const auto a = random_values(m * k, 7);
  const auto b = random_values(k * n, 8);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    util::gemm(m, k, n, a.data(), b.data(), c.data(), false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * k * n));
  // Label = the dispatched ISA path: check_bench.py keys the SIMD-dispatch
  // gate on it (the gate is skipped when this run could only go scalar).
  state.SetLabel(util::isa_name(util::active_isa()));
}
BENCHMARK(BM_GemmPacked)
    ->Args({64, 576, 1024})
    ->Args({128, 1152, 256})
    ->Args({256, 2304, 64});

// The PR 5 autovectorized micro-kernel, pinned via ForcedIsaScope: the
// in-run denominator for the SIMD-dispatch gate (dispatched BM_GemmPacked
// must beat this by >= 1.3x at the gate shape on AVX2-capable hosts).
void BM_GemmPackedScalarIsa(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const auto a = random_values(m * k, 7);
  const auto b = random_values(k * n, 8);
  std::vector<float> c(m * n);
  util::ForcedIsaScope forced(util::Isa::kScalar);
  for (auto _ : state) {
    util::gemm(m, k, n, a.data(), b.data(), c.data(), false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * k * n));
}
BENCHMARK(BM_GemmPackedScalarIsa)->Args({64, 576, 1024});

// The scalar double-accumulation oracle from util/gemm.h: the in-run
// denominator of the packed-vs-reference gate ratio.
void BM_GemmReference(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  const auto a = random_values(m * k, 7);
  const auto b = random_values(k * n, 8);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    util::reference::gemm(m, k, n, a.data(), b.data(), c.data(), false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * k * n));
}
BENCHMARK(BM_GemmReference)->Args({64, 576, 1024});

// One full Conv2d forward+backward step at the CIFAR entry shape, through
// the pooled ConvWorkspace (im2col + 3 GEMM variants + col2im). Warm-path
// allocation behaviour is enforced separately in tests/test_nn.cpp; this
// tracks the end-to-end step cost the compute side of a worker iteration
// pays per conv layer.
void BM_Conv2dStep(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::Conv2d conv(/*in_channels=*/3, /*out_channels=*/64, /*kernel=*/3,
                  /*stride=*/1, /*pad=*/1);
  util::Rng rng(13);
  conv.init(rng);
  tensor::Tensor input(tensor::Shape{batch, 3, 32, 32});
  {
    util::Rng data_rng(14);
    for (auto& v : input.flat()) v = data_rng.normal(0, 1);
  }
  for (auto _ : state) {
    tensor::Tensor out = conv.forward(input, /*train=*/true);
    tensor::Tensor grad_in = conv.backward(out);
    benchmark::DoNotOptimize(grad_in.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Conv2dStep)->Arg(8)->Arg(32);

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_values(n, 9);
  std::vector<float> y(n, 1.0f);
  for (auto _ : state) {
    util::axpy(0.5f, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 8);
}
BENCHMARK(BM_Axpy)->Range(1 << 12, 1 << 22);

}  // namespace

BENCHMARK_MAIN();
