// §5.6.2 memory usage: the server pays NumOfWorkers x ParameterMemOfModel
// for the per-worker trackers v_k, while DGS workers drop the residual
// buffer (SAMomentum replaces vanilla momentum + local accumulation), moving
// memory from worker to server at unchanged total.
//
// Verifies the formulas on real runs, then extrapolates to the paper's
// ResNet-18 (46 MB of parameters) to check the headline claim that one
// 16 GB V100 at the server can track more than 300 workers.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "nn/model.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  if (benchkit::parse_harness_options(flags, options)) return 0;

  benchkit::Task task = benchkit::make_cifar_task(0.15, 42);
  const auto data = benchkit::load(task);
  const nn::ModelSpec spec = benchkit::model_of(task, data);
  nn::ModulePtr probe = spec.build();
  const std::size_t model_bytes =
      nn::param_numel(probe->parameters()) * sizeof(float);

  std::printf("== §5.6.2 memory usage (model = %.1f KB) ==\n\n",
              model_bytes / 1e3);

  util::Table table({"Method", "Workers", "Server state", "Worker state",
                     "Server formula", "Worker formula"});
  for (Method method : {Method::kASGD, Method::kGDAsync, Method::kDGCAsync,
                        Method::kDGS}) {
    for (std::size_t workers : {4u, 16u}) {
      benchkit::RunSpec run_spec;
      run_spec.method = method;
      run_spec.workers = workers;
      run_spec.record_curve = false;
      run_spec.epochs = 1;
      const auto result = benchkit::run_one(task, data, run_spec);

      // Server: theta0 + M + N*v_k. Worker formulas per Table 5:
      // ASGD none; GD residual (1x); DGC velocity+residual (2x);
      // DGS velocity only (1x).
      const std::size_t server_expect = model_bytes * (2 + workers);
      std::size_t worker_expect = 0;
      if (method == Method::kGDAsync || method == Method::kDGS)
        worker_expect = model_bytes;
      if (method == Method::kDGCAsync) worker_expect = 2 * model_bytes;

      table.add_row(
          {core::method_name(method), std::to_string(workers),
           util::Table::num(result.server_state_bytes / 1e3, 1) + " KB",
           util::Table::num(result.worker_state_bytes / 1e3, 1) + " KB",
           util::Table::num(server_expect / 1e3, 1) + " KB",
           util::Table::num(worker_expect / 1e3, 1) + " KB"});
      if (result.server_state_bytes != server_expect ||
          result.worker_state_bytes != worker_expect) {
        std::fprintf(stderr, "MEMORY ACCOUNTING MISMATCH for %s/%zu\n",
                     core::method_name(method), workers);
        return 1;
      }
    }
  }
  table.print(std::cout);

  // Headline claim: ResNet-18 is ~46 MB; a 16 GB V100 at the server leaves
  // room for > 300 per-worker trackers.
  const double resnet18_mb = 46.0;
  const double v100_gb = 16.0;
  const double supported =
      (v100_gb * 1024.0 - 2 * resnet18_mb) / resnet18_mb;
  std::printf("\nResNet-18 extrapolation: a %.0f GB server card supports "
              "~%.0f workers' v_k trackers (paper claims > 300)\n",
              v100_gb, supported);
  std::printf("DGS worker saving vs DGC: %.1f KB (drops the residual buffer; "
              "memory moves to the server, total unchanged)\n",
              model_bytes / 1e3);
  return supported > 300 ? 0 : 1;
}
