// Table 3: ResNet-18 on Cifar10 scaled from 1 to 32 workers; top-1 accuracy
// and the delta against the single-node MSGD baseline.
//
// Protocol note (documented in EXPERIMENTS.md): the paper shrinks the
// per-worker batch as 512/N; we keep the per-worker batch fixed so that the
// number of optimizer steps per epoch is identical at every scale and the
// accuracy delta isolates *staleness*, which is the effect Table 3 is about.
//
// Also reproduces the §5.4 momentum observation: at 32 workers, lowering the
// DGS momentum from 0.7 to 0.3 *improves* accuracy (asynchrony itself
// contributes momentum). Run with --ablation to include that sweep.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

namespace {

struct PaperEntry {
  std::size_t workers;
  Method method;
  double top1;  // paper's reported top-1 %
};

// Paper Table 3 (batch column omitted; see protocol note above).
constexpr PaperEntry kPaper[] = {
    {1, Method::kMSGD, 93.08},      {4, Method::kASGD, 90.70},
    {4, Method::kGDAsync, 92.01},   {4, Method::kDGCAsync, 92.64},
    {4, Method::kDGS, 92.91},       {8, Method::kASGD, 90.46},
    {8, Method::kGDAsync, 91.81},   {8, Method::kDGCAsync, 92.37},
    {8, Method::kDGS, 93.32},       {16, Method::kASGD, 90.53},
    {16, Method::kGDAsync, 91.43},  {16, Method::kDGCAsync, 92.28},
    {16, Method::kDGS, 92.98},      {32, Method::kASGD, 88.36},
    {32, Method::kGDAsync, 91.00},  {32, Method::kDGCAsync, 91.86},
    {32, Method::kDGS, 92.69},
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const bool ablation = flags.boolean(
      "ablation", false, "also run the 32-worker momentum sweep (§5.4)");
  const auto worker_list =
      flags.i64_list("workers", {1, 4, 8, 16, 32}, "worker counts to run");
  if (benchkit::parse_harness_options(flags, options)) return 0;

  // The 32-worker rows need a slightly longer schedule than the other quick
  // benches for the sparse methods' update intervals to complete; still ~3x
  // shorter than --full.
  const double scale = options.full ? 1.0 : 0.37;
  const benchkit::Task task =
      benchkit::make_cifar_task(scale, options.seed ? options.seed : 42);
  const auto data = benchkit::load(task);

  // Baseline first: every delta is relative to single-node MSGD.
  benchkit::RunSpec baseline;
  baseline.method = Method::kMSGD;
  baseline.workers = 1;
  baseline.record_curve = false;
  baseline.trace = options.trace();
  baseline.transport = options.transport;
  const auto msgd_result = benchkit::run_one(task, data, baseline);
  const double msgd = msgd_result.final_test_accuracy;
  benchkit::export_metrics(options, msgd_result, "w1/MSGD");
  benchkit::export_ledger(options, msgd_result, "w1/MSGD",
                          "table3_cifar_scalability");
  std::fprintf(stderr, "MSGD baseline: %.2f%%\n", 100.0 * msgd);

  util::Table table({"Workers", "Method", "Paper Top-1", "Paper Delta",
                     "Ours Top-1", "Ours Delta", "Stale p95"});
  table.add_row({"1", "MSGD", "93.08%", "-",
                 util::Table::pct(100.0 * msgd, 2, false), "-", "-"});

  for (std::int64_t w : worker_list) {
    if (w <= 1) continue;
    for (Method method : {Method::kASGD, Method::kGDAsync, Method::kDGCAsync,
                          Method::kDGS, Method::kDGSAdaptive}) {
      benchkit::RunSpec spec;
      spec.method = method;
      spec.workers = static_cast<std::size_t>(w);
      spec.record_curve = false;
      spec.trace = options.trace();
      spec.transport = options.transport;
      const auto result = benchkit::run_one(task, data, spec);
      double paper_top1 = 0.0;
      for (const auto& e : kPaper)
        if (e.workers == static_cast<std::size_t>(w) && e.method == method)
          paper_top1 = e.top1;
      const double ours = 100.0 * result.final_test_accuracy;
      // Methods outside the paper's roster (DGS-Adaptive) have no paper
      // columns.
      table.add_row({std::to_string(w), core::method_name(method),
                     paper_top1 > 0.0 ? util::Table::pct(paper_top1, 2, false)
                                      : "--",
                     paper_top1 > 0.0 ? util::Table::pct(paper_top1 - 93.08, 2)
                                      : "--",
                     util::Table::pct(ours, 2, false),
                     util::Table::pct(ours - 100.0 * msgd, 2),
                     util::Table::num(result.staleness_hist.p95, 1)});
      const std::string run_key =
          "w" + std::to_string(w) + "/" + core::method_name(method);
      benchkit::export_metrics(options, result, run_key);
      benchkit::export_ledger(options, result, run_key,
                              "table3_cifar_scalability");
      std::fprintf(stderr, "w=%lld %s done (%.2f%%)\n",
                   static_cast<long long>(w), core::method_name(method), ours);
    }
  }
  benchkit::export_trace(options);

  std::printf("== Table 3: Cifar10 scalability (fixed per-worker batch %zu) ==\n",
              task.config.batch_size);
  table.print(std::cout);
  const std::string csv = benchkit::csv_path(options, "table3_scalability");
  if (!csv.empty()) table.write_csv(csv);

  if (ablation) {
    // §5.4: "we reduce the momentum from 0.7 to 0.3 in the experiments of 32
    // workers. Surprisingly, the test accuracy increases to 93.7%."
    std::printf("\n== §5.4 momentum ablation: DGS at 32 workers ==\n");
    util::Table mom({"Momentum", "DGS Top-1", "vs MSGD"});
    for (double m : {0.7, 0.5, 0.3}) {
      benchkit::RunSpec spec;
      spec.method = Method::kDGS;
      spec.workers = 32;
      spec.momentum = m;
      spec.record_curve = false;
      spec.transport = options.transport;
      const auto result = benchkit::run_one(task, data, spec);
      mom.add_row({util::Table::num(m, 1),
                   util::Table::pct(100.0 * result.final_test_accuracy, 2, false),
                   util::Table::pct(100.0 * (result.final_test_accuracy - msgd),
                                    2)});
      std::fprintf(stderr, "m=%.1f done\n", m);
    }
    mom.print(std::cout);
    const std::string mom_csv = benchkit::csv_path(options, "table3_momentum");
    if (!mom_csv.empty()) mom.write_csv(mom_csv);
  }
  return 0;
}
