// Ablation (paper §1/§3 motivation): synchronous SSGD vs asynchronous
// training on a heterogeneous cluster.
//
// The argument for ASGD/DGS is that the synchronous barrier pays for the
// slowest worker every round. This bench runs DGS under both engines on
// the same cluster (half the workers 2.5x slower, as in the paper's
// half-virtual-GPU testbed) and reports wall-clock and accuracy.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/session.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 8, "worker count"));
  if (benchkit::parse_harness_options(flags, options)) return 0;

  const benchkit::Task task = benchkit::make_cifar_task(
      options.epoch_scale(), options.seed ? options.seed : 42);
  const auto data = benchkit::load(task);
  const nn::ModelSpec spec = benchkit::model_of(task, data);

  util::Table table(
      {"Engine", "Method", "Sim time", "Top-1", "Time vs async DGS"});
  double async_dgs_time = 0.0;

  auto run = [&](core::EngineKind engine, Method method, const char* label) {
    benchkit::RunSpec run_spec;
    run_spec.method = method;
    run_spec.workers = workers;
    run_spec.record_curve = false;
    // SSGD averages N gradients into one step; apply the linear-scaling
    // rule so both paradigms take comparable optimization steps.
    if (engine == core::EngineKind::kSynchronous)
      run_spec.lr = task.config.lr * static_cast<double>(workers) / 2.0;
    core::TrainConfig config = benchkit::resolve(task, run_spec);
    core::TrainingSession session(spec, data.train, data.test, config, engine);
    const auto result = session.run();
    if (engine == core::EngineKind::kSimulated && method == Method::kDGS)
      async_dgs_time = result.sim_seconds;
    table.add_row({label, core::method_name(method),
                   util::Table::num(result.sim_seconds, 2) + " s",
                   util::Table::pct(100.0 * result.final_test_accuracy, 2, false),
                   async_dgs_time > 0
                       ? util::Table::num(result.sim_seconds / async_dgs_time, 2) + "x"
                       : "-"});
    std::fprintf(stderr, "%s/%s done\n", label, core::method_name(method));
  };

  run(core::EngineKind::kSimulated, Method::kDGS, "async (DES)");
  run(core::EngineKind::kSimulated, Method::kASGD, "async (DES)");
  run(core::EngineKind::kSynchronous, Method::kDGS, "sync barrier");
  run(core::EngineKind::kSynchronous, Method::kGDAsync, "sync barrier");

  std::printf("== Sync vs async on a heterogeneous cluster (%zu workers, "
              "odd ones 2.5x slower) ==\n\n",
              workers);
  table.print(std::cout);
  std::printf("\nThe synchronous barrier pays the straggler tax every round;"
              " asynchronous training does not.\n");
  const std::string csv = benchkit::csv_path(options, "sync_vs_async");
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
