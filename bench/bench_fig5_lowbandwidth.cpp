// Figure 5: training loss vs wall-clock time on 8 workers over 1 Gbps
// Ethernet, ASGD vs DGS (secondary compression on, 99% ratio), plus the
// dual-way codec ablation: the same DGS run with the downward reply
// additionally quantized (DGSQ 8-bit) or sparse-binarized (DGSB/SBC).
//
// The paper reports DGS finishing in 88 minutes vs 506 minutes for ASGD —
// a 5.7x speedup — because ASGD's downward direction ships the whole model
// through the server's single NIC. We reproduce the shape with the DES
// network model: the compute time is calibrated so that the
// transfer/compute ratio matches the paper's ResNet-18-over-1Gbps regime
// (a 46 MB model takes ~3.3x longer to download at 1 Gbps than a
// forward/backward pass takes to compute).
//
// This figure uses the paper's actual sparsity (R=1, i.e. 99%) since the
// wall-clock effect is driven by bytes on the wire, not by accuracy.
//
// --gate-out <json> emits per-series encoded bytes/element (payload bytes
// over reply nnz) and final loss/accuracy for scripts/check_bench.py
// --fig5, which hard-gates the SBC downward path at >= 4x fewer
// bytes/element than the plain COO reply at equal accuracy.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "nn/model.h"
#include "util/table.h"

using namespace dgs;
using core::DownCompress;
using core::Method;

namespace {

struct Series {
  std::string name;
  core::RunResult result;

  /// Mean encoded payload bytes per sent element over non-empty replies
  /// (server.reply.bytes_per_element, DESIGN.md §14): 8 = plain COO,
  /// ~1 = SBC. Payload only — the fixed per-message envelope is excluded,
  /// so this isolates what the codec ships per element.
  [[nodiscard]] double bytes_per_element() const {
    return result.reply_bytes_per_element_hist.mean;
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 8, "asynchronous worker count"));
  const double ratio = flags.f64("ratio", 1.0, "top-R% kept (paper: 1)");
  const std::string gate_out = flags.str(
      "gate-out", "", "write per-series codec gate metrics as JSON");
  if (benchkit::parse_harness_options(flags, options)) return 0;

  const benchkit::Task task = benchkit::make_cifar_task(
      options.epoch_scale(), options.seed ? options.seed : 42);
  const auto data = benchkit::load(task);

  // Calibrate compute so transfer(model)/compute == 3.3 at 1 Gbps, as for
  // ResNet-18 on a V100 in the paper's testbed.
  const nn::ModelSpec spec = benchkit::model_of(task, data);
  nn::ModulePtr probe = spec.build();
  const std::size_t model_bytes =
      nn::param_numel(probe->parameters()) * sizeof(float);
  const double transfer_1g = static_cast<double>(model_bytes) * 8.0 / 1e9;
  const double compute_seconds = transfer_1g / 3.3;
  // Latency scaled with compute (see bench_fig6_speedup.cpp).
  const comm::NetworkModel one_g{1e9, compute_seconds * 5e-4};

  auto run = [&](Method method, bool secondary, DownCompress down) {
    benchkit::RunSpec run_spec;
    run_spec.method = method;
    run_spec.workers = workers;
    run_spec.ratio = ratio;
    run_spec.network = one_g;
    run_spec.compute_seconds = compute_seconds;
    run_spec.secondary_compression = secondary;
    run_spec.secondary_ratio = ratio;
    run_spec.down_compress = down;
    run_spec.min_sparsify = 0;  // sparsify every layer, as in the paper
    run_spec.transport = options.transport;
    return benchkit::run_one(task, data, run_spec);
  };

  std::printf("== Figure 5: time vs training loss, %zu workers @ 1 Gbps ==\n",
              workers);
  std::printf("   model %.1f KB, compute %.3f ms/iter (transfer/compute=3.3)\n\n",
              model_bytes / 1e3, compute_seconds * 1e3);

  std::vector<Series> series;
  series.push_back({"ASGD", run(Method::kASGD, false, DownCompress::kAuto)});
  series.push_back({"DGS", run(Method::kDGS, true, DownCompress::kAuto)});
  series.push_back({"DGS+Q8", run(Method::kDGS, true, DownCompress::kQ8)});
  series.push_back({"DGS+SBC", run(Method::kDGS, true, DownCompress::kSbc)});
  for (const Series& s : series)
    std::fprintf(stderr, "%-8s done: %.1f sim-s\n", s.name.c_str(),
                 s.result.sim_seconds);

  // Emit the loss-vs-time curves on their own time grids.
  util::Table curves({"series", "sim_time_s", "train_loss"});
  for (const Series& s : series)
    for (const auto& p : s.result.curve)
      curves.add_row({s.name, util::Table::num(p.sim_seconds, 2),
                      util::Table::num(p.train_loss, 4)});
  curves.print(std::cout);

  const core::RunResult& asgd = series[0].result;
  const core::RunResult& dgs = series[1].result;
  const double speedup = asgd.sim_seconds / dgs.sim_seconds;
  std::printf("\ncompletion time : ASGD %.1f s, DGS %.1f s -> DGS %.2fx faster"
              " (paper: 506 min vs 88 min = 5.7x)\n",
              asgd.sim_seconds, dgs.sim_seconds, speedup);

  std::printf("\n%-8s %12s %14s %16s %10s %8s\n", "series", "final_loss",
              "final_acc_%", "down_bytes_MB", "bytes/elt", "enc_p95us");
  for (const Series& s : series)
    std::printf("%-8s %12.4f %14.2f %16.2f %10.3f %8.2f\n", s.name.c_str(),
                s.result.final_train_loss,
                100.0 * s.result.final_test_accuracy,
                s.result.bytes.downward_bytes / 1e6, s.bytes_per_element(),
                s.result.reply_encode_us_hist.p95);

  if (!gate_out.empty()) {
    std::ofstream out(gate_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", gate_out.c_str());
      return 1;
    }
    out << "{\n  \"series\": [\n";
    for (std::size_t i = 0; i < series.size(); ++i) {
      const Series& s = series[i];
      out << "    {\"name\": \"" << s.name << "\""
          << ", \"bytes_per_element\": " << s.bytes_per_element()
          << ", \"downward_bytes\": " << s.result.bytes.downward_bytes
          << ", \"reply_elements\": " << s.result.reply_elements
          << ", \"final_train_loss\": " << s.result.final_train_loss
          << ", \"final_test_accuracy\": " << s.result.final_test_accuracy
          << ", \"sim_seconds\": " << s.result.sim_seconds
          << ", \"reply_encode_us_p95\": " << s.result.reply_encode_us_hist.p95
          << "}" << (i + 1 < series.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "gate metrics -> %s\n", gate_out.c_str());
  }

  for (const Series& s : series) {
    benchkit::export_metrics(options, s.result, "fig5/" + s.name);
    benchkit::export_ledger(options, s.result, "fig5/" + s.name,
                            "fig5_lowbandwidth");
  }
  const std::string csv = benchkit::csv_path(options, "fig5_lowbandwidth");
  if (!csv.empty()) curves.write_csv(csv);
  return 0;
}
