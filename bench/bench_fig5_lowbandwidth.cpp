// Figure 5: training loss vs wall-clock time on 8 workers over 1 Gbps
// Ethernet, ASGD vs DGS (secondary compression on, 99% ratio).
//
// The paper reports DGS finishing in 88 minutes vs 506 minutes for ASGD —
// a 5.7x speedup — because ASGD's downward direction ships the whole model
// through the server's single NIC. We reproduce the shape with the DES
// network model: the compute time is calibrated so that the
// transfer/compute ratio matches the paper's ResNet-18-over-1Gbps regime
// (a 46 MB model takes ~3.3x longer to download at 1 Gbps than a
// forward/backward pass takes to compute).
//
// This figure uses the paper's actual sparsity (R=1, i.e. 99%) since the
// wall-clock effect is driven by bytes on the wire, not by accuracy.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "nn/model.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 8, "asynchronous worker count"));
  const double ratio = flags.f64("ratio", 1.0, "top-R% kept (paper: 1)");
  if (benchkit::parse_harness_options(flags, options)) return 0;

  const benchkit::Task task = benchkit::make_cifar_task(
      options.epoch_scale(), options.seed ? options.seed : 42);
  const auto data = benchkit::load(task);

  // Calibrate compute so transfer(model)/compute == 3.3 at 1 Gbps, as for
  // ResNet-18 on a V100 in the paper's testbed.
  const nn::ModelSpec spec = benchkit::model_of(task, data);
  nn::ModulePtr probe = spec.build();
  const std::size_t model_bytes =
      nn::param_numel(probe->parameters()) * sizeof(float);
  const double transfer_1g = static_cast<double>(model_bytes) * 8.0 / 1e9;
  const double compute_seconds = transfer_1g / 3.3;
  // Latency scaled with compute (see bench_fig6_speedup.cpp).
  const comm::NetworkModel one_g{1e9, compute_seconds * 5e-4};

  auto run = [&](Method method, bool secondary) {
    benchkit::RunSpec run_spec;
    run_spec.method = method;
    run_spec.workers = workers;
    run_spec.ratio = ratio;
    run_spec.network = one_g;
    run_spec.compute_seconds = compute_seconds;
    run_spec.secondary_compression = secondary;
    run_spec.secondary_ratio = ratio;
    run_spec.min_sparsify = 0;  // sparsify every layer, as in the paper
    return benchkit::run_one(task, data, run_spec);
  };

  std::printf("== Figure 5: time vs training loss, %zu workers @ 1 Gbps ==\n",
              workers);
  std::printf("   model %.1f KB, compute %.3f ms/iter (transfer/compute=3.3)\n\n",
              model_bytes / 1e3, compute_seconds * 1e3);

  const core::RunResult asgd = run(Method::kASGD, false);
  std::fprintf(stderr, "ASGD done: %.1f sim-s\n", asgd.sim_seconds);
  const core::RunResult dgs = run(Method::kDGS, true);
  std::fprintf(stderr, "DGS  done: %.1f sim-s\n", dgs.sim_seconds);

  // Emit the two loss-vs-time curves on their own time grids.
  util::Table curves({"series", "sim_time_s", "train_loss"});
  for (const auto& p : asgd.curve)
    curves.add_row({"ASGD", util::Table::num(p.sim_seconds, 2),
                    util::Table::num(p.train_loss, 4)});
  for (const auto& p : dgs.curve)
    curves.add_row({"DGS", util::Table::num(p.sim_seconds, 2),
                    util::Table::num(p.train_loss, 4)});
  curves.print(std::cout);

  const double speedup = asgd.sim_seconds / dgs.sim_seconds;
  std::printf("\ncompletion time : ASGD %.1f s, DGS %.1f s -> DGS %.2fx faster"
              " (paper: 506 min vs 88 min = 5.7x)\n",
              asgd.sim_seconds, dgs.sim_seconds, speedup);
  std::printf("final loss      : ASGD %.4f, DGS %.4f\n", asgd.final_train_loss,
              dgs.final_train_loss);
  std::printf("downward bytes  : ASGD %.1f MB, DGS %.1f MB\n",
              asgd.bytes.downward_bytes / 1e6, dgs.bytes.downward_bytes / 1e6);

  const std::string csv = benchkit::csv_path(options, "fig5_lowbandwidth");
  if (!csv.empty()) curves.write_csv(csv);
  return 0;
}
