// Extension bench (the paper's §6 future work): combining asynchronous
// model-difference training with other compression families.
//
// Compares DGS against TernGrad-async, random coordinate dropping, and the
// DGS+ternary hybrid on the SynthCIFAR task: final accuracy, upward bytes
// per iteration, and the compression ratio relative to dense ASGD.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 4, "asynchronous worker count"));
  if (benchkit::parse_harness_options(flags, options)) return 0;

  const benchkit::Task task = benchkit::make_cifar_task(
      options.epoch_scale(), options.seed ? options.seed : 42);
  const auto data = benchkit::load(task);

  struct Row {
    Method method;
    const char* note;
  };
  const Row rows[] = {
      {Method::kASGD, "dense float32 baseline"},
      {Method::kDGS, "top-10% + SAMomentum"},
      {Method::kTernGrad, "2-bit ternary, dense coords"},
      {Method::kRandomDrop, "random 10% keep, 1/p rescale"},
      {Method::kDgsTernary, "top-10% + ternary values"},
  };

  double dense_up = 0.0;
  util::Table table({"Method", "Technique", "Top-1", "Up KB/iter", "vs dense"});
  for (const Row& row : rows) {
    benchkit::RunSpec spec;
    spec.method = row.method;
    spec.workers = workers;
    spec.record_curve = false;
    const auto result = benchkit::run_one(task, data, spec);
    const double up_per_iter =
        static_cast<double>(result.bytes.upward_bytes) /
        static_cast<double>(result.bytes.upward_messages);
    if (row.method == Method::kASGD) dense_up = up_per_iter;
    table.add_row({core::method_name(row.method), row.note,
                   util::Table::pct(100.0 * result.final_test_accuracy, 2, false),
                   util::Table::num(up_per_iter / 1e3, 2),
                   dense_up > 0
                       ? util::Table::num(dense_up / up_per_iter, 1) + "x"
                       : "1.0x"});
    std::fprintf(stderr, "%s done\n", core::method_name(row.method));
  }

  std::printf("== Future-work ablation (§6): compression families on %s, "
              "%zu workers ==\n\n",
              task.name.c_str(), workers);
  table.print(std::cout);
  std::printf("\nThe DGS+ternary hybrid stacks ~2x on top of top-k's "
              "compression; TernGrad alone caps at ~16x (2 of 32 bits).\n");
  const std::string csv = benchkit::csv_path(options, "ext_compression");
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
