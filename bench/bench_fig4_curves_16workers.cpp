// Figure 4: learning curves of ResNet-18 on ImageNet with 16 workers
// (momentum 0.45 per the paper's ImageNet protocol).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "util/table.h"

using namespace dgs;
using core::Method;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  benchkit::HarnessOptions options;
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 16, "asynchronous worker count"));
  if (benchkit::parse_harness_options(flags, options)) return 0;

  const benchkit::Task task = benchkit::make_imagenet_task(
      options.epoch_scale(), options.seed ? options.seed : 1337);
  const auto data = benchkit::load(task);

  const std::pair<Method, const char*> methods[] = {
      {Method::kASGD, "ASGD"},
      {Method::kGDAsync, "GD-async"},
      {Method::kDGCAsync, "DGC-async"},
      {Method::kDGS, "DGS"},
  };

  std::printf("== Figure 4: ResNet-18 on ImageNet, %zu workers (m=0.45) ==\n\n",
              workers);

  std::map<Method, core::RunResult> results;
  for (const auto& [method, name] : methods) {
    benchkit::RunSpec spec;
    spec.method = method;
    spec.workers = workers;
    spec.momentum = 0.45;
    results[method] = benchkit::run_one(task, data, spec);
    std::fprintf(stderr, "%s done (final %.2f%%)\n", name,
                 100.0 * results[method].final_test_accuracy);
  }

  util::CurveSet acc("epoch", {"ASGD", "GD-async", "DGC-async", "DGS"});
  util::CurveSet loss("epoch", {"ASGD", "GD-async", "DGC-async", "DGS"});
  for (std::size_t e = 1; e <= task.config.epochs; ++e) {
    std::vector<double> accs, losses;
    for (const auto& [method, name] : methods) {
      double a = std::nan(""), l = std::nan("");
      for (const auto& p : results[method].curve)
        if (p.epoch == e) {
          a = 100.0 * p.test_accuracy;
          l = p.train_loss;
        }
      accs.push_back(a);
      losses.push_back(l);
    }
    acc.add_point(static_cast<double>(e), accs);
    loss.add_point(static_cast<double>(e), losses);
  }

  std::printf("--- Top-1 accuracy (%%) vs epoch ---\n");
  acc.print(std::cout);
  acc.print_ascii_chart(std::cout);
  std::printf("\n--- Training loss vs epoch ---\n");
  loss.print(std::cout);
  loss.print_ascii_chart(std::cout, 72, 20, /*log_y=*/true);

  const std::string csv = benchkit::csv_path(options, "fig4_accuracy");
  if (!csv.empty()) {
    acc.write_csv(csv);
    loss.write_csv(benchkit::csv_path(options, "fig4_loss"));
  }
  return 0;
}
