#!/usr/bin/env bash
# Build the concurrency-sensitive tests under ThreadSanitizer and run them.
#
# Covers the pieces with real cross-thread interaction: the intra-op
# ParallelFor pool and the packed GEMM's threaded row partitioning
# (test_util, including the bitwise-determinism sweep over thread counts),
# the SIMD dispatch layer and the ParallelFor-packed GEMM panels
# (test_simd: per-ISA forcing races, threaded pack/compute determinism),
# the channel layer, the sharded parameter server under concurrent pushes,
# the ThreadEngine server pool end to end, the observability layer (metrics
# striping and the trace ring buffers) — built with DGS_TRACE=ON so the
# tracer's record/export paths are exercised under TSan too — the chaos
# suite, whose fault-injected ThreadEngine run exercises the retransmit,
# lease reclaim and crash/rejoin paths under racing threads, and the socket
# transport (event loop, framing, the epoll server + client channels).
#
# Fork-based tests are excluded under TSan: the ProcessEngine's uds/tcp
# modes and the ProcessChaos suite fork real worker processes, and TSan's
# runtime does not support multi-threaded children after fork. Their
# thread-transport twins (ProcessEngine.ThreadTransport*, SocketExchange)
# keep the shared protocol code covered.
#
# Usage: scripts/run_tsan.sh [extra ctest/gtest filter]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="$repo/build-tsan"

cmake --preset tsan -S "$repo" -DDGS_TRACE=ON >/dev/null
cmake --build "$build" -j"$(nproc)" \
  --target test_util --target test_simd --target test_comm \
  --target test_concurrency --target test_engines --target test_obs \
  --target test_socket --target test_chaos

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
# Engine/server tests run on the scalar dispatch path under TSan: the
# intrinsic kernels are correctness-covered by test_simd (which iterates
# every supported ISA itself via ForcedIsaScope, overriding this), and the
# scalar path instruments fastest, keeping the suite inside CI timeouts.
export DGS_FORCE_ISA=scalar
status=0
for t in test_util test_simd test_comm test_concurrency test_engines \
         test_obs test_socket test_chaos; do
  echo "== TSan: $t =="
  filter=""
  case "$t" in
    test_socket)
      # Exclude the fork-based engine runs; keep framing/sockets/threads.
      filter="--gtest_filter=-ProcessEngine.UdsWorkersAreRealProcesses:ProcessEngine.TcpWorkersAreRealProcesses:ProcessEngine.FinalModelIsTransportInvariant" ;;
    test_chaos)
      filter="--gtest_filter=-ProcessChaos.*" ;;
  esac
  "$build/tests/$t" $filter "${@}" || status=$?
  [ "$status" -ne 0 ] && break
done

if [ "$status" -eq 0 ]; then
  echo "TSan: all clean"
else
  echo "TSan: FAILED (exit $status)" >&2
fi
exit "$status"
