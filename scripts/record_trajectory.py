#!/usr/bin/env python3
"""Fold run-ledger JSONL lines into a committed perf-trajectory file.

Each bench invocation with --ledger-out appends one RunLedger JSON line
per run (see src/obs/ledger.h).  This script groups those lines by run
key and folds them into a trajectory JSON file (BENCH_table3.json /
BENCH_fig5.json at the repo root) as one entry per git commit:

    {
      "schema": 1,
      "bench": "table3_cifar_scalability",
      "entries": [
        {"sha": "...", "date": "YYYY-MM-DD",
         "ledgers": {"w8/DGS": {...}, "w8/ASGD": {...}}},
        ...
      ]
    }

Entries are append-only and ordered oldest-first; re-recording under the
same sha replaces that sha's entry in place (so iterating locally before
committing does not grow the file).  scripts/check_bench.py --trajectory
gates fresh ledgers against the *last* entry.

Usage:
    bench_table3_cifar_scalability --ledger-out ledger.jsonl ...
    python3 scripts/record_trajectory.py ledger.jsonl BENCH_table3.json \
        [--sha auto] [--date auto] [--bench table3_cifar_scalability]

Exit status: 0 = recorded, 2 = malformed input.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys

SCHEMA = 1


def die(msg: str) -> None:
    print(f"record_trajectory: {msg}", file=sys.stderr)
    sys.exit(2)


def load_ledgers(path: str, bench_filter: str | None):
    """Return (bench, {run: ledger}) from a --ledger-out JSONL file.

    Later lines win for a repeated run key, so re-running a bench into
    the same file records the freshest numbers.
    """
    benches = set()
    ledgers = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as err:
                    die(f"{path}:{lineno}: invalid JSON ({err})")
                if not isinstance(entry, dict) or "run" not in entry:
                    die(f"{path}:{lineno}: not a ledger object (no 'run')")
                # Ledger lines carry their own schema (obs/ledger.h), which
                # advances independently of this file's SCHEMA and is
                # additive across versions: accept any recognizable integer
                # version instead of pinning one (v2 added `adaptive` and
                # later `simd_isa`; v1 lines still parse).
                if not isinstance(entry.get("schema"), int) or entry["schema"] < 1:
                    die(f"{path}:{lineno}: ledger schema "
                        f"{entry.get('schema')!r} is not a version >= 1")
                if bench_filter and entry.get("bench") != bench_filter:
                    continue
                benches.add(entry.get("bench", ""))
                ledgers[entry["run"]] = entry
    except OSError as err:
        die(f"cannot read '{path}': {err}")
    if not ledgers:
        die(f"no ledger lines in '{path}'"
            + (f" for bench '{bench_filter}'" if bench_filter else ""))
    if len(benches) > 1:
        die(f"'{path}' mixes benches {sorted(benches)}; "
            "pass --bench to select one")
    return benches.pop(), ledgers


def git_head_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError) as err:
        die(f"cannot resolve git HEAD (pass --sha explicitly): {err}")
        raise AssertionError  # unreachable


def load_trajectory(path: str, bench: str):
    if not os.path.exists(path):
        return {"schema": SCHEMA, "bench": bench, "entries": []}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        die(f"cannot read trajectory '{path}': {err}")
    if doc.get("schema") != SCHEMA:
        die(f"'{path}' has schema {doc.get('schema')!r}, expected {SCHEMA}")
    if doc.get("bench") != bench:
        die(f"'{path}' records bench {doc.get('bench')!r}, ledger is for "
            f"{bench!r}")
    if not isinstance(doc.get("entries"), list):
        die(f"'{path}' has no entries array")
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("ledger", help="--ledger-out JSONL file from a bench")
    parser.add_argument("trajectory",
                        help="committed trajectory JSON to update "
                             "(created if absent)")
    parser.add_argument("--bench", default=None,
                        help="only fold ledger lines from this bench family")
    parser.add_argument("--sha", default="auto",
                        help="commit sha for the entry (default: git HEAD)")
    parser.add_argument("--date", default="auto",
                        help="entry date, YYYY-MM-DD (default: today)")
    args = parser.parse_args(argv)

    bench, ledgers = load_ledgers(args.ledger, args.bench)
    sha = git_head_sha() if args.sha == "auto" else args.sha
    date = (datetime.date.today().isoformat()
            if args.date == "auto" else args.date)

    doc = load_trajectory(args.trajectory, bench)
    entry = {"sha": sha, "date": date, "ledgers": ledgers}
    replaced = False
    for i, existing in enumerate(doc["entries"]):
        if existing.get("sha") == sha:
            doc["entries"][i] = entry
            replaced = True
            break
    if not replaced:
        doc["entries"].append(entry)

    with open(args.trajectory, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")

    verb = "replaced" if replaced else "appended"
    print(f"record_trajectory: {verb} entry {sha[:12]} ({date}) with "
          f"{len(ledgers)} run(s) in {args.trajectory} "
          f"[{len(doc['entries'])} entries total]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
