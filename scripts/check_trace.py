#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by the obs tracer.

Checks the schema that Perfetto / chrome://tracing relies on:

  * top level is an object with a "traceEvents" array;
  * every event has "ph", "pid" and (for M/X/i phases) the fields that
    phase requires: complete events carry numeric ts/dur, instant events
    carry ts and scope "t", metadata events name the process or a thread;
  * every X/i event's tid is covered by a thread_name metadata entry, and
    the named tracks include at least one worker, one server thread and one
    shard (the acceptance shape for bench_server_throughput --trace-out);
  * every "phase/*" span (emitted by the obs::PhaseTimer attribution sites)
    nests inside some non-phase span on the same track -- phase attribution
    must never claim time outside an enclosing pipeline span.

Usage:
  check_trace.py trace.json                 # validate an existing file
  check_trace.py --generate BENCH [--keep]  # run BENCH --trace-out tmp.json
                                            # (plus --metrics-out, also
                                            # validated as JSONL) and check
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path: str, require_tracks: bool) -> None:
    with open(path, "r", encoding="utf-8") as f:
        trace = json.load(f)

    if not isinstance(trace, dict):
        fail("top level is not an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" array')

    track_names = {}  # tid -> name
    used_tids = set()
    counts = {"M": 0, "X": 0, "i": 0}
    phase_spans = []  # (tid, ts, end, name)
    outer_spans = {}  # tid -> [(ts, end)]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event {i} is not an object")
        ph = event.get("ph")
        if ph not in ("M", "X", "i"):
            fail(f"event {i}: unexpected phase {ph!r}")
        counts[ph] += 1
        if "pid" not in event:
            fail(f"event {i}: missing pid")
        if ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                fail(f"event {i}: metadata name {event.get('name')!r}")
            args = event.get("args", {})
            if not isinstance(args.get("name"), str):
                fail(f"event {i}: metadata without args.name")
            if event["name"] == "thread_name":
                track_names[event.get("tid")] = args["name"]
            continue
        # X and i events.
        if not isinstance(event.get("ts"), (int, float)):
            fail(f"event {i}: non-numeric ts")
        if not isinstance(event.get("name"), str) or not event["name"]:
            fail(f"event {i}: missing name")
        used_tids.add(event.get("tid"))
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            fail(f"event {i}: complete event without numeric dur")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            fail(f"event {i}: instant event without scope")
        if ph == "X":
            tid, ts, end = event.get("tid"), event["ts"], event["ts"] + event["dur"]
            if event["name"].startswith("phase/"):
                phase_spans.append((tid, ts, end, event["name"]))
            else:
                outer_spans.setdefault(tid, []).append((ts, end))

    # Phase-attribution nesting: every phase/* span must sit inside some
    # non-phase span on its own track (the "compute"/"apply_diff" worker
    # scopes or the server's handler scopes). A half-microsecond epsilon
    # absorbs ts rounding in the JSON writer.
    eps = 0.5
    for tid, ts, end, name in phase_spans:
        if not any(o_ts - eps <= ts and end <= o_end + eps
                   for o_ts, o_end in outer_spans.get(tid, ())):
            fail(f"phase span {name!r} [{ts}, {end}] on tid {tid} is not "
                 f"nested inside any non-phase span on that track")

    unnamed = used_tids - set(track_names)
    if unnamed:
        fail(f"events on tracks with no thread_name metadata: {sorted(unnamed)}")

    if require_tracks:
        names = set(track_names.values())
        for prefix in ("worker/", "server/", "shard/"):
            if not any(n.startswith(prefix) for n in names):
                fail(f'no "{prefix}*" track among {sorted(names)}')
        if counts["X"] == 0:
            fail("no complete (X) events recorded")

    print(
        f"check_trace: OK: {counts['X']} spans ({len(phase_spans)} phase), "
        f"{counts['i']} instants, {len(track_names)} named tracks"
    )


def validate_metrics_jsonl(path: str) -> None:
    names = set()
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: invalid JSON ({e})")
            if entry.get("type") not in ("counter", "gauge", "histogram"):
                fail(f"{path}:{lineno}: bad type {entry.get('type')!r}")
            if entry["type"] == "histogram":
                for field in ("count", "p50", "p95", "bounds", "counts"):
                    if field not in entry:
                        fail(f"{path}:{lineno}: histogram missing {field!r}")
            names.add(entry.get("name"))
    if "server.push.staleness" not in names:
        fail(f"no staleness histogram in {path} (got {sorted(names)})")
    print(f"check_trace: OK: metrics JSONL with {len(names)} instruments")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="existing trace JSON file")
    parser.add_argument(
        "--generate",
        metavar="BENCH",
        help="run this bench with --trace-out/--metrics-out, then validate",
    )
    parser.add_argument(
        "--keep", action="store_true", help="keep the generated files"
    )
    args = parser.parse_args()

    if args.generate:
        out_dir = tempfile.mkdtemp(prefix="dgs_trace_")
        trace_path = os.path.join(out_dir, "run.trace.json")
        metrics_path = os.path.join(out_dir, "run.jsonl")
        cmd = [
            args.generate,
            "--iters", "30",
            "--threads", "2",
            "--shards", "1,2",
            "--trace-out", trace_path,
            "--metrics-out", metrics_path,
        ]
        result = subprocess.run(
            cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
        )
        if result.returncode != 0:
            fail(f"{' '.join(cmd)} exited {result.returncode}:\n{result.stderr}")
        # A DGS_TRACE=OFF build writes a valid but empty trace; only require
        # the named tracks when events were actually compiled in.
        with open(trace_path, "r", encoding="utf-8") as f:
            has_events = any(
                e.get("ph") in ("X", "i") for e in json.load(f)["traceEvents"]
            )
        validate_trace(trace_path, require_tracks=has_events)
        if not has_events:
            print("check_trace: note: no events (DGS_TRACE=OFF build?)")
        validate_metrics_jsonl(metrics_path)
        if not args.keep:
            os.remove(trace_path)
            os.remove(metrics_path)
            os.rmdir(out_dir)
    elif args.trace:
        validate_trace(args.trace, require_tracks=False)
    else:
        parser.error("need a trace file or --generate BENCH")


if __name__ == "__main__":
    main()
