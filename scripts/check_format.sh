#!/usr/bin/env bash
# Check-only formatting gate: clang-format --dry-run over the kernel layer
# and the files this layer touches (the curated list below), failing on any
# diff. Degrades to a no-op with a notice when clang-format is unavailable
# (e.g. local containers that only ship gcc) so the script is safe to call
# unconditionally; CI installs clang-format and enforces it.
#
# Usage: scripts/check_format.sh [--all]
#   --all  check every .h/.cpp under src/, tests/ and bench/ instead of the
#          curated list (the legacy files are not all formatter-clean yet).
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping (install it to enforce)"
  exit 0
fi

# Files held to the formatter today. Grow this list as files are cleaned up;
# flip to --all once everything passes.
curated=(
  src/sparse/select.h
  src/sparse/select.cpp
  src/sparse/topk.h
  src/sparse/topk.cpp
  src/util/math_kernels.cpp
  tests/test_select.cpp
  bench/bench_micro_kernels.cpp
)

if [ "${1:-}" = "--all" ]; then
  mapfile -t files < <(find src tests bench -name '*.h' -o -name '*.cpp' | sort)
else
  files=("${curated[@]}")
fi

status=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror "$f" 2>/dev/null; then
    echo "needs formatting: $f"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: ${#files[@]} file(s) clean"
else
  echo "check_format: FAILED — run: clang-format -i <file>" >&2
fi
exit "$status"
