#!/usr/bin/env python3
"""Performance-regression gate over bench_micro_kernels JSON output.

With ``--trajectory`` the input is instead a ``--ledger-out`` JSONL file
of RunLedger records (src/obs/ledger.h) and ``--baseline`` is a committed
trajectory file (BENCH_table3.json / BENCH_fig5.json, written by
scripts/record_trajectory.py).  Each fresh run is compared against the
same run key in the trajectory's *last* entry:

* warm step-time p50 must not regress by more than
  ``--max-step-regression`` (default 0.35, i.e. +35%) -- this is the
  hard gate, and it only fires when both sides recorded warm steps;
* the 0.9x time-to-accuracy milestone, final accuracy and bytes per
  element are reported as advisory deltas (absolute times are only
  meaningful on the machine that recorded the baseline, and accuracy
  drift is owned by the accuracy benches);
* run keys present on only one side are reported, never fatal -- the
  trajectory survives bench roster changes.

With ``--server`` the input is instead the ``--gate-out`` JSON written
by ``bench_server_throughput --transport=uds|tcp`` (the cross-process
socket replay) and the gate checks, per payload series:

* message conservation (hard, machine-independent): every push the
  sender processes emitted must have been serviced and replied to --
  ``messages == expected_messages``;
* throughput sanity (hard): ``pushes_per_s`` must be positive and
  finite;
* with ``--baseline``, per-series pushes/s are band-checked against the
  committed ``bench/baselines/server_throughput.json`` (advisory unless
  ``--enforce-baseline``: absolute socket throughput is machine-bound).

With ``--table2`` the input is instead the ``--gate-out`` JSON written
by ``bench_table2_accuracy --gate-out`` (the adaptive-vs-fixed run pair
at the aggressive ``--gate-ratio``) and the gate checks, all in-run and
machine-independent:

* the adaptive controller must actually run (``adaptive_decisions`` > 0
  on the DGS-Adaptive series, 0 on fixed-R DGS);
* accuracy: DGS-Adaptive's final test accuracy must stay within
  ``--max-adaptive-drop`` (default 0.005 = 0.5 pt) of fixed-R DGS;
* bytes: DGS-Adaptive's upward bytes/element must be at most
  ``--max-bytes-ratio`` (default 1.05) times fixed-R DGS's -- the
  controller reallocates the keep budget, it may not grow it;
* with ``--baseline``, per-series accuracy and bytes/element are
  band-checked against the committed
  ``bench/baselines/table2_adaptive.json`` (advisory unless
  ``--enforce-baseline``: the run is seeded but the horizon is short,
  so accuracy wobbles more than bytes do).

With ``--fig5`` the input is instead the ``--gate-out`` JSON written by
bench_fig5_lowbandwidth, and the gate checks the dual-way codec
acceptance criteria (DESIGN.md §14) -- all in-run, machine-independent:

* the SBC downward reply must ship at least ``--min-sbc-ratio`` (default
  4.0) times fewer encoded bytes/element than the plain COO reply of the
  same run;
* the quantized (Q8) reply must be strictly cheaper per element than COO;
* every compressed series must stay within ``--max-accuracy-drop``
  (default 0.02) final test accuracy of the uncompressed DGS run;
* with ``--baseline``, per-series bytes/element are band-checked against
  the committed baseline (advisory unless ``--enforce-baseline``; the
  simulation is deterministic, so drift means the codec changed).

Without ``--fig5``, four checks, in order of authority:

1. **In-run speedup ratio** (machine-independent, always enforced):
   the fused sparsify kernel must beat the pre-kernel-layer reference
   path -- measured in the *same* run, on the same machine, under the
   same load -- by at least ``--min-speedup`` (default 2.0) at the
   gate shape (1M elements, R = 1%). Because numerator and denominator
   share the run, this holds on any machine and is the check CI fails
   on.

2. **SIMD dispatch gate** (machine-independent, enforced when it can
   fire): the runtime-dispatched GEMM (``BM_GemmPacked/64/576/1024``,
   labelled with the ISA path it took) must beat the same kernel pinned
   to the scalar path in the same run
   (``BM_GemmPackedScalarIsa/64/576/1024``) by at least
   ``--min-dispatch-speedup`` (default 1.3). Skipped -- with a note --
   when the run itself went scalar (non-x86 host, TSan leg, or
   ``DGS_FORCE_ISA=scalar``): there the two benchmarks measure the same
   code path and the ratio is meaningless.

3. **Tolerance band vs. a committed baseline** (optional, advisory by
   default): with ``--baseline``, every benchmark present in both files
   is compared and flagged when slower than baseline by more than
   ``--tolerance`` (default 0.35, i.e. +35%). Absolute times are only
   meaningful on the machine that produced the baseline, so this check
   fails the gate only under ``--enforce-baseline``; otherwise it
   prints the regressions and exits 0 (CI uploads both JSONs as
   artifacts for offline comparison instead).

4. **Codec throughput band** (with ``--baseline``, advisory by
   default): every ``BM_StageEncode``/``BM_StageDecode`` series present
   in both files is band-checked on its reported bytes_per_second
   (MB/s), flagging drops beyond ``--tolerance``. This is the wire
   codec's MB/s budget -- the time band in check 3 already covers it
   indirectly, but throughput is what DESIGN.md §14 budgets against, so
   it is reported in those units. Fails only under
   ``--enforce-baseline``.

Usage:
    bench_micro_kernels --benchmark_out=results.json \
                        --benchmark_out_format=json
    python3 scripts/check_bench.py results.json \
        [--baseline bench/baselines/micro_kernels.json] \
        [--min-speedup 2.0] [--tolerance 0.35] [--enforce-baseline]

Exit status: 0 = gate passed, 1 = gate failed, 2 = malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

# The acceptance-criterion shapes, as (reference, candidate, min_ratio)
# where min_ratio None falls back to --min-speedup:
#   * fused select+compact vs. the reference copy-then-nth_element+extract
#     path on 1M elements at R = 1% (>= --min-speedup, default 2.0);
#   * packed GEMM vs. the scalar double-accumulation oracle at the
#     ResNet-18-on-CIFAR conv shape 64x576x1024, single-threaded (>= 2.5).
GATE_PAIRS = [
    ("BM_SparsifyReference/1048576", "BM_SparsifyFused/1048576", None),
    ("BM_GemmReference/64/576/1024", "BM_GemmPacked/64/576/1024", 2.5),
]

# The SIMD dispatch gate (check 2 in the module docstring): the dispatched
# GEMM vs the same kernel pinned to the scalar path via ForcedIsaScope, at
# the ResNet-18-on-CIFAR conv shape. BM_GemmPacked's label records which
# ISA the run actually dispatched to; "scalar" skips the gate.
SIMD_GATE_DISPATCHED = "BM_GemmPacked/64/576/1024"
SIMD_GATE_SCALAR = "BM_GemmPackedScalarIsa/64/576/1024"


def load_entries(path):
    """Return {benchmark name: entry dict} for a google-benchmark JSON
    file, keeping only plain iteration entries (no aggregates). Each
    entry keeps ``real_time`` normalised to nanoseconds plus, when the
    benchmark reported them, ``label`` (BM_GemmPacked records the
    dispatched ISA path there) and ``bytes_per_second``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        benchmarks = doc["benchmarks"]
    except (OSError, ValueError, KeyError) as err:
        print(f"check_bench: cannot read '{path}': {err}", file=sys.stderr)
        sys.exit(2)

    entries = {}
    for entry in benchmarks:
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry.get("name")
        time = entry.get("real_time")
        if name is None or time is None:
            continue
        # Normalise to nanoseconds so baselines recorded with a different
        # --benchmark_time_unit still compare correctly.
        unit = entry.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            print(f"check_bench: unknown time unit '{unit}' for {name}",
                  file=sys.stderr)
            sys.exit(2)
        entries[name] = {
            "real_time": time * scale,
            "label": entry.get("label", ""),
            "bytes_per_second": entry.get("bytes_per_second"),
        }
    if not entries:
        print(f"check_bench: no benchmark entries in '{path}'",
              file=sys.stderr)
        sys.exit(2)
    return entries


def check_speedup(entries, min_speedup):
    """Enforce the in-run candidate-vs-reference ratios; returns failure
    count. Pairs with an explicit min_ratio use it; the rest use
    --min-speedup."""
    failures = 0
    for reference, candidate, min_ratio in GATE_PAIRS:
        required = min_speedup if min_ratio is None else min_ratio
        if reference not in entries or candidate not in entries:
            missing = [n for n in (reference, candidate) if n not in entries]
            print(f"FAIL  gate pair missing from results: {', '.join(missing)}"
                  f" (run without --benchmark_filter, or include them)")
            failures += 1
            continue
        ratio = entries[reference]["real_time"] / entries[candidate]["real_time"]
        verdict = "ok  " if ratio >= required else "FAIL"
        print(f"{verdict}  {candidate}: {ratio:.2f}x vs {reference}"
              f" (required >= {required:.2f}x)")
        if ratio < required:
            failures += 1
    return failures


def check_simd_dispatch(entries, min_ratio):
    """Enforce the dispatched-vs-scalar GEMM ratio at the gate shape;
    returns failure count. Both sides run in the same process, so the
    ratio is machine-independent; it is only skipped when the dispatched
    run itself resolved to the scalar path (non-x86, TSan leg, or
    DGS_FORCE_ISA=scalar), where both names time identical code."""
    dispatched = entries.get(SIMD_GATE_DISPATCHED)
    scalar = entries.get(SIMD_GATE_SCALAR)
    if dispatched is None or scalar is None:
        missing = [n for n, e in ((SIMD_GATE_DISPATCHED, dispatched),
                                  (SIMD_GATE_SCALAR, scalar)) if e is None]
        print(f"FAIL  SIMD dispatch gate pair missing from results: "
              f"{', '.join(missing)}")
        return 1
    isa = dispatched.get("label", "")
    if isa == "scalar":
        print(f"skip  SIMD dispatch gate: run resolved to the scalar path "
              f"(no SIMD ISA available or forced off)")
        return 0
    ratio = scalar["real_time"] / dispatched["real_time"]
    ok = ratio >= min_ratio
    print(f"{'ok  ' if ok else 'FAIL'}  {SIMD_GATE_DISPATCHED} [{isa}]: "
          f"{ratio:.2f}x vs forced-scalar (required >= {min_ratio:.2f}x)")
    return 0 if ok else 1


def check_baseline(entries, baseline, tolerance):
    """Compare shared benchmarks' times against the baseline; returns
    regressions as a list of (name, current ns, baseline ns, delta
    fraction)."""
    regressions = []
    shared = sorted(set(entries) & set(baseline))
    if not shared:
        print("warn  baseline shares no benchmark names with results")
        return regressions
    for name in shared:
        delta = entries[name]["real_time"] / baseline[name]["real_time"] - 1.0
        if delta > tolerance:
            regressions.append((name, entries[name]["real_time"],
                                baseline[name]["real_time"], delta))
    print(f"baseline: {len(shared)} benchmarks compared, "
          f"{len(regressions)} over the +{tolerance:.0%} band")
    for name, cur, base, delta in regressions:
        print(f"  slow  {name}: {cur / 1e6:.3f} ms vs {base / 1e6:.3f} ms "
              f"({delta:+.1%})")
    return regressions


def check_codec_throughput(entries, baseline, tolerance):
    """Band-check codec stage throughput (bytes_per_second on the
    BM_StageEncode/BM_StageDecode series) against the baseline; returns
    regressions as (name, current MB/s, baseline MB/s, drop fraction)."""
    regressions = []
    shared = sorted(
        name for name in set(entries) & set(baseline)
        if name.startswith(("BM_StageEncode", "BM_StageDecode")))
    compared = 0
    for name in shared:
        cur = entries[name].get("bytes_per_second")
        base = baseline[name].get("bytes_per_second")
        if not cur or not base:
            continue
        compared += 1
        drop = 1.0 - cur / base
        if drop > tolerance:
            regressions.append((name, cur / 1e6, base / 1e6, drop))
    print(f"codec: {compared} stage series compared, "
          f"{len(regressions)} slower than the -{tolerance:.0%} MB/s band")
    for name, cur, base, drop in regressions:
        print(f"  slow  {name}: {cur:.0f} MB/s vs {base:.0f} MB/s "
              f"(-{drop:.1%})")
    return regressions


def load_fig5_series(path):
    """Return {series name: series dict} from a bench_fig5_lowbandwidth
    --gate-out JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        series = {s["name"]: s for s in doc["series"]}
    except (OSError, ValueError, KeyError, TypeError) as err:
        print(f"check_bench: cannot read '{path}': {err}", file=sys.stderr)
        sys.exit(2)
    if not series:
        print(f"check_bench: no series in '{path}'", file=sys.stderr)
        sys.exit(2)
    return series


def check_fig5(series, min_sbc_ratio, max_accuracy_drop):
    """Enforce the dual-way codec gates on one fig5 run; returns failure
    count. All ratios are within-run, so they hold on any machine."""
    failures = 0
    required = {"DGS", "DGS+Q8", "DGS+SBC"}
    missing = sorted(required - set(series))
    if missing:
        print(f"FAIL  fig5 series missing from results: {', '.join(missing)}")
        return 1

    coo = series["DGS"]
    for name in sorted(required):
        s = series[name]
        print(f"      {name}: {s['bytes_per_element']:.3f} B/elt, "
              f"accuracy {s['final_test_accuracy']:.4f}")

    def gate(label, ok):
        nonlocal failures
        print(f"{'ok  ' if ok else 'FAIL'}  {label}")
        if not ok:
            failures += 1

    sbc = series["DGS+SBC"]
    ratio = (coo["bytes_per_element"] / sbc["bytes_per_element"]
             if sbc["bytes_per_element"] > 0 else float("inf"))
    gate(f"SBC vs COO bytes/element: {ratio:.2f}x "
         f"(required >= {min_sbc_ratio:.2f}x)", ratio >= min_sbc_ratio)

    q8 = series["DGS+Q8"]
    gate(f"Q8 cheaper than COO: {q8['bytes_per_element']:.3f} < "
         f"{coo['bytes_per_element']:.3f} B/elt",
         q8["bytes_per_element"] < coo["bytes_per_element"])

    for name in ("DGS+Q8", "DGS+SBC"):
        drop = coo["final_test_accuracy"] - series[name]["final_test_accuracy"]
        gate(f"{name} accuracy drop vs DGS: {drop:+.4f} "
             f"(allowed <= {max_accuracy_drop:.3f})", drop <= max_accuracy_drop)
    return failures


def check_fig5_baseline(series, baseline, tolerance):
    """Band-check per-series bytes/element against the committed baseline;
    returns drifted series as (name, current, baseline, delta fraction)."""
    drifted = []
    shared = sorted(set(series) & set(baseline))
    if not shared:
        print("warn  baseline shares no series names with results")
        return drifted
    for name in shared:
        cur = series[name]["bytes_per_element"]
        base = baseline[name]["bytes_per_element"]
        if base <= 0:
            continue
        delta = cur / base - 1.0
        if abs(delta) > tolerance:
            drifted.append((name, cur, base, delta))
    print(f"baseline: {len(shared)} series compared, "
          f"{len(drifted)} outside the +/-{tolerance:.0%} band")
    for name, cur, base, delta in drifted:
        print(f"  drift  {name}: {cur:.3f} B/elt vs {base:.3f} B/elt "
              f"({delta:+.1%})")
    return drifted


def load_table2_series(path):
    """Return {series name: series dict} from a bench_table2_accuracy
    --gate-out JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        series = {s["name"]: s for s in doc["series"]}
    except (OSError, ValueError, KeyError, TypeError) as err:
        print(f"check_bench: cannot read '{path}': {err}", file=sys.stderr)
        sys.exit(2)
    if not series:
        print(f"check_bench: no series in '{path}'", file=sys.stderr)
        sys.exit(2)
    return series


def check_table2(series, max_adaptive_drop, max_bytes_ratio):
    """Enforce the adaptive-vs-fixed sparsity gates on one table2 gate run;
    returns failure count. Both runs share the task, seed and keep-ratio,
    so every bound is within-run and holds on any machine."""
    failures = 0
    required = {"DGS", "DGS-Adaptive"}
    missing = sorted(required - set(series))
    if missing:
        print(f"FAIL  table2 series missing from results: "
              f"{', '.join(missing)}")
        return 1

    fixed = series["DGS"]
    adaptive = series["DGS-Adaptive"]
    for name in sorted(required):
        s = series[name]
        print(f"      {name}: accuracy {s['final_test_accuracy']:.4f}, "
              f"{s['up_bytes_per_element']:.3f} B/elt, "
              f"{s['adaptive_decisions']} controller decisions")

    def gate(label, ok):
        nonlocal failures
        print(f"{'ok  ' if ok else 'FAIL'}  {label}")
        if not ok:
            failures += 1

    gate(f"controller ran on DGS-Adaptive: "
         f"{adaptive['adaptive_decisions']} decisions (required > 0)",
         adaptive["adaptive_decisions"] > 0)
    gate(f"controller silent on fixed-R DGS: "
         f"{fixed['adaptive_decisions']} decisions (required == 0)",
         fixed["adaptive_decisions"] == 0)

    drop = fixed["final_test_accuracy"] - adaptive["final_test_accuracy"]
    gate(f"adaptive accuracy drop vs fixed-R DGS: {drop:+.4f} "
         f"(allowed <= {max_adaptive_drop:.3f})", drop <= max_adaptive_drop)

    fixed_bpe = fixed["up_bytes_per_element"]
    ratio = (adaptive["up_bytes_per_element"] / fixed_bpe
             if fixed_bpe > 0 else float("inf"))
    gate(f"adaptive bytes/element vs fixed-R DGS: {ratio:.3f}x "
         f"(allowed <= {max_bytes_ratio:.2f}x)", ratio <= max_bytes_ratio)
    return failures


def check_table2_baseline(series, baseline, tolerance):
    """Band-check per-series accuracy and bytes/element against the
    committed baseline; returns drifted metrics as (label, current,
    baseline, delta fraction)."""
    drifted = []
    shared = sorted(set(series) & set(baseline))
    if not shared:
        print("warn  baseline shares no series names with results")
        return drifted
    for name in shared:
        for key in ("final_test_accuracy", "up_bytes_per_element"):
            cur = series[name].get(key, 0.0)
            base = baseline[name].get(key, 0.0)
            if base <= 0:
                continue
            delta = cur / base - 1.0
            if abs(delta) > tolerance:
                drifted.append((f"{name}.{key}", cur, base, delta))
    print(f"baseline: {len(shared)} series compared, "
          f"{len(drifted)} metric(s) outside the +/-{tolerance:.0%} band")
    for label, cur, base, delta in drifted:
        print(f"  drift  {label}: {cur:.4f} vs {base:.4f} ({delta:+.1%})")
    return drifted


def load_server_series(path):
    """Return {series name: series dict} from a bench_server_throughput
    --gate-out JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        series = {s["name"]: s for s in doc["series"]}
    except (OSError, ValueError, KeyError, TypeError) as err:
        print(f"check_bench: cannot read '{path}': {err}", file=sys.stderr)
        sys.exit(2)
    if not series:
        print(f"check_bench: no series in '{path}'", file=sys.stderr)
        sys.exit(2)
    return series


def check_server(series):
    """Enforce the socket-replay gates; returns failure count. Message
    conservation is exact: a lost push or reply over the socket path is a
    transport bug, not noise."""
    failures = 0
    for name in sorted(series):
        s = series[name]
        got = s.get("messages", 0)
        want = s.get("expected_messages", 0)
        rate = s.get("pushes_per_s", 0.0)
        ok = got == want and want > 0
        print(f"{'ok  ' if ok else 'FAIL'}  {name}: {got}/{want} messages "
              f"serviced, {rate:.0f} pushes/s")
        if not ok:
            failures += 1
        if not rate > 0:
            print(f"FAIL  {name}: non-positive throughput {rate}")
            failures += 1
    return failures


def check_server_baseline(series, baseline, tolerance):
    """Band-check per-series pushes/s against the committed baseline;
    returns regressions as (name, current, baseline, delta fraction)."""
    regressions = []
    shared = sorted(set(series) & set(baseline))
    if not shared:
        print("warn  baseline shares no series names with results")
        return regressions
    for name in shared:
        cur = series[name].get("pushes_per_s", 0.0)
        base = baseline[name].get("pushes_per_s", 0.0)
        if base <= 0:
            continue
        delta = 1.0 - cur / base
        if delta > tolerance:
            regressions.append((name, cur, base, delta))
    print(f"baseline: {len(shared)} series compared, "
          f"{len(regressions)} slower than the -{tolerance:.0%} band")
    for name, cur, base, delta in regressions:
        print(f"  slow  {name}: {cur:.0f} pushes/s vs {base:.0f} pushes/s "
              f"(-{delta:.1%})")
    return regressions


def load_ledger_lines(path):
    """Return {run key: ledger dict} from a --ledger-out JSONL file; later
    lines win for a repeated key."""
    ledgers = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                if not isinstance(entry, dict) or "run" not in entry:
                    raise ValueError(f"line {lineno}: not a ledger object")
                ledgers[entry["run"]] = entry
    except (OSError, ValueError) as err:
        print(f"check_bench: cannot read '{path}': {err}", file=sys.stderr)
        sys.exit(2)
    if not ledgers:
        print(f"check_bench: no ledger lines in '{path}'", file=sys.stderr)
        sys.exit(2)
    return ledgers


def load_trajectory_tail(path):
    """Return (sha, {run key: ledger dict}) for the last entry of a
    committed trajectory file, or (None, {}) when it has no entries yet."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        entries = doc["entries"]
    except (OSError, ValueError, KeyError) as err:
        print(f"check_bench: cannot read '{path}': {err}", file=sys.stderr)
        sys.exit(2)
    if not entries:
        return None, {}
    tail = entries[-1]
    return tail.get("sha"), tail.get("ledgers", {})


def milestone_time(ledger, frac):
    """Seconds to the first curve point at frac * final accuracy, or None
    when the run never got there (or recorded no curve)."""
    for m in ledger.get("milestones", []):
        if abs(m.get("frac", 0.0) - frac) < 1e-9 and m.get("reached"):
            return m.get("time_s")
    return None


def check_trajectory(fresh, baseline_sha, baseline, max_step_regression):
    """Gate fresh ledgers against the last committed trajectory entry;
    returns the hard-failure count (warm step-time p50 regressions)."""
    if baseline_sha is None:
        print("trajectory: baseline has no entries yet; nothing to gate")
        return 0
    shared = sorted(set(fresh) & set(baseline))
    only_fresh = sorted(set(fresh) - set(baseline))
    only_base = sorted(set(baseline) - set(fresh))
    print(f"trajectory: {len(shared)} run(s) vs entry {baseline_sha[:12]}")
    if only_fresh:
        print(f"note  new run keys (no baseline): {', '.join(only_fresh)}")
    if only_base:
        print(f"note  baseline-only run keys: {', '.join(only_base)}")
    if not shared:
        print("warn  trajectory shares no run keys with the fresh ledgers")
        return 0

    failures = 0
    for run in shared:
        cur, base = fresh[run], baseline[run]

        # Hard gate: warm step-time p50. Requires warm steps on both sides
        # (a DGS_TRACE=OFF build records none and is exempt by design).
        cur_p50 = cur.get("step_us", {}).get("p50", 0.0)
        base_p50 = base.get("step_us", {}).get("p50", 0.0)
        if cur.get("warm_steps", 0) > 0 and base.get("warm_steps", 0) > 0 \
                and base_p50 > 0:
            delta = cur_p50 / base_p50 - 1.0
            ok = delta <= max_step_regression
            print(f"{'ok  ' if ok else 'FAIL'}  {run}: warm step p50 "
                  f"{cur_p50:.1f} us vs {base_p50:.1f} us ({delta:+.1%}, "
                  f"allowed <= +{max_step_regression:.0%})")
            if not ok:
                failures += 1
        else:
            print(f"skip  {run}: warm step gate (no warm steps on one side)")

        # Advisory deltas: time-to-0.9x-accuracy, final accuracy, wire cost.
        cur_tta = milestone_time(cur, 0.9)
        base_tta = milestone_time(base, 0.9)
        if cur_tta is not None and base_tta is not None and base_tta > 0:
            print(f"      {run}: time-to-0.9x-acc {cur_tta:.2f} s vs "
                  f"{base_tta:.2f} s ({cur_tta / base_tta - 1.0:+.1%})")
        elif cur_tta is None and base_tta is not None:
            print(f"warn  {run}: 0.9x-accuracy milestone no longer reached "
                  f"(baseline reached it at {base_tta:.2f} s)")
        acc_delta = (cur.get("final_test_accuracy", 0.0)
                     - base.get("final_test_accuracy", 0.0))
        print(f"      {run}: final accuracy {cur.get('final_test_accuracy', 0.0):.4f} "
              f"({acc_delta:+.4f} vs baseline)")
        for key in ("up_bytes_per_element", "down_bytes_per_element"):
            base_v = base.get(key, 0.0)
            cur_v = cur.get(key, 0.0)
            if base_v > 0 and cur_v > 0 and abs(cur_v / base_v - 1.0) > 0.05:
                print(f"warn  {run}: {key} {cur_v:.3f} vs {base_v:.3f} "
                      f"({cur_v / base_v - 1.0:+.1%}) -- codec change?")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results",
                        help="bench_micro_kernels --benchmark_out JSON file; "
                             "with --fig5 the bench_fig5_lowbandwidth "
                             "--gate-out JSON file; with --trajectory a "
                             "--ledger-out JSONL file")
    parser.add_argument("--baseline",
                        help="committed baseline JSON to band-check against "
                             "(required with --trajectory)")
    parser.add_argument("--server", action="store_true",
                        help="gate the socket-replay series from "
                             "bench_server_throughput --gate-out instead of "
                             "micro-kernel times")
    parser.add_argument("--table2", action="store_true",
                        help="gate the adaptive-vs-fixed sparsity metrics "
                             "from bench_table2_accuracy --gate-out instead "
                             "of micro-kernel times")
    parser.add_argument("--fig5", action="store_true",
                        help="gate the dual-way codec metrics from "
                             "bench_fig5_lowbandwidth --gate-out instead of "
                             "micro-kernel times")
    parser.add_argument("--trajectory", action="store_true",
                        help="gate a --ledger-out JSONL file against the "
                             "last entry of the committed trajectory given "
                             "by --baseline (see record_trajectory.py)")
    parser.add_argument("--max-step-regression", type=float, default=0.35,
                        help="[--trajectory] allowed warm step-time p50 "
                             "regression vs the last committed entry "
                             "(default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required in-run fused/reference ratio "
                             "(default: %(default)s)")
    parser.add_argument("--min-dispatch-speedup", type=float, default=1.3,
                        help="required in-run dispatched-vs-forced-scalar "
                             "GEMM ratio; skipped when the run itself went "
                             "scalar (default: %(default)s)")
    parser.add_argument("--min-sbc-ratio", type=float, default=4.0,
                        help="[--fig5] required COO/SBC bytes-per-element "
                             "ratio (default: %(default)s)")
    parser.add_argument("--max-adaptive-drop", type=float, default=0.005,
                        help="[--table2] allowed final-accuracy drop of "
                             "DGS-Adaptive vs fixed-R DGS "
                             "(default: %(default)s)")
    parser.add_argument("--max-bytes-ratio", type=float, default=1.05,
                        help="[--table2] allowed adaptive/fixed upward "
                             "bytes-per-element ratio "
                             "(default: %(default)s)")
    parser.add_argument("--max-accuracy-drop", type=float, default=0.02,
                        help="[--fig5] allowed final-accuracy drop of a "
                             "compressed series vs plain DGS "
                             "(default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed drift vs baseline as a fraction "
                             "(default: %(default)s)")
    parser.add_argument("--enforce-baseline", action="store_true",
                        help="fail (not just report) on baseline regressions")
    args = parser.parse_args(argv)

    if args.trajectory:
        if not args.baseline:
            print("check_bench: --trajectory requires --baseline",
                  file=sys.stderr)
            return 2
        fresh = load_ledger_lines(args.results)
        sha, baseline = load_trajectory_tail(args.baseline)
        failures = check_trajectory(fresh, sha, baseline,
                                    args.max_step_regression)
    elif args.server:
        series = load_server_series(args.results)
        failures = check_server(series)
        if args.baseline:
            regressions = check_server_baseline(
                series, load_server_series(args.baseline), args.tolerance)
            if regressions and args.enforce_baseline:
                failures += len(regressions)
    elif args.table2:
        series = load_table2_series(args.results)
        failures = check_table2(series, args.max_adaptive_drop,
                                args.max_bytes_ratio)
        if args.baseline:
            drifted = check_table2_baseline(
                series, load_table2_series(args.baseline), args.tolerance)
            if drifted and args.enforce_baseline:
                failures += len(drifted)
    elif args.fig5:
        series = load_fig5_series(args.results)
        failures = check_fig5(series, args.min_sbc_ratio,
                              args.max_accuracy_drop)
        if args.baseline:
            drifted = check_fig5_baseline(
                series, load_fig5_series(args.baseline), args.tolerance)
            if drifted and args.enforce_baseline:
                failures += len(drifted)
    else:
        entries = load_entries(args.results)
        failures = check_speedup(entries, args.min_speedup)
        failures += check_simd_dispatch(entries, args.min_dispatch_speedup)
        if args.baseline:
            base_entries = load_entries(args.baseline)
            regressions = check_baseline(entries, base_entries,
                                         args.tolerance)
            regressions += check_codec_throughput(entries, base_entries,
                                                  args.tolerance)
            if regressions and args.enforce_baseline:
                failures += len(regressions)

    if failures:
        print(f"check_bench: FAILED ({failures} violation(s))")
        return 1
    print("check_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
