// Quickstart: train a small model with DGS on the synthetic CIFAR-like task
// and compare against dense ASGD, printing the learning curve and the
// communication savings.
//
//   ./examples/quickstart [--workers N] [--epochs E] [--method dgs|asgd|...]
#include <cstdio>
#include <iostream>

#include "core/checkpoint.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dgs;

  util::Flags flags(argc, argv);
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 4, "number of asynchronous workers"));
  const auto epochs =
      static_cast<std::size_t>(flags.i64("epochs", 12, "training epochs"));
  const std::string method_name =
      flags.str("method", "dgs", "msgd|asgd|gd|dgc|dgs");
  const double ratio = flags.f64("ratio", 1.0, "top-R% kept per layer");
  const std::string down = flags.str(
      "down-compress", "auto",
      "downward reply codec: auto|coo|dense|q8|q4|sbc (DESIGN.md §14)");
  const auto warmup = static_cast<std::size_t>(
      flags.i64("warmup", -1, "sparsity warmup epochs (-1 = method default)"));
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed", 42, "seed"));
  const auto batch = static_cast<std::size_t>(
      flags.i64("batch", 32, "per-worker batch size"));
  const double lr = flags.f64("lr", 0.1, "initial learning rate");
  const double straggler =
      flags.f64("straggler", 1.0, "slowdown factor for odd workers");
  const double jitter = flags.f64("jitter", 0.1, "compute time jitter");
  const bool flags_bn = flags.boolean("bn", true, "use BatchNorm in the model");
  const std::string flags_ckpt =
      flags.str("checkpoint", "", "path to save the final model (optional)");
  const std::string transport = flags.str(
      "transport", "sim",
      "sim (deterministic DES) | thread | uds | tcp -- uds/tcp fork every "
      "worker as a real OS process talking to the server over a socket "
      "(wall-clock; the simulated network/straggler model is ignored)");
  if (flags.finish()) return 0;

  // 1. Data: a deterministic synthetic stand-in for CIFAR-10.
  const auto data = data::make_synthetic(data::SyntheticSpec::synth_cifar(seed));

  // 2. Model: a BatchNorm ResMLP (standing in for the paper's ResNet-18).
  auto spec = nn::ModelSpec::res_mlp(
      data.train->feature_dim(), 96, /*blocks=*/2, data.train->num_classes());
  spec.batch_norm = flags_bn;

  // 3. Training configuration.
  core::TrainConfig config;
  config.method = core::parse_method(method_name);
  config.num_workers = config.method == core::Method::kMSGD ? 1 : workers;
  config.batch_size = batch;
  config.epochs = epochs;
  config.lr = lr;
  config.momentum = 0.7;
  config.compression.ratio_percent = ratio;
  // Downward replies can additionally be quantized (q8/q4) or shipped as
  // Rice-coded mean-magnitude signs (sbc); the quantization error stays in
  // the server residual M - v_k, so accuracy is preserved (DESIGN.md §14).
  config.compression.down_compress = core::parse_down_compress(down);
  // DGC ships with a sparsity-warmup schedule (Lin et al.); the other
  // methods train without tricks, as in the paper's setup.
  config.compression.warmup_epochs =
      warmup != static_cast<std::size_t>(-1)
          ? warmup
          : (config.method == core::Method::kDGCAsync ? 4 : 0);
  config.seed = seed;
  // Mirror the paper's heterogeneous cluster (half the GPUs were virtual):
  // odd-numbered workers run slower, which makes staleness bursty.
  config.compute.worker_speed.assign(config.num_workers, 1.0);
  for (std::size_t k = 1; k < config.num_workers; k += 2)
    config.compute.worker_speed[k] = straggler;
  config.compute.jitter_frac = jitter;

  std::printf("== DGS quickstart: %s, %zu worker(s), %zu epochs, R=%.1f%% ==\n",
              core::method_name(config.method), config.num_workers,
              config.epochs, ratio);

  // 4. Run: the deterministic discrete-event engine by default, or the
  // wire-only ProcessEngine (DESIGN.md §16) when --transport is given --
  // with uds/tcp the workers are real forked processes and every gradient
  // crosses a real socket.
  core::EngineKind engine = core::EngineKind::kSimulated;
  if (transport != "sim") {
    config.transport = core::parse_transport_kind(transport);
    engine = core::EngineKind::kProcess;
  }
  core::TrainingSession session(spec, data.train, data.test, config, engine);
  const core::RunResult result = session.run();

  // 5. Report.
  util::Table curve({"epoch", "sim_time_s", "train_loss", "test_acc"});
  for (const auto& p : result.curve)
    curve.add_row({std::to_string(p.epoch), util::Table::num(p.sim_seconds, 2),
                   util::Table::num(p.train_loss, 4),
                   util::Table::pct(100.0 * p.test_accuracy, 2, false)});
  curve.print(std::cout);

  std::printf("\nfinal top-1 accuracy : %.2f%%\n",
              100.0 * result.final_test_accuracy);
  std::printf("server steps          : %llu\n",
              static_cast<unsigned long long>(result.server_steps));
  std::printf("mean staleness        : %.2f updates\n", result.staleness.mean());
  std::printf("upward bytes          : %.2f MB in %llu msgs\n",
              result.bytes.upward_bytes / 1e6,
              static_cast<unsigned long long>(result.bytes.upward_messages));
  std::printf("downward bytes        : %.2f MB in %llu msgs\n",
              result.bytes.downward_bytes / 1e6,
              static_cast<unsigned long long>(result.bytes.downward_messages));
  std::printf("%s : %.2f s  (%.0f samples/s)\n",
              transport == "sim" ? "simulated time       "
                                 : "wall-clock time      ",
              result.sim_seconds, result.samples_per_second());

  // 6. Checkpoint the trained model so it can be reloaded and served.
  const std::string ckpt = flags_ckpt;
  if (!ckpt.empty()) {
    nn::ModulePtr probe = spec.build();
    core::save_checkpoint(
        core::Checkpoint::from_flat(result.final_model,
                                    nn::param_layer_sizes(probe->parameters()),
                                    result.server_steps,
                                    result.final_test_accuracy),
        ckpt);
    std::printf("checkpoint saved      : %s\n", ckpt.c_str());
  }
  return 0;
}
