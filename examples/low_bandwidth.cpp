// Example: training over a slow link (the paper's §5.5 scenario).
//
// Simulates an 8-worker cluster behind a 1 Gbps (or --bandwidth-gbps X)
// server NIC and shows how dual-way sparsification plus secondary
// compression turns a communication-bound job into a compute-bound one.
//
//   ./examples/low_bandwidth [--bandwidth-gbps 1] [--workers 8]
#include <cstdio>

#include "core/session.h"
#include "data/synthetic.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dgs;

  util::Flags flags(argc, argv);
  const double gbps =
      flags.f64("bandwidth-gbps", 1.0, "server link bandwidth in Gbps");
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 8, "number of asynchronous workers"));
  const auto epochs =
      static_cast<std::size_t>(flags.i64("epochs", 8, "training epochs"));
  const double ratio = flags.f64("ratio", 1.0, "top-R% kept per layer");
  if (flags.finish()) return 0;

  const auto data = data::make_synthetic(data::SyntheticSpec::synth_cifar(11));
  auto spec = nn::ModelSpec::res_mlp(data.train->feature_dim(), 96, 2,
                                     data.train->num_classes());
  spec.batch_norm = true;

  core::TrainConfig config;
  config.num_workers = workers;
  config.batch_size = 32;
  config.epochs = epochs;
  config.lr = 0.05;
  config.momentum = 0.7;
  config.compression.ratio_percent = ratio;
  config.network = comm::NetworkModel{gbps * 1e9, 50e-6};
  config.compute.base_seconds = 1e-3;  // fast GPU: communication dominates
  config.seed = 11;

  std::printf("== Low-bandwidth training: %zu workers @ %.1f Gbps ==\n\n",
              workers, gbps);
  std::printf("%-28s %10s %10s %12s %12s\n", "configuration", "sim time",
              "top-1", "up MB", "down MB");

  struct Row {
    const char* label;
    core::Method method;
    bool secondary;
  };
  const Row rows[] = {
      {"ASGD (dense both ways)", core::Method::kASGD, false},
      {"DGS (upward sparsified)", core::Method::kDGS, false},
      {"DGS + secondary compression", core::Method::kDGS, true},
  };

  double asgd_time = 0.0;
  for (const Row& row : rows) {
    config.method = row.method;
    config.compression.secondary = row.secondary;
    config.compression.secondary_ratio_percent = ratio;
    core::TrainingSession session(spec, data.train, data.test, config);
    const core::RunResult result = session.run();
    if (row.method == core::Method::kASGD) asgd_time = result.sim_seconds;
    std::printf("%-28s %9.2fs %9.2f%% %11.2f %11.2f\n", row.label,
                result.sim_seconds, 100.0 * result.final_test_accuracy,
                result.bytes.upward_bytes / 1e6,
                result.bytes.downward_bytes / 1e6);
    if (row.method == core::Method::kDGS && row.secondary && asgd_time > 0.0)
      std::printf("%-28s -> %.1fx faster than dense ASGD on this link\n", "",
                  asgd_time / result.sim_seconds);
  }
  return 0;
}
