// Example: bringing your own architecture and inspecting the optimizer.
//
// Builds a custom module graph directly from layers (rather than the model
// zoo), trains it with DGS, and then uses the library's lower-level pieces
// (SAMomentum, the sparsifier, the codec) standalone to show what crosses
// the wire for a single iteration.
//
//   ./examples/custom_model
#include <cstdio>
#include <memory>

#include "core/optimizer.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "nn/layers.h"
#include "sparse/codec.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace dgs;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto epochs =
      static_cast<std::size_t>(flags.i64("epochs", 6, "training epochs"));
  if (flags.finish()) return 0;

  // --- 1. Train a zoo CNN on a small synthetic "image" task. -------------
  data::SyntheticSpec dspec = data::SyntheticSpec::synth_cifar(3);
  dspec.feature_dim = 3 * 8 * 8;  // 3-channel 8x8 images
  dspec.num_train = 2048;
  dspec.num_test = 512;
  const auto data = data::make_synthetic(dspec);
  const auto spec = nn::ModelSpec::cnn(3, 8, 8, 8, dspec.num_classes);

  core::TrainConfig config;
  config.method = core::Method::kDGS;
  config.num_workers = 4;
  config.batch_size = 32;
  config.epochs = epochs;
  config.lr = 0.05;
  config.momentum = 0.7;
  config.compression.ratio_percent = 10.0;
  config.compression.min_sparsify_size = 64;
  config.seed = 3;

  std::printf("== Training a Conv2d model (%s) with DGS on 4 workers ==\n",
              spec.name().c_str());
  const auto result =
      core::TrainingSession(spec, data.train, data.test, config).run();
  std::printf("final top-1: %.2f%% after %zu epochs (%.2f MB up, %.2f MB down)\n\n",
              100.0 * result.final_test_accuracy, epochs,
              result.bytes.upward_bytes / 1e6,
              result.bytes.downward_bytes / 1e6);

  // --- 2. Drive SAMomentum + the codec by hand for one layer. -------------
  std::printf("== One SAMomentum step, dissected ==\n");
  const std::vector<std::size_t> layer_sizes{16};
  core::CompressionConfig compression;
  compression.ratio_percent = 25.0;  // keep top 4 of 16
  core::SAMomentum samomentum(layer_sizes, compression, /*momentum=*/0.7f);

  util::Rng rng(5);
  std::vector<float> grad(16);
  for (auto& g : grad) g = rng.normal(0.0f, 1.0f);

  const core::GradViews views{std::span<const float>{grad.data(), 16}};
  const auto update = samomentum.step(views, /*lr=*/0.1f, /*epoch=*/0);
  const auto bytes = sparse::encode(update);
  std::printf("gradient has 16 floats (64 B dense payload)\n");
  std::printf("DGS sent %zu entries in %zu wire bytes (density %.1f%%)\n",
              update.total_nnz(), bytes.size(), 100.0 * update.density());
  for (std::size_t i = 0; i < update.layers[0].nnz(); ++i)
    std::printf("  coord %2u -> %+0.4f\n", update.layers[0].idx[i],
                update.layers[0].val[i]);
  std::printf("unsent velocity entries were rescaled by 1/m = %.3f so the\n"
              "eventual send telescopes to m*u_c + lr*sum(grads) (Eq. 16).\n",
              1.0 / 0.7);
  return 0;
}
