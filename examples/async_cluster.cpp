// Example: a real multi-threaded parameter-server cluster.
//
// Runs DGS on actual std::thread workers (the ThreadEngine) — OS-scheduled
// asynchrony rather than the simulated clock — and contrasts the measured
// wall-clock, staleness and traffic against dense ASGD on the same machine.
//
//   ./examples/async_cluster [--workers N] [--epochs E]
#include <cstdio>

#include "core/session.h"
#include "data/synthetic.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dgs;

  util::Flags flags(argc, argv);
  const auto workers = static_cast<std::size_t>(
      flags.i64("workers", 4, "number of worker threads"));
  const auto epochs =
      static_cast<std::size_t>(flags.i64("epochs", 8, "training epochs"));
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed", 7, "seed"));
  if (flags.finish()) return 0;

  const auto data = data::make_synthetic(data::SyntheticSpec::synth_cifar(seed));
  auto spec = nn::ModelSpec::res_mlp(data.train->feature_dim(), 96, 2,
                                     data.train->num_classes());
  spec.batch_norm = true;

  core::TrainConfig config;
  config.num_workers = workers;
  config.batch_size = 32;
  config.epochs = epochs;
  config.lr = 0.05;
  config.momentum = 0.7;
  config.compression.ratio_percent = 10.0;
  config.compression.min_sparsify_size = 512;
  config.seed = seed;

  std::printf("== ThreadEngine cluster: %zu worker threads, %zu epochs ==\n\n",
              workers, epochs);

  for (core::Method method : {core::Method::kASGD, core::Method::kDGS}) {
    config.method = method;
    core::TrainingSession session(spec, data.train, data.test, config,
                                  core::EngineKind::kThreaded);
    const core::RunResult result = session.run();
    std::printf("%-10s wall %.2fs | top-1 %.2f%% | staleness mean %.2f max %llu"
                " | up %.2f MB down %.2f MB\n",
                core::method_name(method), result.wall_seconds,
                100.0 * result.final_test_accuracy, result.staleness.mean(),
                static_cast<unsigned long long>(result.staleness.max),
                result.bytes.upward_bytes / 1e6,
                result.bytes.downward_bytes / 1e6);
  }
  std::printf("\nThe DGS rows move ~10-50x less data for comparable accuracy;\n"
              "staleness comes from genuine OS thread scheduling here.\n");
  return 0;
}
