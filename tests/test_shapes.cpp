// Parameterized shape sweeps: Conv2d geometry grid, BatchNorm layouts,
// pooling sizes, and model zoo construction across configurations. These
// exercise the index arithmetic that unit examples alone cannot cover.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/gradcheck.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "util/rng.h"

namespace {

using namespace dgs::nn;
using dgs::tensor::conv_out_size;
using dgs::tensor::Shape;
using dgs::tensor::Tensor;

// (in_channels, out_channels, kernel, stride, pad, height, width)
using ConvCase =
    std::tuple<std::size_t, std::size_t, std::size_t, std::size_t, std::size_t,
               std::size_t, std::size_t>;

class ConvShapeSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapeSweep, ForwardShapeAndGradientAgree) {
  const auto [in_c, out_c, k, stride, pad, h, w] = GetParam();
  Conv2d conv(in_c, out_c, k, stride, pad);
  dgs::util::Rng rng(7);
  conv.init(rng);
  Tensor x(Shape{2, in_c, h, w});
  x.init_normal(rng, 0.0f, 0.5f);

  Tensor y = conv.forward(x, true);
  const std::size_t oh = conv_out_size(h, k, stride, pad);
  const std::size_t ow = conv_out_size(w, k, stride, pad);
  ASSERT_EQ(y.shape(), (Shape{2, out_c, oh, ow}));

  GradCheckOptions options;
  options.samples_per_param = 6;
  options.input_samples = 6;
  const auto result = gradient_check(conv, x, rng, options);
  EXPECT_TRUE(result.ok) << "rel error " << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConvShapeSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4, 4},   // pointwise
                      ConvCase{2, 3, 3, 1, 1, 5, 5},   // same padding
                      ConvCase{3, 2, 3, 2, 1, 8, 8},   // stride 2
                      ConvCase{1, 4, 5, 1, 2, 7, 7},   // 5x5 kernel
                      ConvCase{2, 2, 3, 1, 0, 6, 9},   // non-square, no pad
                      ConvCase{4, 1, 2, 2, 0, 8, 6},   // even kernel
                      ConvCase{1, 2, 3, 3, 1, 9, 9},   // stride 3
                      ConvCase{2, 5, 1, 1, 0, 3, 3}),  // 1x1 many filters
    [](const auto& info) {
      return "ic" + std::to_string(std::get<0>(info.param)) + "oc" +
             std::to_string(std::get<1>(info.param)) + "k" +
             std::to_string(std::get<2>(info.param)) + "s" +
             std::to_string(std::get<3>(info.param)) + "p" +
             std::to_string(std::get<4>(info.param)) + "h" +
             std::to_string(std::get<5>(info.param)) + "w" +
             std::to_string(std::get<6>(info.param));
    });

// (channels, batch, spatial_h, spatial_w or 0 for rank-2)
using BnCase = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>;

class BatchNormSweep : public ::testing::TestWithParam<BnCase> {};

TEST_P(BatchNormSweep, NormalizesAndBackpropagates) {
  const auto [channels, batch, h, w] = GetParam();
  BatchNorm bn(channels);
  dgs::util::Rng rng(9);
  bn.init(rng);
  Tensor x = w == 0 ? Tensor(Shape{batch, channels})
                    : Tensor(Shape{batch, channels, h, w});
  x.init_normal(rng, 3.0f, 2.0f);  // non-trivial mean/var

  Tensor y = bn.forward(x, true);
  ASSERT_EQ(y.shape(), x.shape());
  // Per-channel output stats are ~N(0, 1) with gamma=1, beta=0.
  const std::size_t spatial = w == 0 ? 1 : h * w;
  for (std::size_t c = 0; c < channels; ++c) {
    double mean = 0.0, var = 0.0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < batch; ++n)
      for (std::size_t i = 0; i < spatial; ++i) {
        const float v = y.flat()[(n * channels + c) * spatial + i];
        mean += v;
        ++count;
      }
    mean /= static_cast<double>(count);
    for (std::size_t n = 0; n < batch; ++n)
      for (std::size_t i = 0; i < spatial; ++i) {
        const double d = y.flat()[(n * channels + c) * spatial + i] - mean;
        var += d * d;
      }
    var /= static_cast<double>(count);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 0.05);
  }

  GradCheckOptions options;
  options.samples_per_param = 4;
  options.input_samples = 6;
  const auto result = gradient_check(bn, x, rng, options);
  EXPECT_TRUE(result.ok) << "rel error " << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(Layouts, BatchNormSweep,
                         ::testing::Values(BnCase{1, 8, 0, 0},
                                           BnCase{4, 4, 0, 0},
                                           BnCase{2, 3, 4, 4},
                                           BnCase{3, 2, 5, 3},
                                           BnCase{8, 2, 2, 2}),
                         [](const auto& info) {
                           return "c" + std::to_string(std::get<0>(info.param)) +
                                  "n" + std::to_string(std::get<1>(info.param)) +
                                  "h" + std::to_string(std::get<2>(info.param)) +
                                  "w" + std::to_string(std::get<3>(info.param));
                         });

class PoolSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSweep, MaxPoolGradientRoutesToArgmax) {
  const std::size_t window = GetParam();
  MaxPool2d pool(window);
  dgs::util::Rng rng(11);
  const std::size_t dim = window * 3;
  Tensor x(Shape{2, 2, dim, dim});
  x.init_normal(rng, 0.0f, 1.0f);
  Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{2, 2, 3, 3}));
  Tensor g(y.shape(), 1.0f);
  Tensor gx = pool.backward(g);
  // Each window routes exactly one unit of gradient.
  double total = 0.0;
  for (float v : gx.flat()) {
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
    total += v;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(y.numel()));
}

INSTANTIATE_TEST_SUITE_P(Windows, PoolSweep, ::testing::Values(1u, 2u, 3u, 4u));

// Model zoo construction sweep: every kind builds, initializes, runs
// forward/backward at several widths without shape errors.
class ZooSweep : public ::testing::TestWithParam<ModelSpec> {};

TEST_P(ZooSweep, BuildForwardBackward) {
  const ModelSpec& spec = GetParam();
  ModulePtr model = spec.build();
  dgs::util::Rng rng(13);
  model->init(rng);
  Tensor x(spec.input_shape(3));
  x.init_normal(rng, 0.0f, 1.0f);
  Tensor y = model->forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{3, spec.classes}));
  Tensor g(y.shape(), 0.5f);
  Tensor gx = model->backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
  EXPECT_GT(param_numel(model->parameters()), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooSweep,
    ::testing::Values(ModelSpec::mlp(8, {}, 3), ModelSpec::mlp(8, {4, 4, 4}, 2),
                      [] {
                        auto s = ModelSpec::mlp(8, {6}, 3);
                        s.batch_norm = true;
                        return s;
                      }(),
                      ModelSpec::res_mlp(8, 6, 1, 3),
                      [] {
                        auto s = ModelSpec::res_mlp(8, 6, 3, 3);
                        s.batch_norm = true;
                        return s;
                      }(),
                      ModelSpec::cnn(1, 4, 4, 2, 2),
                      ModelSpec::cnn(3, 8, 8, 4, 10),
                      ModelSpec::resnet_lite(2, 6, 6, 4, 2, 5)),
    [](const auto& info) {
      return info.param.name() + "_" + std::to_string(info.index);
    });

}  // namespace
