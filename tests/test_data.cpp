// Tests for the data substrate: dataset invariants, synthetic generation
// determinism and learnability knobs, samplers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "data/sampler.h"
#include "data/synthetic.h"

namespace {

using namespace dgs::data;

TEST(InMemoryDataset, BasicInvariants) {
  InMemoryDataset ds(2, 3, {1, 2, 3, 4}, {0, 2});
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.feature_dim(), 2u);
  EXPECT_EQ(ds.num_classes(), 3u);
  EXPECT_EQ(ds.label_of(1), 2);
  EXPECT_FLOAT_EQ(ds.features_of(1)[0], 3.0f);
}

TEST(InMemoryDataset, RejectsBadConstruction) {
  EXPECT_THROW(InMemoryDataset(2, 3, {1, 2, 3}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(InMemoryDataset(2, 3, {1, 2}, {5}), std::invalid_argument);
  EXPECT_THROW(InMemoryDataset(0, 3, {}, {}), std::invalid_argument);
}

TEST(InMemoryDataset, FillBatchCopiesRequestedRows) {
  InMemoryDataset ds(2, 2, {1, 2, 3, 4, 5, 6}, {0, 1, 0});
  std::vector<std::size_t> idx{2, 0};
  std::vector<float> feats(4);
  std::vector<std::int32_t> labels(2);
  ds.fill_batch(idx, feats.data(), labels.data());
  EXPECT_FLOAT_EQ(feats[0], 5.0f);
  EXPECT_FLOAT_EQ(feats[2], 1.0f);
  EXPECT_EQ(labels[0], 0);
  std::vector<std::size_t> bad{9};
  EXPECT_THROW(ds.fill_batch(bad, feats.data(), labels.data()),
               std::out_of_range);
}

TEST(Synthetic, DeterministicForSameSeed) {
  const auto spec = SyntheticSpec::synth_cifar(7);
  const auto a = make_synthetic(spec);
  const auto b = make_synthetic(spec);
  ASSERT_EQ(a.train->size(), b.train->size());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.train->label_of(i), b.train->label_of(i));
    const auto fa = a.train->features_of(i);
    const auto fb = b.train->features_of(i);
    for (std::size_t d = 0; d < fa.size(); ++d) EXPECT_EQ(fa[d], fb[d]);
  }
}

TEST(Synthetic, DifferentSeedsProduceDifferentData) {
  const auto a = make_synthetic(SyntheticSpec::synth_cifar(1));
  const auto b = make_synthetic(SyntheticSpec::synth_cifar(2));
  bool any_diff = false;
  for (std::size_t d = 0; d < a.train->feature_dim(); ++d)
    any_diff |= a.train->features_of(0)[d] != b.train->features_of(0)[d];
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, SplitsAreDisjointStreams) {
  const auto data = make_synthetic(SyntheticSpec::synth_cifar(3));
  // Train and test come from independent RNG streams of the same teacher;
  // the first samples must differ.
  bool any_diff = false;
  for (std::size_t d = 0; d < data.train->feature_dim(); ++d)
    any_diff |= data.train->features_of(0)[d] != data.test->features_of(0)[d];
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, SpecShapesRespected) {
  SyntheticSpec spec = SyntheticSpec::synth_cifar(4);
  spec.num_train = 100;
  spec.num_test = 32;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  const auto data = make_synthetic(spec);
  EXPECT_EQ(data.train->size(), 100u);
  EXPECT_EQ(data.test->size(), 32u);
  EXPECT_EQ(data.train->feature_dim(), 24u);
  EXPECT_EQ(data.test->num_classes(), 5u);
  for (std::size_t i = 0; i < data.train->size(); ++i) {
    EXPECT_GE(data.train->label_of(i), 0);
    EXPECT_LT(data.train->label_of(i), 5);
  }
}

TEST(Synthetic, AllClassesRepresented) {
  const auto data = make_synthetic(SyntheticSpec::synth_cifar(5));
  std::set<std::int32_t> seen;
  for (std::size_t i = 0; i < data.train->size(); ++i)
    seen.insert(data.train->label_of(i));
  EXPECT_EQ(seen.size(), data.train->num_classes());
}

TEST(Synthetic, ClassesAreSeparatedInFeatureSpace) {
  // Mean within-class distance should be well below mean cross-class
  // distance; otherwise the task would not be learnable at all.
  SyntheticSpec spec = SyntheticSpec::synth_cifar(6);
  spec.num_train = 600;
  const auto data = make_synthetic(spec);
  const std::size_t dim = data.train->feature_dim();
  const std::size_t classes = data.train->num_classes();
  std::vector<std::vector<double>> mean(classes, std::vector<double>(dim, 0.0));
  std::vector<std::size_t> count(classes, 0);
  for (std::size_t i = 0; i < data.train->size(); ++i) {
    const auto label = static_cast<std::size_t>(data.train->label_of(i));
    const auto f = data.train->features_of(i);
    for (std::size_t d = 0; d < dim; ++d) mean[label][d] += f[d];
    ++count[label];
  }
  for (std::size_t c = 0; c < classes; ++c)
    for (auto& v : mean[c]) v /= static_cast<double>(count[c]);
  // Average pairwise distance between class means must be clearly nonzero.
  double cross = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < classes; ++a)
    for (std::size_t b = a + 1; b < classes; ++b) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double delta = mean[a][d] - mean[b][d];
        d2 += delta * delta;
      }
      cross += std::sqrt(d2);
      ++pairs;
    }
  EXPECT_GT(cross / static_cast<double>(pairs), 0.5);
}

TEST(Synthetic, ImagenetVariantIsHarder) {
  const auto ci = SyntheticSpec::synth_cifar();
  const auto in = SyntheticSpec::synth_imagenet();
  EXPECT_GT(in.num_classes, ci.num_classes);
  EXPECT_GT(in.label_noise, ci.label_noise);
  EXPECT_GT(in.feature_dim, ci.feature_dim);
}

// --------------------------------------------------------------- samplers

TEST(ShardSampler, ShardsPartitionTheDataset) {
  const std::size_t n = 103, shards = 4;
  std::set<std::size_t> all;
  for (std::size_t s = 0; s < shards; ++s) {
    ShardSampler sampler(n, s, shards, 8, 1);
    // Collect exactly one epoch of indices.
    std::set<std::size_t> mine;
    std::vector<std::size_t> batch;
    while (mine.size() < sampler.shard_size()) {
      sampler.next_batch(batch);
      for (std::size_t i : batch) mine.insert(i);
    }
    for (std::size_t i : mine) {
      EXPECT_EQ(i % shards, s);
      all.insert(i);
    }
  }
  EXPECT_EQ(all.size(), n);
}

TEST(ShardSampler, EpochAdvancesAndReshuffles) {
  ShardSampler sampler(64, 0, 1, 16, 2);
  EXPECT_EQ(sampler.batches_per_epoch(), 4u);
  std::vector<std::size_t> first_epoch, second_epoch, batch;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sampler.next_batch(batch), 0u);
    first_epoch.insert(first_epoch.end(), batch.begin(), batch.end());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sampler.next_batch(batch), 1u);
    second_epoch.insert(second_epoch.end(), batch.begin(), batch.end());
  }
  EXPECT_NE(first_epoch, second_epoch);  // reshuffled
  std::sort(first_epoch.begin(), first_epoch.end());
  std::sort(second_epoch.begin(), second_epoch.end());
  EXPECT_EQ(first_epoch, second_epoch);  // same index set
}

TEST(ShardSampler, WrapsPartialBatchAcrossEpochBoundary) {
  ShardSampler sampler(10, 0, 1, 4, 3);
  std::vector<std::size_t> batch;
  sampler.next_batch(batch);
  sampler.next_batch(batch);
  // Third batch needs 4 indices but only 2 remain -> wraps into epoch 1.
  const std::size_t epoch = sampler.next_batch(batch);
  EXPECT_EQ(epoch, 0u);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(sampler.epoch(), 1u);
}

TEST(ShardSampler, RejectsBadArguments) {
  EXPECT_THROW(ShardSampler(10, 4, 4, 2, 0), std::invalid_argument);
  EXPECT_THROW(ShardSampler(10, 0, 0, 2, 0), std::invalid_argument);
  EXPECT_THROW(ShardSampler(10, 0, 1, 0, 0), std::invalid_argument);
  EXPECT_THROW(ShardSampler(3, 3, 8, 2, 0), std::invalid_argument);
}

TEST(ShardSampler, DeterministicGivenSeed) {
  ShardSampler a(50, 1, 2, 8, 7), b(50, 1, 2, 8, 7);
  std::vector<std::size_t> ba, bb;
  for (int i = 0; i < 10; ++i) {
    a.next_batch(ba);
    b.next_batch(bb);
    EXPECT_EQ(ba, bb);
  }
}

TEST(UniformSampler, ProducesInRangeBatches) {
  UniformSampler sampler(20, 5, 11);
  std::vector<std::size_t> batch;
  for (int i = 0; i < 50; ++i) {
    sampler.next_batch(batch);
    ASSERT_EQ(batch.size(), 5u);
    for (std::size_t idx : batch) EXPECT_LT(idx, 20u);
  }
}

}  // namespace
