// Tests for the parameter server: Model Difference Tracking (Eq. 1-6),
// the Eq. 5 identity, secondary compression semantics, error handling.
#include <gtest/gtest.h>

#include <vector>

#include "core/payload.h"
#include "core/server.h"
#include "util/rng.h"

namespace {

using namespace dgs::core;
using dgs::comm::Message;
using dgs::comm::MessageKind;
using dgs::sparse::LayerChunk;
using dgs::sparse::SparseUpdate;

Message make_push(int worker, const SparseUpdate& update) {
  Message m;
  m.kind = MessageKind::kGradientPush;
  m.worker_id = worker;
  m.payload = dgs::sparse::encode(update);
  return m;
}

SparseUpdate single_entry(std::uint32_t layer, std::uint32_t dense,
                          std::uint32_t idx, float val) {
  SparseUpdate u;
  LayerChunk c;
  c.layer = layer;
  c.dense_size = dense;
  c.idx = {idx};
  c.val = {val};
  u.layers.push_back(std::move(c));
  return u;
}

/// Applies a sparse reply (decoded) onto a flat model, mirroring the worker.
void apply_reply(const Message& reply, std::vector<float>& theta,
                 const std::vector<std::size_t>& sizes) {
  std::size_t offset0 = 0;
  std::vector<std::size_t> offsets;
  for (std::size_t s : sizes) {
    offsets.push_back(offset0);
    offset0 += s;
  }
  if (dgs::sparse::is_sparse_payload(reply.payload)) {
    const auto g = dgs::sparse::decode(reply.payload);
    for (const auto& c : g.layers)
      for (std::size_t i = 0; i < c.idx.size(); ++i)
        theta[offsets[c.layer] + c.idx[i]] += c.val[i];
  } else {
    const auto g = dgs::sparse::decode_dense(reply.payload);
    for (const auto& l : g.layers)
      for (std::size_t i = 0; i < l.values.size(); ++i)
        theta[offsets[l.layer] + i] += l.values[i];
  }
}

TEST(Server, AppliesUpdateToM) {
  ParameterServer server({4}, {0, 0, 0, 0}, {.num_workers = 1});
  (void)server.handle_push(make_push(0, single_entry(0, 4, 2, 0.5f)));
  // M = -g: entry 2 becomes -0.5.
  EXPECT_FLOAT_EQ(server.accumulated_updates()[0][2], -0.5f);
  EXPECT_EQ(server.step(), 1u);
}

TEST(Server, GlobalModelIsThetaZeroPlusM) {
  ParameterServer server({2}, {10.0f, 20.0f}, {.num_workers = 1});
  (void)server.handle_push(make_push(0, single_entry(0, 2, 1, 2.0f)));
  const auto theta = server.global_model_flat();
  EXPECT_FLOAT_EQ(theta[0], 10.0f);
  EXPECT_FLOAT_EQ(theta[1], 18.0f);
}

TEST(Server, Eq5WorkerModelEqualsServerModelWithoutSecondaryCompression) {
  // Two workers push random sparse updates in arbitrary interleaving; after
  // every reply the pushing worker's model must equal the server's global
  // model bit-exactly (Eq. 5).
  const std::vector<std::size_t> sizes{16, 8};
  std::vector<float> theta0(24);
  dgs::util::Rng rng(1);
  for (auto& v : theta0) v = rng.normal(0, 1);

  ParameterServer server(sizes, theta0, {.num_workers = 2});
  std::vector<std::vector<float>> worker_theta{theta0, theta0};

  for (int iter = 0; iter < 50; ++iter) {
    const int k = static_cast<int>(rng.below(2));
    // Random sparse push (2 entries per layer).
    SparseUpdate u;
    for (std::uint32_t j = 0; j < 2; ++j) {
      LayerChunk c;
      c.layer = j;
      c.dense_size = static_cast<std::uint32_t>(sizes[j]);
      const auto i1 = static_cast<std::uint32_t>(rng.below(sizes[j]));
      c.idx = {i1};
      c.val = {rng.normal(0, 0.1f)};
      u.layers.push_back(std::move(c));
    }
    const Message reply = server.handle_push(make_push(k, u));
    apply_reply(reply, worker_theta[static_cast<std::size_t>(k)], sizes);
    const auto global = server.global_model_flat();
    for (std::size_t i = 0; i < global.size(); ++i)
      ASSERT_FLOAT_EQ(worker_theta[static_cast<std::size_t>(k)][i], global[i])
          << "iter " << iter << " index " << i;
  }
}

TEST(Server, VkEqualsMAfterUncompressedReply) {
  ParameterServer server({4}, std::vector<float>(4, 0.0f), {.num_workers = 2});
  (void)server.handle_push(make_push(0, single_entry(0, 4, 1, 1.0f)));
  // After worker 0's reply, v_0 == M (Eq. 3).
  EXPECT_EQ(server.sent_accumulator(0)[0], server.accumulated_updates()[0]);
  // Worker 1 has received nothing: v_1 stays zero.
  const auto v1 = server.sent_accumulator(1);
  for (float v : v1[0]) EXPECT_EQ(v, 0.0f);
}

TEST(Server, SecondaryCompressionSendsOnlyTopEntriesAndTracksThem) {
  ServerOptions options;
  options.num_workers = 1;
  options.secondary_compression = true;
  options.secondary_ratio_percent = 25.0;  // top 1 of 4 entries
  ParameterServer server({4}, std::vector<float>(4, 0.0f), options);

  SparseUpdate u;
  LayerChunk c;
  c.layer = 0;
  c.dense_size = 4;
  c.idx = {0, 1, 2, 3};
  c.val = {0.1f, -0.4f, 0.2f, -0.05f};
  u.layers.push_back(std::move(c));

  const Message reply = server.handle_push(make_push(0, u));
  const auto g = dgs::sparse::decode(reply.payload);
  ASSERT_EQ(g.layers.size(), 1u);
  ASSERT_EQ(g.layers[0].nnz(), 1u);
  EXPECT_EQ(g.layers[0].idx[0], 1u);          // largest |value|
  EXPECT_FLOAT_EQ(g.layers[0].val[0], 0.4f);  // M = -g

  // v_k advanced only by what was sent (Eq. 6b); the rest remains as
  // outstanding difference M - v_k.
  const auto vk_snapshot = server.sent_accumulator(0);
  const auto& vk = vk_snapshot[0];
  EXPECT_FLOAT_EQ(vk[1], 0.4f);
  EXPECT_FLOAT_EQ(vk[0], 0.0f);
  const auto m_snapshot = server.accumulated_updates();
  EXPECT_FLOAT_EQ(m_snapshot[0][0] - vk[0], -0.1f);  // still owed to the worker
}

TEST(Server, SecondaryCompressionEventuallyDeliversEverything) {
  // With repeated zero-pushes, the outstanding difference drains because the
  // residual keeps being re-ranked and sent; worker model converges to the
  // server model.
  ServerOptions options;
  options.num_workers = 1;
  options.secondary_compression = true;
  options.secondary_ratio_percent = 25.0;
  const std::vector<std::size_t> sizes{8};
  ParameterServer server(sizes, std::vector<float>(8, 0.0f), options);

  // Seed M with one substantial push.
  SparseUpdate big;
  LayerChunk c;
  c.layer = 0;
  c.dense_size = 8;
  for (std::uint32_t i = 0; i < 8; ++i) {
    c.idx.push_back(i);
    c.val.push_back(0.1f * static_cast<float>(i + 1));
  }
  big.layers.push_back(std::move(c));

  std::vector<float> worker_theta(8, 0.0f);
  Message reply = server.handle_push(make_push(0, big));
  apply_reply(reply, worker_theta, sizes);

  // Keep pushing (tiny) updates; each reply carries more of the backlog.
  for (int i = 0; i < 10; ++i) {
    reply = server.handle_push(make_push(0, single_entry(0, 8, 0, 1e-6f)));
    apply_reply(reply, worker_theta, sizes);
  }
  const auto global = server.global_model_flat();
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(worker_theta[i], global[i], 1e-4f);
}

TEST(Server, HandlesDensePayloads) {
  ParameterServer server({3}, std::vector<float>(3, 0.0f), {.num_workers = 1});
  dgs::sparse::DenseUpdate dense;
  dense.layers.push_back({0, {1.0f, 2.0f, 3.0f}});
  Message push;
  push.kind = MessageKind::kGradientPush;
  push.worker_id = 0;
  push.payload = dgs::sparse::encode(dense);
  const Message reply = server.handle_push(push);
  EXPECT_FLOAT_EQ(server.accumulated_updates()[0][2], -3.0f);
  // Fully dense difference ships dense.
  EXPECT_FALSE(dgs::sparse::is_sparse_payload(reply.payload));
}

TEST(Server, StalenessTracking) {
  ParameterServer server({2}, std::vector<float>(2, 0.0f), {.num_workers = 2});
  (void)server.handle_push(make_push(0, single_entry(0, 2, 0, 0.1f)));
  EXPECT_EQ(server.last_staleness(), 0u);  // first update, no interleaving
  (void)server.handle_push(make_push(1, single_entry(0, 2, 0, 0.1f)));
  EXPECT_EQ(server.last_staleness(), 1u);  // worker 1 missed 1 update
  (void)server.handle_push(make_push(0, single_entry(0, 2, 0, 0.1f)));
  EXPECT_EQ(server.last_staleness(), 1u);  // worker 0 missed worker 1's
}

TEST(Server, StateBytesAccounting) {
  ParameterServer server({100}, std::vector<float>(100, 0.0f),
                         {.num_workers = 3});
  // theta0 + M + 3 * v_k, each 100 floats.
  EXPECT_EQ(server.state_bytes(), (100u + 100u + 300u) * sizeof(float));
}

TEST(Server, RejectsMalformedInput) {
  ParameterServer server({4}, std::vector<float>(4, 0.0f), {.num_workers = 1});
  Message bad = make_push(0, single_entry(0, 4, 0, 1.0f));
  bad.kind = MessageKind::kModelDiff;
  EXPECT_THROW((void)server.handle_push(bad), std::invalid_argument);

  Message wrong_worker = make_push(5, single_entry(0, 4, 0, 1.0f));
  EXPECT_THROW((void)server.handle_push(wrong_worker), std::invalid_argument);

  Message wrong_shape = make_push(0, single_entry(0, 3, 0, 1.0f));
  EXPECT_THROW((void)server.handle_push(wrong_shape), std::runtime_error);

  Message wrong_layer = make_push(0, single_entry(7, 4, 0, 1.0f));
  EXPECT_THROW((void)server.handle_push(wrong_layer), std::runtime_error);
}

TEST(Server, RejectsBadConstruction) {
  EXPECT_THROW(ParameterServer({4}, std::vector<float>(3), {.num_workers = 1}),
               std::invalid_argument);
  EXPECT_THROW(ParameterServer({4}, std::vector<float>(4), {.num_workers = 0}),
               std::invalid_argument);
}

// ---- sharding ---------------------------------------------------------------

TEST(ServerShard, PartitionCoversAllLayersContiguously) {
  const std::vector<std::size_t> sizes{10, 1, 1, 50, 2, 30};
  for (std::size_t shards = 1; shards <= 8; ++shards) {
    const auto firsts = shard_partition(sizes, shards);
    ASSERT_FALSE(firsts.empty());
    EXPECT_EQ(firsts.front(), 0u);  // first shard starts at layer 0
    // Strictly increasing starts; count clamped to the layer count.
    EXPECT_LE(firsts.size(), sizes.size());
    for (std::size_t s = 1; s < firsts.size(); ++s)
      EXPECT_LT(firsts[s - 1], firsts[s]);
    EXPECT_LT(firsts.back(), sizes.size());
  }
  EXPECT_TRUE(shard_partition({}, 4).empty());
}

TEST(ServerShard, PartitionBalancesByNumel) {
  // One huge layer and many small ones: the huge layer gets its own shard.
  const std::vector<std::size_t> sizes{1000, 10, 10, 10};
  const auto firsts = shard_partition(sizes, 2);
  ASSERT_EQ(firsts.size(), 2u);
  EXPECT_EQ(firsts[0], 0u);
  EXPECT_EQ(firsts[1], 1u);  // shard 1 = the three small layers
}

TEST(Server, ShardedMatchesUnshardedExactly) {
  // The same push sequence through 1-shard and 3-shard servers must produce
  // bit-identical replies, M, v_k, steps and staleness: sharding is a pure
  // locking/layout change, not a numerics change.
  const std::vector<std::size_t> sizes{16, 8, 4, 12};
  std::vector<float> theta0(40);
  dgs::util::Rng rng(7);
  for (auto& v : theta0) v = rng.normal(0, 1);

  ParameterServer serial(sizes, theta0, {.num_workers = 2, .num_shards = 1});
  ParameterServer sharded(sizes, theta0, {.num_workers = 2, .num_shards = 3});
  EXPECT_EQ(serial.num_shards(), 1u);
  EXPECT_EQ(sharded.num_shards(), 3u);

  for (int iter = 0; iter < 40; ++iter) {
    const int k = static_cast<int>(rng.below(2));
    SparseUpdate u;
    for (std::uint32_t j = 0; j < sizes.size(); ++j) {
      LayerChunk c;
      c.layer = j;
      c.dense_size = static_cast<std::uint32_t>(sizes[j]);
      c.idx = {static_cast<std::uint32_t>(rng.below(sizes[j]))};
      c.val = {rng.normal(0, 0.1f)};
      u.layers.push_back(std::move(c));
    }
    const Message push = make_push(k, u);
    const Message a = serial.handle_push(push);
    const Message b = sharded.handle_push(push);
    EXPECT_EQ(a.payload, b.payload) << "iter " << iter;
    EXPECT_EQ(a.server_step, b.server_step);
    EXPECT_EQ(serial.last_staleness(), sharded.last_staleness());
  }
  EXPECT_EQ(serial.global_model_flat(), sharded.global_model_flat());
  EXPECT_EQ(serial.accumulated_updates(), sharded.accumulated_updates());
  EXPECT_EQ(serial.sent_accumulator(0), sharded.sent_accumulator(0));
  EXPECT_EQ(serial.sent_accumulator(1), sharded.sent_accumulator(1));
}

TEST(Server, ShardCountClampsToLayerCount) {
  ParameterServer server({4, 4}, std::vector<float>(8, 0.0f),
                         {.num_workers = 1, .num_shards = 16});
  EXPECT_EQ(server.num_shards(), 2u);
  // Still fully functional after clamping.
  (void)server.handle_push(make_push(0, single_entry(1, 4, 3, 1.0f)));
  EXPECT_FLOAT_EQ(server.accumulated_updates()[1][3], -1.0f);
}

TEST(Server, Eq5HoldsWithShards) {
  // Eq. 5 identity (worker model == global model after each reply) must be
  // preserved across any shard count.
  const std::vector<std::size_t> sizes{6, 10, 3};
  std::vector<float> theta0(19);
  dgs::util::Rng rng(3);
  for (auto& v : theta0) v = rng.normal(0, 1);

  ParameterServer server(sizes, theta0, {.num_workers = 2, .num_shards = 3});
  std::vector<std::vector<float>> worker_theta{theta0, theta0};
  for (int iter = 0; iter < 30; ++iter) {
    const int k = static_cast<int>(rng.below(2));
    SparseUpdate u;
    for (std::uint32_t j = 0; j < sizes.size(); ++j) {
      LayerChunk c;
      c.layer = j;
      c.dense_size = static_cast<std::uint32_t>(sizes[j]);
      c.idx = {static_cast<std::uint32_t>(rng.below(sizes[j]))};
      c.val = {rng.normal(0, 0.1f)};
      u.layers.push_back(std::move(c));
    }
    const Message reply = server.handle_push(make_push(k, u));
    apply_reply(reply, worker_theta[static_cast<std::size_t>(k)], sizes);
    const auto global = server.global_model_flat();
    // Tolerance, not bit-equality: v += (M - v) and the worker's incremental
    // accumulation round differently from the server's one-shot theta0 + M.
    for (std::size_t i = 0; i < global.size(); ++i)
      ASSERT_NEAR(worker_theta[static_cast<std::size_t>(k)][i], global[i],
                  1e-5f)
          << "iter " << iter << " index " << i;
  }
}

// -------------------------------------------- downward compression (§14)

/// Densify a decoded reply payload (any wire format) onto a flat model.
std::vector<float> decoded_reply_flat(const dgs::sparse::Bytes& payload,
                                      const std::vector<std::size_t>& sizes) {
  std::size_t total = 0;
  std::vector<std::size_t> offsets;
  for (std::size_t s : sizes) {
    offsets.push_back(total);
    total += s;
  }
  std::vector<float> flat(total, 0.0f);
  for (const DecodedLayer& segment : decode_update(payload)) {
    if (segment.sparse) {
      for (std::size_t i = 0; i < segment.chunk.nnz(); ++i)
        flat[offsets[segment.layer()] + segment.chunk.idx[i]] +=
            segment.chunk.val[i];
    } else {
      for (std::size_t i = 0; i < segment.dense.size(); ++i)
        flat[offsets[segment.layer()] + i] += segment.dense[i];
    }
  }
  return flat;
}

TEST(ServerDownCompress, ReplyUsesConfiguredWireFormat) {
  const std::vector<std::size_t> sizes{32};
  const struct {
    DownCompress mode;
    const char* format;
  } cases[] = {
      {DownCompress::kCoo, "coo"},
      {DownCompress::kDense, "dense"},
      {DownCompress::kQ8, "qcoo"},
      {DownCompress::kQ4, "qcoo"},
      {DownCompress::kSbc, "sbc"},
  };
  for (const auto& c : cases) {
    ServerOptions options;
    options.num_workers = 1;
    options.down_compress = c.mode;
    ParameterServer server(sizes, std::vector<float>(32, 0.0f), options);
    const Message reply = server.handle_push(make_push(0, single_entry(0, 32, 3, 0.5f)));
    EXPECT_STREQ(dgs::sparse::payload_format_name(reply.payload), c.format)
        << down_compress_name(c.mode);
  }
}

std::vector<float> flatten(const std::vector<std::vector<float>>& layers) {
  std::vector<float> flat;
  for (const auto& layer : layers)
    flat.insert(flat.end(), layer.begin(), layer.end());
  return flat;
}

TEST(ServerDownCompress, VkAdvancesByExactlyTheDecodedReply) {
  // Eq. 6b with a lossy downward stage: the shard transforms the reply
  // chunk *before* charging it to v_k, so v_k must advance by exactly what
  // the worker decodes — bit-exactly — and the quantization error stays in
  // the outstanding difference M - v_k.
  const std::vector<std::size_t> sizes{40, 24};
  dgs::util::Rng rng(7);
  for (const DownCompress mode :
       {DownCompress::kQ8, DownCompress::kQ4, DownCompress::kSbc}) {
    ServerOptions options;
    options.num_workers = 2;
    options.down_compress = mode;
    ParameterServer server(sizes, std::vector<float>(64, 0.0f), options);
    for (int iter = 0; iter < 20; ++iter) {
      const int k = static_cast<int>(rng.below(2));
      SparseUpdate u;
      for (std::uint32_t j = 0; j < sizes.size(); ++j) {
        LayerChunk c;
        c.layer = j;
        c.dense_size = static_cast<std::uint32_t>(sizes[j]);
        const auto i1 = static_cast<std::uint32_t>(rng.below(sizes[j] / 2));
        c.idx = {i1, static_cast<std::uint32_t>(i1 + sizes[j] / 2)};
        c.val = {rng.normal(0, 0.5f), rng.normal(0, 0.5f)};
        u.layers.push_back(std::move(c));
      }
      const std::vector<float> vk_before =
          flatten(server.sent_accumulator(static_cast<std::size_t>(k)));
      const Message reply = server.handle_push(make_push(k, u));
      const std::vector<float> vk_after =
          flatten(server.sent_accumulator(static_cast<std::size_t>(k)));
      const std::vector<float> applied =
          decoded_reply_flat(reply.payload, sizes);
      ASSERT_EQ(applied.size(), vk_after.size());
      for (std::size_t i = 0; i < applied.size(); ++i)
        ASSERT_EQ(vk_after[i], vk_before[i] + applied[i])
            << down_compress_name(mode) << " iter " << iter << " index " << i;
    }
  }
}

TEST(ServerDownCompress, LossyResidualDrainsUnderRepeatedReplies) {
  // The error-feedback property: what quantization withholds stays in
  // M - v_k and is re-sent on later replies, so with zero-gradient pushes
  // the outstanding difference contracts toward zero (Q8's grid step
  // halves the residual bound each round).
  ServerOptions options;
  options.num_workers = 1;
  options.down_compress = DownCompress::kQ8;
  const std::vector<std::size_t> sizes{16};
  ParameterServer server(sizes, std::vector<float>(16, 0.0f), options);

  SparseUpdate first;
  LayerChunk c;
  c.layer = 0;
  c.dense_size = 16;
  dgs::util::Rng rng(11);
  for (std::uint32_t i = 0; i < 16; ++i) {
    c.idx.push_back(i);
    c.val.push_back(rng.normal(0, 1));
  }
  first.layers.push_back(std::move(c));
  (void)server.handle_push(make_push(0, first));

  SparseUpdate empty;
  LayerChunk ec;
  ec.layer = 0;
  ec.dense_size = 16;
  empty.layers.push_back(std::move(ec));
  for (int round = 0; round < 40; ++round)
    (void)server.handle_push(make_push(0, empty));

  const auto m = server.accumulated_updates()[0];
  const auto vk = server.sent_accumulator(0)[0];
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_NEAR(m[i] - vk[i], 0.0f, 1e-6f) << "index " << i;
}

TEST(ServerDownCompress, DuplicatePushRepliesInTheSameWireFormat) {
  // The retransmit/duplicate path shares encode_reply_payload with the
  // normal path: whichever copy of the reply the worker applies, it is the
  // same format and its content was charged to v_k.
  ServerOptions options;
  options.num_workers = 1;
  options.down_compress = DownCompress::kSbc;
  ParameterServer server({8}, std::vector<float>(8, 0.0f), options);

  Message push = make_push(0, single_entry(0, 8, 2, 1.0f));
  push.seq = 1;
  const Message reply = server.handle_push(push);
  EXPECT_STREQ(dgs::sparse::payload_format_name(reply.payload), "sbc");

  bool duplicate = false;
  const Message again = server.handle_push(push, nullptr, &duplicate);
  EXPECT_TRUE(duplicate);
  EXPECT_STREQ(dgs::sparse::payload_format_name(again.payload), "sbc");
  // And the duplicate's content is still consistent with v_k: everything
  // it carries was charged before it was sent.
  const std::vector<float> applied = decoded_reply_flat(again.payload, {8});
  const std::vector<float> vk = flatten(server.sent_accumulator(0));
  // After the first reply v_0 held the whole diff; the duplicate re-sends
  // only newly outstanding mass, which is zero here.
  for (float v : applied) EXPECT_EQ(v, 0.0f);
  (void)vk;
}

}  // namespace
