// Observability layer tests: metrics registry semantics, histogram bucket
// and quantile arithmetic, exact aggregation under concurrency, JSONL/CSV
// export shape, the Chrome-trace recorder (including the disabled path
// and the ring-buffer bound), the phase-attribution profiler and the run
// ledger (round-trip plus cross-engine schema stability). The tracer tests
// record from fresh threads so each one sees a buffer sized by its own
// enable() capacity.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"

#if !DGS_TRACE_COMPILED
// Replacement global allocator that counts calls, so the DGS_TRACE=OFF
// no-op pinning test can prove the compiled-out profiler never allocates.
// Replaceable operator new must have external linkage, hence file scope;
// the default operator new[] forwards here, so one replacement covers both.
std::atomic<std::size_t> g_operator_new_calls{0};

void* operator new(std::size_t size) {
  g_operator_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace {

using namespace dgs;

// ---- minimal JSON validator -------------------------------------------------
// Recursive-descent checker: accepts exactly the JSON grammar (objects,
// arrays, strings, numbers, true/false/null). Returns true iff the whole
// input is one valid JSON value. Enough to prove exports parse back.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return at_ == s_.size();
  }

 private:
  void skip_ws() {
    while (at_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[at_])))
      ++at_;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(at_, n, word) != 0) return false;
    at_ += n;
    return true;
  }
  bool string() {
    if (at_ >= s_.size() || s_[at_] != '"') return false;
    ++at_;
    while (at_ < s_.size() && s_[at_] != '"') {
      if (s_[at_] == '\\') {
        ++at_;
        if (at_ >= s_.size()) return false;
      }
      ++at_;
    }
    if (at_ >= s_.size()) return false;
    ++at_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = at_;
    if (at_ < s_.size() && s_[at_] == '-') ++at_;
    while (at_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[at_])) ||
            s_[at_] == '.' || s_[at_] == 'e' || s_[at_] == 'E' ||
            s_[at_] == '+' || s_[at_] == '-'))
      ++at_;
    return at_ > start;
  }
  bool value() {
    skip_ws();
    if (at_ >= s_.size()) return false;
    switch (s_[at_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++at_;  // '{'
    skip_ws();
    if (at_ < s_.size() && s_[at_] == '}') {
      ++at_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (at_ >= s_.size() || s_[at_] != ':') return false;
      ++at_;
      if (!value()) return false;
      skip_ws();
      if (at_ < s_.size() && s_[at_] == ',') {
        ++at_;
        continue;
      }
      break;
    }
    if (at_ >= s_.size() || s_[at_] != '}') return false;
    ++at_;
    return true;
  }
  bool array() {
    ++at_;  // '['
    skip_ws();
    if (at_ < s_.size() && s_[at_] == ']') {
      ++at_;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (at_ < s_.size() && s_[at_] == ',') {
        ++at_;
        continue;
      }
      break;
    }
    if (at_ >= s_.size() || s_[at_] != ']') return false;
    ++at_;
    return true;
  }

  const std::string& s_;
  std::size_t at_ = 0;
};

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size()))
    ++count;
  return count;
}

// ---- registry semantics -----------------------------------------------------

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  obs::MetricsRegistry registry;
  obs::Counter& c1 = registry.counter("pushes");
  obs::Counter& c2 = registry.counter("pushes");
  EXPECT_EQ(&c1, &c2);

  obs::Gauge& g1 = registry.gauge("depth");
  EXPECT_EQ(&g1, &registry.gauge("depth"));

  obs::Histogram& h1 = registry.histogram("lat", {1.0, 2.0});
  // Bounds are consulted only on first registration.
  obs::Histogram& h2 = registry.histogram("lat", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.snapshot().bounds.size(), 2u);
}

TEST(MetricsRegistry, SnapshotAndResetCoverAllInstruments) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(5);
  registry.gauge("g").set(2.5);
  registry.histogram("h", {10.0}).record(3.0);

  obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "c");
  EXPECT_EQ(snap.counters[0].second, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  EXPECT_NE(snap.find_histogram("h"), nullptr);
  EXPECT_EQ(snap.find_histogram("missing"), nullptr);
  EXPECT_EQ(snap.summary_of("missing").count, 0u);

  registry.reset();
  snap = registry.snapshot();
  EXPECT_EQ(snap.counters[0].second, 0u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
  EXPECT_EQ(snap.histograms[0].second.count, 0u);
}

// ---- exact aggregation under concurrency ------------------------------------

TEST(MetricsConcurrency, CounterIncrementsSumExactly) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAdds = 100000;
  obs::Counter counter;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kAdds; ++i) counter.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAdds);
}

TEST(MetricsConcurrency, HistogramCountsSumExactly) {
  // Values chosen so the double-precision sum is exact and each lands in a
  // known bucket of {1, 2, 3}: 0.5 -> b0, 1.5 -> b1, 2.5 -> b2, 3.5 -> ovf.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerValue = 2500;
  obs::Histogram hist({1.0, 2.0, 3.0});
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < 4 * kPerValue; ++i)
        hist.record(0.5 + static_cast<double>(i % 4));
    });
  for (auto& t : threads) t.join();

  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * 4 * kPerValue);
  ASSERT_EQ(snap.counts.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b)
    EXPECT_EQ(snap.counts[b], kThreads * kPerValue) << "bucket " << b;
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 3.5);
  EXPECT_DOUBLE_EQ(snap.sum,
                   static_cast<double>(kThreads * kPerValue) *
                       (0.5 + 1.5 + 2.5 + 3.5));
}

// ---- bucket boundaries and quantiles ----------------------------------------

TEST(Histogram, BucketBoundariesAreUpperInclusive) {
  obs::Histogram hist({1.0, 2.0, 4.0});
  hist.record(1.0);  // == bound: belongs to bucket 0, (-inf, 1]
  hist.record(1.5);  // (1, 2]
  hist.record(2.0);  // == bound: bucket 1
  hist.record(4.0);  // == last bound: bucket 2
  hist.record(4.5);  // overflow
  const obs::HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, QuantileInterpolationIsExactOnUniformFill) {
  // 1..100 over bounds {25, 50, 75, 100}: 25 values per bucket, so linear
  // interpolation inside the rank's bucket recovers the value exactly.
  obs::Histogram hist({25.0, 50.0, 75.0, 100.0});
  for (int v = 1; v <= 100; ++v) hist.record(static_cast<double>(v));
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
  // Quantiles clamp to the observed range, not the bucket edges.
  EXPECT_GE(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 50.5);

  const obs::HistogramSummary summary = obs::summarize(snap);
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.p50, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95, 95.0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
}

TEST(Histogram, EmptyAndSingleValueQuantiles) {
  obs::Histogram hist({1.0, 10.0});
  EXPECT_DOUBLE_EQ(hist.snapshot().quantile(0.5), 0.0);  // empty
  hist.record(7.0);
  // One observation: every quantile collapses to it (clamped to [min,max]).
  EXPECT_DOUBLE_EQ(hist.snapshot().quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(hist.snapshot().quantile(0.99), 7.0);
}

TEST(Histogram, BoundHelpers) {
  const auto lin = obs::linear_bounds(0.05, 0.05, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[0], 0.05);
  EXPECT_NEAR(lin[2], 0.15, 1e-12);
  const auto exp = obs::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
}

// ---- export formats ---------------------------------------------------------

TEST(MetricsExport, JsonlLinesParseBack) {
  obs::MetricsRegistry registry;
  registry.counter("server.pushes").add(3);
  registry.gauge("pool").set(4.0);
  obs::Histogram& hist =
      registry.histogram("staleness", {1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) hist.record(static_cast<double>(i % 3));

  std::ostringstream os;
  registry.snapshot().write_jsonl(os, "unit-test");
  std::istringstream lines(os.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    EXPECT_NE(line.find("\"run\":\"unit-test\""), std::string::npos);
    ++parsed;
  }
  EXPECT_EQ(parsed, 3u);
  // The histogram line carries the summary stats the harness consumers read.
  for (const char* field : {"\"count\":10", "\"p50\":", "\"p95\":",
                            "\"bounds\":[", "\"counts\":["})
    EXPECT_NE(os.str().find(field), std::string::npos) << field;
}

TEST(MetricsExport, CsvHasHeaderAndOneRowPerInstrument) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(1);
  registry.histogram("h", {5.0}).record(2.0);
  std::ostringstream os;
  registry.snapshot().write_csv(os);
  std::istringstream lines(os.str());
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], "name,type,value,count,mean,p50,p95,max,overflow");
  EXPECT_EQ(rows[1].rfind("c,counter,1", 0), 0u);
  EXPECT_EQ(rows[2].rfind("h,histogram,", 0), 0u);
}

// ---- StalenessStats (core) --------------------------------------------------

TEST(StalenessStats, SumCountMeanAndMerge) {
  core::StalenessStats stats;
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  stats.record(1);
  stats.record(2);
  stats.record(6);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.max, 6u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);

  core::StalenessStats other;
  other.record(9);
  stats.merge(other);
  EXPECT_EQ(stats.count, 4u);
  EXPECT_EQ(stats.max, 9u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
}

// ---- tracer -----------------------------------------------------------------

#if DGS_TRACE_COMPILED

TEST(Tracer, ExportsWellFormedJsonWithNamedTracks) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.enable();

  const std::uint32_t shard_track = tracer.register_track("shard/test");
  std::thread worker([&] {
    tracer.set_thread_name("worker/test");
    {
      DGS_TRACE_SCOPE("compute", "worker");
    }
    DGS_TRACE_INSTANT("staleness", "server", 7);
    tracer.record_complete("apply", "shard", obs::Tracer::now_us(), 1.5,
                           shard_track);
  });
  worker.join();
  tracer.disable();

  std::ostringstream os;
  tracer.export_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"worker/test\""), std::string::npos);
  EXPECT_NE(json.find("\"shard/test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":7}"), std::string::npos);
  // The explicitly targeted span lands on the virtual track's tid.
  const std::size_t meta = json.find("\"args\":{\"name\":\"shard/test\"}");
  ASSERT_NE(meta, std::string::npos);
  const std::size_t tid_at = json.rfind("\"tid\":", meta);
  ASSERT_NE(tid_at, std::string::npos);
  const std::string tid =
      json.substr(tid_at, json.find(',', tid_at) - tid_at);
  EXPECT_NE(json.find(tid + ",\"ts\":"), std::string::npos);
  tracer.clear();
}

TEST(Tracer, DisabledPathRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.disable();
  std::thread worker([&] {
    for (int i = 0; i < 100; ++i) {
      DGS_TRACE_SCOPE("off_span", "test");
      DGS_TRACE_INSTANT("off_instant", "test", i);
    }
    tracer.record_complete("off_direct", "test", 0.0, 1.0);
  });
  worker.join();

  std::ostringstream os;
  tracer.export_json(os);
  EXPECT_EQ(os.str().find("off_"), std::string::npos);
  EXPECT_EQ(count_occurrences(os.str(), "\"ph\":\"X\""), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingBufferBoundsMemoryAndCountsDrops) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.enable(/*events_per_thread=*/16);
  // Fresh thread => fresh ring sized by the enable() above.
  std::thread worker([&] {
    for (int i = 0; i < 100; ++i)
      tracer.record_complete("ring_evt", "test", static_cast<double>(i), 1.0);
  });
  worker.join();
  tracer.disable();

  std::ostringstream os;
  tracer.export_json(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
  EXPECT_EQ(count_occurrences(os.str(), "\"ring_evt\""), 16u);
  EXPECT_EQ(tracer.dropped(), 84u);
  tracer.clear();
  // Restore the default capacity for whatever runs after this test.
  tracer.enable();
  tracer.disable();
}

TEST(Tracer, ConcurrentRecordAndExportAreSafe) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.enable();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        DGS_TRACE_SCOPE("spin", "test");
        DGS_TRACE_INSTANT("tick", "test", 1);
      }
    });
  for (int i = 0; i < 5; ++i) {
    std::ostringstream os;
    tracer.export_json(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid());
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  tracer.disable();
  tracer.clear();
}

#endif  // DGS_TRACE_COMPILED

// ---- overflow bucket export and quantile edge -------------------------------

TEST(Histogram, OverflowCountSurvivesExportFormats) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("lat", {1.0, 2.0});
  hist.record(0.5);
  hist.record(1.5);
  hist.record(10.0);  // overflow
  hist.record(20.0);  // overflow
  EXPECT_EQ(hist.snapshot().overflow(), 2u);

  std::ostringstream jsonl;
  registry.snapshot().write_jsonl(jsonl, "t");
  EXPECT_TRUE(JsonChecker(jsonl.str()).valid());
  EXPECT_NE(jsonl.str().find("\"overflow\":2"), std::string::npos);

  std::ostringstream csv;
  registry.snapshot().write_csv(csv);
  // Header names the overflow column and the histogram row ends with it.
  EXPECT_NE(csv.str().find(",overflow"), std::string::npos);
  const std::string body = csv.str();
  const std::size_t row = body.find("lat,histogram,");
  ASSERT_NE(row, std::string::npos);
  const std::size_t eol = body.find('\n', row);
  const std::string hist_row = body.substr(row, eol - row);
  EXPECT_EQ(hist_row.substr(hist_row.rfind(',')), ",2");
}

TEST(Histogram, QuantilesStayInObservedRangeAtOverflowEdge) {
  obs::Histogram hist({1.0, 2.0});
  hist.record(0.5);
  hist.record(1.5);
  hist.record(10.0);
  hist.record(20.0);
  const obs::HistogramSnapshot snap = hist.snapshot();
  // Ranks landing in the unbounded overflow bucket interpolate toward the
  // observed max, never past it (and never to infinity).
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 20.0);
  EXPECT_LE(snap.quantile(0.99), 20.0);
  EXPECT_GE(snap.quantile(0.95), 2.0);
  // Below the overflow bucket the usual interpolation applies.
  EXPECT_GE(snap.quantile(0.5), 1.0);
  EXPECT_LE(snap.quantile(0.5), 2.0);
}

// ---- phase-attribution profiler ---------------------------------------------

#if DGS_TRACE_COMPILED

TEST(PhaseProfiler, WarmupStepsAreExcludedFromEveryAccumulator) {
  obs::PhaseProfiler profiler(/*num_workers=*/2, /*warmup_steps=*/2);
  // Two cold steps: adds land while steps < warmup and must be dropped.
  for (int s = 0; s < 2; ++s) {
    profiler.add(0, obs::Phase::kForwardBackward, 100.0);
    profiler.record_step(0, 150.0);
  }
  // Three warm steps.
  for (int s = 0; s < 3; ++s) {
    profiler.add(0, obs::Phase::kForwardBackward, 10.0);
    profiler.record_step(0, 12.0);
  }
  const obs::PhaseBreakdown breakdown = profiler.breakdown();
  ASSERT_EQ(breakdown.workers.size(), 2u);
  EXPECT_EQ(breakdown.warmup_steps_skipped, 2u);
  EXPECT_EQ(breakdown.workers[0].steps, 3u);
  EXPECT_NEAR(breakdown.workers[0].step_us, 36.0, 1e-6);
  const auto fwd = static_cast<std::size_t>(obs::Phase::kForwardBackward);
  EXPECT_NEAR(breakdown.workers[0].phase_us[fwd], 30.0, 1e-6);
  EXPECT_EQ(breakdown.phases[fwd].count, 3u);
  EXPECT_EQ(breakdown.step_us_hist.count, 3u);
  // Untouched worker contributes nothing.
  EXPECT_EQ(breakdown.workers[1].steps, 0u);
}

TEST(PhaseProfiler, AttributedFractionCoversWorkerPathPhasesOnly) {
  obs::PhaseProfiler profiler(/*num_workers=*/1, /*warmup_steps=*/0);
  profiler.add(0, obs::Phase::kForwardBackward, 40.0);
  profiler.add(0, obs::Phase::kSparsifySelect, 20.0);
  profiler.add(0, obs::Phase::kEncode, 10.0);
  profiler.add(0, obs::Phase::kWire, 20.0);
  profiler.add(0, obs::Phase::kDecodeApply, 5.0);
  // Server-side phases overlap the wire wait; they must NOT inflate the
  // attribution identity.
  profiler.add(0, obs::Phase::kServerApply, 1000.0);
  profiler.add(0, obs::Phase::kReplyEncode, 1000.0);
  profiler.record_step(0, 100.0);
  EXPECT_NEAR(profiler.breakdown().attributed_fraction(), 0.95, 1e-9);
}

TEST(PhaseTimer, AccumulatesIntoProfilerAndStopIsIdempotent) {
  obs::PhaseProfiler profiler(/*num_workers=*/1, /*warmup_steps=*/0);
  {
    obs::PhaseTimer timer(&profiler, 0, obs::Phase::kEncode);
    timer.stop();
    timer.stop();  // second stop must not double-record
  }                // destructor after stop() must not record either
  const obs::PhaseBreakdown breakdown = profiler.breakdown();
  const auto enc = static_cast<std::size_t>(obs::Phase::kEncode);
  EXPECT_EQ(breakdown.phases[enc].count, 1u);
  EXPECT_GE(breakdown.phases[enc].total_us, 0.0);
}

TEST(PhaseTimer, EmitsPhaseSpanNestedInsideEnclosingScope) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.enable();
  obs::PhaseProfiler profiler(/*num_workers=*/1, /*warmup_steps=*/0);
  std::thread worker([&] {
    tracer.set_thread_name("worker/phase-test");
    DGS_TRACE_SCOPE("compute", "worker");
    obs::PhaseTimer timer(&profiler, 0, obs::Phase::kSparsifySelect);
  });
  worker.join();
  tracer.disable();

  std::ostringstream os;
  tracer.export_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid());
  // Both spans present; the phase span's [ts, ts+dur] sits inside the
  // enclosing scope's (checked structurally by scripts/check_trace.py on
  // real traces; here we pin the span name contract it relies on).
  EXPECT_NE(json.find("\"phase/sparsify_select\""), std::string::npos);
  EXPECT_NE(json.find("\"compute\""), std::string::npos);
  tracer.clear();
}

#endif  // DGS_TRACE_COMPILED

TEST(PhaseTimer, NullProfilerIsFree) {
  // Must not crash, record, or read the clock; valid in every build mode.
  obs::PhaseTimer timer(nullptr, 0, obs::Phase::kWire);
  timer.stop();
}

#if !DGS_TRACE_COMPILED

TEST(PhaseOffBuild, ProfilerIsAnAllocationFreeNoOp) {
  const std::size_t before =
      g_operator_new_calls.load(std::memory_order_relaxed);
  obs::PhaseProfiler profiler(/*num_workers=*/64, /*warmup_steps=*/0);
  for (int i = 0; i < 1000; ++i) {
    profiler.add(7, obs::Phase::kForwardBackward, 1.0);
    obs::PhaseTimer timer(&profiler, 7, obs::Phase::kEncode);
    profiler.record_step(7, 2.0);
  }
  EXPECT_EQ(g_operator_new_calls.load(std::memory_order_relaxed), before);
  EXPECT_EQ(profiler.num_workers(), 0u);
  const obs::PhaseBreakdown breakdown = profiler.breakdown();
  EXPECT_TRUE(breakdown.workers.empty());
  EXPECT_EQ(breakdown.step_us_hist.count, 0u);
  EXPECT_DOUBLE_EQ(breakdown.attributed_fraction(), 0.0);
}

#endif  // !DGS_TRACE_COMPILED

// ---- run ledger -------------------------------------------------------------

obs::RunLedger sample_ledger() {
  obs::RunLedger ledger;
  ledger.run = "w8/DGS";
  ledger.bench = "table3_cifar_scalability";
  ledger.engine = "SimEngine";
  ledger.method = "DGS";
  ledger.workers = 8;
  ledger.batch_size = 32;
  ledger.epochs_configured = 12;
  ledger.epochs_completed = 12;
  ledger.final_test_accuracy = 0.9175;
  ledger.final_train_loss = 0.31;
  ledger.sim_seconds = 42.5;
  ledger.wall_seconds = 8.25;
  ledger.epoch_sim_seconds = 42.5 / 12;
  ledger.epoch_wall_seconds = 8.25 / 12;
  ledger.server_steps = 4096;
  ledger.samples = 131072;
  ledger.bytes_up = 1234567;
  ledger.bytes_down = 7654321;
  ledger.up_bytes_per_element = 8.04;
  ledger.down_bytes_per_element = 1.02;
  ledger.staleness = {4096, 3.4, 3.0, 7.0, 12.0};
  ledger.faults_injected = 3;
  ledger.leases_reclaimed = 1;
  ledger.worker_rejoins = 1;
  ledger.warm_steps = 4056;
  ledger.step_us_mean = 410.0;
  ledger.step_us_p50 = 395.0;
  ledger.step_us_p95 = 560.0;
  ledger.step_us_p99 = 640.0;
  ledger.attributed_fraction = 0.982;
  for (std::size_t p = 0; p < obs::kNumPhases; ++p)
    ledger.phases.push_back(
        {obs::phase_name(static_cast<obs::Phase>(p)), 100.0 * (p + 1), 10 * (p + 1)});
  ledger.milestones.push_back({0.5, true, 1, 3.5, 0.47});
  ledger.milestones.push_back({0.8, true, 4, 14.0, 0.74});
  ledger.milestones.push_back({0.9, false, 0, 0.0, 0.0});
  ledger.adaptive.decisions = 24;
  ledger.adaptive.base_ratio_percent = 2.0;
  ledger.adaptive.min_ratio_percent = 0.25;
  ledger.adaptive.mean_ratio_percent = 2.0;
  ledger.adaptive.keep_budget = 1536;
  ledger.adaptive.trajectory.push_back({8, {2.0, 2.0, 100.0}});
  ledger.adaptive.trajectory.push_back({16, {3.5, 0.5, 100.0}});
  return ledger;
}

TEST(RunLedger, JsonRoundTripPreservesEveryField) {
  const obs::RunLedger ledger = sample_ledger();
  const std::string json = ledger.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;

  obs::RunLedger back;
  ASSERT_TRUE(obs::RunLedger::from_json(json, &back));
  EXPECT_EQ(back.schema, obs::RunLedger::kSchemaVersion);
  EXPECT_EQ(back.run, ledger.run);
  EXPECT_EQ(back.bench, ledger.bench);
  EXPECT_EQ(back.engine, ledger.engine);
  EXPECT_EQ(back.method, ledger.method);
  EXPECT_EQ(back.workers, ledger.workers);
  EXPECT_EQ(back.batch_size, ledger.batch_size);
  EXPECT_EQ(back.epochs_configured, ledger.epochs_configured);
  EXPECT_EQ(back.epochs_completed, ledger.epochs_completed);
  EXPECT_DOUBLE_EQ(back.final_test_accuracy, ledger.final_test_accuracy);
  EXPECT_DOUBLE_EQ(back.final_train_loss, ledger.final_train_loss);
  EXPECT_DOUBLE_EQ(back.sim_seconds, ledger.sim_seconds);
  EXPECT_DOUBLE_EQ(back.wall_seconds, ledger.wall_seconds);
  EXPECT_DOUBLE_EQ(back.epoch_sim_seconds, ledger.epoch_sim_seconds);
  EXPECT_DOUBLE_EQ(back.epoch_wall_seconds, ledger.epoch_wall_seconds);
  EXPECT_EQ(back.server_steps, ledger.server_steps);
  EXPECT_EQ(back.samples, ledger.samples);
  EXPECT_EQ(back.bytes_up, ledger.bytes_up);
  EXPECT_EQ(back.bytes_down, ledger.bytes_down);
  EXPECT_DOUBLE_EQ(back.up_bytes_per_element, ledger.up_bytes_per_element);
  EXPECT_DOUBLE_EQ(back.down_bytes_per_element,
                   ledger.down_bytes_per_element);
  EXPECT_EQ(back.staleness.count, ledger.staleness.count);
  EXPECT_DOUBLE_EQ(back.staleness.mean, ledger.staleness.mean);
  EXPECT_DOUBLE_EQ(back.staleness.p95, ledger.staleness.p95);
  EXPECT_EQ(back.faults_injected, ledger.faults_injected);
  EXPECT_EQ(back.leases_reclaimed, ledger.leases_reclaimed);
  EXPECT_EQ(back.worker_rejoins, ledger.worker_rejoins);
  EXPECT_EQ(back.warm_steps, ledger.warm_steps);
  EXPECT_DOUBLE_EQ(back.step_us_mean, ledger.step_us_mean);
  EXPECT_DOUBLE_EQ(back.step_us_p50, ledger.step_us_p50);
  EXPECT_DOUBLE_EQ(back.step_us_p95, ledger.step_us_p95);
  EXPECT_DOUBLE_EQ(back.step_us_p99, ledger.step_us_p99);
  EXPECT_DOUBLE_EQ(back.attributed_fraction, ledger.attributed_fraction);
  ASSERT_EQ(back.phases.size(), ledger.phases.size());
  for (std::size_t i = 0; i < back.phases.size(); ++i) {
    EXPECT_EQ(back.phases[i].name, ledger.phases[i].name);
    EXPECT_DOUBLE_EQ(back.phases[i].total_us, ledger.phases[i].total_us);
    EXPECT_EQ(back.phases[i].count, ledger.phases[i].count);
  }
  ASSERT_EQ(back.milestones.size(), 3u);
  EXPECT_DOUBLE_EQ(back.milestones[0].frac, 0.5);
  EXPECT_TRUE(back.milestones[0].reached);
  EXPECT_EQ(back.milestones[1].epoch, 4u);
  EXPECT_DOUBLE_EQ(back.milestones[1].time_s, 14.0);
  EXPECT_FALSE(back.milestones[2].reached);
  EXPECT_EQ(back.adaptive.decisions, ledger.adaptive.decisions);
  EXPECT_DOUBLE_EQ(back.adaptive.base_ratio_percent,
                   ledger.adaptive.base_ratio_percent);
  EXPECT_DOUBLE_EQ(back.adaptive.min_ratio_percent,
                   ledger.adaptive.min_ratio_percent);
  EXPECT_DOUBLE_EQ(back.adaptive.mean_ratio_percent,
                   ledger.adaptive.mean_ratio_percent);
  EXPECT_EQ(back.adaptive.keep_budget, ledger.adaptive.keep_budget);
  ASSERT_EQ(back.adaptive.trajectory.size(), 2u);
  EXPECT_EQ(back.adaptive.trajectory[0].step, 8u);
  EXPECT_EQ(back.adaptive.trajectory[1].step, 16u);
  ASSERT_EQ(back.adaptive.trajectory[1].ratios.size(), 3u);
  EXPECT_DOUBLE_EQ(back.adaptive.trajectory[1].ratios[0], 3.5);
  EXPECT_DOUBLE_EQ(back.adaptive.trajectory[1].ratios[1], 0.5);
  EXPECT_DOUBLE_EQ(back.adaptive.trajectory[1].ratios[2], 100.0);
}

TEST(RunLedger, FromJsonIsForwardCompatibleAndRejectsMalformed) {
  // Unknown keys are ignored; absent keys keep their defaults.
  obs::RunLedger ledger;
  ASSERT_TRUE(obs::RunLedger::from_json(
      R"({"schema":1,"run":"x","future_field":[1,2,{"a":true}]})", &ledger));
  EXPECT_EQ(ledger.run, "x");
  EXPECT_EQ(ledger.workers, 0u);

  // A v1 line (no "adaptive" block) parses, keeping the block at defaults.
  obs::RunLedger v1;
  ASSERT_TRUE(obs::RunLedger::from_json(
      R"({"schema":1,"run":"old","workers":4})", &v1));
  EXPECT_EQ(v1.schema, 1);
  EXPECT_EQ(v1.adaptive.decisions, 0u);
  EXPECT_TRUE(v1.adaptive.trajectory.empty());

  // Malformed JSON and wrong types for known keys are hard failures.
  for (const char* bad : {
           "{\"schema\":1",                 // truncated
           "[1,2,3]",                       // not an object
           "{\"workers\":\"eight\"}",       // wrong type
           "{\"staleness\":[1]}",           // wrong nested type
           "{\"milestones\":[{\"frac\":\"a\"}]}",
           "{\"adaptive\":[1]}",            // wrong nested type
           "{\"adaptive\":{\"trajectory\":[{\"ratios\":[\"x\"]}]}}",
       })
    EXPECT_FALSE(obs::RunLedger::from_json(bad, &ledger)) << bad;
}

// ---- cross-engine ledger schema stability -----------------------------------

/// Top-level key names of a one-line JSON object, in encounter order.
/// Depth-tracked scan, enough for the to_json output under test.
std::vector<std::string> top_level_keys(const std::string& json) {
  std::vector<std::string> keys;
  int depth = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"') {
      std::size_t end = i + 1;
      while (end < json.size() && json[end] != '"') {
        if (json[end] == '\\') ++end;
        ++end;
      }
      std::size_t after = end + 1;
      while (after < json.size() &&
             std::isspace(static_cast<unsigned char>(json[after])))
        ++after;
      if (depth == 1 && after < json.size() && json[after] == ':')
        keys.push_back(json.substr(i + 1, end - i - 1));
      i = end;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
    }
  }
  return keys;
}

TEST(RunLedger, SchemaIsStableAcrossEngines) {
  data::SyntheticSpec data_spec = data::SyntheticSpec::synth_cifar(51);
  data_spec.num_train = 256;
  data_spec.num_test = 128;
  const auto data = data::make_synthetic(data_spec);
  const nn::ModelSpec spec = nn::ModelSpec::mlp(
      data.train->feature_dim(), {16}, data.train->num_classes());

  core::TrainConfig config;
  config.method = core::Method::kDGS;
  config.num_workers = 2;
  config.batch_size = 16;
  config.epochs = 2;
  config.lr = 0.02;
  config.seed = 53;

  const auto sim =
      core::SimEngine(spec, data.train, data.test, config).run();
  const auto thread =
      core::ThreadEngine(spec, data.train, data.test, config).run();
  const auto sync =
      core::SyncEngine(spec, data.train, data.test, config).run();

  EXPECT_EQ(sim.ledger.engine, "SimEngine");
  EXPECT_EQ(thread.ledger.engine, "ThreadEngine");
  EXPECT_EQ(sync.ledger.engine, "SyncEngine");
  for (const core::RunResult* r : {&sim, &thread, &sync}) {
    EXPECT_EQ(r->ledger.method, "DGS");
    EXPECT_EQ(r->ledger.workers, 2u);
    EXPECT_EQ(r->ledger.schema, obs::RunLedger::kSchemaVersion);
    EXPECT_GT(r->ledger.samples, 0u);
    // Three milestones, ordered by fraction, regardless of engine.
    ASSERT_EQ(r->ledger.milestones.size(), 3u);
    EXPECT_DOUBLE_EQ(r->ledger.milestones[0].frac, 0.5);
    EXPECT_DOUBLE_EQ(r->ledger.milestones[2].frac, 0.9);
    EXPECT_TRUE(JsonChecker(r->ledger.to_json()).valid());
    // And every line parses back losslessly enough to re-serialize.
    obs::RunLedger back;
    EXPECT_TRUE(obs::RunLedger::from_json(r->ledger.to_json(), &back));
    EXPECT_EQ(back.to_json(), r->ledger.to_json());
  }

  // The serialized key set — the schema — is identical across engines and
  // matches the pinned v2 field list. Extending the ledger must update
  // this list (and, for renames/retypes, bump kSchemaVersion).
  const std::vector<std::string> expected = {
      "schema",          "run",           "bench",
      "engine",          "method",        "simd_isa",
      "workers",
      "batch_size",      "epochs_configured", "epochs_completed",
      "final_test_accuracy", "final_train_loss", "sim_seconds",
      "wall_seconds",    "epoch_sim_seconds", "epoch_wall_seconds",
      "server_steps",    "samples",       "bytes_up",
      "bytes_down",      "up_bytes_per_element", "down_bytes_per_element",
      "staleness",       "faults_injected", "leases_reclaimed",
      "worker_rejoins",  "warm_steps",    "step_us",
      "attributed_fraction", "phases",    "milestones",
      "adaptive",
  };
  EXPECT_EQ(top_level_keys(sim.ledger.to_json()), expected);
  EXPECT_EQ(top_level_keys(thread.ledger.to_json()),
            top_level_keys(sim.ledger.to_json()));
  EXPECT_EQ(top_level_keys(sync.ledger.to_json()),
            top_level_keys(sim.ledger.to_json()));

#if DGS_TRACE_COMPILED
  // Warm step-time stats are live in instrumented builds: enough steps ran
  // to clear the warm-up window on every engine.
  for (const core::RunResult* r : {&sim, &thread, &sync}) {
    EXPECT_GT(r->ledger.warm_steps, 0u) << r->ledger.engine;
    EXPECT_GT(r->ledger.step_us_p50, 0.0) << r->ledger.engine;
    EXPECT_GT(r->ledger.attributed_fraction, 0.5) << r->ledger.engine;
    EXPECT_LT(r->ledger.attributed_fraction, 1.1) << r->ledger.engine;
    EXPECT_EQ(r->ledger.phases.size(), obs::kNumPhases) << r->ledger.engine;
  }
#endif
}

}  // namespace
